//! Quickstart: the running example of the paper (Example 1.1 / Fig. 1).
//!
//! Builds the movie schema `R_0`, the access schema `A_0`, the view `V_1`,
//! generates an instance satisfying `A_0`, checks that `Q_0`'s rewriting is
//! topped, and executes the generated bounded plan, comparing both answers
//! and the amount of data accessed against naive evaluation.
//!
//! Run with `cargo run --example quickstart --release`.

use bqr_core::topped::ToppedChecker;
use bqr_data::{FetchStats, IndexedDatabase};
use bqr_query::eval::eval_cq_counting;
use bqr_workload::movies;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The setting: schema R0, access schema A0 (N0 = 100), view V1, M = 40.
    let n0 = 100;
    let setting = movies::setting(n0, 40);
    setting.validate()?;
    println!("Schema:\n{}\n", setting.schema);
    println!("Access schema A0: {}", setting.access);
    println!("Views:\n{}", setting.views);

    // 2. A dataset that satisfies A0.
    let db = movies::generate(movies::MovieScale {
        persons: 20_000,
        movies: 2_000,
        n0,
        seed: 1,
    });
    println!("|D| = {} tuples", db.size());
    assert!(setting.access.satisfied_by(&db)?);

    // 3. Q0 itself is not boundedly rewritable without the view; the
    //    rewriting Qξ over V1 is topped by (R0, {V1}, A0, 40).
    let checker = ToppedChecker::new(&setting);
    let q0 = movies::q0();
    let q_xi = movies::q_xi();
    println!("\nQ0  = {q0}");
    println!("Qξ  = {q_xi}");
    let direct = checker.analyze_cq(&q0)?;
    println!("Q0 topped without using V1? {}", direct.topped);
    let analysis = checker.analyze_cq(&q_xi)?;
    println!(
        "Qξ topped? {} (plan size {}, fetch bound {} tuples)",
        analysis.topped,
        analysis.plan_size.unwrap(),
        analysis.fetch_bound.unwrap()
    );
    let plan = analysis.plan.expect("Qξ is topped");
    println!("\nGenerated bounded plan:\n{plan}");

    // 4. Execute the bounded plan: cached views + index fetches only.
    let cache = setting.views.materialize(&db)?;
    let idb = IndexedDatabase::build(db.clone(), setting.access.clone())?;
    let bounded = bqr_plan::execute(&plan, &idb, &cache)?;
    println!(
        "Bounded plan: {} answers, {}",
        bounded.tuples.len(),
        bounded.stats
    );

    // 5. Naive evaluation of Q0 scans the base relations.
    let mut naive_stats = FetchStats::new();
    let naive = eval_cq_counting(&q0, &db, None, &mut naive_stats)?;
    println!("Naive eval:   {} answers, {}", naive.len(), naive_stats);

    assert_eq!(bounded.tuples, naive, "the rewriting is exact");
    println!(
        "\nBase tuples accessed: bounded plan {} vs naive {}  ({}x less)",
        bounded.stats.base_tuples_accessed(),
        naive_stats.base_tuples_accessed(),
        naive_stats.base_tuples_accessed() / bounded.stats.base_tuples_accessed().max(1)
    );
    Ok(())
}
