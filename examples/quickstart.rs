//! Quickstart: the running example of the paper (Example 1.1 / Fig. 1),
//! through the [`bqr::Engine`] facade.
//!
//! Builds an engine over the movie setting (schema `R_0`, access schema
//! `A_0`, view `V_1`, bound `M = 40`), attaches a generated instance,
//! analyses `Q_0` and its rewriting `Q_ξ`, registers the rewriting as a
//! named prepared statement, and serves it over an epoch-pinned session —
//! comparing both answers and the amount of data accessed against naive
//! evaluation.
//!
//! Run with `cargo run --example quickstart --release`.

use bqr::workload::movies;
use bqr::Engine;

fn main() -> bqr::Result<()> {
    // 1. The engine: schema R0, access schema A0 (N0 = 100), view V1, M = 40.
    let n0 = 100;
    let engine = Engine::builder()
        .setting(movies::setting(n0, 40))
        .cache_capacity(16)
        .build()?;
    println!("Schema:\n{}\n", engine.setting().schema);
    println!("Access schema A0: {}", engine.setting().access);
    println!("Views:\n{}", engine.setting().views);

    // 2. Attach a dataset that satisfies A0.
    let db = movies::generate(movies::MovieScale {
        persons: 20_000,
        movies: 2_000,
        n0,
        seed: 1,
    });
    println!("|D| = {} tuples", db.size());
    assert!(engine
        .setting()
        .access
        .satisfied_by(&db)
        .map_err(bqr::Error::Data)?);
    engine.attach(db)?;

    // 3. Q0 itself is not boundedly rewritable without the view; the
    //    rewriting Qξ over V1 is topped by (R0, {V1}, A0, 40).
    let q0 = movies::q0();
    let q_xi = movies::q_xi();
    println!("\nQ0  = {q0}");
    println!("Qξ  = {q_xi}");
    let direct = engine.analyze(&q0)?;
    println!("Q0 bounded without using V1? {}", direct.bounded());
    let analysis = engine.analyze(&q_xi)?;
    println!(
        "Qξ bounded? {} (plan size {}, fetch bound {} tuples)",
        analysis.bounded(),
        analysis.plan_size().unwrap(),
        analysis.fetch_bound().unwrap()
    );
    println!(
        "\nGenerated bounded plan:\n{}",
        analysis.plan().expect("Qξ is topped")
    );
    println!("Compiled pipeline:\n{}", analysis.explain()?);

    // 4. Serve it: a named prepared statement over an epoch-pinned session.
    //    Cached views + index fetches only — the plan never scans.
    engine.prepare("fig1", &q_xi)?;
    let session = engine.session();
    let bounded = session.execute("fig1")?;
    println!(
        "Bounded plan: {} answers, {}",
        bounded.tuples.len(),
        bounded.stats
    );

    // 5. Naive evaluation of Q0 scans the base relations.
    let naive = session.evaluate(&q0)?;
    println!(
        "Naive eval:   {} answers, {}",
        naive.tuples.len(),
        naive.stats
    );

    assert_eq!(bounded.tuples, naive.tuples, "the rewriting is exact");
    println!(
        "\nBase tuples accessed: bounded plan {} vs naive {}  ({}x less)",
        bounded.stats.base_tuples_accessed(),
        naive.stats.base_tuples_accessed(),
        naive.stats.base_tuples_accessed() / bounded.stats.base_tuples_accessed().max(1)
    );
    println!("Pipeline cache: {:?}", engine.cache_stats());
    Ok(())
}
