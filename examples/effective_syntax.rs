//! The effective syntax at work (Section 5, experiment E3): topped queries
//! with negation, size-bounded views, and the difference between the PTIME
//! syntactic check and the exact (exponential) decision procedure.
//!
//! This example deliberately stays on the **low-level API** — hand-threading
//! `RewritingSetting` → `ToppedChecker` / `decide_vbrp` — to show what the
//! `bqr::Engine` facade (see the other examples) composes under the hood.
//!
//! Run with `cargo run --example effective_syntax --release`.

use bqr_core::decide::{decide_vbrp, DecisionOutcome};
use bqr_core::problem::{RewritingSetting, VbrpInstance};
use bqr_core::size_bounded::{make_size_bounded, size_bounded_bound};
use bqr_core::topped::ToppedChecker;
use bqr_data::{AccessConstraint, AccessSchema, DatabaseSchema};
use bqr_plan::PlanLanguage;
use bqr_query::parser::parse_cq;
use bqr_query::{Atom, Fo, FoQuery, Term, ViewSet};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The schema R1 of Example 5.3: R(A, B) and T(C, E), with
    // A2 = { R(A → B, N), T(C → E, N) } and the view V3(x, y) = R(y,y) ∧ T(x,y).
    let schema = DatabaseSchema::with_relations(&[("r", &["a", "b"]), ("t", &["c", "e"])])?;
    let access = AccessSchema::new(vec![
        AccessConstraint::new("r", &["a"], &["b"], 3)?,
        AccessConstraint::new("t", &["c"], &["e"], 3)?,
    ]);
    let mut views = ViewSet::empty();
    views.add_cq("V3", parse_cq("V3(x, y) :- r(y, y), t(x, y)")?)?;
    let setting = RewritingSetting::new(schema.clone(), access.clone(), views, 60);

    // q3(z) = q4(z) ∧ ¬∃w R(z, w)   with   q4(z) = ∃y (V3(1, y) ∧ R(y, z))
    // (the paper writes V3(x, y) ∧ x = 1, which is the same query).
    let q4 = Fo::exists(
        vec!["y".into()],
        Fo::conjunction(vec![
            Fo::Atom(Atom::new("V3", vec![Term::cnst(1), Term::var("y")])),
            Fo::Atom(Atom::new("r", vec![Term::var("y"), Term::var("z")])),
        ]),
    );
    let q3 = FoQuery::new(
        vec![Term::var("z")],
        Fo::and(
            q4.clone(),
            Fo::not(Fo::exists(
                vec!["w".into()],
                Fo::Atom(Atom::new("r", vec![Term::var("z"), Term::var("w")])),
            )),
        ),
    )?;
    println!("q3 = {q3}\n");

    let checker = ToppedChecker::new(&setting);
    let t = Instant::now();
    let analysis = checker.analyze(&q3)?;
    println!(
        "topped-query check: topped = {}, plan size = {:?}, fetch bound = {:?}  ({:.2?})",
        analysis.topped,
        analysis.plan_size,
        analysis.fetch_bound,
        t.elapsed()
    );
    if let Some(plan) = &analysis.plan {
        println!(
            "\nGenerated FO plan (language {}):\n{plan}",
            plan.language()
        );
    }

    // Size-bounded queries: wrap an FO view so that its output is bounded by
    // construction, and recognise the shape back.
    let inner = FoQuery::from_cq(&parse_cq("Q(x) :- r(x, y)")?);
    let sb = make_size_bounded(&inner, 5);
    println!(
        "\nsize-bounded syntax: recognised bound = {:?} for\n  {sb}",
        size_bounded_bound(&sb)
    );

    // The exact decision procedure on a small instance of VBRP(CQ), for
    // contrast: it enumerates candidate plans and checks A-equivalence.
    let small_schema = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])])?;
    let small_access = AccessSchema::new(vec![AccessConstraint::new(
        "rating",
        &["mid"],
        &["rank"],
        1,
    )?]);
    let small_setting = RewritingSetting::new(small_schema, small_access, ViewSet::empty(), 3);
    let q = parse_cq("Q(r) :- rating(42, r)")?;
    let t = Instant::now();
    let outcome = decide_vbrp(&VbrpInstance::new(small_setting, q), PlanLanguage::Cq)?;
    match outcome {
        DecisionOutcome::Rewriting(plan) => println!(
            "\nexact VBRP(CQ) search: found a {}-node rewriting in {:.2?}:\n{plan}",
            plan.size(),
            t.elapsed()
        ),
        other => println!("\nexact VBRP(CQ) search: {other:?} ({:.2?})", t.elapsed()),
    }
    Ok(())
}
