//! The Facebook Graph-Search example from the paper's introduction
//! (experiment E5): as the social graph grows, the bounded plan keeps
//! touching a constant number of tuples while the naive evaluation scans
//! more and more of the database.
//!
//! Run with `cargo run --example graph_search --release`.

use bqr_core::topped::ToppedChecker;
use bqr_data::{FetchStats, IndexedDatabase};
use bqr_query::eval::eval_cq_counting;
use bqr_workload::social;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let max_friends = 50;
    let setting = social::setting(max_friends, 200);
    let checker = ToppedChecker::new(&setting);
    let query = social::graph_search_query(0, 15);
    println!("Query: {query}\n");

    let analysis = checker.analyze_cq(&query)?;
    assert!(analysis.topped, "{:?}", analysis.reason);
    let plan = analysis.plan.expect("the graph-search query is topped");
    println!(
        "Bounded plan: {} nodes, worst-case fetch bound {} tuples\n",
        plan.size(),
        analysis.fetch_bound.unwrap()
    );

    println!(
        "{:>10} {:>10} | {:>14} {:>12} | {:>14} {:>12}",
        "persons", "|D|", "bounded-access", "bounded-ms", "naive-access", "naive-ms"
    );
    for persons in [1_000usize, 4_000, 16_000] {
        let db = social::generate(social::SocialScale {
            persons,
            restaurants: 500,
            max_friends,
            days: 31,
            seed: 17,
        });
        let cache = setting.views.materialize(&db)?;
        let idb = IndexedDatabase::build(db.clone(), setting.access.clone())?;

        let t = Instant::now();
        let bounded = bqr_plan::execute(&plan, &idb, &cache)?;
        let bounded_ms = t.elapsed().as_secs_f64() * 1_000.0;

        let t = Instant::now();
        let mut naive_stats = FetchStats::new();
        let naive = eval_cq_counting(&query, &db, None, &mut naive_stats)?;
        let naive_ms = t.elapsed().as_secs_f64() * 1_000.0;

        assert_eq!(bounded.tuples, naive);
        println!(
            "{:>10} {:>10} | {:>14} {:>12.3} | {:>14} {:>12.3}",
            persons,
            db.size(),
            bounded.stats.base_tuples_accessed(),
            bounded_ms,
            naive_stats.base_tuples_accessed(),
            naive_ms
        );
    }
    println!("\nThe bounded column stays flat while |D| grows — scale independence.");
    Ok(())
}
