//! The Facebook Graph-Search example from the paper's introduction
//! (experiment E5), through the [`bqr::Engine`] facade: as the social graph
//! grows, the bounded plan keeps touching a constant number of tuples while
//! the naive evaluation scans more and more of the database.
//!
//! The prepared statement is registered **once**; each scale step attaches a
//! fresh instance (fresh relation epochs), so each step's first execution is
//! a pipeline-cache miss that invalidates the previous scale's entry — the
//! engine's `CacheStats` at the end show exactly one miss per scale.
//!
//! Run with `cargo run --example graph_search --release`.

use bqr::workload::social;
use bqr::Engine;
use std::time::Instant;

fn main() -> bqr::Result<()> {
    let max_friends = 50;
    let engine = Engine::builder()
        .setting(social::setting(max_friends, 200))
        .build()?;
    let query = social::graph_search_query(0, 15);
    println!("Query: {query}\n");

    let analysis = engine.analyze(&query)?;
    assert!(analysis.bounded(), "{:?}", analysis.reason());
    println!(
        "Bounded plan: {} nodes, worst-case fetch bound {} tuples\n",
        analysis.plan_size().unwrap(),
        analysis.fetch_bound().unwrap()
    );
    engine.prepare("graph_search", &query)?;

    println!(
        "{:>10} {:>10} | {:>14} {:>12} | {:>14} {:>12}",
        "persons", "|D|", "bounded-access", "bounded-ms", "naive-access", "naive-ms"
    );
    for persons in [1_000usize, 4_000, 16_000] {
        engine.attach(social::generate(social::SocialScale {
            persons,
            restaurants: 500,
            max_friends,
            days: 31,
            seed: 17,
        }))?;
        let session = engine.session();
        let size = session.database().size();

        let t = Instant::now();
        let bounded = session.execute("graph_search")?;
        let bounded_ms = t.elapsed().as_secs_f64() * 1_000.0;

        let t = Instant::now();
        let naive = session.evaluate(&query)?;
        let naive_ms = t.elapsed().as_secs_f64() * 1_000.0;

        assert_eq!(bounded.tuples, naive.tuples);
        println!(
            "{:>10} {:>10} | {:>14} {:>12.3} | {:>14} {:>12.3}",
            persons,
            size,
            bounded.stats.base_tuples_accessed(),
            bounded_ms,
            naive.stats.base_tuples_accessed(),
            naive_ms
        );
    }
    println!("\nThe bounded column stays flat while |D| grows — scale independence.");
    let stats = engine.cache_stats();
    println!(
        "pipeline cache: {} misses (one per attached scale), {} invalidations",
        stats.misses, stats.invalidations
    );
    Ok(())
}
