//! The CDR analytics workload (experiment E6) through the [`bqr::Engine`]
//! facade: ten query templates over a synthetic call-detail-record dataset;
//! nine have bounded rewritings using the cached views, and the example
//! reports the per-query data-access reduction, mirroring the paper's
//! ">90 % of the workload improves by 25x to 5 orders of magnitude" claim in
//! shape.
//!
//! Each bounded template is analysed once and registered as a **named
//! prepared statement** via `prepare_from`; repeated executions are warm
//! pipeline-cache hits, and the engine's `CacheStats` at the end show it
//! (one warm re-execution per bounded template, plus one extra hit on the
//! first template whose pipeline `explain()` already compiled; zero
//! invalidations — the instance never mutates here).
//!
//! Run with `cargo run --example cdr_analytics --release`.

use bqr::workload::cdr;
use bqr::Engine;

fn main() -> bqr::Result<()> {
    let scale = cdr::CdrScale {
        customers: 5_000,
        days: 14,
        ..cdr::CdrScale::default()
    };
    // The engine adopts the CDR setting; the `view_bounds` annotations
    // declare |V(D)| bounds the checker cannot derive from A alone
    // (the Example 3.3 situation).
    let mut builder = Engine::builder().setting(cdr::setting(&scale, 120));
    for (name, bound) in cdr::view_bounds() {
        builder = builder.annotate_view_bound(name, bound);
    }
    let engine = builder.build()?;

    let db = cdr::generate(scale);
    println!("CDR instance: {} tuples", db.size());
    engine.attach(db)?;
    let session = engine.session();

    println!(
        "{:<24} {:>8} {:>16} {:>14} {:>10}",
        "query", "bounded?", "bounded-access", "naive-access", "reduction"
    );
    let mut improved = 0usize;
    let mut shown_pipeline = false;
    let queries = cdr::workload(17, 3);
    for q in &queries {
        let analysis = engine.analyze(&q.query)?;
        let naive = session.evaluate(&q.query)?;
        if analysis.bounded() {
            // The analysis is already in hand: register it without a second
            // checker run.
            engine.prepare_from(q.name, &analysis)?;
            if !shown_pipeline {
                // The compiled operator pipeline of the first bounded plan,
                // one operator per line.
                println!(
                    "compiled pipeline for `{}`:\n{}\n",
                    q.name,
                    analysis.explain()?
                );
                shown_pipeline = true;
            }
            let out = session.execute(q.name)?;
            assert_eq!(
                out.tuples, naive.tuples,
                "{} must be answered exactly",
                q.name
            );
            // A second execution: served warm from the pipeline cache.
            let again = session.execute(q.name)?;
            assert_eq!(again, out);
            let reduction = naive.stats.base_tuples_accessed() as f64
                / out.stats.base_tuples_accessed().max(1) as f64;
            improved += 1;
            println!(
                "{:<24} {:>8} {:>16} {:>14} {:>9.0}x",
                q.name,
                "yes",
                out.stats.base_tuples_accessed(),
                naive.stats.base_tuples_accessed(),
                reduction
            );
        } else {
            println!(
                "{:<24} {:>8} {:>16} {:>14} {:>10}",
                q.name,
                "no",
                "-",
                naive.stats.base_tuples_accessed(),
                "-"
            );
        }
    }
    println!(
        "\n{improved}/{} queries of the workload have a bounded rewriting ({}%).",
        queries.len(),
        100 * improved / queries.len()
    );
    let stats = engine.cache_stats();
    println!(
        "pipeline cache: {} lookups, {} hits, {} misses, {} invalidations",
        stats.lookups, stats.hits, stats.misses, stats.invalidations
    );
    Ok(())
}
