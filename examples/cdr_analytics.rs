//! The CDR analytics workload (experiment E6): ten query templates over a
//! synthetic call-detail-record dataset; nine have bounded rewritings using
//! the cached views, and the example reports the per-query data-access
//! reduction, mirroring the paper's ">90 % of the workload improves by 25x
//! to 5 orders of magnitude" claim in shape.
//!
//! Plans run on the compiled operator pipeline (`bqr_plan::exec`): the
//! example compiles the first bounded plan explicitly to show the
//! `Pipeline::describe()` introspection, and executes the workload under
//! explicit `ExecOptions` (serial here; `ExecOptions::parallel(n)` shards
//! the data-parallel operators over `n` threads with bit-identical output).
//!
//! Run with `cargo run --example cdr_analytics --release`.

use bqr_core::size_bounded::BoundedOutputOracle;
use bqr_core::topped::ToppedChecker;
use bqr_data::{FetchStats, IndexedDatabase};
use bqr_plan::{ExecOptions, Pipeline};
use bqr_query::eval::eval_cq_counting;
use bqr_workload::cdr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = cdr::CdrScale {
        customers: 5_000,
        days: 14,
        ..cdr::CdrScale::default()
    };
    let setting = cdr::setting(&scale, 120);
    let mut oracle = BoundedOutputOracle::new(
        setting.schema.clone(),
        setting.access.clone(),
        setting.budget,
    );
    for (name, bound) in cdr::view_bounds() {
        oracle.annotate_view(name, bound);
    }
    let checker = ToppedChecker::with_oracle(&setting, oracle);

    let db = cdr::generate(scale);
    println!("CDR instance: {} tuples", db.size());
    let cache = setting.views.materialize(&db)?;
    println!("cached view tuples: {}\n", cache.total_tuples());
    let idb = IndexedDatabase::build(db.clone(), setting.access.clone())?;

    // Serial execution; swap in `ExecOptions::parallel(4)` to shard the
    // data-parallel operators over 4 threads (same answers, same |D_ξ|).
    let options = ExecOptions::serial();
    println!(
        "{:<24} {:>8} {:>16} {:>14} {:>10}",
        "query", "bounded?", "bounded-access", "naive-access", "reduction"
    );
    let mut improved = 0usize;
    let mut shown_pipeline = false;
    let queries = cdr::workload(17, 3);
    for q in &queries {
        let analysis = checker.analyze_cq(&q.query)?;
        let mut naive_stats = FetchStats::new();
        let naive = eval_cq_counting(&q.query, &db, Some(&cache), &mut naive_stats)?;
        match analysis.plan {
            Some(plan) if analysis.topped => {
                let pipeline = Pipeline::compile(&plan, &idb, &cache)?;
                if !shown_pipeline {
                    // The compiled operator pipeline of the first bounded
                    // plan, one operator per line (the plan-level analogue
                    // of the homomorphism engine's `plan_summary()`).
                    println!(
                        "compiled pipeline for `{}`:\n{}\n",
                        q.name,
                        pipeline.describe()
                    );
                    shown_pipeline = true;
                }
                let out = pipeline.execute(&idb, &options)?;
                assert_eq!(out.tuples, naive, "{} must be answered exactly", q.name);
                let reduction = naive_stats.base_tuples_accessed() as f64
                    / out.stats.base_tuples_accessed().max(1) as f64;
                improved += 1;
                println!(
                    "{:<24} {:>8} {:>16} {:>14} {:>9.0}x",
                    q.name,
                    "yes",
                    out.stats.base_tuples_accessed(),
                    naive_stats.base_tuples_accessed(),
                    reduction
                );
            }
            _ => {
                println!(
                    "{:<24} {:>8} {:>16} {:>14} {:>10}",
                    q.name,
                    "no",
                    "-",
                    naive_stats.base_tuples_accessed(),
                    "-"
                );
            }
        }
    }
    println!(
        "\n{improved}/{} queries of the workload have a bounded rewriting ({}%).",
        queries.len(),
        100 * improved / queries.len()
    );
    Ok(())
}
