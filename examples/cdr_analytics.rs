//! The CDR analytics workload (experiment E6): ten query templates over a
//! synthetic call-detail-record dataset; nine have bounded rewritings using
//! the cached views, and the example reports the per-query data-access
//! reduction, mirroring the paper's ">90 % of the workload improves by 25x
//! to 5 orders of magnitude" claim in shape.
//!
//! Run with `cargo run --example cdr_analytics --release`.

use bqr_core::size_bounded::BoundedOutputOracle;
use bqr_core::topped::ToppedChecker;
use bqr_data::{FetchStats, IndexedDatabase};
use bqr_query::eval::eval_cq_counting;
use bqr_workload::cdr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = cdr::CdrScale {
        customers: 5_000,
        days: 14,
        ..cdr::CdrScale::default()
    };
    let setting = cdr::setting(&scale, 120);
    let mut oracle = BoundedOutputOracle::new(
        setting.schema.clone(),
        setting.access.clone(),
        setting.budget,
    );
    for (name, bound) in cdr::view_bounds() {
        oracle.annotate_view(name, bound);
    }
    let checker = ToppedChecker::with_oracle(&setting, oracle);

    let db = cdr::generate(scale);
    println!("CDR instance: {} tuples", db.size());
    let cache = setting.views.materialize(&db)?;
    println!("cached view tuples: {}\n", cache.total_tuples());
    let idb = IndexedDatabase::build(db.clone(), setting.access.clone())?;

    println!(
        "{:<24} {:>8} {:>16} {:>14} {:>10}",
        "query", "bounded?", "bounded-access", "naive-access", "reduction"
    );
    let mut improved = 0usize;
    let queries = cdr::workload(17, 3);
    for q in &queries {
        let analysis = checker.analyze_cq(&q.query)?;
        let mut naive_stats = FetchStats::new();
        let naive = eval_cq_counting(&q.query, &db, Some(&cache), &mut naive_stats)?;
        match analysis.plan {
            Some(plan) if analysis.topped => {
                let out = bqr_plan::execute(&plan, &idb, &cache)?;
                assert_eq!(out.tuples, naive, "{} must be answered exactly", q.name);
                let reduction = naive_stats.base_tuples_accessed() as f64
                    / out.stats.base_tuples_accessed().max(1) as f64;
                improved += 1;
                println!(
                    "{:<24} {:>8} {:>16} {:>14} {:>9.0}x",
                    q.name,
                    "yes",
                    out.stats.base_tuples_accessed(),
                    naive_stats.base_tuples_accessed(),
                    reduction
                );
            }
            _ => {
                println!(
                    "{:<24} {:>8} {:>16} {:>14} {:>10}",
                    q.name,
                    "no",
                    "-",
                    naive_stats.base_tuples_accessed(),
                    "-"
                );
            }
        }
    }
    println!(
        "\n{improved}/{} queries of the workload have a bounded rewriting ({}%).",
        queries.len(),
        100 * improved / queries.len()
    );
    Ok(())
}
