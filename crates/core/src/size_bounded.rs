//! Size-bounded queries and the bounded-output oracle (Theorem 5.2).
//!
//! `BOP(FO)` is undecidable, so the paper introduces an *effective syntax*
//! for FO queries with bounded output: a query is **size-bounded** when it
//! has the shape
//!
//! ```text
//! Q(x̄) = Q'(x̄) ∧ ∀ x̄_1 ... x̄_{K+1} ( Q'(x̄_1) ∧ ... ∧ Q'(x̄_{K+1}) → ⋁_{i≠j} x̄_i = x̄_j )
//! ```
//!
//! Every size-bounded query has output bounded by `K`, every FO query with
//! bounded output is `A`-equivalent to a size-bounded one, and the shape can
//! be recognised in PTIME.  The [`BoundedOutputOracle`] combines this syntax
//! with the exact `BOP` procedure for `∃FO+` views and with explicit
//! annotations, and is the oracle used by the topped-query checker
//! (Theorem 5.1(c)).  Its element-query analysis is chase-based and never
//! probes instances; the planner of `bqr-query::hom` enters this pipeline
//! only downstream, when oracle verdicts are cross-checked against actual
//! view extents in the benchmarks and differential tests.

use bqr_data::{AccessSchema, DatabaseSchema};
use bqr_query::bounded_output::{cq_output, fo_output, ucq_output, OutputBound};
use bqr_query::{Budget, Fo, FoQuery, Term, ViewDefinition, ViewSet};
use std::collections::BTreeMap;

/// Construct the size-bounded query enforcing `|Q'(D)| ≤ k` (Theorem 5.2(a)).
pub fn make_size_bounded(inner: &FoQuery, k: usize) -> FoQuery {
    let arity = inner.arity();
    // Build ∀ x̄_1 ... x̄_{k+1} ( ⋀ Q'(x̄_i) → ⋁_{i<j} x̄_i = x̄_j ).
    let copies: Vec<Vec<String>> = (0..=k)
        .map(|i| (0..arity).map(|c| format!("__sb_{i}_{c}")).collect())
        .collect();
    let mut antecedent_parts = Vec::new();
    for vars in &copies {
        antecedent_parts.push(instantiate(inner, vars));
    }
    let antecedent = Fo::conjunction(antecedent_parts);
    let mut disjuncts = Vec::new();
    for i in 0..copies.len() {
        for j in (i + 1)..copies.len() {
            let eqs: Vec<Fo> = (0..arity)
                .map(|c| {
                    Fo::Eq(
                        Term::var(copies[i][c].clone()),
                        Term::var(copies[j][c].clone()),
                    )
                })
                .collect();
            disjuncts.push(Fo::conjunction(eqs));
        }
    }
    let consequent = if disjuncts.is_empty() {
        // k = 0: the guard says Q' is empty, i.e. ¬∃x̄ Q'(x̄).
        Fo::not(Fo::exists(
            copies[0].clone(),
            instantiate(inner, &copies[0]),
        ))
    } else {
        Fo::disjunction(disjuncts).expect("non-empty disjunct list")
    };
    let all_vars: Vec<String> = copies.iter().flatten().cloned().collect();
    let guard = if disjuncts_empty_guard(&consequent) {
        consequent
    } else {
        Fo::forall(all_vars, Fo::or(Fo::not(antecedent), consequent))
    };
    let body = Fo::and(inner.body().clone(), guard);
    FoQuery::new(inner.head().to_vec(), body).expect("head variables unchanged")
}

fn disjuncts_empty_guard(f: &Fo) -> bool {
    // The k = 0 special case already is a closed sentence.
    matches!(f, Fo::Not(_))
}

/// Instantiate the body of `inner` with the given head-variable names.
fn instantiate(inner: &FoQuery, vars: &[String]) -> Fo {
    let mut map = BTreeMap::new();
    let mut eqs = Vec::new();
    for (i, t) in inner.head().iter().enumerate() {
        match t {
            Term::Var(v) => {
                map.insert(v.clone(), Term::var(vars[i].clone()));
            }
            Term::Const(c) => eqs.push(Fo::Eq(Term::var(vars[i].clone()), Term::cnst(c.clone()))),
        }
    }
    let renamed = inner.body().rename_bound().substitute(&map);
    let mut parts = vec![renamed];
    parts.extend(eqs);
    Fo::conjunction(parts)
}

/// Recognise the size-bounded shape produced by [`make_size_bounded`]; returns
/// the bound `k` if the query matches (Theorem 5.2(c)).
///
/// The recogniser is purely syntactic (PTIME): it looks for a top-level
/// conjunction whose right conjunct is a universally quantified guard over
/// `k + 1` copies of the arity.
pub fn size_bounded_bound(query: &FoQuery) -> Option<usize> {
    let arity = query.arity();
    let Fo::And(_, guard) = query.body() else {
        return None;
    };
    match guard.as_ref() {
        Fo::Forall(vars, _) if arity > 0 && vars.len() % arity == 0 => Some(vars.len() / arity - 1),
        Fo::Not(_) => Some(0),
        _ => None,
    }
}

/// The bounded-output oracle: how the topped-query checker decides whether a
/// view (or any sub-query) has bounded output under the access schema.
#[derive(Debug, Clone)]
pub struct BoundedOutputOracle {
    schema: DatabaseSchema,
    access: AccessSchema,
    budget: Budget,
    /// Explicit per-view bounds supplied by the user (e.g. from view
    /// selection statistics, as in the PIQL / scale-independence systems).
    annotations: BTreeMap<String, usize>,
}

impl BoundedOutputOracle {
    /// Create an oracle for a schema and access schema.
    pub fn new(schema: DatabaseSchema, access: AccessSchema, budget: Budget) -> Self {
        BoundedOutputOracle {
            schema,
            access,
            budget,
            annotations: BTreeMap::new(),
        }
    }

    /// Declare that a view's output is bounded by `k` tuples on every
    /// instance satisfying the access schema.
    pub fn annotate_view(&mut self, name: impl Into<String>, bound: usize) {
        self.annotations.insert(name.into(), bound);
    }

    /// The bound of a view, if it can be established: by annotation first,
    /// then by the exact `BOP` analysis for CQ/UCQ/∃FO+ definitions, then by
    /// the size-bounded syntax for FO definitions.
    pub fn view_bound(&self, name: &str, views: &ViewSet) -> Option<usize> {
        if let Some(&b) = self.annotations.get(name) {
            return Some(b);
        }
        let def = views.get(name)?;
        match def {
            ViewDefinition::Cq(q) => match cq_output(q, &self.access, &self.schema, &self.budget) {
                Ok(OutputBound::Bounded(n)) => Some(n),
                _ => None,
            },
            ViewDefinition::Ucq(q) => {
                match ucq_output(q, &self.access, &self.schema, &self.budget) {
                    Ok(OutputBound::Bounded(n)) => Some(n),
                    _ => None,
                }
            }
            ViewDefinition::Fo(q) => {
                if let Some(k) = size_bounded_bound(q) {
                    return Some(k);
                }
                match fo_output(q, &self.access, &self.schema, &self.budget) {
                    Ok(OutputBound::Bounded(n)) => Some(n),
                    _ => None,
                }
            }
        }
    }

    /// The schema the oracle reasons over.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The access schema the oracle reasons over.
    pub fn access(&self) -> &AccessSchema {
        &self.access
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqr_data::{tuple, AccessConstraint, Database};
    use bqr_query::eval::eval_fo;
    use bqr_query::parser::parse_cq;
    use bqr_query::UnionQuery;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[("r", &["a", "b"])]).unwrap()
    }

    #[test]
    fn make_and_recognise_size_bounded() {
        let inner = FoQuery::from_cq(&parse_cq("Q(x) :- r(x, y)").unwrap());
        assert_eq!(
            size_bounded_bound(&inner),
            None,
            "plain queries are not size-bounded"
        );
        let sb = make_size_bounded(&inner, 2);
        assert_eq!(size_bounded_bound(&sb), Some(2));
        let sb0 = make_size_bounded(&inner, 0);
        assert_eq!(size_bounded_bound(&sb0), Some(0));
    }

    #[test]
    fn size_bounded_semantics_truncate_to_false() {
        // On an instance where Q' has ≤ k answers, Q = Q'; otherwise Q = ∅.
        let inner = FoQuery::from_cq(&parse_cq("Q(x) :- r(x, y)").unwrap());
        let sb = make_size_bounded(&inner, 2);

        let mut small = Database::empty(schema());
        small.insert("r", tuple![1, 10]).unwrap();
        small.insert("r", tuple![2, 20]).unwrap();
        assert_eq!(
            eval_fo(&sb, &small, None).unwrap(),
            eval_fo(&inner, &small, None).unwrap()
        );
        assert_eq!(eval_fo(&sb, &small, None).unwrap().len(), 2);

        let mut big = small.clone();
        big.insert("r", tuple![3, 30]).unwrap();
        assert_eq!(eval_fo(&inner, &big, None).unwrap().len(), 3);
        assert!(
            eval_fo(&sb, &big, None).unwrap().is_empty(),
            "guard fails, query collapses"
        );
    }

    #[test]
    fn oracle_prefers_annotations_then_analysis() {
        let access =
            AccessSchema::new(vec![AccessConstraint::new("r", &["a"], &["b"], 3).unwrap()]);
        let mut views = ViewSet::empty();
        // Bounded: r-values for a fixed key.
        views
            .add_cq("Vb", parse_cq("V(y) :- r(1, y)").unwrap())
            .unwrap();
        // Unbounded: all keys.
        views
            .add_cq("Vu", parse_cq("V(x) :- r(x, y)").unwrap())
            .unwrap();
        // A UCQ view made of two bounded disjuncts.
        views
            .add_ucq(
                "Vu2",
                UnionQuery::new(vec![
                    parse_cq("V(y) :- r(1, y)").unwrap(),
                    parse_cq("V(y) :- r(2, y)").unwrap(),
                ])
                .unwrap(),
            )
            .unwrap();
        // An FO view in the size-bounded syntax.
        let inner = FoQuery::from_cq(&parse_cq("Q(x) :- r(x, y)").unwrap());
        views.add_fo("Vsb", make_size_bounded(&inner, 7)).unwrap();

        let mut oracle = BoundedOutputOracle::new(schema(), access, Budget::generous());
        assert_eq!(oracle.view_bound("Vb", &views), Some(3));
        assert_eq!(oracle.view_bound("Vu", &views), None);
        assert_eq!(oracle.view_bound("Vu2", &views), Some(6));
        assert_eq!(oracle.view_bound("Vsb", &views), Some(7));
        assert_eq!(oracle.view_bound("missing", &views), None);

        oracle.annotate_view("Vu", 5000);
        assert_eq!(
            oracle.view_bound("Vu", &views),
            Some(5000),
            "annotations win"
        );
        assert_eq!(oracle.access().len(), 1);
        assert_eq!(oracle.schema().len(), 1);
    }
}
