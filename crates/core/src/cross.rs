//! `L1`-to-`L2` bounded rewriting: `VBRP+(L1, L2)` (Section 6).
//!
//! The relaxation allows a query in `L1` to be rewritten into a plan of a
//! more expressive language `L2 ⊇ L1`.  Theorem 6.1 shows this does not make
//! the problem easier (it stays Σᵖ₃-hard), and Example 6.3 shows the
//! languages genuinely differ: there is a CQ with a 5-bounded FO rewriting
//! but no 5-bounded UCQ rewriting.  This module wraps the exact decision
//! procedure with the language bookkeeping.

use crate::decide::{decide_vbrp, DecisionOutcome};
use crate::problem::VbrpInstance;
use crate::Result;
use bqr_plan::PlanLanguage;
use bqr_query::QueryLanguage;

/// Map a query language to the corresponding plan language.
pub fn plan_language_for(language: QueryLanguage) -> PlanLanguage {
    match language {
        QueryLanguage::Cq => PlanLanguage::Cq,
        QueryLanguage::Ucq => PlanLanguage::Ucq,
        QueryLanguage::PosFo => PlanLanguage::PosFo,
        QueryLanguage::Fo => PlanLanguage::Fo,
    }
}

/// Decide `VBRP+(L1, L2)`: does the instance's query (in `L1`) have an
/// `M`-bounded rewriting whose plan is in `L2`?
///
/// `L1` is taken from the query itself; `target` is `L2` and must be at least
/// as expressive as `L1`'s plan language.
pub fn decide_vbrp_cross(instance: &VbrpInstance, target: PlanLanguage) -> Result<DecisionOutcome> {
    let source = plan_language_for(instance.query.language());
    if target < source {
        return Ok(DecisionOutcome::Unknown(format!(
            "the target language {target} is less expressive than the query's language {source}"
        )));
    }
    decide_vbrp(instance, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{RewritingSetting, VbrpInstance};
    use bqr_data::{AccessConstraint, AccessSchema, DatabaseSchema};
    use bqr_query::parser::parse_cq;
    use bqr_query::ViewSet;

    fn setting(m: usize) -> RewritingSetting {
        let schema = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])]).unwrap();
        let access = AccessSchema::new(vec![AccessConstraint::new(
            "rating",
            &["mid"],
            &["rank"],
            1,
        )
        .unwrap()]);
        RewritingSetting::new(schema, access, ViewSet::empty(), m)
    }

    #[test]
    fn language_mapping() {
        assert_eq!(plan_language_for(QueryLanguage::Cq), PlanLanguage::Cq);
        assert_eq!(plan_language_for(QueryLanguage::Ucq), PlanLanguage::Ucq);
        assert_eq!(plan_language_for(QueryLanguage::PosFo), PlanLanguage::PosFo);
        assert_eq!(plan_language_for(QueryLanguage::Fo), PlanLanguage::Fo);
    }

    #[test]
    fn cq_to_larger_languages_finds_the_same_rewriting() {
        let q = parse_cq("Q(r) :- rating(42, r)").unwrap();
        for target in [
            PlanLanguage::Cq,
            PlanLanguage::Ucq,
            PlanLanguage::PosFo,
            PlanLanguage::Fo,
        ] {
            let inst = VbrpInstance::new(setting(3), q.clone());
            let outcome = decide_vbrp_cross(&inst, target).unwrap();
            assert!(outcome.has_rewriting(), "target {target}");
        }
    }

    #[test]
    fn downgrading_the_language_is_rejected() {
        let ucq = bqr_query::UnionQuery::new(vec![
            parse_cq("Q(r) :- rating(1, r)").unwrap(),
            parse_cq("Q(r) :- rating(2, r)").unwrap(),
        ])
        .unwrap();
        let inst = VbrpInstance::new(setting(5), ucq);
        let outcome = decide_vbrp_cross(&inst, PlanLanguage::Cq).unwrap();
        assert!(matches!(outcome, DecisionOutcome::Unknown(_)));
    }

    #[test]
    fn ucq_query_rewritten_into_ucq_plan() {
        // Q(r) = rating(1, r) ∪ rating(2, r): a 7-node UCQ plan exists
        // (two const+fetch+π branches under one union is 9; our enumeration
        // finds fetch-based variants within M = 9).
        let ucq = bqr_query::UnionQuery::new(vec![
            parse_cq("Q(r) :- rating(1, r)").unwrap(),
            parse_cq("Q(r) :- rating(2, r)").unwrap(),
        ])
        .unwrap();
        let inst = VbrpInstance::new(setting(7), ucq);
        let outcome = decide_vbrp_cross(&inst, PlanLanguage::Ucq).unwrap();
        assert!(outcome.has_rewriting(), "{outcome:?}");
        let plan = outcome.plan().unwrap();
        assert!(plan.language() <= PlanLanguage::Ucq);
        assert!(plan.size() <= 7);
    }
}
