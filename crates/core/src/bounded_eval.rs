//! Bounded evaluability: the `V = ∅` baseline ([Fan et al. 2015]).
//!
//! A query is *boundedly evaluable* under `A` when it can be answered with a
//! bounded amount of data without any views — i.e. when it has a bounded
//! rewriting using the empty view set.  The paper's motivation for views is
//! precisely the gap between this class and bounded rewriting with views;
//! experiment E7 measures that gap on random workloads.

use crate::problem::RewritingSetting;
use crate::topped::{ToppedAnalysis, ToppedChecker};
use crate::Result;
use bqr_query::{ConjunctiveQuery, FoQuery, ViewSet};

/// Analyse whether a CQ is boundedly evaluable (no views) within the
/// setting's plan-size bound, using the effective syntax.
pub fn boundedly_evaluable_cq(
    setting: &RewritingSetting,
    query: &ConjunctiveQuery,
) -> Result<ToppedAnalysis> {
    boundedly_evaluable(setting, &FoQuery::from_cq(query))
}

/// Analyse whether an FO query is boundedly evaluable (no views) within the
/// setting's plan-size bound.
pub fn boundedly_evaluable(setting: &RewritingSetting, query: &FoQuery) -> Result<ToppedAnalysis> {
    let viewless = RewritingSetting {
        schema: setting.schema.clone(),
        access: setting.access.clone(),
        views: ViewSet::empty(),
        bound_m: setting.bound_m,
        budget: setting.budget,
        planner: setting.planner,
    };
    let checker = ToppedChecker::new(&viewless);
    // The checker borrows the setting, so the analysis must be produced
    // before `viewless` goes out of scope.
    checker.analyze(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topped::ToppedChecker;
    use bqr_data::{AccessConstraint, AccessSchema, DatabaseSchema};
    use bqr_query::parser::parse_cq;

    fn setting_with_view() -> RewritingSetting {
        let schema = DatabaseSchema::with_relations(&[
            ("person", &["pid", "name", "affiliation"]),
            ("movie", &["mid", "mname", "studio", "release"]),
            ("rating", &["mid", "rank"]),
            ("like", &["pid", "id", "type"]),
        ])
        .unwrap();
        let access = AccessSchema::new(vec![
            AccessConstraint::new("movie", &["studio", "release"], &["mid"], 100).unwrap(),
            AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap(),
        ]);
        let mut views = ViewSet::empty();
        views
            .add_cq(
                "V1",
                parse_cq(
                    "V1(mid) :- person(xp, xn, 'NASA'), movie(mid, ym, z1, z2), like(xp, mid, 'movie')",
                )
                .unwrap(),
            )
            .unwrap();
        RewritingSetting::new(schema, access, views, 45)
    }

    #[test]
    fn views_strictly_enlarge_the_rewritable_class() {
        // The rewriting Qξ uses the view V1; without views it is not
        // boundedly evaluable (person/like have no constraints), with views
        // it is topped.  This is the paper's motivating gap.
        let setting = setting_with_view();
        let q = parse_cq("Q(mid) :- movie(mid, ym, 'Universal', '2014'), V1(mid), rating(mid, 5)")
            .unwrap();
        let with_views = ToppedChecker::new(&setting).analyze_cq(&q).unwrap();
        assert!(with_views.topped);

        let q0 = parse_cq(
            "Q(mid) :- person(xp, xn, 'NASA'), movie(mid, ym, 'Universal', '2014'), \
             like(xp, mid, 'movie'), rating(mid, 5)",
        )
        .unwrap();
        let without_views = boundedly_evaluable_cq(&setting, &q0).unwrap();
        assert!(
            !without_views.topped,
            "Q0 is not boundedly evaluable under A0"
        );
    }

    #[test]
    fn boundedly_evaluable_query_stays_bounded() {
        // Q(r) :- movie(m, n, 'U', '2014'), rating(m, r) needs no view.
        let setting = setting_with_view();
        let q = parse_cq("Q(r) :- movie(m, n, 'Universal', '2014'), rating(m, r)").unwrap();
        let analysis = boundedly_evaluable_cq(&setting, &q).unwrap();
        assert!(analysis.topped, "{:?}", analysis.reason);
        assert!(analysis.fetch_bound.unwrap() <= 200);
    }

    /// The bounded-evaluability plan serves repeated executions through the
    /// prepared pipeline cache (`V = ∅`, so only base-relation epochs key
    /// the entry).
    #[test]
    fn bounded_evaluation_serves_through_the_prepared_path() {
        use bqr_data::{tuple, Database, IndexedDatabase};
        let setting = setting_with_view();
        let q = parse_cq("Q(r) :- movie(m, n, 'Universal', '2014'), rating(m, r)").unwrap();
        let analysis = boundedly_evaluable_cq(&setting, &q).unwrap();
        let cache = std::sync::Arc::new(bqr_plan::PipelineCache::new(4));
        let prepared = analysis
            .prepare_plan_with(std::sync::Arc::clone(&cache))
            .unwrap()
            .expect("the analysis carries a plan");

        let mut db = Database::empty(setting.schema.clone());
        db.insert("movie", tuple![10, "Lucy", "Universal", "2014"])
            .unwrap();
        db.insert("rating", tuple![10, 5]).unwrap();
        let idb = IndexedDatabase::build(db, setting.access.clone()).unwrap();
        let views = bqr_query::MaterializedViews::empty();
        for _ in 0..3 {
            let out = prepared.execute(&idb, &views).unwrap();
            assert_eq!(out.tuples, vec![tuple![5]]);
        }
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2), "{stats:?}");
    }
}
