//! Exact decision procedures for `VBRP(L)` (Theorem 3.1) and the maximum-plan
//! algorithms `AlgMP` / `AlgACQ` of Theorem 4.2.
//!
//! The exact procedure mirrors the Σᵖ₃ algorithm of the paper: enumerate
//! candidate plans of size at most `M` (the outer existential guess), check
//! conformance to `A` (the `P^NP` step of Lemma 3.8) and `A`-equivalence with
//! the query (the Πᵖ₂ step of Lemma 3.2).  Everything is budgeted; on the
//! small instances of the paper's examples the procedure is exact, on larger
//! ones it degrades to an explicit `Unknown`.

use crate::enumerate::{enumerate_plans, EnumerationOptions};
use crate::problem::{Query, RewritingSetting, VbrpInstance};
use crate::Result;
use bqr_plan::{check_conformance, Conformance, PlanLanguage, QueryPlan};
use bqr_query::aequiv::{ucq_a_contained_in_with, ucq_a_equivalent_with};
use bqr_query::containment::ContainmentChecker;
use bqr_query::{ConjunctiveQuery, QueryError, UnionQuery};

/// The outcome of an exact decision.
#[derive(Debug, Clone)]
pub enum DecisionOutcome {
    /// A bounded rewriting exists; the witness plan is returned.
    Rewriting(QueryPlan),
    /// No `M`-bounded rewriting exists (the search was exhaustive).
    NoRewriting,
    /// The procedure could not decide within its budget / fragment.
    Unknown(String),
}

impl DecisionOutcome {
    /// Did the procedure find a rewriting?
    pub fn has_rewriting(&self) -> bool {
        matches!(self, DecisionOutcome::Rewriting(_))
    }

    /// The witness plan, if any.
    pub fn plan(&self) -> Option<&QueryPlan> {
        match self {
            DecisionOutcome::Rewriting(p) => Some(p),
            _ => None,
        }
    }

    /// The witness plan as a [`bqr_plan::PreparedPlan`] on the process-wide
    /// pipeline cache — the exact procedures decide once, and the rewriting
    /// they return is then executed many times over a slowly changing
    /// instance; the prepared handle makes every warm execution skip
    /// recompilation (and re-validate relation/view epochs for free).
    ///
    /// `Ok(Some(_))` for a decided rewriting, `Ok(None)` for a decided
    /// *no*-rewriting, and `Err(CoreError::Undecided)` when the procedure
    /// gave up ([`DecisionOutcome::Unknown`]) — an undecided outcome must
    /// never be silently served as "no rewriting".
    pub fn prepare(&self) -> crate::Result<Option<bqr_plan::PreparedPlan>> {
        self.prepare_with(std::sync::Arc::clone(bqr_plan::PipelineCache::global()))
    }

    /// [`prepare`](DecisionOutcome::prepare) against a caller-owned cache.
    pub fn prepare_with(
        &self,
        cache: std::sync::Arc<bqr_plan::PipelineCache>,
    ) -> crate::Result<Option<bqr_plan::PreparedPlan>> {
        match self {
            DecisionOutcome::Rewriting(plan) => Ok(Some(bqr_plan::PreparedPlan::with_cache(
                plan.clone(),
                cache,
            ))),
            DecisionOutcome::NoRewriting => Ok(None),
            DecisionOutcome::Unknown(why) => Err(crate::CoreError::Undecided(why.clone())),
        }
    }
}

/// Decide `VBRP(L)` exactly for a query in `∃FO+` (CQ, UCQ or positive FO),
/// looking for a plan in the given target plan language (`L1`-to-`L2`
/// rewriting is obtained by passing a larger target language; see
/// [`crate::cross`]).
pub fn decide_vbrp(instance: &VbrpInstance, target: PlanLanguage) -> Result<DecisionOutcome> {
    let setting = &instance.setting;
    // The query must be expressible as a UCQ for the exact A-equivalence test
    // (VBRP(FO) is undecidable, Theorem 3.1(2)).
    let query_ucq = match instance.query.to_ucq(&setting.budget) {
        Ok(Some(u)) => u,
        Ok(None) => {
            // The query is unsatisfiable: the empty plan (a constant with an
            // always-false selection is not even needed — the 0-ary constant
            // differenced with itself) — simplest is to report the smallest
            // trivially-empty plan when the language admits one; we instead
            // return the canonical answer that a rewriting exists iff M ≥ 1,
            // using an unsatisfiable 1-node plan: the empty view-free constant
            // cannot be empty, so use `const ∅` semantics via NoRewriting when
            // M = 0.  For simplicity: an unsatisfiable query is equivalent to
            // the empty plan of size ≥ 2 (difference of a constant with
            // itself) in FO, otherwise Unknown.
            return Ok(unsatisfiable_outcome(setting, target));
        }
        Err(QueryError::UnsupportedFragment(msg)) => {
            return Ok(DecisionOutcome::Unknown(format!(
                "the exact procedure handles ∃FO+ queries only (VBRP(FO) is undecidable): {msg}"
            )))
        }
        Err(QueryError::BudgetExceeded(what)) => {
            return Ok(DecisionOutcome::Unknown(format!(
                "budget exceeded while {what}"
            )))
        }
        Err(e) => return Err(e.into()),
    };

    let options = EnumerationOptions {
        constants: instance.query.constants().into_iter().collect(),
        language: target,
        max_arity: max_arity_for(instance),
    };
    let candidates = match enumerate_plans(setting, &options, &setting.budget) {
        Ok(c) => c,
        Err(QueryError::BudgetExceeded(what)) => {
            return Ok(DecisionOutcome::Unknown(format!(
                "budget exceeded while {what}"
            )))
        }
        Err(e) => return Err(e.into()),
    };

    // One containment checker for the whole search: every candidate is
    // tested against the same query, so canonical instances and relation
    // indexes are shared across the loop.
    let checker = ContainmentChecker::with_planner(&setting.schema, setting.planner);
    for plan in candidates {
        if plan.arity() != instance.query.arity() {
            continue;
        }
        if equivalent_to_query(&checker, &plan, &query_ucq, setting)? {
            // Conformance is checked second: it is the more expensive test and
            // most candidates fail equivalence first.
            let conf = check_conformance(
                &plan,
                &setting.access,
                &setting.schema,
                &setting.views,
                &setting.budget,
            )?;
            if matches!(conf, Conformance::Conforms { .. }) {
                return Ok(DecisionOutcome::Rewriting(plan));
            }
        }
    }
    Ok(DecisionOutcome::NoRewriting)
}

fn unsatisfiable_outcome(setting: &RewritingSetting, _target: PlanLanguage) -> DecisionOutcome {
    // An unsatisfiable (under A) query is A-equivalent to any plan returning
    // the empty relation; `σ_{#0 ≠ #0}(const c)` has 2 nodes and is in every
    // plan language.
    if setting.bound_m >= 2 {
        let plan = bqr_plan::builder::Plan::constant(vec![bqr_data::Value::int(0)])
            .select(vec![bqr_plan::SelectCondition::ColNeCol(0, 0)])
            .build()
            .expect("the empty plan is well formed");
        DecisionOutcome::Rewriting(plan)
    } else {
        DecisionOutcome::NoRewriting
    }
}

fn max_arity_for(instance: &VbrpInstance) -> usize {
    let schema_max = instance
        .setting
        .schema
        .relations()
        .map(|r| r.arity())
        .max()
        .unwrap_or(0);
    let view_max = instance
        .setting
        .views
        .arities()
        .values()
        .copied()
        .max()
        .unwrap_or(0);
    instance.query.arity().max(schema_max).max(view_max) + 1
}

/// Is `plan` `A`-equivalent to the query (after unfolding views)?
fn equivalent_to_query(
    checker: &ContainmentChecker<'_>,
    plan: &QueryPlan,
    query: &UnionQuery,
    setting: &RewritingSetting,
) -> Result<bool> {
    match plan_as_unfolded_ucq(plan, setting)? {
        None => Ok(false),
        Some(plan_ucq) => Ok(ucq_a_equivalent_with(
            checker,
            &plan_ucq,
            query,
            &setting.access,
            &setting.budget,
        )?),
    }
}

/// The UCQ expressed by a plan, with CQ views unfolded; `None` when the plan
/// is unsatisfiable or outside the positive fragment.
fn plan_as_unfolded_ucq(
    plan: &QueryPlan,
    setting: &RewritingSetting,
) -> Result<Option<UnionQuery>> {
    let ucq = match bqr_plan::to_query::plan_to_ucq(plan, &setting.schema, &setting.budget) {
        Ok(Some(u)) => u,
        Ok(None) => return Ok(None),
        Err(bqr_plan::PlanError::Query(QueryError::UnsupportedFragment(_)))
        | Err(bqr_plan::PlanError::Query(QueryError::BudgetExceeded(_))) => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut disjuncts: Vec<ConjunctiveQuery> = Vec::with_capacity(ucq.len());
    for d in ucq.disjuncts() {
        match setting.views.unfold_cq(d) {
            Ok(q) => disjuncts.push(q),
            Err(QueryError::UnsupportedFragment(_)) => return Ok(None),
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(UnionQuery::new(disjuncts)?))
}

/// `AlgACQ` (Theorem 4.2): decide `VBRP` for a (typically acyclic) CQ with the
/// fixed parameters of the setting by computing the maximum candidate plan
/// (Lemma 3.12): a plan `ξ` with `ξ ⊑_A Q` that is maximal and unique up to
/// `A`-equivalence, such that `Q` has an `M`-bounded rewriting iff `Q ⊑_A ξ`.
pub fn decide_acq_by_maximum_plan(
    instance: &VbrpInstance,
    target: PlanLanguage,
) -> Result<DecisionOutcome> {
    let setting = &instance.setting;
    let Query::Cq(ref cq) = instance.query else {
        return Ok(DecisionOutcome::Unknown(
            "the maximum-plan algorithm is defined for conjunctive queries".to_string(),
        ));
    };
    let query_ucq = UnionQuery::single(cq.clone());

    let options = EnumerationOptions {
        constants: cq.constants().into_iter().collect(),
        language: target,
        max_arity: max_arity_for(instance),
    };
    let candidates = match enumerate_plans(setting, &options, &setting.budget) {
        Ok(c) => c,
        Err(QueryError::BudgetExceeded(what)) => {
            return Ok(DecisionOutcome::Unknown(format!(
                "budget exceeded while {what}"
            )))
        }
        Err(e) => return Err(e.into()),
    };

    // Step (1)–(3) of AlgMP: keep the conforming plans ξ with ξ ⊑_A Q.
    // The checker is shared across all phases of the algorithm.
    let checker = ContainmentChecker::with_planner(&setting.schema, setting.planner);
    let mut sound: Vec<(QueryPlan, UnionQuery)> = Vec::new();
    for plan in candidates {
        if plan.arity() != cq.arity() {
            continue;
        }
        let Some(plan_ucq) = plan_as_unfolded_ucq(&plan, setting)? else {
            continue;
        };
        if !ucq_a_contained_in_with(
            &checker,
            &plan_ucq,
            &query_ucq,
            &setting.access,
            &setting.budget,
        )? {
            continue;
        }
        let conf = check_conformance(
            &plan,
            &setting.access,
            &setting.schema,
            &setting.views,
            &setting.budget,
        )?;
        if matches!(conf, Conformance::Conforms { .. }) {
            sound.push((plan, plan_ucq));
        }
    }
    if sound.is_empty() {
        return Ok(DecisionOutcome::NoRewriting);
    }

    // Step (4): keep the ⊑_A-maximal plans.
    let mut maximal: Vec<usize> = Vec::new();
    'outer: for i in 0..sound.len() {
        for j in 0..sound.len() {
            if i == j {
                continue;
            }
            let i_in_j = ucq_a_contained_in_with(
                &checker,
                &sound[i].1,
                &sound[j].1,
                &setting.access,
                &setting.budget,
            )?;
            let j_in_i = ucq_a_contained_in_with(
                &checker,
                &sound[j].1,
                &sound[i].1,
                &setting.access,
                &setting.budget,
            )?;
            if i_in_j && !j_in_i {
                continue 'outer; // strictly below plan j: not maximal
            }
        }
        maximal.push(i);
    }

    // Step (5): all maximal plans must be A-equivalent; then test Q ⊑_A ξ.
    let first = maximal[0];
    for &other in &maximal[1..] {
        if !ucq_a_equivalent_with(
            &checker,
            &sound[first].1,
            &sound[other].1,
            &setting.access,
            &setting.budget,
        )? {
            return Ok(DecisionOutcome::NoRewriting);
        }
    }
    let complete = ucq_a_contained_in_with(
        &checker,
        &query_ucq,
        &sound[first].1,
        &setting.access,
        &setting.budget,
    )?;
    if complete {
        Ok(DecisionOutcome::Rewriting(sound[first].0.clone()))
    } else {
        Ok(DecisionOutcome::NoRewriting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::RewritingSetting;
    use bqr_data::{AccessConstraint, AccessSchema, DatabaseSchema};
    use bqr_query::parser::parse_cq;
    use bqr_query::ViewSet;

    fn rating_schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])]).unwrap()
    }

    fn rating_access() -> AccessSchema {
        AccessSchema::new(vec![AccessConstraint::new(
            "rating",
            &["mid"],
            &["rank"],
            1,
        )
        .unwrap()])
    }

    /// Q(r) :- rating(42, r) has a 3-node rewriting: fetch rank for mid 42.
    #[test]
    fn point_lookup_has_small_rewriting() {
        let setting = RewritingSetting::new(rating_schema(), rating_access(), ViewSet::empty(), 3);
        let q = parse_cq("Q(r) :- rating(42, r)").unwrap();
        let outcome = decide_vbrp(&VbrpInstance::new(setting, q), PlanLanguage::Cq).unwrap();
        let plan = outcome.plan().expect("a rewriting exists");
        assert!(plan.size() <= 3);
        assert_eq!(plan.fetches().len(), 1);
    }

    /// The witness of the exact search executes through the prepared path:
    /// warm executions hit the pipeline cache, and a mutated instance
    /// (fresh epochs) transparently recompiles to the fresh answer.
    #[test]
    fn decided_rewriting_serves_through_the_prepared_path() {
        use bqr_data::{tuple, Database, IndexedDatabase};
        let setting = RewritingSetting::new(rating_schema(), rating_access(), ViewSet::empty(), 3);
        let q = parse_cq("Q(r) :- rating(42, r)").unwrap();
        let outcome = decide_vbrp(&VbrpInstance::new(setting, q), PlanLanguage::Cq).unwrap();
        let cache = std::sync::Arc::new(bqr_plan::PipelineCache::new(4));
        let prepared = outcome
            .prepare_with(std::sync::Arc::clone(&cache))
            .unwrap()
            .expect("a rewriting exists");
        assert!(
            outcome.prepare().unwrap().is_some(),
            "global-cache handle too"
        );

        let mut db = Database::empty(rating_schema());
        db.insert("rating", tuple![42, 5]).unwrap();
        let idb = IndexedDatabase::build(db.clone(), rating_access()).unwrap();
        let views = bqr_query::MaterializedViews::empty();
        for _ in 0..2 {
            let out = prepared.execute(&idb, &views).unwrap();
            assert_eq!(out.tuples, vec![tuple![5]]);
        }
        assert_eq!(cache.stats().hits, 1, "the repeat execution was warm");

        db.insert("rating", tuple![43, 4]).unwrap();
        let idb2 = IndexedDatabase::build(db, rating_access()).unwrap();
        let out = prepared.execute(&idb2, &views).unwrap();
        assert_eq!(out.tuples, vec![tuple![5]], "the answer is epoch-correct");
        assert_eq!(cache.stats().misses, 2, "fresh epochs recompiled");
        assert!(DecisionOutcome::NoRewriting.prepare().unwrap().is_none());
        assert!(matches!(
            DecisionOutcome::Unknown("budget".into()).prepare(),
            Err(crate::CoreError::Undecided(_))
        ));
    }

    /// The same query has no 2-node rewriting (const + fetch gives (mid, rank),
    /// arity 2 ≠ 1, and nothing smaller works).
    #[test]
    fn bound_m_too_small_yields_no_rewriting() {
        let setting = RewritingSetting::new(rating_schema(), rating_access(), ViewSet::empty(), 2);
        let q = parse_cq("Q(r) :- rating(42, r)").unwrap();
        let outcome = decide_vbrp(&VbrpInstance::new(setting, q), PlanLanguage::Cq).unwrap();
        assert!(matches!(outcome, DecisionOutcome::NoRewriting));
        assert!(!outcome.has_rewriting());
        assert!(outcome.plan().is_none());
    }

    /// Q(m) :- rating(m, 5): the head variable is not covered by any
    /// constraint, so no bounded rewriting exists without a view; adding the
    /// view V(m) :- rating(m, 5) makes the 1-node plan `view V` a rewriting.
    #[test]
    fn views_enable_rewritings() {
        let q = parse_cq("Q(m) :- rating(m, 5)").unwrap();

        let without = RewritingSetting::new(rating_schema(), rating_access(), ViewSet::empty(), 3);
        let outcome =
            decide_vbrp(&VbrpInstance::new(without, q.clone()), PlanLanguage::Cq).unwrap();
        assert!(matches!(outcome, DecisionOutcome::NoRewriting));

        let mut views = ViewSet::empty();
        views
            .add_cq("V", parse_cq("V(m) :- rating(m, 5)").unwrap())
            .unwrap();
        let with = RewritingSetting::new(rating_schema(), rating_access(), views, 3);
        let outcome = decide_vbrp(&VbrpInstance::new(with, q), PlanLanguage::Cq).unwrap();
        let plan = outcome.plan().expect("the view itself is the rewriting");
        assert_eq!(plan.size(), 1);
        assert_eq!(plan.view_names(), vec!["V".to_string()]);
    }

    /// An FO query is rejected with Unknown (the problem is undecidable).
    #[test]
    fn fo_queries_are_not_decided_exactly() {
        use bqr_query::{Atom, Fo, FoQuery, Term};
        let setting = RewritingSetting::new(rating_schema(), rating_access(), ViewSet::empty(), 2);
        let q = FoQuery::boolean(Fo::not(Fo::Atom(Atom::new(
            "rating",
            vec![Term::var("m"), Term::var("r")],
        ))));
        let outcome = decide_vbrp(&VbrpInstance::new(setting, q), PlanLanguage::Fo).unwrap();
        assert!(matches!(outcome, DecisionOutcome::Unknown(_)));
    }

    /// An unsatisfiable query is rewritten by the 2-node empty plan.
    #[test]
    fn unsatisfiable_query_gets_empty_plan() {
        let schema = rating_schema();
        let access = rating_access();
        let q = parse_cq("Q() :- rating(m, 1), rating(m, 2)").unwrap();
        // Under rating(mid → rank, 1) the query is unsatisfiable.
        let setting = RewritingSetting::new(schema.clone(), access.clone(), ViewSet::empty(), 3);
        let query_ucq = Query::from(q.clone())
            .to_ucq(&setting.budget)
            .unwrap()
            .unwrap();
        // Sanity: it is indeed unsatisfiable under A (no element queries).
        assert!(bqr_query::element::element_queries(
            &query_ucq.disjuncts()[0],
            &access,
            &schema,
            &setting.budget
        )
        .unwrap()
        .is_empty());
        let outcome = decide_vbrp(&VbrpInstance::new(setting, q.clone()), PlanLanguage::Cq);
        // The UCQ conversion keeps the (classically satisfiable) query, so the
        // exact search applies; either way the answer must not be Unknown.
        assert!(!matches!(outcome.unwrap(), DecisionOutcome::Unknown(_)));
        let small = RewritingSetting::new(schema, access, ViewSet::empty(), 0);
        let outcome = decide_vbrp(&VbrpInstance::new(small, q), PlanLanguage::Cq).unwrap();
        assert!(!outcome.has_rewriting());
    }

    /// AlgACQ agrees with the direct search on the point-lookup example.
    #[test]
    fn maximum_plan_algorithm_agrees() {
        let setting = RewritingSetting::new(rating_schema(), rating_access(), ViewSet::empty(), 3);
        let q = parse_cq("Q(r) :- rating(42, r)").unwrap();
        let inst = VbrpInstance::new(setting, q);
        let direct = decide_vbrp(&inst, PlanLanguage::Cq).unwrap();
        let via_max = decide_acq_by_maximum_plan(&inst, PlanLanguage::Cq).unwrap();
        assert_eq!(direct.has_rewriting(), via_max.has_rewriting());
        assert!(via_max.has_rewriting());

        let setting2 = RewritingSetting::new(rating_schema(), rating_access(), ViewSet::empty(), 3);
        let q2 = parse_cq("Q(m) :- rating(m, 5)").unwrap();
        let inst2 = VbrpInstance::new(setting2, q2);
        assert!(!decide_acq_by_maximum_plan(&inst2, PlanLanguage::Cq)
            .unwrap()
            .has_rewriting());

        // Non-CQ input is rejected by AlgACQ.
        let setting3 = RewritingSetting::new(rating_schema(), rating_access(), ViewSet::empty(), 2);
        let ucq = bqr_query::UnionQuery::new(vec![
            parse_cq("Q(r) :- rating(1, r)").unwrap(),
            parse_cq("Q(r) :- rating(2, r)").unwrap(),
        ])
        .unwrap();
        let inst3 = VbrpInstance::new(setting3, ucq);
        assert!(matches!(
            decide_acq_by_maximum_plan(&inst3, PlanLanguage::Ucq).unwrap(),
            DecisionOutcome::Unknown(_)
        ));
    }
}
