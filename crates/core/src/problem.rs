//! The bounded rewriting problem `VBRP(L)` (Section 3).
//!
//! An instance is a database schema `R`, a bound `M`, an access schema `A`, a
//! query `Q ∈ L` and a set `V` of `L`-definable views.  The question is
//! whether `Q` has an `M`-bounded rewriting in `L` using `V` under `A`, i.e.
//! an `M`-bounded query plan `ξ(Q, V, R)`.

use bqr_data::{AccessSchema, DatabaseSchema};
use bqr_query::{
    Budget, ConjunctiveQuery, FoQuery, PlannerConfig, QueryLanguage, UnionQuery, ViewSet,
};
use std::fmt;

/// A query in one of the paper's languages.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A conjunctive query.
    Cq(ConjunctiveQuery),
    /// A union of conjunctive queries.
    Ucq(UnionQuery),
    /// A first-order query.
    Fo(FoQuery),
}

impl Query {
    /// The language the query is (syntactically) in.
    pub fn language(&self) -> QueryLanguage {
        match self {
            Query::Cq(_) => QueryLanguage::Cq,
            Query::Ucq(_) => QueryLanguage::Ucq,
            Query::Fo(q) => q.language(),
        }
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        match self {
            Query::Cq(q) => q.arity(),
            Query::Ucq(q) => q.arity(),
            Query::Fo(q) => q.arity(),
        }
    }

    /// The query as an FO query (CQ and UCQ embed into FO).
    pub fn to_fo(&self) -> bqr_query::Result<FoQuery> {
        match self {
            Query::Cq(q) => Ok(FoQuery::from_cq(q)),
            Query::Ucq(q) => FoQuery::from_ucq(q),
            Query::Fo(q) => Ok(q.clone()),
        }
    }

    /// The query as a UCQ, if it is (syntactically) in `∃FO+`.
    pub fn to_ucq(&self, budget: &Budget) -> bqr_query::Result<Option<UnionQuery>> {
        match self {
            Query::Cq(q) => Ok(Some(UnionQuery::single(q.clone()))),
            Query::Ucq(q) => Ok(Some(q.clone())),
            Query::Fo(q) => q.to_ucq(budget),
        }
    }

    /// Constants mentioned by the query (bounded rewritings may only use
    /// these).
    pub fn constants(&self) -> std::collections::BTreeSet<bqr_data::Value> {
        match self {
            Query::Cq(q) => q.constants(),
            Query::Ucq(q) => q.constants(),
            Query::Fo(q) => {
                let mut c = q.body().constants();
                for t in q.head() {
                    if let bqr_query::Term::Const(v) = t {
                        c.insert(v.clone());
                    }
                }
                c
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Cq(q) => write!(f, "{q}"),
            Query::Ucq(q) => write!(f, "{q}"),
            Query::Fo(q) => write!(f, "{q}"),
        }
    }
}

impl From<ConjunctiveQuery> for Query {
    fn from(q: ConjunctiveQuery) -> Self {
        Query::Cq(q)
    }
}
impl From<UnionQuery> for Query {
    fn from(q: UnionQuery) -> Self {
        Query::Ucq(q)
    }
}
impl From<FoQuery> for Query {
    fn from(q: FoQuery) -> Self {
        Query::Fo(q)
    }
}

/// The fixed part of a rewriting problem: everything except the query.
///
/// In practice (Section 4.2) `R`, `A`, `M` and `V` are determined up front —
/// the schema by the application, `M` by available resources, `A` by
/// constraint discovery, `V` by view selection — while queries vary.  The
/// setting is therefore a natural unit to share between many queries.
#[derive(Debug, Clone)]
pub struct RewritingSetting {
    /// The database schema `R`.
    pub schema: DatabaseSchema,
    /// The access schema `A`.
    pub access: AccessSchema,
    /// The views `V`.
    pub views: ViewSet,
    /// The plan-size bound `M`.
    pub bound_m: usize,
    /// Budgets for the worst-case-exponential analyses.
    pub budget: Budget,
    /// Join-planner configuration for every homomorphism search the
    /// decision procedures run (containment, `A`-equivalence, evaluation).
    pub planner: PlannerConfig,
}

impl RewritingSetting {
    /// Create a setting.
    pub fn new(
        schema: DatabaseSchema,
        access: AccessSchema,
        views: ViewSet,
        bound_m: usize,
    ) -> Self {
        RewritingSetting {
            schema,
            access,
            views,
            bound_m,
            budget: Budget::generous(),
            planner: PlannerConfig::default(),
        }
    }

    /// Replace the analysis budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Replace the join-planner configuration.
    pub fn with_planner(mut self, planner: PlannerConfig) -> Self {
        self.planner = planner;
        self
    }

    /// Validate that access schema and views are well formed over the schema.
    pub fn validate(&self) -> crate::Result<()> {
        self.access
            .validate(&self.schema)
            .map_err(bqr_query::QueryError::from)?;
        self.views.validate(&self.schema)?;
        Ok(())
    }
}

/// A full `VBRP` instance: a setting plus a query.
#[derive(Debug, Clone)]
pub struct VbrpInstance {
    /// The fixed parameters.
    pub setting: RewritingSetting,
    /// The query `Q`.
    pub query: Query,
}

impl VbrpInstance {
    /// Create an instance.
    pub fn new(setting: RewritingSetting, query: impl Into<Query>) -> Self {
        VbrpInstance {
            setting,
            query: query.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqr_query::parser::parse_cq;
    use bqr_query::Term;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[("r", &["a", "b"]), ("s", &["a", "b"])]).unwrap()
    }

    #[test]
    fn query_language_and_conversions() {
        let cq = parse_cq("Q(x) :- r(x, y)").unwrap();
        let q = Query::from(cq.clone());
        assert_eq!(q.language(), QueryLanguage::Cq);
        assert_eq!(q.arity(), 1);
        assert!(q.to_fo().is_ok());
        assert_eq!(q.to_ucq(&Budget::generous()).unwrap().unwrap().len(), 1);
        assert!(q.to_string().contains("r(x, y)"));

        let ucq = bqr_query::UnionQuery::new(vec![
            parse_cq("Q(x) :- r(x, y)").unwrap(),
            parse_cq("Q(x) :- s(x, y)").unwrap(),
        ])
        .unwrap();
        let q = Query::from(ucq);
        assert_eq!(q.language(), QueryLanguage::Ucq);
        assert_eq!(q.to_ucq(&Budget::generous()).unwrap().unwrap().len(), 2);

        let fo = bqr_query::FoQuery::new(
            vec![Term::var("x")],
            bqr_query::Fo::not(bqr_query::Fo::Atom(bqr_query::Atom::new(
                "r",
                vec![Term::var("x"), Term::var("y")],
            ))),
        )
        .unwrap();
        let q = Query::from(fo);
        assert_eq!(q.language(), QueryLanguage::Fo);
        assert!(q.to_ucq(&Budget::generous()).is_err());
    }

    #[test]
    fn query_constants_collected() {
        let q = Query::from(parse_cq("Q(x) :- r(x, 5), s(x, 'a')").unwrap());
        let consts = q.constants();
        assert!(consts.contains(&bqr_data::Value::int(5)));
        assert!(consts.contains(&bqr_data::Value::str("a")));
    }

    #[test]
    fn setting_validation() {
        let setting = RewritingSetting::new(
            schema(),
            AccessSchema::new(vec![
                bqr_data::AccessConstraint::fd("r", &["a"], &["b"]).unwrap()
            ]),
            ViewSet::empty(),
            5,
        );
        assert!(setting.validate().is_ok());
        let bad = RewritingSetting::new(
            schema(),
            AccessSchema::new(vec![bqr_data::AccessConstraint::fd(
                "missing",
                &["a"],
                &["b"],
            )
            .unwrap()]),
            ViewSet::empty(),
            5,
        );
        assert!(bad.validate().is_err());
        let tiny = RewritingSetting::new(schema(), AccessSchema::empty(), ViewSet::empty(), 3)
            .with_budget(Budget::tiny());
        assert_eq!(tiny.budget, Budget::tiny());
        let inst = VbrpInstance::new(tiny, parse_cq("Q(x) :- r(x, y)").unwrap());
        assert_eq!(inst.query.arity(), 1);
    }
}
