//! # bqr-core — bounded query rewriting using views
//!
//! This crate is the reproduction of the primary contribution of *Bounded
//! Query Rewriting Using Views* (Cao, Fan, Geerts, Lu; PODS'16 / TODS'18):
//! deciding and constructing `M`-bounded rewritings of queries using a set of
//! views under an access schema.
//!
//! * [`problem`] — the `VBRP` problem statement (`R, M, A, Q, V`) and answers;
//! * [`enumerate`] — candidate-plan enumeration up to size `M` (the search
//!   space of the exact procedures; worst-case exponential, budgeted);
//! * [`decide`] — the exact decision procedure for `VBRP(L)` and the
//!   maximum-plan algorithms `AlgMP` / `AlgACQ` of Theorem 4.2;
//! * [`fd`] — the PTIME special case when `A` consists of functional
//!   dependencies only (Corollary 4.4 / Proposition 4.5);
//! * [`topped`] — the **effective syntax**: topped queries and the PTIME
//!   bounded-plan generator (Theorem 5.1), in its constructive form;
//! * [`size_bounded`] — size-bounded FO queries, the effective syntax for
//!   bounded output (Theorem 5.2), and the bounded-output oracle;
//! * [`bounded_eval`] — bounded evaluability (the `V = ∅` baseline of
//!   [Fan et al. 2015], used by the experiments for comparison);
//! * [`cross`] — `L1`-to-`L2` bounded rewriting, `VBRP+` (Section 6).

pub mod bounded_eval;
pub mod cross;
pub mod decide;
pub mod enumerate;
pub mod error;
pub mod fd;
pub mod problem;
pub mod size_bounded;
pub mod topped;

pub use decide::{decide_vbrp, DecisionOutcome};
pub use error::CoreError;
pub use problem::{Query, RewritingSetting, VbrpInstance};
pub use size_bounded::BoundedOutputOracle;
pub use topped::{ToppedAnalysis, ToppedChecker};

/// Convenience result alias.  [`CoreError`] wraps the plan-layer error
/// (which itself wraps the query- and data-layer errors) and adds the
/// decision-layer outcome "could not decide".
pub type Result<T> = std::result::Result<T, CoreError>;
