//! The effective syntax for bounded rewriting: topped queries and the
//! bounded-plan generator (Section 5 / Theorem 5.1).
//!
//! The paper defines the class of queries *topped by `(R, V, A, M)`* through
//! two PTIME functions `covq(Q_s, Q)` and `size(Q_s, Q)`: `covq` says whether
//! the sub-query `Q` acquires a bounded sub-plan once values can be
//! propagated into it from the context `Q_s`, and `size` tracks an upper
//! bound on that sub-plan's size.  A query is topped when `covq(Q_ε, Q)`
//! holds and `size(Q_ε, Q) ≤ M`, and every topped query has an `M`-bounded
//! rewriting that can be *constructed* in PTIME.
//!
//! This module implements the **constructive form** of that definition: the
//! checker walks the query exactly along the paper's cases (1)–(7) and,
//! instead of merely returning `true`, materialises the sub-plan each case
//! describes.  `covq(Q_s, Q)` corresponds to [`ToppedChecker::build`]
//! succeeding with context `Q_s`, and `size(Q_s, Q)` to the size of the plan
//! it returns.  The correspondence with the paper's cases is noted inline.
//!
//! The checker is *sound* (every accepted query gets a correct, conforming,
//! `M`-bounded plan) and PTIME; like every effective syntax it is
//! necessarily incomplete for FO (Corollary 3.9), which is exactly the
//! trade-off the paper advocates.
//!
//! The checker itself never runs a homomorphism search (it is purely
//! syntactic), but the plans it emits are verified against evaluation by the
//! test suite, and the exact procedures it is compared with run containment
//! through the join planner configured on [`RewritingSetting::planner`].

use crate::problem::RewritingSetting;
use crate::size_bounded::BoundedOutputOracle;
use crate::Result;
use bqr_data::Value;
use bqr_plan::builder::Plan;
use bqr_plan::{QueryPlan, SelectCondition};
use bqr_query::{Atom, ConjunctiveQuery, Fo, FoQuery, Term, ViewSet};
use std::collections::{BTreeMap, BTreeSet};

/// The result of analysing one query.
#[derive(Debug, Clone)]
pub struct ToppedAnalysis {
    /// Is the query topped by `(R, V, A, M)` — i.e. did the constructive
    /// checker produce a plan of size at most `M`?
    pub topped: bool,
    /// The constructed bounded plan, when the checker succeeded (present
    /// even when its size exceeds `M`, so callers can inspect how far off
    /// they are).
    pub plan: Option<QueryPlan>,
    /// The size of the constructed plan (the paper's `size(Q_ε, Q)`).
    pub plan_size: Option<usize>,
    /// An upper bound on the base tuples fetched by the plan (`|D_ξ|`).
    pub fetch_bound: Option<usize>,
    /// Why the query was rejected, when it was.
    pub reason: Option<String>,
}

impl ToppedAnalysis {
    fn rejected(reason: String) -> Self {
        ToppedAnalysis {
            topped: false,
            plan: None,
            plan_size: None,
            fetch_bound: None,
            reason: Some(reason),
        }
    }

    /// Compile the constructed plan (when one exists) into `bqr-plan`'s
    /// executor pipeline, ready for repeated — optionally sharded-parallel —
    /// execution against `idb` and `views`.  This is the serving path: the
    /// checker constructs the plan once, and the pipeline is obtained through
    /// the process-wide [`bqr_plan::PipelineCache`] — compiled at most once
    /// per `(plan, epoch)` pair, shared with every other prepared consumer of
    /// the same plan, and every query execution runs over interned ids.
    ///
    /// The returned pipeline is also *retained* in that cache (bounded by its
    /// LRU capacity), which is what a serving process wants; a one-shot
    /// analysis pass that must not retain anything can call
    /// [`bqr_plan::Pipeline::compile`] on [`ToppedAnalysis::plan`] directly.
    ///
    /// `Ok(None)` when the checker constructed no plan (the query was
    /// rejected — see [`ToppedAnalysis::reason`]); a compile failure is a
    /// genuine `Err`, never folded into `None`.
    pub fn compile_plan(
        &self,
        idb: &bqr_data::IndexedDatabase,
        views: &bqr_query::MaterializedViews,
    ) -> crate::Result<Option<std::sync::Arc<bqr_plan::Pipeline>>> {
        match self.prepare_plan()? {
            Some(p) => Ok(Some(p.pipeline(
                idb,
                views,
                &bqr_plan::ExecOptions::serial(),
            )?)),
            None => Ok(None),
        }
    }

    /// The constructed plan (when one exists) as a [`bqr_plan::PreparedPlan`]
    /// handle on the process-wide pipeline cache: fingerprinted once here,
    /// compiled lazily on first execution, re-validated by relation/view
    /// epoch on every subsequent one.  The handle for repeated serving.
    ///
    /// `Ok(None)` when the checker constructed no plan; errors from the
    /// serving layer propagate instead of degrading into `None` (the
    /// historical footgun — callers could not tell "not topped" from "the
    /// serving layer failed").
    pub fn prepare_plan(&self) -> crate::Result<Option<bqr_plan::PreparedPlan>> {
        self.prepare_plan_with(std::sync::Arc::clone(bqr_plan::PipelineCache::global()))
    }

    /// [`prepare_plan`](ToppedAnalysis::prepare_plan) against a caller-owned
    /// cache (isolated counters / capacity).
    pub fn prepare_plan_with(
        &self,
        cache: std::sync::Arc<bqr_plan::PipelineCache>,
    ) -> crate::Result<Option<bqr_plan::PreparedPlan>> {
        Ok(self
            .plan
            .clone()
            .map(|plan| bqr_plan::PreparedPlan::with_cache(plan, cache)))
    }
}

/// A partial plan labelled with the variables its columns hold, the key
/// device that lets the checker propagate values between sub-queries
/// (the `Q_s` of the paper).
#[derive(Debug, Clone)]
struct Fragment {
    plan: Plan,
    /// Variable name carried by each output column.
    columns: Vec<String>,
    /// Upper bound on the fragment's output size over instances `D |= A`,
    /// when one exists.  Fetches may only be driven by bounded fragments
    /// (cases (4a) and (7b) of the paper).
    output_bound: Option<usize>,
    /// Upper bound on the base tuples fetched so far.
    fetch_bound: usize,
}

impl Fragment {
    /// The empty context `Q_ε`: a single 0-ary tuple, zero cost.
    fn unit() -> Fragment {
        Fragment {
            plan: Plan::constant(Vec::<Value>::new()),
            columns: Vec::new(),
            output_bound: Some(1),
            fetch_bound: 0,
        }
    }

    fn column_of(&self, var: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == var)
    }
}

/// The topped-query checker / bounded-plan generator for one setting.
pub struct ToppedChecker<'a> {
    setting: &'a RewritingSetting,
    oracle: BoundedOutputOracle,
}

impl<'a> ToppedChecker<'a> {
    /// Create a checker; the oracle is derived from the setting.
    pub fn new(setting: &'a RewritingSetting) -> Self {
        let oracle = BoundedOutputOracle::new(
            setting.schema.clone(),
            setting.access.clone(),
            setting.budget,
        );
        ToppedChecker { setting, oracle }
    }

    /// Create a checker with a custom oracle (e.g. carrying view-bound
    /// annotations).
    pub fn with_oracle(setting: &'a RewritingSetting, oracle: BoundedOutputOracle) -> Self {
        ToppedChecker { setting, oracle }
    }

    /// The views of the setting.
    fn views(&self) -> &ViewSet {
        &self.setting.views
    }

    /// Analyse a conjunctive query.
    pub fn analyze_cq(&self, query: &ConjunctiveQuery) -> Result<ToppedAnalysis> {
        self.analyze(&FoQuery::from_cq(query))
    }

    /// Analyse an FO query: is it topped by `(R, V, A, M)`, and if so, what
    /// is its bounded plan?
    pub fn analyze(&self, query: &FoQuery) -> Result<ToppedAnalysis> {
        // Rename bound variables apart so that value propagation never
        // captures.
        let body = query.body().rename_bound();
        let head = query.head().to_vec();
        let live = live_variables(&body, &head);

        match self.build(&Fragment::unit(), &body, &live) {
            Ok(fragment) => {
                let fragment = match self.finish_head(fragment, &head) {
                    Ok(f) => f,
                    Err(reason) => return Ok(ToppedAnalysis::rejected(reason)),
                };
                let plan = fragment.plan.build()?;
                let size = plan.size();
                Ok(ToppedAnalysis {
                    topped: size <= self.setting.bound_m,
                    plan_size: Some(size),
                    fetch_bound: Some(fragment.fetch_bound),
                    reason: if size <= self.setting.bound_m {
                        None
                    } else {
                        Some(format!(
                            "the generated plan has {size} nodes, exceeding the bound M = {}",
                            self.setting.bound_m
                        ))
                    },
                    plan: Some(plan),
                })
            }
            Err(reason) => Ok(ToppedAnalysis::rejected(reason)),
        }
    }

    /// Project the final fragment onto the query head.
    fn finish_head(
        &self,
        fragment: Fragment,
        head: &[Term],
    ) -> std::result::Result<Fragment, String> {
        let mut fragment = fragment;
        let mut columns = Vec::with_capacity(head.len());
        for t in head {
            match t {
                Term::Var(v) => match fragment.column_of(v) {
                    Some(c) => columns.push(c),
                    None => return Err(format!("head variable `{v}` is not produced by the plan")),
                },
                Term::Const(c) => {
                    // Extend with a constant column.
                    let arity = fragment.columns.len();
                    fragment.plan = fragment.plan.product(Plan::constant(vec![c.clone()]));
                    fragment.columns.push(format!("\u{1}const{arity}"));
                    columns.push(arity);
                }
            }
        }
        fragment.plan = fragment.plan.project(columns);
        fragment.columns = head
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                Term::Var(v) => v.clone(),
                Term::Const(_) => format!("\u{1}h{i}"),
            })
            .collect();
        Ok(fragment)
    }

    /// `covq(Q_s, Q)` / plan construction for `Q_s ∧ Q`.
    ///
    /// Returns a fragment over the columns of `qs` plus the free variables of
    /// `q`, or a rejection reason.
    fn build(
        &self,
        qs: &Fragment,
        q: &Fo,
        live: &BTreeSet<String>,
    ) -> std::result::Result<Fragment, String> {
        match q {
            // Case (1)/(3): (in)equality conditions.
            Fo::Eq(t1, t2) => self.build_equality(qs, t1, t2, true),
            Fo::Not(inner) => match inner.as_ref() {
                Fo::Eq(t1, t2) => self.build_equality(qs, t1, t2, false),
                // Case (6): Q1 ∧ ¬Q2 — handled by conjunct scheduling; a bare
                // negation is only admissible when its free variables are
                // already produced by the context.
                other => self.build_negation(qs, other, live),
            },
            // Case (2) and (4a)/(7a)/(7b): atoms over views or base relations.
            Fo::Atom(atom) => {
                if self.views().contains(atom.relation()) {
                    self.build_view_atom(qs, atom)
                } else {
                    self.build_base_atom(qs, atom, live)
                }
            }
            // Case (4): conjunction with value propagation.
            Fo::And(_, _) => {
                let mut conjuncts = Vec::new();
                flatten_and(q, &mut conjuncts);
                self.build_conjunction(qs, &conjuncts, live)
            }
            // Case (5): disjunction, both sides over the same free variables.
            Fo::Or(a, b) => self.build_disjunction(qs, a, b, live),
            // Case (7): existential quantification — build then drop columns.
            Fo::Exists(vars, inner) => {
                let fragment = self.build(qs, inner, live)?;
                Ok(self.drop_columns(fragment, vars))
            }
            Fo::Forall(_, _) => Err(
                "universal quantification is outside the topped fragment; rewrite it as ¬∃¬"
                    .to_string(),
            ),
        }
    }

    /// Conditions `x = y`, `x = c`, `x ≠ y`, `x ≠ c` (cases (1) and (3)).
    fn build_equality(
        &self,
        qs: &Fragment,
        t1: &Term,
        t2: &Term,
        positive: bool,
    ) -> std::result::Result<Fragment, String> {
        let mut fragment = qs.clone();
        match (t1, t2) {
            (Term::Const(a), Term::Const(b)) => {
                let holds = (a == b) == positive;
                if holds {
                    Ok(fragment)
                } else {
                    // The condition is unsatisfiable: an empty selection.
                    fragment.plan = fragment.plan.select(vec![SelectCondition::ColNeCol(0, 0)]);
                    if fragment.columns.is_empty() {
                        return Err(
                            "a contradictory constant condition on a Boolean context".into()
                        );
                    }
                    fragment.output_bound = Some(0);
                    Ok(fragment)
                }
            }
            (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                match fragment.column_of(v) {
                    Some(col) => {
                        let cond = if positive {
                            SelectCondition::ColEqConst(col, c.clone())
                        } else {
                            SelectCondition::ColNeConst(col, c.clone())
                        };
                        fragment.plan = fragment.plan.select(vec![cond]);
                        Ok(fragment)
                    }
                    None if positive => {
                        // Introduce the variable as a constant column
                        // (case (1): `z = c` has a 1-bounded plan).
                        fragment.plan = fragment.plan.product(Plan::constant(vec![c.clone()]));
                        fragment.columns.push(v.clone());
                        Ok(fragment)
                    }
                    None => Err(format!(
                        "inequality on `{v}` before any value is bound to it"
                    )),
                }
            }
            (Term::Var(a), Term::Var(b)) => {
                match (fragment.column_of(a), fragment.column_of(b)) {
                    (Some(ca), Some(cb)) => {
                        let cond = if positive {
                            SelectCondition::ColEqCol(ca, cb)
                        } else {
                            SelectCondition::ColNeCol(ca, cb)
                        };
                        fragment.plan = fragment.plan.select(vec![cond]);
                        Ok(fragment)
                    }
                    (Some(c), None) if positive => {
                        // Duplicate the column under the new name.
                        let mut cols: Vec<usize> = (0..fragment.columns.len()).collect();
                        cols.push(c);
                        fragment.plan = fragment.plan.project(cols);
                        fragment.columns.push(b.clone());
                        Ok(fragment)
                    }
                    (None, Some(c)) if positive => {
                        let mut cols: Vec<usize> = (0..fragment.columns.len()).collect();
                        cols.push(c);
                        fragment.plan = fragment.plan.project(cols);
                        fragment.columns.push(a.clone());
                        Ok(fragment)
                    }
                    _ => Err(format!(
                        "condition between `{a}` and `{b}` before either is bound"
                    )),
                }
            }
        }
    }

    /// Case (2): a view atom — join the cached extent with the context.
    fn build_view_atom(&self, qs: &Fragment, atom: &Atom) -> std::result::Result<Fragment, String> {
        let arity = self
            .views()
            .get(atom.relation())
            .map(|d| d.arity())
            .ok_or_else(|| format!("unknown view `{}`", atom.relation()))?;
        if arity != atom.arity() {
            return Err(format!(
                "view `{}` has arity {arity} but the atom has {} arguments",
                atom.relation(),
                atom.arity()
            ));
        }
        let mut view_plan = Plan::view(atom.relation(), arity);
        // Apply constant and repeated-variable constraints on the view columns.
        let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
        let mut conditions = Vec::new();
        for (i, t) in atom.args().iter().enumerate() {
            match t {
                Term::Const(c) => conditions.push(SelectCondition::ColEqConst(i, c.clone())),
                Term::Var(v) => {
                    if let Some(&j) = seen.get(v.as_str()) {
                        conditions.push(SelectCondition::ColEqCol(j, i));
                    } else {
                        seen.insert(v, i);
                    }
                }
            }
        }
        if !conditions.is_empty() {
            view_plan = view_plan.select(conditions);
        }
        let view_bound = self
            .oracle
            .view_bound(atom.relation(), self.views())
            .or_else(|| self.specialized_view_bound(atom));

        // Join with the context on shared variables.
        let shared: Vec<(usize, usize)> = seen
            .iter()
            .filter_map(|(v, &vi)| qs.column_of(v).map(|qi| (qi, vi)))
            .collect();
        let mut fragment = qs.clone();
        let qs_arity = fragment.columns.len();
        fragment.plan = if shared.is_empty() {
            fragment.plan.product(view_plan)
        } else {
            fragment.plan.join_eq(view_plan, &shared)
        };
        // New columns: one per view position holding a variable not yet bound.
        let mut new_columns = Vec::new();
        for i in 0..arity {
            new_columns.push(format!("\u{1}view{i}"));
        }
        for (v, &vi) in &seen {
            if qs.column_of(v).is_none() {
                new_columns[vi] = (*v).to_string();
            } else {
                new_columns[vi] = format!("\u{1}dup_{v}");
            }
        }
        fragment.columns.extend(new_columns);
        // Keep only meaningful columns: the context columns plus first
        // occurrences of new variables.
        let keep: Vec<usize> = (0..fragment.columns.len())
            .filter(|&i| i < qs_arity || atom.args().get(i - qs_arity).is_some_and(|t| {
                matches!(t, Term::Var(v) if qs.column_of(v).is_none() && seen.get(v.as_str()) == Some(&(i - qs_arity)))
            }))
            .collect();
        if keep.len() != fragment.columns.len() {
            fragment.columns = keep.iter().map(|&i| fragment.columns[i].clone()).collect();
            fragment.plan = fragment.plan.project(keep);
        }
        // If the view introduces no new variables it merely filters the
        // context (a semijoin), so the context's bound is preserved; new
        // variables multiply in the view's own bound (when it has one).
        let introduces_new = seen.keys().any(|v| qs.column_of(v).is_none());
        fragment.output_bound = match (qs.output_bound, view_bound, introduces_new) {
            (Some(a), _, false) => Some(a),
            (Some(a), Some(b), true) => Some(a.saturating_mul(b)),
            _ => None,
        };
        Ok(fragment)
    }

    /// When a view atom carries constant arguments, the *specialised* view
    /// `σ_{X = c̄}(V)` may have bounded output even though `V` itself does not
    /// (the situation exploited throughout Section 3's constructions).  For a
    /// CQ-definable view the bound is computed by substituting the constants
    /// into the definition and running the BOP analysis.
    fn specialized_view_bound(&self, atom: &Atom) -> Option<usize> {
        let def = self.views().get(atom.relation())?.as_cq()?;
        let mut map = BTreeMap::new();
        let mut any_constant = false;
        for (i, arg) in atom.args().iter().enumerate() {
            if let Term::Const(c) = arg {
                any_constant = true;
                match def.head().get(i) {
                    Some(Term::Var(v)) => {
                        map.insert(v.clone(), Term::Const(c.clone()));
                    }
                    Some(Term::Const(d)) if d != c => return Some(0),
                    _ => {}
                }
            }
        }
        if !any_constant {
            return None;
        }
        let specialized = def.substitute(&map);
        match bqr_query::bounded_output::cq_output(
            &specialized,
            &self.setting.access,
            &self.setting.schema,
            &self.setting.budget,
        ) {
            Ok(bqr_query::bounded_output::OutputBound::Bounded(n)) => Some(n),
            _ => None,
        }
    }

    /// Cases (4a), (7a), (7b): a base-relation atom, answered by a `fetch`
    /// through some access constraint whose `X` attributes are all already
    /// bound (by constants or by the context), provided the context has
    /// bounded output.
    fn build_base_atom(
        &self,
        qs: &Fragment,
        atom: &Atom,
        live: &BTreeSet<String>,
    ) -> std::result::Result<Fragment, String> {
        let rel_schema = self
            .setting
            .schema
            .relation(atom.relation())
            .ok_or_else(|| format!("unknown relation `{}`", atom.relation()))?;
        if rel_schema.arity() != atom.arity() {
            return Err(format!(
                "atom over `{}` has {} arguments, expected {}",
                atom.relation(),
                atom.arity(),
                rel_schema.arity()
            ));
        }

        let mut last_reason = format!(
            "no access constraint of the access schema can drive a fetch for `{}`",
            atom.relation()
        );
        'constraints: for constraint in self.setting.access.constraints_on(atom.relation()) {
            let xy = constraint.xy();
            // Every argument position outside X ∪ Y must be a "don't care":
            // fetch cannot retrieve or constrain it.
            for (i, attr) in rel_schema.attributes().enumerate() {
                if !xy.iter().any(|a| a == attr) {
                    match &atom.args()[i] {
                        Term::Const(_) => {
                            last_reason = format!(
                                "constraint {constraint} does not cover the constant in position {i} of `{}`",
                                atom.relation()
                            );
                            continue 'constraints;
                        }
                        Term::Var(v) => {
                            // Sound only for a genuine existential don't-care:
                            // a variable that is not bound by the context, not
                            // needed by the head and not shared with any other
                            // literal (the `live` set).
                            if qs.column_of(v).is_some() || live.contains(v) {
                                last_reason = format!(
                                    "constraint {constraint} does not cover the live variable `{v}`"
                                );
                                continue 'constraints;
                            }
                        }
                    }
                }
            }

            // Every X attribute must be bound: by a constant in the atom or by
            // a context column; and the context must have bounded output
            // unless X is empty (case 7a).
            let x_positions: Vec<usize> = match rel_schema.positions(
                &constraint
                    .x()
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>(),
            ) {
                Ok(p) => p,
                Err(_) => continue 'constraints,
            };
            let mut key_source: Vec<KeySource> = Vec::with_capacity(x_positions.len());
            for &p in &x_positions {
                match &atom.args()[p] {
                    Term::Const(c) => key_source.push(KeySource::Constant(c.clone())),
                    Term::Var(v) => match qs.column_of(v) {
                        Some(col) => key_source.push(KeySource::ContextColumn(col)),
                        None => {
                            last_reason = format!(
                                "constraint {constraint} needs `{v}` as an input but no value is propagated to it"
                            );
                            continue 'constraints;
                        }
                    },
                }
            }
            let needs_context = key_source
                .iter()
                .any(|k| matches!(k, KeySource::ContextColumn(_)));
            let context_bound = qs.output_bound;
            if needs_context && context_bound.is_none() {
                last_reason =
                    format!("the context feeding fetch[{constraint}] does not have bounded output");
                continue 'constraints;
            }
            if !needs_context && constraint.x().is_empty() {
                // Case (7a): fetch the whole (bounded) relation fragment.
            }

            // Build the fetch input: the context columns plus one constant
            // column per constant key component, then project the key.
            let mut input = qs.plan.clone();
            let mut input_columns = qs.columns.clone();
            let mut key_columns = Vec::with_capacity(key_source.len());
            for k in &key_source {
                match k {
                    KeySource::ContextColumn(c) => key_columns.push(*c),
                    KeySource::Constant(c) => {
                        input = input.product(Plan::constant(vec![c.clone()]));
                        key_columns.push(input_columns.len());
                        input_columns.push("\u{1}key".to_string());
                    }
                }
            }
            let fetched = Plan::from_node(input.node().clone())
                .project(key_columns.clone())
                .fetch(constraint.clone(), (0..key_columns.len()).collect());

            // Name the fetched columns and apply in-atom constraints.
            let mut fetched_columns: Vec<String> = Vec::with_capacity(xy.len());
            let mut conditions = Vec::new();
            let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
            for (j, attr) in xy.iter().enumerate() {
                let pos = rel_schema
                    .position(attr)
                    .expect("attribute of the relation");
                match &atom.args()[pos] {
                    Term::Const(c) => {
                        conditions.push(SelectCondition::ColEqConst(j, c.clone()));
                        fetched_columns.push(format!("\u{1}c{j}"));
                    }
                    Term::Var(v) => {
                        if let Some(&prev) = seen.get(v.as_str()) {
                            conditions.push(SelectCondition::ColEqCol(prev, j));
                            fetched_columns.push(format!("\u{1}dup{j}"));
                        } else {
                            seen.insert(v, j);
                            fetched_columns.push(v.clone());
                        }
                    }
                }
            }
            let fetched = if conditions.is_empty() {
                fetched
            } else {
                fetched.select(conditions)
            };

            // If every context column was passed through the fetch key, the
            // fetch output already carries all live context values (they are
            // the X columns of the result): the fetch result simply *replaces*
            // the context, exactly as in the chain-shaped plan of Fig. 1.
            // Otherwise the fetch result is joined back with the context so
            // that the remaining context columns survive.
            let key_context_cols: BTreeSet<usize> = key_source
                .iter()
                .filter_map(|k| match k {
                    KeySource::ContextColumn(c) => Some(*c),
                    KeySource::Constant(_) => None,
                })
                .collect();
            let context_subsumed = (0..qs.columns.len()).all(|i| key_context_cols.contains(&i));
            let shared: Vec<(usize, usize)> = fetched_columns
                .iter()
                .enumerate()
                .filter_map(|(j, name)| qs.column_of(name).map(|qi| (qi, j)))
                .collect();
            let mut fragment = qs.clone();
            let qs_arity = fragment.columns.len();
            if qs_arity == 0 || context_subsumed {
                // The fetch result replaces the context.
                fragment.plan = fetched;
                fragment.columns = fetched_columns.clone();
            } else if shared.is_empty() {
                fragment.plan = fragment.plan.product(fetched);
                fragment.columns.extend(fetched_columns.clone());
            } else {
                fragment.plan = fragment.plan.join_eq(fetched, &shared);
                fragment.columns.extend(fetched_columns.clone());
            }
            // Project away helper columns (constants, duplicates, and fetched
            // copies of variables the context already holds).
            let keep: Vec<usize> = (0..fragment.columns.len())
                .filter(|&i| {
                    let name = &fragment.columns[i];
                    if name.starts_with('\u{1}') {
                        return false;
                    }
                    // first occurrence wins
                    fragment.columns.iter().position(|c| c == name) == Some(i)
                })
                .collect();
            if keep.len() != fragment.columns.len() {
                fragment.columns = keep.iter().map(|&i| fragment.columns[i].clone()).collect();
                fragment.plan = fragment.plan.project(keep);
            }

            // Number of index probes: one per distinct key; with an all-constant
            // key there is exactly one probe, otherwise at most the context's
            // output bound.
            let probes = if needs_context {
                context_bound.unwrap_or(1)
            } else {
                1
            };
            let fetched_tuples = probes.saturating_mul(constraint.n());
            fragment.fetch_bound = qs.fetch_bound.saturating_add(fetched_tuples);
            fragment.output_bound = qs.output_bound.map(|b| b.saturating_mul(constraint.n()));
            return Ok(fragment);
        }
        Err(last_reason)
    }

    /// Case (6): `Q_s ∧ ¬Q_2`, admissible when the free variables of `Q_2`
    /// are already produced by the context: the plan is `ξ_s \ ξ_{s∧2}`.
    fn build_negation(
        &self,
        qs: &Fragment,
        inner: &Fo,
        live: &BTreeSet<String>,
    ) -> std::result::Result<Fragment, String> {
        let free = inner.free_variables();
        for v in &free {
            if qs.column_of(v).is_none() {
                return Err(format!(
                    "negated sub-query uses `{v}` before any value is propagated to it"
                ));
            }
        }
        let with_inner = self.build(qs, inner, live)?;
        // Project the positive side onto the context columns.
        let cols: Vec<usize> = qs
            .columns
            .iter()
            .map(|c| with_inner.column_of(c).expect("context columns survive"))
            .collect();
        let projected = Plan::from_node(with_inner.plan.node().clone()).project(cols);
        let mut fragment = qs.clone();
        fragment.plan = fragment.plan.difference(projected);
        fragment.fetch_bound = with_inner.fetch_bound;
        Ok(fragment)
    }

    /// Case (4): conjunction.  Conjuncts are scheduled greedily: at every
    /// step, pick one that the current context can support (this realises the
    /// paper's extension of `Q_s` by already-built conjuncts); positive
    /// conjuncts are preferred over negated ones so that negation sees the
    /// largest possible context.
    fn build_conjunction(
        &self,
        qs: &Fragment,
        conjuncts: &[Fo],
        live: &BTreeSet<String>,
    ) -> std::result::Result<Fragment, String> {
        let mut remaining: Vec<&Fo> = conjuncts.iter().collect();
        let mut fragment = qs.clone();
        let mut last_error = String::from("empty conjunction");
        while !remaining.is_empty() {
            let mut progressed = false;
            // Two passes: positive conjuncts first, then negations.
            for negated_pass in [false, true] {
                let mut idx = 0;
                while idx < remaining.len() {
                    let is_negation = matches!(remaining[idx], Fo::Not(_));
                    if is_negation != negated_pass {
                        idx += 1;
                        continue;
                    }
                    match self.build(&fragment, remaining[idx], live) {
                        Ok(next) => {
                            fragment = next;
                            remaining.remove(idx);
                            progressed = true;
                        }
                        Err(e) => {
                            last_error = e;
                            idx += 1;
                        }
                    }
                }
                if progressed {
                    break;
                }
            }
            if !progressed {
                return Err(format!(
                    "no remaining conjunct can be scheduled: {last_error}"
                ));
            }
        }
        Ok(fragment)
    }

    /// Case (5): disjunction.  Both branches are built from the same context
    /// and must expose the same variables (the paper's safety condition);
    /// the plan is the union of the two branch plans aligned column-wise.
    fn build_disjunction(
        &self,
        qs: &Fragment,
        a: &Fo,
        b: &Fo,
        live: &BTreeSet<String>,
    ) -> std::result::Result<Fragment, String> {
        if a.free_variables() != b.free_variables() {
            return Err(
                "the two sides of a disjunction must have the same free variables".to_string(),
            );
        }
        let left = self.build(qs, a, live)?;
        let right = self.build(qs, b, live)?;
        // Align the right side's columns with the left's.
        let cols: Vec<usize> = left
            .columns
            .iter()
            .map(|c| {
                right
                    .column_of(c)
                    .ok_or_else(|| format!("column `{c}` missing from the right disjunct"))
            })
            .collect::<std::result::Result<_, String>>()?;
        let right_plan = Plan::from_node(right.plan.node().clone()).project(cols);
        let mut fragment = left.clone();
        fragment.plan = fragment.plan.union(right_plan);
        fragment.fetch_bound = left.fetch_bound.saturating_add(right.fetch_bound);
        fragment.output_bound = match (left.output_bound, right.output_bound) {
            (Some(x), Some(y)) => Some(x.saturating_add(y)),
            _ => None,
        };
        Ok(fragment)
    }

    /// Case (7c): drop existentially quantified columns.
    fn drop_columns(&self, fragment: Fragment, vars: &[String]) -> Fragment {
        let drop: BTreeSet<&String> = vars.iter().collect();
        let keep: Vec<usize> = (0..fragment.columns.len())
            .filter(|&i| !drop.contains(&fragment.columns[i]))
            .collect();
        if keep.len() == fragment.columns.len() {
            return fragment;
        }
        let mut fragment = fragment;
        fragment.columns = keep.iter().map(|&i| fragment.columns[i].clone()).collect();
        fragment.plan = fragment.plan.project(keep);
        fragment
    }
}

enum KeySource {
    Constant(Value),
    ContextColumn(usize),
}

/// The *live* variables of a query: those the generated plan must keep —
/// head variables and every variable with more than one occurrence in the
/// body (a shared variable carries a join or filter that a fetch must not
/// silently drop).
fn live_variables(body: &Fo, head: &[Term]) -> BTreeSet<String> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    count_occurrences(body, &mut counts);
    let mut live: BTreeSet<String> = head
        .iter()
        .filter_map(|t| t.as_var().map(str::to_string))
        .collect();
    live.extend(counts.into_iter().filter(|(_, c)| *c >= 2).map(|(v, _)| v));
    live
}

fn count_occurrences(f: &Fo, counts: &mut BTreeMap<String, usize>) {
    match f {
        Fo::Atom(a) => {
            for t in a.args() {
                if let Term::Var(v) = t {
                    *counts.entry(v.clone()).or_insert(0) += 1;
                }
            }
        }
        Fo::Eq(t1, t2) => {
            for t in [t1, t2] {
                if let Term::Var(v) = t {
                    *counts.entry(v.clone()).or_insert(0) += 1;
                }
            }
        }
        Fo::And(a, b) | Fo::Or(a, b) => {
            count_occurrences(a, counts);
            count_occurrences(b, counts);
        }
        Fo::Not(a) | Fo::Exists(_, a) | Fo::Forall(_, a) => count_occurrences(a, counts),
    }
}

/// Flatten nested conjunctions into a list of conjuncts.
fn flatten_and(f: &Fo, out: &mut Vec<Fo>) {
    match f {
        Fo::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::RewritingSetting;
    use bqr_data::{
        tuple, AccessConstraint, AccessSchema, Database, DatabaseSchema, IndexedDatabase,
    };
    use bqr_plan::exec::execute;
    use bqr_query::eval::{eval_cq, eval_fo};
    use bqr_query::parser::parse_cq;

    fn movie_schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[
            ("person", &["pid", "name", "affiliation"]),
            ("movie", &["mid", "mname", "studio", "release"]),
            ("rating", &["mid", "rank"]),
            ("like", &["pid", "id", "type"]),
        ])
        .unwrap()
    }

    fn movie_access(n0: usize) -> AccessSchema {
        AccessSchema::new(vec![
            AccessConstraint::new("movie", &["studio", "release"], &["mid"], n0).unwrap(),
            AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap(),
        ])
    }

    fn v1_views() -> ViewSet {
        let mut views = ViewSet::empty();
        views
            .add_cq(
                "V1",
                parse_cq(
                    "V1(mid) :- person(xp, xn, 'NASA'), movie(mid, ym, z1, z2), like(xp, mid, 'movie')",
                )
                .unwrap(),
            )
            .unwrap();
        views
    }

    fn q0() -> ConjunctiveQuery {
        parse_cq(
            "Q(mid) :- person(xp, xn, 'NASA'), movie(mid, ym, 'Universal', '2014'), \
             like(xp, mid, 'movie'), rating(mid, 5)",
        )
        .unwrap()
    }

    fn movie_instance() -> Database {
        let mut db = Database::empty(movie_schema());
        db.insert("person", tuple![1, "Ann", "NASA"]).unwrap();
        db.insert("person", tuple![2, "Bob", "NASA"]).unwrap();
        db.insert("person", tuple![3, "Cat", "ESA"]).unwrap();
        db.insert("movie", tuple![10, "Lucy", "Universal", "2014"])
            .unwrap();
        db.insert("movie", tuple![11, "Ouija", "Universal", "2014"])
            .unwrap();
        db.insert("movie", tuple![12, "Her", "WB", "2013"]).unwrap();
        db.insert("rating", tuple![10, 5]).unwrap();
        db.insert("rating", tuple![11, 3]).unwrap();
        db.insert("rating", tuple![12, 5]).unwrap();
        db.insert("like", tuple![1, 10, "movie"]).unwrap();
        db.insert("like", tuple![2, 12, "movie"]).unwrap();
        db.insert("like", tuple![3, 11, "movie"]).unwrap();
        db
    }

    /// The constructed plan compiles into the executor pipeline and the
    /// pipeline (serial and sharded-parallel) agrees with the one-shot
    /// execute — the compile-once serving path.
    #[test]
    fn topped_plans_compile_into_the_executor_pipeline() {
        let setting = RewritingSetting::new(movie_schema(), movie_access(100), v1_views(), 40);
        let checker = ToppedChecker::new(&setting);
        let q_xi =
            parse_cq("Q(mid) :- movie(mid, ym, 'Universal', '2014'), V1(mid), rating(mid, 5)")
                .unwrap();
        let analysis = checker.analyze_cq(&q_xi).unwrap();
        let db = movie_instance();
        let cache = v1_views().materialize(&db).unwrap();
        let idb = IndexedDatabase::build(db, movie_access(100)).unwrap();
        let pipeline = analysis.compile_plan(&idb, &cache).unwrap().unwrap();
        assert!(pipeline.describe().contains("fetch["));
        let one_shot = execute(analysis.plan.as_ref().unwrap(), &idb, &cache).unwrap();
        for options in [
            bqr_plan::ExecOptions::serial(),
            bqr_plan::ExecOptions::parallel(4),
        ] {
            let out = pipeline.execute(&idb, &options).unwrap();
            assert_eq!(out, one_shot);
        }
        // The prepared handle serves the same answers and observably skips
        // recompilation on the warm path.
        let cache_handle = std::sync::Arc::new(bqr_plan::PipelineCache::new(8));
        let prepared = analysis
            .prepare_plan_with(std::sync::Arc::clone(&cache_handle))
            .unwrap()
            .unwrap();
        assert_eq!(prepared.execute(&idb, &cache).unwrap(), one_shot);
        assert_eq!(prepared.execute(&idb, &cache).unwrap(), one_shot);
        let stats = cache_handle.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1), "{stats:?}");
        // A rejected analysis has no plan to compile or prepare — reported as
        // `Ok(None)`, distinct from a serving-layer `Err`.
        let rejected = ToppedAnalysis::rejected("no".into());
        assert!(rejected.compile_plan(&idb, &cache).unwrap().is_none());
        assert!(rejected.prepare_plan().unwrap().is_none());
    }

    /// Q0 is NOT topped without the view: person/like cannot be fetched.
    #[test]
    fn q0_without_views_is_not_topped() {
        let setting =
            RewritingSetting::new(movie_schema(), movie_access(100), ViewSet::empty(), 20);
        let checker = ToppedChecker::new(&setting);
        let analysis = checker.analyze_cq(&q0()).unwrap();
        assert!(!analysis.topped);
        assert!(analysis.reason.is_some());
        assert!(analysis.plan.is_none());
    }

    /// The rewriting Qξ of Example 2.3 (using V1) IS topped, and the
    /// generated plan computes Q0 while fetching a bounded number of tuples.
    #[test]
    fn example_2_3_rewriting_is_topped_and_correct() {
        let setting = RewritingSetting::new(movie_schema(), movie_access(100), v1_views(), 40);
        let checker = ToppedChecker::new(&setting);
        let q_xi =
            parse_cq("Q(mid) :- movie(mid, ym, 'Universal', '2014'), V1(mid), rating(mid, 5)")
                .unwrap();
        let analysis = checker.analyze_cq(&q_xi).unwrap();
        assert!(analysis.topped, "{:?}", analysis.reason);
        let plan = analysis.plan.clone().unwrap();
        assert!(plan.size() <= 40);
        assert!(analysis.fetch_bound.unwrap() <= 2 * 100, "|Dξ| ≤ 2·N0");

        // Execute the plan and compare with the naive evaluation of Q0.
        let db = movie_instance();
        let cache = v1_views().materialize(&db).unwrap();
        let idb = IndexedDatabase::build(db.clone(), movie_access(100)).unwrap();
        let out = execute(&plan, &idb, &cache).unwrap();
        assert_eq!(out.tuples, eval_cq(&q0(), &db, None).unwrap());
        assert_eq!(out.tuples, vec![tuple![10]]);
        assert_eq!(out.stats.scanned_tuples, 0);
        assert!(out.stats.fetched_tuples <= 4);

        // The generated plan also conforms to A0.
        let conf = bqr_plan::check_conformance(
            &plan,
            &setting.access,
            &setting.schema,
            &setting.views,
            &setting.budget,
        )
        .unwrap();
        assert!(conf.is_conforming(), "{conf:?}");
    }

    /// A small M rejects the same query: topped-ness depends on (R, V, A, M).
    #[test]
    fn bound_m_is_enforced() {
        let setting = RewritingSetting::new(movie_schema(), movie_access(100), v1_views(), 3);
        let checker = ToppedChecker::new(&setting);
        let q_xi =
            parse_cq("Q(mid) :- movie(mid, ym, 'Universal', '2014'), V1(mid), rating(mid, 5)")
                .unwrap();
        let analysis = checker.analyze_cq(&q_xi).unwrap();
        assert!(!analysis.topped);
        assert!(
            analysis.plan.is_some(),
            "a plan exists, it is just too large"
        );
        assert!(analysis.plan_size.unwrap() > 3);
        assert!(analysis.reason.unwrap().contains("exceeding the bound"));
    }

    /// Example 3.3(a): the rewriting Q2 of Q0 that uses the view V2 (NASA
    /// employees) and the key on `like` is a bounded rewriting only when
    /// V2's output is known to be bounded (NASA has at most N1 employees).
    #[test]
    fn example_3_3_requires_bounded_view_output() {
        let mut access = movie_access(100);
        access.add(AccessConstraint::new("like", &["pid", "id"], &["type"], 1).unwrap());
        let mut views = ViewSet::empty();
        views
            .add_cq("V2", parse_cq("V2(pid) :- person(pid, n, 'NASA')").unwrap())
            .unwrap();
        let setting = RewritingSetting::new(movie_schema(), access.clone(), views.clone(), 60);
        // Q2 of Example 3.3: Q0 rewritten over V2.
        let q2 = parse_cq(
            "Q(mid) :- V2(xp), like(xp, mid, 'movie'), \
             movie(mid, ym, 'Universal', '2014'), rating(mid, 5)",
        )
        .unwrap();

        // Without an annotation, V2 is unbounded and the `like` atom cannot be
        // fetched (its key needs pid values from V2): not topped.
        let checker = ToppedChecker::new(&setting);
        let analysis = checker.analyze_cq(&q2).unwrap();
        assert!(!analysis.topped, "{:?}", analysis.plan_size);

        // Declaring |V2(D)| ≤ 50 makes the same query topped.
        let mut oracle = BoundedOutputOracle::new(
            setting.schema.clone(),
            setting.access.clone(),
            setting.budget,
        );
        oracle.annotate_view("V2", 50);
        let checker = ToppedChecker::with_oracle(&setting, oracle);
        let analysis = checker.analyze_cq(&q2).unwrap();
        assert!(analysis.topped, "{:?}", analysis.reason);
        // The fetch bound is of the order N1·N0 (Example 3.3 derives
        // N1·N0 + 2·N0; our accounting interleaves slightly differently but
        // stays within a small multiple of that).
        assert!(analysis.fetch_bound.unwrap() <= 3 * 50 * 100 + 2 * 100);

        // And the plan is correct on the example instance: it computes Q0.
        let db = movie_instance();
        let cache = views.materialize(&db).unwrap();
        let idb = IndexedDatabase::build(db.clone(), access).unwrap();
        let out = execute(&analysis.plan.unwrap(), &idb, &cache).unwrap();
        assert_eq!(out.tuples, eval_cq(&q0(), &db, None).unwrap());
    }

    /// Negation (Example 5.3-style): movies rated by someone but such that the
    /// rating is not 5, via a fetch and a set difference.
    #[test]
    fn negation_is_handled_by_difference() {
        let setting =
            RewritingSetting::new(movie_schema(), movie_access(100), ViewSet::empty(), 40);
        let checker = ToppedChecker::new(&setting);
        // Q(m) = ∃n (movie(m, n, 'Universal', '2014')) ∧ ¬ rating(m, 5)
        let body = Fo::and(
            Fo::exists(
                vec!["n".into()],
                Fo::Atom(Atom::new(
                    "movie",
                    vec![
                        Term::var("m"),
                        Term::var("n"),
                        Term::cnst("Universal"),
                        Term::cnst("2014"),
                    ],
                )),
            ),
            Fo::not(Fo::Atom(Atom::new(
                "rating",
                vec![Term::var("m"), Term::cnst(5)],
            ))),
        );
        let q = FoQuery::new(vec![Term::var("m")], body).unwrap();
        let analysis = checker.analyze(&q).unwrap();
        assert!(analysis.topped, "{:?}", analysis.reason);
        let plan = analysis.plan.unwrap();
        assert_eq!(plan.language(), bqr_plan::PlanLanguage::Fo);

        let db = movie_instance();
        let idb = IndexedDatabase::build(db.clone(), movie_access(100)).unwrap();
        let out = execute(&plan, &idb, &bqr_query::MaterializedViews::empty()).unwrap();
        assert_eq!(out.tuples, eval_fo(&q, &db, None).unwrap());
        assert_eq!(
            out.tuples,
            vec![tuple![11]],
            "Ouija is Universal/2014 but rated 3"
        );
    }

    /// Disjunction: movies of either studio, both branches bounded.
    #[test]
    fn disjunction_unions_branch_plans() {
        let mut access = movie_access(100);
        access.add(AccessConstraint::new("movie", &["studio"], &["mid", "release"], 500).unwrap());
        let setting = RewritingSetting::new(movie_schema(), access.clone(), ViewSet::empty(), 40);
        let checker = ToppedChecker::new(&setting);
        let body = Fo::or(
            Fo::exists(
                vec!["n".into(), "r".into()],
                Fo::Atom(Atom::new(
                    "movie",
                    vec![
                        Term::var("m"),
                        Term::var("n"),
                        Term::cnst("Universal"),
                        Term::var("r"),
                    ],
                )),
            ),
            Fo::exists(
                vec!["n2".into(), "r2".into()],
                Fo::Atom(Atom::new(
                    "movie",
                    vec![
                        Term::var("m"),
                        Term::var("n2"),
                        Term::cnst("WB"),
                        Term::var("r2"),
                    ],
                )),
            ),
        );
        let q = FoQuery::new(vec![Term::var("m")], body).unwrap();
        let analysis = checker.analyze(&q).unwrap();
        assert!(analysis.topped, "{:?}", analysis.reason);

        let db = movie_instance();
        let idb = IndexedDatabase::build(db.clone(), access).unwrap();
        let out = execute(
            &analysis.plan.unwrap(),
            &idb,
            &bqr_query::MaterializedViews::empty(),
        )
        .unwrap();
        assert_eq!(out.tuples, eval_fo(&q, &db, None).unwrap());
        assert_eq!(out.tuples.len(), 3);
    }

    /// A query whose only relation has no usable constraint is rejected with a
    /// helpful reason.
    #[test]
    fn unconstrained_relation_rejected() {
        let setting = RewritingSetting::new(movie_schema(), movie_access(10), ViewSet::empty(), 30);
        let checker = ToppedChecker::new(&setting);
        let q = parse_cq("Q(p) :- person(p, n, 'NASA')").unwrap();
        let analysis = checker.analyze_cq(&q).unwrap();
        assert!(!analysis.topped);
        assert!(analysis.reason.unwrap().contains("person"));
    }

    /// Forall is outside the fragment.
    #[test]
    fn forall_is_rejected() {
        let setting = RewritingSetting::new(movie_schema(), movie_access(10), ViewSet::empty(), 30);
        let checker = ToppedChecker::new(&setting);
        let q = FoQuery::boolean(Fo::forall(
            vec!["m".into(), "r".into()],
            Fo::Atom(Atom::new("rating", vec![Term::var("m"), Term::var("r")])),
        ));
        let analysis = checker.analyze(&q).unwrap();
        assert!(!analysis.topped);
        assert!(analysis.reason.unwrap().contains("universal"));
    }
}
