//! The functional-dependency special case (Corollary 4.4, Proposition 4.5).
//!
//! When every constraint of `A` has the form `R(X → Y, 1)`, `A`-containment
//! of conjunctive queries reduces to one chase followed by a classical
//! containment test: `Q1 ⊑_A Q2` iff `chase_A(Q1)` is inconsistent or
//! `chase_A(Q1) ⊆ Q2`.  For acyclic queries the containment test is
//! polynomial, which is what puts `VBRP(ACQ)` under FDs in PTIME.

use crate::Result;
use bqr_data::{AccessSchema, DatabaseSchema};
use bqr_query::chase::{chase_fds, ChaseResult};
use bqr_query::containment::ContainmentChecker;
use bqr_query::ConjunctiveQuery;

/// Decide `q1 ⊑_A q2` when `A` consists of FDs only, via the chase.
pub fn fd_a_contained_in(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
) -> Result<bool> {
    let checker = ContainmentChecker::new(schema);
    fd_a_contained_in_with(&checker, q1, q2, access)
}

/// [`fd_a_contained_in`] against a caller-provided [`ContainmentChecker`],
/// so chase-based containment sequences share canonical instances and
/// relation indexes.
pub fn fd_a_contained_in_with(
    checker: &ContainmentChecker<'_>,
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    access: &AccessSchema,
) -> Result<bool> {
    debug_assert!(access.is_fd_only(), "the chase shortcut requires FDs only");
    match chase_fds(q1, access, checker.schema())? {
        ChaseResult::Inconsistent => Ok(true),
        ChaseResult::Chased(chased) => Ok(checker.cq_contained_in(&chased, q2)?),
    }
}

/// Decide `q1 ≡_A q2` under FDs via two chases.
pub fn fd_a_equivalent(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
) -> Result<bool> {
    let checker = ContainmentChecker::new(schema);
    Ok(fd_a_contained_in_with(&checker, q1, q2, access)?
        && fd_a_contained_in_with(&checker, q2, q1, access)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqr_data::AccessConstraint;
    use bqr_query::aequiv::cq_a_equivalent;
    use bqr_query::parser::parse_cq;
    use bqr_query::Budget;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[("r", &["a", "b"]), ("s", &["a", "b"])]).unwrap()
    }

    fn fds() -> AccessSchema {
        AccessSchema::new(vec![AccessConstraint::fd("r", &["a"], &["b"]).unwrap()])
    }

    #[test]
    fn chase_based_containment_uses_the_fd() {
        // Under r(a → b, 1): r(x,y1), r(x,y2), s(y1,y2) ⊑_A r(x,y), s(y,y)
        // even though classical containment fails.
        let q1 = parse_cq("Q() :- r(x, y1), r(x, y2), s(y1, y2)").unwrap();
        let q2 = parse_cq("Q() :- r(x, y), s(y, y)").unwrap();
        assert!(!bqr_query::containment::cq_contained_in(&q1, &q2, &schema()).unwrap());
        assert!(fd_a_contained_in(&q1, &q2, &fds(), &schema()).unwrap());
        assert!(fd_a_equivalent(&q1, &q2, &fds(), &schema()).unwrap());
    }

    #[test]
    fn inconsistent_chase_means_contained_in_everything() {
        let q1 = parse_cq("Q() :- r(x, 1), r(x, 2)").unwrap();
        let q2 = parse_cq("Q() :- s(u, v)").unwrap();
        assert!(fd_a_contained_in(&q1, &q2, &fds(), &schema()).unwrap());
        assert!(!fd_a_contained_in(&q2, &q1, &fds(), &schema()).unwrap());
    }

    #[test]
    fn chase_shortcut_agrees_with_element_query_procedure() {
        let access = fds();
        let cases = [
            (
                "Q(x) :- r(x, y), r(x, z), s(y, z)",
                "Q(x) :- r(x, y), s(y, y)",
            ),
            ("Q(x) :- r(x, y)", "Q(x) :- r(x, y), r(x, z)"),
            ("Q() :- r(1, y)", "Q() :- r(1, 2)"),
            ("Q(x) :- r(x, 1)", "Q(x) :- r(x, y)"),
        ];
        for (a, b) in cases {
            let qa = parse_cq(a).unwrap();
            let qb = parse_cq(b).unwrap();
            let via_chase = fd_a_contained_in(&qa, &qb, &access, &schema()).unwrap();
            let via_elements = bqr_query::aequiv::cq_a_contained_in(
                &qa,
                &qb,
                &access,
                &schema(),
                &Budget::generous(),
            )
            .unwrap();
            assert_eq!(via_chase, via_elements, "disagreement on {a} ⊑ {b}");
            let eq_chase = fd_a_equivalent(&qa, &qb, &access, &schema()).unwrap();
            let eq_elements =
                cq_a_equivalent(&qa, &qb, &access, &schema(), &Budget::generous()).unwrap();
            assert_eq!(eq_chase, eq_elements, "disagreement on {a} ≡ {b}");
        }
    }
}
