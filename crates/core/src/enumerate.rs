//! Candidate-plan enumeration: the search space `QP_Q` of the exact decision
//! procedures (Sections 3 and 4).
//!
//! All plans of size at most `M` are generated bottom-up by dynamic
//! programming on size, built from the constants of the query, the views of
//! `V`, the fetches allowed by `A`, and the relational operators of the
//! target plan language.  The space is exponential in `M` (that is the
//! content of the Σᵖ₃ / Cᵖ_{2k+1} lower bounds), so the enumeration is
//! budgeted and meant for the small bounds used throughout the paper's
//! reductions and examples (`M ≤ 8` or so); the *effective syntax* of
//! [`crate::topped`] is the scalable path.
//!
//! Enumeration produces candidates only; the `A`-equivalence test each
//! candidate then faces in [`crate::decide`] runs on the join planner
//! configured by [`RewritingSetting::planner`], which is where cyclic
//! candidate plans benefit from the generic-join strategy.

use crate::problem::RewritingSetting;
use bqr_data::Value;
use bqr_plan::{PlanLanguage, PlanNode, QueryPlan, SelectCondition};
use bqr_query::{Budget, QueryError};
use std::collections::BTreeSet;

/// Options controlling the enumeration.
#[derive(Debug, Clone)]
pub struct EnumerationOptions {
    /// Constants candidate plans may mention (per Section 2, the constants of
    /// the query being rewritten).
    pub constants: Vec<Value>,
    /// Target plan language.
    pub language: PlanLanguage,
    /// Maximum output arity kept during the search (plans wider than the
    /// query plus a small margin can never become the final answer).
    pub max_arity: usize,
}

/// Enumerate every structurally distinct plan of size at most `setting.bound_m`.
///
/// Plans are returned in non-decreasing size order.
pub fn enumerate_plans(
    setting: &RewritingSetting,
    options: &EnumerationOptions,
    budget: &Budget,
) -> Result<Vec<QueryPlan>, QueryError> {
    let m = setting.bound_m;
    // by_size[s] holds all candidate nodes of size s (s ≥ 1).
    let mut by_size: Vec<Vec<PlanNode>> = vec![Vec::new(); m + 1];
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut total = 0usize;

    let push = |node: PlanNode,
                size: usize,
                by_size: &mut Vec<Vec<PlanNode>>,
                seen: &mut BTreeSet<String>,
                total: &mut usize|
     -> Result<(), QueryError> {
        if size > m || node.arity() > options.max_arity {
            return Ok(());
        }
        let key = format!("{node:?}");
        if !seen.insert(key) {
            return Ok(());
        }
        *total += 1;
        Budget::check(
            *total,
            budget.max_candidate_plans,
            "enumerating candidate plans",
        )?;
        by_size[size].push(node);
        Ok(())
    };

    // Size-1 leaves: one-column constants, the 0-ary constant (Boolean
    // "true"), and views.
    if m >= 1 {
        push(
            PlanNode::Const(bqr_data::Tuple::unit()),
            1,
            &mut by_size,
            &mut seen,
            &mut total,
        )?;
        for c in &options.constants {
            push(
                PlanNode::Const(bqr_data::Tuple::new(vec![c.clone()])),
                1,
                &mut by_size,
                &mut seen,
                &mut total,
            )?;
        }
        for (name, def) in setting.views.iter() {
            push(
                PlanNode::View {
                    name: name.to_string(),
                    arity: def.arity(),
                },
                1,
                &mut by_size,
                &mut seen,
                &mut total,
            )?;
        }
    }

    for size in 2..=m {
        // Unary operators over children of size `size - 1`.
        let children: Vec<PlanNode> = by_size[size - 1].clone();
        for child in &children {
            let arity = child.arity();
            // Projections: onto each single column, and the empty projection.
            for col in 0..arity {
                push(
                    PlanNode::Project {
                        input: Box::new(child.clone()),
                        columns: vec![col],
                    },
                    size,
                    &mut by_size,
                    &mut seen,
                    &mut total,
                )?;
            }
            if arity > 0 {
                push(
                    PlanNode::Project {
                        input: Box::new(child.clone()),
                        columns: vec![],
                    },
                    size,
                    &mut by_size,
                    &mut seen,
                    &mut total,
                )?;
            }
            // Selections: column = constant, column = column.
            for col in 0..arity {
                for c in &options.constants {
                    push(
                        PlanNode::Select {
                            input: Box::new(child.clone()),
                            conditions: vec![SelectCondition::ColEqConst(col, c.clone())],
                        },
                        size,
                        &mut by_size,
                        &mut seen,
                        &mut total,
                    )?;
                }
            }
            for a in 0..arity {
                for b in (a + 1)..arity {
                    push(
                        PlanNode::Select {
                            input: Box::new(child.clone()),
                            conditions: vec![SelectCondition::ColEqCol(a, b)],
                        },
                        size,
                        &mut by_size,
                        &mut seen,
                        &mut total,
                    )?;
                }
            }
            // Fetches through every constraint, for every ordered choice of
            // key columns.
            for constraint in setting.access.constraints() {
                let k = constraint.x().len();
                for key_columns in ordered_choices(arity, k) {
                    push(
                        PlanNode::Fetch {
                            input: Box::new(child.clone()),
                            constraint: constraint.clone(),
                            key_columns,
                        },
                        size,
                        &mut by_size,
                        &mut seen,
                        &mut total,
                    )?;
                }
            }
        }
        // Binary operators.
        for left_size in 1..(size - 1) {
            let right_size = size - 1 - left_size;
            if right_size < 1 {
                continue;
            }
            let lefts = by_size[left_size].clone();
            let rights = by_size[right_size].clone();
            for l in &lefts {
                for r in &rights {
                    push(
                        PlanNode::Product(Box::new(l.clone()), Box::new(r.clone())),
                        size,
                        &mut by_size,
                        &mut seen,
                        &mut total,
                    )?;
                    if l.arity() == r.arity() && options.language >= PlanLanguage::Ucq {
                        push(
                            PlanNode::Union(Box::new(l.clone()), Box::new(r.clone())),
                            size,
                            &mut by_size,
                            &mut seen,
                            &mut total,
                        )?;
                    }
                    if l.arity() == r.arity() && options.language >= PlanLanguage::Fo {
                        push(
                            PlanNode::Difference(Box::new(l.clone()), Box::new(r.clone())),
                            size,
                            &mut by_size,
                            &mut seen,
                            &mut total,
                        )?;
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    for nodes in by_size.into_iter() {
        for node in nodes {
            let plan = QueryPlan::new(node).expect("enumerated plans are structurally valid");
            // For the UCQ target, unions must sit at the top of the tree.
            if options.language == PlanLanguage::Ucq && plan.language() > PlanLanguage::Ucq {
                continue;
            }
            if options.language == PlanLanguage::Cq && plan.language() > PlanLanguage::Cq {
                continue;
            }
            if options.language == PlanLanguage::PosFo && plan.language() > PlanLanguage::PosFo {
                continue;
            }
            out.push(plan);
        }
    }
    Ok(out)
}

/// All ordered selections (permutations) of `k` distinct elements from `0..n`.
fn ordered_choices(n: usize, k: usize) -> Vec<Vec<usize>> {
    if k == 0 {
        return vec![Vec::new()];
    }
    if k > n {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(n: usize, k: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in 0..n {
            if current.contains(&i) {
                continue;
            }
            current.push(i);
            rec(n, k, current, out);
            current.pop();
        }
    }
    rec(n, k, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqr_data::{AccessConstraint, AccessSchema, DatabaseSchema};
    use bqr_query::parser::parse_cq;
    use bqr_query::ViewSet;

    fn setting(m: usize) -> RewritingSetting {
        let schema = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])]).unwrap();
        let access = AccessSchema::new(vec![AccessConstraint::new(
            "rating",
            &["mid"],
            &["rank"],
            1,
        )
        .unwrap()]);
        let mut views = ViewSet::empty();
        views
            .add_cq("V", parse_cq("V(m) :- rating(m, 5)").unwrap())
            .unwrap();
        RewritingSetting::new(schema, access, views, m)
    }

    #[test]
    fn ordered_choices_enumeration() {
        assert_eq!(ordered_choices(3, 0), vec![Vec::<usize>::new()]);
        assert_eq!(ordered_choices(2, 3), Vec::<Vec<usize>>::new());
        assert_eq!(ordered_choices(3, 1).len(), 3);
        assert_eq!(ordered_choices(3, 2).len(), 6);
        assert!(ordered_choices(3, 2).contains(&vec![2, 0]));
    }

    #[test]
    fn size_one_plans_are_leaves() {
        let opts = EnumerationOptions {
            constants: vec![Value::int(5)],
            language: PlanLanguage::Cq,
            max_arity: 3,
        };
        let s = setting(1);
        let plans = enumerate_plans(&s, &opts, &Budget::generous()).unwrap();
        // unit constant, {5}, and the view V.
        assert_eq!(plans.len(), 3);
        assert!(plans.iter().all(|p| p.size() == 1));
    }

    #[test]
    fn larger_bound_contains_fetch_plans() {
        let opts = EnumerationOptions {
            constants: vec![Value::int(5), Value::int(7)],
            language: PlanLanguage::Cq,
            max_arity: 3,
        };
        let s = setting(3);
        let plans = enumerate_plans(&s, &opts, &Budget::generous()).unwrap();
        assert!(plans.iter().any(|p| !p.fetches().is_empty()));
        assert!(plans.iter().all(|p| p.size() <= 3));
        assert!(plans.iter().all(|p| p.language() == PlanLanguage::Cq));
        // Sizes are non-decreasing.
        let sizes: Vec<usize> = plans.iter().map(QueryPlan::size).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn language_gates_union_and_difference() {
        let opts_cq = EnumerationOptions {
            constants: vec![Value::int(5)],
            language: PlanLanguage::Cq,
            max_arity: 2,
        };
        let opts_fo = EnumerationOptions {
            constants: vec![Value::int(5)],
            language: PlanLanguage::Fo,
            max_arity: 2,
        };
        let s = setting(3);
        let cq_plans = enumerate_plans(&s, &opts_cq, &Budget::generous()).unwrap();
        let fo_plans = enumerate_plans(&s, &opts_fo, &Budget::generous()).unwrap();
        assert!(cq_plans.iter().all(|p| p.language() == PlanLanguage::Cq));
        assert!(fo_plans.iter().any(|p| p.language() == PlanLanguage::Fo));
        assert!(fo_plans.len() > cq_plans.len());
    }

    #[test]
    fn budget_stops_explosion() {
        let opts = EnumerationOptions {
            constants: (0..10).map(Value::int).collect(),
            language: PlanLanguage::Fo,
            max_arity: 4,
        };
        let s = setting(6);
        assert!(matches!(
            enumerate_plans(&s, &opts, &Budget::tiny()),
            Err(QueryError::BudgetExceeded(_))
        ));
    }
}
