//! Error type for the decision procedures and the effective syntax.
//!
//! Until PR 5 this crate borrowed `bqr_plan::PlanError` as its error type,
//! which left no room for outcomes that are neither a plan-layer failure nor
//! a decision: a budget-exhausted or out-of-fragment analysis surfaced as a
//! `DecisionOutcome::Unknown` *value*, and the serving helpers
//! ([`DecisionOutcome::prepare`], [`ToppedAnalysis::prepare_plan`]) flattened
//! that into the same `None` as a genuine "no rewriting exists" — the silent
//! footgun this type removes.
//!
//! [`DecisionOutcome::prepare`]: crate::decide::DecisionOutcome::prepare
//! [`ToppedAnalysis::prepare_plan`]: crate::topped::ToppedAnalysis::prepare_plan

use bqr_data::DataError;
use bqr_plan::PlanError;
use bqr_query::QueryError;
use std::error::Error;
use std::fmt;

/// Errors produced by the rewriting-decision layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An underlying plan-layer error (which itself wraps the query- and
    /// data-layer errors).
    Plan(PlanError),
    /// The procedure could not reach a decision — the analysis budget was
    /// exhausted or the query is outside the decidable fragment.  Carried as
    /// an *error* by the serving helpers so that "could not decide" is never
    /// mistaken for the decision "no rewriting exists".
    Undecided(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Plan(e) => write!(f, "{e}"),
            CoreError::Undecided(why) => write!(f, "the procedure could not decide: {why}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Plan(e) => Some(e),
            CoreError::Undecided(_) => None,
        }
    }
}

impl From<PlanError> for CoreError {
    fn from(e: PlanError) -> Self {
        CoreError::Plan(e)
    }
}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        CoreError::Plan(PlanError::Query(e))
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Plan(PlanError::Data(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e: CoreError = PlanError::UnknownView("V".into()).into();
        assert!(e.to_string().contains('V'));
        assert!(Error::source(&e).is_some());
        let e = CoreError::Undecided("budget exceeded while enumerating".into());
        assert!(e.to_string().contains("could not decide"));
        assert!(Error::source(&e).is_none());
        let e: CoreError = QueryError::UnknownRelation("r".into()).into();
        assert!(matches!(e, CoreError::Plan(PlanError::Query(_))));
        let e: CoreError = DataError::UnknownRelation("r".into()).into();
        assert!(matches!(e, CoreError::Plan(PlanError::Data(_))));
    }
}
