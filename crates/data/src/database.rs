//! Database instances: named collections of relation instances over a
//! database schema.

use crate::delta::{DeltaLog, RelationChange, RelationDelta};
use crate::error::DataError;
use crate::relation::Relation;
use crate::schema::DatabaseSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::BTreeMap;
use std::fmt;

/// An instance `D` of a database schema `R`: one relation instance per
/// relation schema (missing relations are treated as empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    schema: DatabaseSchema,
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// An empty instance of the given schema.
    pub fn empty(schema: DatabaseSchema) -> Self {
        let relations = schema
            .relations()
            .map(|r| (r.name().to_string(), Relation::empty(r.clone())))
            .collect();
        Database { schema, relations }
    }

    /// The database schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// Total number of tuples across all relations — `|D|` in the paper.
    pub fn size(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// True if every relation is empty.
    pub fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// The instance of a relation, if the relation exists in the schema.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// The instance of a relation, or an error if it is not in the schema.
    pub fn expect_relation(&self, name: &str) -> Result<&Relation> {
        self.relation(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Mutable access to a relation instance.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Insert a tuple into a relation.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<bool> {
        self.relation_mut(relation)?.insert(tuple)
    }

    /// Insert a tuple given as convertible values.
    pub fn insert_values<V: Into<Value>>(
        &mut self,
        relation: &str,
        values: Vec<V>,
    ) -> Result<bool> {
        self.relation_mut(relation)?.insert_values(values)
    }

    /// Remove a tuple from a relation; returns `true` if it was present.
    pub fn remove(&mut self, relation: &str, tuple: &Tuple) -> Result<bool> {
        self.relation_mut(relation)?.remove(tuple)
    }

    /// Begin recording per-relation write deltas on every relation instance
    /// (see [`Relation::begin_delta_tracking`]).  Collect the result with
    /// [`Database::take_delta`].
    pub fn begin_delta_tracking(&mut self) {
        for rel in self.relations.values_mut() {
            rel.begin_delta_tracking();
        }
    }

    /// Stop delta tracking and return the net write set since
    /// [`Database::begin_delta_tracking`], validated against `previous` —
    /// the instance this one was cloned from before tracking began.
    ///
    /// Per relation: an untouched epoch means untouched contents (epochs are
    /// globally unique) and the relation stays out of the log.  A tracked
    /// mutation whose recorded base epoch matches `previous` yields an exact
    /// [`RelationChange::Delta`]; a net-empty one additionally restores the
    /// previous epoch, so a do-undo closure leaves no observable trace.
    /// Anything else — the instance was replaced wholesale and its history
    /// lost — is recorded as [`RelationChange::Unknown`], unless the
    /// replacement's contents equal the previous ones, in which case the
    /// previous epoch is restored and nothing is logged.
    pub fn take_delta(&mut self, previous: &Database) -> DeltaLog {
        let mut log = DeltaLog::new();
        for (name, rel) in &mut self.relations {
            let state = rel.end_delta_tracking();
            let Some(prev_rel) = previous.relation(name) else {
                log.record(name.clone(), RelationChange::Unknown);
                continue;
            };
            let prev_epoch = prev_rel.epoch();
            if rel.epoch() == prev_epoch {
                continue;
            }
            match state {
                Some((base_epoch, delta)) if base_epoch == prev_epoch => {
                    if delta.is_empty() {
                        // Net no-op: contents are back to exactly what they
                        // were under the previous epoch.
                        rel.restore_epoch(prev_epoch);
                    } else {
                        log.record(name.clone(), RelationChange::Delta(delta));
                    }
                }
                // History lost (wholesale replacement).  A content compare
                // keeps a replace-with-equal-contents from re-stamping the
                // epoch and invalidating downstream caches — but the O(|R|)
                // set comparison runs only when cheaper evidence is
                // inconclusive: shared tuple storage proves equality and a
                // length mismatch proves inequality, each in O(1).
                _ => {
                    let same_schema = rel.schema() == prev_rel.schema();
                    let equal = same_schema
                        && (rel.shares_storage(prev_rel)
                            || (rel.len() == prev_rel.len() && rel == prev_rel));
                    if equal {
                        rel.restore_epoch(prev_epoch);
                    } else {
                        log.record(name.clone(), RelationChange::Unknown);
                    }
                }
            }
        }
        log
    }

    /// Capture a cheap, invertible checkpoint of the current tracked write
    /// state: each relation's epoch plus a copy of its net delta so far —
    /// `O(|Δ|)` total, never touching tuple storage.  Undo everything
    /// written after the capture with [`Database::rollback_to`].  Only
    /// meaningful between [`Database::begin_delta_tracking`] and
    /// [`Database::take_delta`]; batched mutation uses it to isolate one
    /// failing closure without cloning relation contents (a full
    /// [`Database::clone`] checkpoint would keep every tuple `Arc` shared,
    /// forcing the next write to copy the whole relation).
    pub fn delta_checkpoint(&self) -> DeltaCheckpoint {
        DeltaCheckpoint {
            states: self
                .relations
                .iter()
                .map(|(name, rel)| {
                    let tracked = rel
                        .tracking_state()
                        .map(|(base, delta)| (base, delta.clone()));
                    (name.clone(), (rel.epoch(), tracked))
                })
                .collect(),
        }
    }

    /// Undo every write issued since `checkpoint` by applying inverse
    /// operations, restoring both relation contents and tracking state to
    /// exactly what [`Database::delta_checkpoint`] captured — `O(|writes
    /// since the checkpoint|)`.
    ///
    /// Fails with [`DataError::RollbackHistoryLost`] if a relation was
    /// replaced wholesale since the checkpoint (its tracking state lost or
    /// restarted), in which case the writes cannot be inverted; the database
    /// is left with all rollbacks up to the offending relation applied, so
    /// callers must treat the whole instance as unusable on error.
    pub fn rollback_to(&mut self, checkpoint: &DeltaCheckpoint) -> Result<()> {
        for (name, rel) in &mut self.relations {
            let Some((epoch, saved)) = checkpoint.states.get(name) else {
                return Err(DataError::RollbackHistoryLost(name.clone()));
            };
            if rel.epoch() == *epoch {
                // Epochs are globally unique: an unchanged epoch proves the
                // relation (contents and tracking) is untouched.
                continue;
            }
            let now = match (rel.tracking_state(), saved) {
                (Some((base_now, delta)), Some((base_then, _))) if base_now == *base_then => {
                    delta.clone()
                }
                _ => return Err(DataError::RollbackHistoryLost(name.clone())),
            };
            let then = &saved.as_ref().expect("matched Some above").1;
            // The four ways a tuple's net-delta membership can have changed,
            // each inverted through the ordinary mutators — whose
            // cancellation arithmetic restores the tracked delta as a side
            // effect of restoring the contents:
            //   inserted now, not then → the span inserted a non-base tuple.
            //   inserted then, not now → the span removed it again.
            //   removed now, not then  → the span removed a base tuple.
            //   removed then, not now  → the span re-inserted it.
            for t in now.inserted.difference(&then.inserted) {
                rel.remove(t)?;
            }
            for t in then.inserted.difference(&now.inserted) {
                rel.insert(t.clone())?;
            }
            for t in now.removed.difference(&then.removed) {
                rel.insert(t.clone())?;
            }
            for t in then.removed.difference(&now.removed) {
                rel.remove(t)?;
            }
            debug_assert_eq!(
                rel.tracking_state().map(|(_, d)| d),
                Some(then),
                "rollback must restore the tracked delta exactly"
            );
        }
        Ok(())
    }

    /// Iterate over relation instances in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// The epoch of every relation instance, in name order — the instance's
    /// *epoch vector*.  Two databases with equal epoch vectors are guaranteed
    /// to have identical contents (epochs are globally unique stamps, see
    /// [`Relation::epoch`]), which is what lets derived artifacts — cached
    /// indexes, interned snapshots, compiled plan pipelines — be keyed by
    /// epochs alone and re-validated in `O(#relations)` instead of `O(|D|)`.
    pub fn epochs(&self) -> impl Iterator<Item = (&str, u64)> {
        self.relations.values().map(|r| (r.name(), r.epoch()))
    }

    /// The active domain of the instance: every value occurring anywhere in
    /// `D`.  Used by the FO evaluator (safe-range semantics) and by the
    /// reductions' counterexample constructions.
    pub fn active_domain(&self) -> std::collections::BTreeSet<Value> {
        let mut dom = std::collections::BTreeSet::new();
        for rel in self.relations.values() {
            for t in rel.iter() {
                for v in t.iter() {
                    dom.insert(v.clone());
                }
            }
        }
        dom
    }

    /// Merge another database (over the same schema) into this one, unioning
    /// relation instances.  Used to build the `T_Q ∪ D_K` instances of the
    /// bounded-output characterisation (Lemma 3.6).
    pub fn union_in_place(&mut self, other: &Database) -> Result<()> {
        for rel in other.relations() {
            for t in rel.iter() {
                self.insert(rel.name(), t.clone())?;
            }
        }
        Ok(())
    }
}

/// A point-in-time capture of a tracked database's write state, produced by
/// [`Database::delta_checkpoint`] and consumed by [`Database::rollback_to`].
/// Holds per-relation epochs and net-delta copies only — `O(|Δ|)`, no tuple
/// storage — so capturing one never causes a copy-on-write fork.
#[derive(Debug, Clone)]
pub struct DeltaCheckpoint {
    /// Per relation: the epoch at capture, plus the live tracking state
    /// (`base epoch`, net delta) if tracking was on.
    states: BTreeMap<String, (u64, Option<(u64, RelationDelta)>)>,
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in self.relations.values() {
            write!(f, "{rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn movie_db() -> Database {
        let schema = DatabaseSchema::with_relations(&[
            ("movie", &["mid", "mname", "studio", "release"]),
            ("rating", &["mid", "rank"]),
        ])
        .unwrap();
        let mut db = Database::empty(schema);
        db.insert("movie", tuple![1, "Lucy", "Universal", "2014"])
            .unwrap();
        db.insert("movie", tuple![2, "Ouija", "Universal", "2014"])
            .unwrap();
        db.insert("rating", tuple![1, 5]).unwrap();
        db.insert("rating", tuple![2, 3]).unwrap();
        db
    }

    #[test]
    fn empty_database_has_all_relations() {
        let schema = DatabaseSchema::with_relations(&[("a", &["x"]), ("b", &["y"])]).unwrap();
        let db = Database::empty(schema);
        assert!(db.is_empty());
        assert_eq!(db.size(), 0);
        assert!(db.relation("a").is_some());
        assert!(db.relation("b").is_some());
        assert!(db.relation("c").is_none());
    }

    #[test]
    fn size_counts_all_relations() {
        let db = movie_db();
        assert_eq!(db.size(), 4);
        assert!(!db.is_empty());
        assert_eq!(db.relation("movie").unwrap().len(), 2);
    }

    #[test]
    fn insert_into_unknown_relation_fails() {
        let mut db = movie_db();
        assert!(matches!(
            db.insert("person", tuple![1]),
            Err(DataError::UnknownRelation(_))
        ));
        assert!(db.expect_relation("movie").is_ok());
        assert!(db.expect_relation("person").is_err());
    }

    #[test]
    fn epoch_vector_tracks_per_relation_mutation() {
        let mut db = movie_db();
        let names: Vec<&str> = db.epochs().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["movie", "rating"], "name order");
        let before: Vec<u64> = db.epochs().map(|(_, e)| e).collect();
        // Unmutated clones share the whole epoch vector.
        let clone = db.clone();
        assert_eq!(before, clone.epochs().map(|(_, e)| e).collect::<Vec<_>>());
        // A mutation re-stamps exactly the touched relation.
        db.insert("rating", tuple![3, 4]).unwrap();
        let after: Vec<u64> = db.epochs().map(|(_, e)| e).collect();
        assert_eq!(before[0], after[0], "movie untouched");
        assert!(after[1] > before[1], "rating re-stamped, monotonically");
    }

    #[test]
    fn active_domain_collects_every_value() {
        let db = movie_db();
        let dom = db.active_domain();
        assert!(dom.contains(&Value::str("Universal")));
        assert!(dom.contains(&Value::int(5)));
        assert!(dom.contains(&Value::int(1)));
        assert!(!dom.contains(&Value::str("Paramount")));
    }

    #[test]
    fn union_in_place_merges() {
        let mut a = movie_db();
        let mut b = Database::empty(a.schema().clone());
        b.insert("rating", tuple![9, 1]).unwrap();
        b.insert("rating", tuple![1, 5]).unwrap(); // already in `a`
        a.union_in_place(&b).unwrap();
        assert_eq!(a.relation("rating").unwrap().len(), 3);
    }

    /// Rollback restores contents AND tracking state through every
    /// cancellation case: a fresh insert, a removal of a base tuple, the
    /// re-removal of a pre-checkpoint insert, and the re-insert of a
    /// pre-checkpoint removal.
    #[test]
    fn rollback_to_checkpoint_inverts_the_span_exactly() {
        let previous = movie_db();
        let mut db = previous.clone();
        db.begin_delta_tracking();
        // Pre-checkpoint span: one insert, one removal of a base tuple.
        db.insert("rating", tuple![3, 4]).unwrap();
        db.remove("rating", &tuple![1, 5]).unwrap();
        let golden = db.clone();
        let checkpoint = db.delta_checkpoint();

        // Post-checkpoint span, hitting all four inverse cases.
        db.insert("rating", tuple![4, 2]).unwrap(); // fresh insert
        db.remove("rating", &tuple![2, 3]).unwrap(); // remove a base tuple
        db.remove("rating", &tuple![3, 4]).unwrap(); // undo a tracked insert
        db.insert("rating", tuple![1, 5]).unwrap(); // undo a tracked removal
        db.insert("movie", tuple![9, "Split", "Universal", "2016"])
            .unwrap();
        assert_ne!(db, golden);

        db.rollback_to(&checkpoint).unwrap();
        assert_eq!(db, golden, "contents restored");
        // The tracked delta is restored too: take_delta still reports the
        // pre-checkpoint span exactly, as if the rest never happened.
        let log = db.take_delta(&previous);
        let delta = log.exact("rating").expect("rating has an exact delta");
        assert_eq!(delta.inserted.iter().collect::<Vec<_>>(), [&tuple![3, 4]]);
        assert_eq!(delta.removed.iter().collect::<Vec<_>>(), [&tuple![1, 5]]);
        assert!(log.exact("movie").is_none(), "movie rolled back to a no-op");
    }

    #[test]
    fn rollback_is_a_noop_when_nothing_changed() {
        let mut db = movie_db();
        db.begin_delta_tracking();
        let epochs: Vec<u64> = db.epochs().map(|(_, e)| e).collect();
        let checkpoint = db.delta_checkpoint();
        db.rollback_to(&checkpoint).unwrap();
        assert_eq!(
            epochs,
            db.epochs().map(|(_, e)| e).collect::<Vec<u64>>(),
            "untouched relations keep their epochs"
        );
    }

    #[test]
    fn rollback_fails_typed_when_write_history_was_lost() {
        let mut db = movie_db();
        db.begin_delta_tracking();
        let checkpoint = db.delta_checkpoint();
        // Wholesale replacement: tracking state is lost for `rating`.
        let replacement = Relation::from_tuples(
            db.relation("rating").unwrap().schema().clone(),
            [tuple![7, 7]],
        )
        .unwrap();
        *db.relation_mut("rating").unwrap() = replacement;
        assert!(matches!(
            db.rollback_to(&checkpoint),
            Err(DataError::RollbackHistoryLost(rel)) if rel == "rating"
        ));
    }

    #[test]
    fn take_delta_reports_exact_changes_and_spares_untouched_relations() {
        let previous = movie_db();
        let mut db = previous.clone();
        db.begin_delta_tracking();
        db.insert("rating", tuple![3, 4]).unwrap();
        db.remove("rating", &tuple![1, 5]).unwrap();
        let log = db.take_delta(&previous);
        assert!(!log.touches("movie"));
        let d = log.exact("rating").unwrap();
        assert_eq!(d.inserted.iter().collect::<Vec<_>>(), [&tuple![3, 4]]);
        assert_eq!(d.removed.iter().collect::<Vec<_>>(), [&tuple![1, 5]]);
        assert_eq!(
            db.relation("movie").unwrap().epoch(),
            previous.relation("movie").unwrap().epoch(),
            "untouched relation keeps its epoch"
        );
    }

    #[test]
    fn take_delta_restores_epochs_for_net_noops() {
        let previous = movie_db();
        let mut db = previous.clone();
        db.begin_delta_tracking();
        db.insert("rating", tuple![3, 4]).unwrap();
        db.remove("rating", &tuple![3, 4]).unwrap();
        db.insert("movie", tuple![1, "Lucy", "Universal", "2014"])
            .unwrap(); // already present
        let log = db.take_delta(&previous);
        assert!(log.is_empty());
        assert_eq!(
            previous.epochs().collect::<Vec<_>>(),
            db.epochs().collect::<Vec<_>>(),
            "a do-undo mutation leaves no observable trace"
        );
    }

    #[test]
    fn wholesale_replacement_degrades_to_unknown() {
        let previous = movie_db();
        let mut db = previous.clone();
        db.begin_delta_tracking();
        let schema = previous.relation("rating").unwrap().schema().clone();
        *db.relation_mut("rating").unwrap() =
            Relation::from_tuples(schema, vec![tuple![7, 7]]).unwrap();
        let log = db.take_delta(&previous);
        assert!(log.is_unknown("rating"));
        assert!(log.exact("rating").is_none());
        assert!(!log.touches("movie"));
    }

    #[test]
    fn wholesale_replacement_with_shared_storage_short_circuits_to_equal() {
        let previous = movie_db();
        let mut db = previous.clone();
        db.begin_delta_tracking();
        // A replacement that shares tuple storage with the previous
        // instance but presents a different epoch: the Arc pointer proves
        // content equality without the O(|R|) set compare.
        let mut replacement = previous.relation("rating").unwrap().clone();
        replacement.restore_epoch(u64::MAX);
        *db.relation_mut("rating").unwrap() = replacement;
        let log = db.take_delta(&previous);
        assert!(log.is_empty(), "shared storage proves equality");
        assert_eq!(
            db.relation("rating").unwrap().epoch(),
            previous.relation("rating").unwrap().epoch(),
            "previous epoch restored"
        );
    }

    #[test]
    fn display_contains_relations() {
        let text = movie_db().to_string();
        assert!(text.contains("movie"));
        assert!(text.contains("rating"));
    }
}
