//! I/O accounting for bounded plans, and cardinality statistics for the
//! cost-based join planner.
//!
//! The central quantitative claim of bounded rewriting is that a bounded plan
//! touches `|D_ξ|` base tuples where `|D_ξ|` depends only on the query and the
//! bounds `N` of the access schema — never on `|D|`.  [`FetchStats`] records
//! exactly the quantities needed to verify that claim experimentally:
//! tuples retrieved through constraint indices (`fetched_tuples`, the paper's
//! `|D_ξ|` as a bag), the number of `fetch` invocations, tuples read from
//! cached views (free of base-data I/O), and tuples a full scan would touch.
//!
//! [`RelationStats`] is the other half of this module: per-snapshot
//! cardinality and per-position distinct-value counts, computed once when an
//! interned snapshot is built (see [`crate::snapshot::InternedSnapshot`]) and
//! consumed by the join planner in `bqr-query::hom` to estimate per-atom
//! selectivity.

use crate::intern::ValueId;
use std::collections::HashSet;
use std::fmt;

/// Cardinality statistics of one relation snapshot: total tuple count plus
/// the number of distinct values at every attribute position.  Computed
/// exactly (the snapshots the decision procedures index are small); on a
/// production ingest path the same shape would be fed by sketches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationStats {
    tuples: usize,
    distinct: Vec<usize>,
}

impl RelationStats {
    /// Compute the statistics of a flattened row-major snapshot of `tuples`
    /// rows with the given arity (`data.len() == tuples * arity`).  The row
    /// count is passed explicitly rather than derived from `data.len()`
    /// because a nullary relation has `data.len() == 0` regardless of
    /// whether it holds zero rows or one.
    pub fn of_rows(tuples: usize, arity: usize, data: &[ValueId]) -> Self {
        debug_assert_eq!(data.len(), tuples * arity);
        let mut distinct = vec![0usize; arity];
        let mut seen: HashSet<ValueId> = HashSet::new();
        for (pos, d) in distinct.iter_mut().enumerate() {
            seen.clear();
            for row in 0..tuples {
                seen.insert(data[row * arity + pos]);
            }
            *d = seen.len();
        }
        RelationStats { tuples, distinct }
    }

    /// Assemble statistics from already-computed parts.  Used by the
    /// delta-patched snapshot path, which maintains exact per-position
    /// occurrence counts across mutations and derives `distinct` from them
    /// — the result must be bit-identical to what
    /// [`RelationStats::of_rows`] computes over the same contents (the
    /// snapshot differential tests enforce this).
    pub(crate) fn from_parts(tuples: usize, distinct: Vec<usize>) -> Self {
        RelationStats { tuples, distinct }
    }

    /// Number of tuples in the snapshot.
    pub fn tuples(&self) -> usize {
        self.tuples
    }

    /// Number of distinct values at attribute `position`.
    pub fn distinct(&self, position: usize) -> usize {
        self.distinct[position]
    }

    /// Estimated number of tuples matching an index probe on
    /// `bound_positions`, under the textbook uniformity-and-independence
    /// assumptions: `|R| / Π_p d_p`, with each `d_p` capped at `|R|` by
    /// construction.  An unbound probe (`bound_positions` empty) estimates
    /// the full scan, `|R|`.
    pub fn estimated_matches(&self, bound_positions: &[usize]) -> f64 {
        let mut est = self.tuples as f64;
        for &p in bound_positions {
            est /= self.distinct[p].max(1) as f64;
        }
        est
    }
}

/// Counters describing the data accessed while answering one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Number of base tuples returned by `fetch` operations, counted as a bag
    /// (`|D_ξ|` in Section 2 of the paper).
    pub fetched_tuples: usize,
    /// Number of `fetch` invocations (index probes).
    pub fetch_calls: usize,
    /// Tuples read from cached / materialised views.  These do not count as
    /// base-data I/O.
    pub view_tuples: usize,
    /// Base tuples scanned by operators that read a relation directly
    /// (only the *naive* baseline does this; bounded plans never do).
    pub scanned_tuples: usize,
}

impl FetchStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        FetchStats::default()
    }

    /// Total base-data tuples accessed (fetched + scanned).
    pub fn base_tuples_accessed(&self) -> usize {
        self.fetched_tuples + self.scanned_tuples
    }

    /// Record a fetch that returned `n` tuples.
    pub fn record_fetch(&mut self, n: usize) {
        self.fetch_calls += 1;
        self.fetched_tuples += n;
    }

    /// Record reading `n` tuples from a cached view.
    pub fn record_view_read(&mut self, n: usize) {
        self.view_tuples += n;
    }

    /// Record a full or partial scan of `n` base tuples.
    pub fn record_scan(&mut self, n: usize) {
        self.scanned_tuples += n;
    }

    /// Merge another set of counters into this one.
    pub fn merge(&mut self, other: &FetchStats) {
        self.fetched_tuples += other.fetched_tuples;
        self.fetch_calls += other.fetch_calls;
        self.view_tuples += other.view_tuples;
        self.scanned_tuples += other.scanned_tuples;
    }
}

impl fmt::Display for FetchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fetched {} tuples in {} fetches, read {} view tuples, scanned {} base tuples",
            self.fetched_tuples, self.fetch_calls, self.view_tuples, self.scanned_tuples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_accumulates() {
        let mut s = FetchStats::new();
        s.record_fetch(10);
        s.record_fetch(0);
        s.record_view_read(500);
        s.record_scan(1000);
        assert_eq!(s.fetched_tuples, 10);
        assert_eq!(s.fetch_calls, 2);
        assert_eq!(s.view_tuples, 500);
        assert_eq!(s.scanned_tuples, 1000);
        assert_eq!(s.base_tuples_accessed(), 1010);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = FetchStats::new();
        a.record_fetch(3);
        let mut b = FetchStats::new();
        b.record_scan(7);
        b.record_view_read(2);
        b.record_fetch(1);
        a.merge(&b);
        assert_eq!(a.fetched_tuples, 4);
        assert_eq!(a.fetch_calls, 2);
        assert_eq!(a.view_tuples, 2);
        assert_eq!(a.scanned_tuples, 7);
    }

    #[test]
    fn display_mentions_all_counters() {
        let mut s = FetchStats::new();
        s.record_fetch(5);
        s.record_scan(9);
        let text = s.to_string();
        assert!(text.contains("5"));
        assert!(text.contains("9"));
    }

    #[test]
    fn default_is_zero() {
        let s = FetchStats::default();
        assert_eq!(s.base_tuples_accessed(), 0);
        assert_eq!(s, FetchStats::new());
    }

    #[test]
    fn relation_stats_count_distinct_per_position() {
        use crate::value::Value;
        let ids: Vec<ValueId> = [
            // (1, 5), (2, 5), (3, 4) — 3 distinct at position 0, 2 at 1.
            (1, 5),
            (2, 5),
            (3, 4),
        ]
        .iter()
        .flat_map(|&(a, b)| [Value::int(a), Value::int(b)])
        .map(|v| ValueId::intern(&v))
        .collect();
        let stats = RelationStats::of_rows(3, 2, &ids);
        assert_eq!(stats.tuples(), 3);
        assert_eq!(stats.distinct(0), 3);
        assert_eq!(stats.distinct(1), 2);
        assert_eq!(stats.estimated_matches(&[]), 3.0);
        assert_eq!(stats.estimated_matches(&[0]), 1.0);
        assert_eq!(stats.estimated_matches(&[1]), 1.5);
        assert_eq!(stats.estimated_matches(&[0, 1]), 0.5);
    }

    #[test]
    fn relation_stats_of_empty_and_nullary_snapshots() {
        let stats = RelationStats::of_rows(0, 2, &[]);
        assert_eq!(stats.tuples(), 0);
        assert_eq!(stats.distinct(0), 0);
        assert_eq!(stats.estimated_matches(&[0]), 0.0);
        // A nullary relation holding the empty tuple has one row even
        // though its flattened data is empty.
        let nullary = RelationStats::of_rows(1, 0, &[]);
        assert_eq!(nullary.tuples(), 1);
        assert_eq!(nullary.estimated_matches(&[]), 1.0);
        assert_eq!(RelationStats::of_rows(0, 0, &[]).tuples(), 0);
    }
}
