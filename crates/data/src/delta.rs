//! Per-relation write deltas captured during a mutation.
//!
//! A [`DeltaLog`] records, for every relation touched inside an
//! `Engine::mutate` closure, *what* changed: either an exact
//! [`RelationDelta`] (the net inserted and removed tuple sets, disjoint by
//! construction) or [`RelationChange::Unknown`] when the relation was
//! replaced wholesale and the per-tuple history is lost.  Downstream
//! consumers — semi-naive view maintenance, in-place index patching,
//! per-relation epoch-keyed cache invalidation — pay `O(|Δ|)` for exact
//! deltas and fall back to `O(|R|)` re-derivation only for `Unknown` ones.

use crate::tuple::Tuple;
use std::collections::{BTreeMap, BTreeSet};

/// The net content change of one relation across a mutation: tuples that are
/// in the new instance but not the old one (`inserted`) and vice versa
/// (`removed`).  The two sets are disjoint — an insert-then-remove (or
/// remove-then-reinsert) of the same tuple cancels out during recording.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationDelta {
    /// Tuples present after the mutation but not before: `R_new ∖ R_old`.
    pub inserted: BTreeSet<Tuple>,
    /// Tuples present before the mutation but not after: `R_old ∖ R_new`.
    pub removed: BTreeSet<Tuple>,
}

impl RelationDelta {
    /// True when the mutation was a net no-op on this relation.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.removed.is_empty()
    }

    /// `|Δ|`: the number of tuples that changed either way.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.removed.len()
    }
}

/// What happened to one relation during a mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationChange {
    /// The exact net delta is known; `O(|Δ|)` maintenance applies.
    Delta(RelationDelta),
    /// The relation changed but the per-tuple history was lost (e.g. the
    /// closure replaced the instance wholesale through `relation_mut`).
    /// Consumers must re-derive anything depending on this relation.
    Unknown,
}

/// The full write set of one mutation: every *changed* relation mapped to
/// its [`RelationChange`].  Relations absent from the log are guaranteed
/// untouched — their epochs (and therefore every epoch-keyed derived
/// artifact) remain valid.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaLog {
    changes: BTreeMap<String, RelationChange>,
}

impl DeltaLog {
    /// An empty log (the mutation was a no-op).
    pub fn new() -> Self {
        DeltaLog::default()
    }

    /// Record the change of one relation.  Empty exact deltas are dropped —
    /// a net no-op is indistinguishable from "untouched".
    pub fn record(&mut self, relation: impl Into<String>, change: RelationChange) {
        if let RelationChange::Delta(d) = &change {
            if d.is_empty() {
                return;
            }
        }
        self.changes.insert(relation.into(), change);
    }

    /// True when no relation changed at all.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// True when `relation` changed in any way.
    pub fn touches(&self, relation: &str) -> bool {
        self.changes.contains_key(relation)
    }

    /// The exact delta for `relation`, if it changed and the per-tuple
    /// history survived.  `None` means either untouched (see
    /// [`DeltaLog::touches`]) or [`RelationChange::Unknown`].
    pub fn exact(&self, relation: &str) -> Option<&RelationDelta> {
        match self.changes.get(relation) {
            Some(RelationChange::Delta(d)) => Some(d),
            _ => None,
        }
    }

    /// True when `relation` changed but the exact delta was lost.
    pub fn is_unknown(&self, relation: &str) -> bool {
        matches!(self.changes.get(relation), Some(RelationChange::Unknown))
    }

    /// Iterate over the changed relations in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &RelationChange)> {
        self.changes.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Names of the changed relations, in name order.
    pub fn relations(&self) -> impl Iterator<Item = &str> {
        self.changes.keys().map(String::as_str)
    }

    /// Total `|Δ|` across all exact deltas (unknown changes count 0).
    pub fn size(&self) -> usize {
        self.changes
            .values()
            .map(|c| match c {
                RelationChange::Delta(d) => d.len(),
                RelationChange::Unknown => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn empty_exact_deltas_are_dropped() {
        let mut log = DeltaLog::new();
        log.record("r", RelationChange::Delta(RelationDelta::default()));
        assert!(log.is_empty());
        assert!(!log.touches("r"));
    }

    #[test]
    fn exact_and_unknown_are_distinguished() {
        let mut log = DeltaLog::new();
        let mut d = RelationDelta::default();
        d.inserted.insert(tuple![1]);
        log.record("a", RelationChange::Delta(d.clone()));
        log.record("b", RelationChange::Unknown);
        assert!(log.touches("a") && log.touches("b") && !log.touches("c"));
        assert_eq!(log.exact("a"), Some(&d));
        assert_eq!(log.exact("b"), None);
        assert!(log.is_unknown("b") && !log.is_unknown("a"));
        assert_eq!(log.size(), 1);
        assert_eq!(log.relations().collect::<Vec<_>>(), vec!["a", "b"]);
    }
}
