//! Data values: the countably infinite domain `U` of the paper.
//!
//! Instances of a relational schema are defined over `U`.  We instantiate `U`
//! with three concrete sorts — 64-bit integers, interned strings and booleans
//! — which is sufficient for every construction in the paper (the Boolean
//! gadget relations of Fig. 2, the movie / CDR / social workloads, and the
//! synthetic instances used by the reductions).

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// A single data value.
///
/// Values are cheap to clone (`Str` is reference counted) and totally
/// ordered, which gives relations a deterministic iteration order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Boolean constant (used by the Fig. 2 gadget relations, among others).
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// Interned string.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Construct an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Construct a boolean value.
    pub fn bool(b: bool) -> Self {
        Value::Bool(b)
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short human-readable rendering used by plan/relation pretty printers.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Bool(b) => Cow::Owned(b.to_string()),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Str(s) => Cow::Borrowed(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Value::int(3).as_int(), Some(3));
        assert_eq!(Value::str("abc").as_str(), Some("abc"));
        assert_eq!(Value::bool(true).as_bool(), Some(true));
        assert_eq!(Value::int(3).as_str(), None);
        assert_eq!(Value::str("x").as_int(), None);
        assert_eq!(Value::str("x").as_bool(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(7i32), Value::Int(7));
        assert_eq!(Value::from(7usize), Value::Int(7));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(String::from("hi")), Value::str("hi"));
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::int(-4).to_string(), "-4");
        assert_eq!(Value::str("NASA").to_string(), "\"NASA\"");
        assert_eq!(Value::bool(false).to_string(), "false");
        assert_eq!(Value::str("NASA").render(), "NASA");
        assert_eq!(Value::int(12).render(), "12");
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut set = BTreeSet::new();
        set.insert(Value::str("b"));
        set.insert(Value::int(10));
        set.insert(Value::bool(true));
        set.insert(Value::str("a"));
        set.insert(Value::int(2));
        let ordered: Vec<_> = set.into_iter().collect();
        // Bool < Int < Str by enum declaration order.
        assert_eq!(
            ordered,
            vec![
                Value::bool(true),
                Value::int(2),
                Value::int(10),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }

    #[test]
    fn equality_ignores_arc_identity() {
        let a = Value::str("shared");
        let b = Value::str("shared");
        assert_eq!(a, b);
        let c = a.clone();
        assert_eq!(a, c);
    }
}
