//! Global value interning: dense `u32` ids for [`Value`]s.
//!
//! The slot-based homomorphism engine compares and hashes values in its
//! innermost loop.  [`Value`]s are cheap to clone but still carry an enum
//! tag, a 64-bit payload and (for strings) an `Arc` — comparing two of them
//! is branchy, and hashing one walks the string.  Interning maps every value
//! to a dense [`ValueId`] once, at snapshot-build time, so the engine's hot
//! loop works on plain `u32`s: equality is one integer compare, probe-key
//! hashing is integer hashing, and slot arrays are flat `u32` vectors.
//!
//! The pool is **process-global** and append-only.  This is what makes ids
//! from different relations comparable: a join between `r` and `s` compares
//! ids minted by the same pool, so `id(a) == id(b) ⇔ a == b` holds across
//! snapshots, caches and threads.  Ids are never recycled; the working set
//! is bounded by the number of *distinct* values ever interned, which for
//! the decision procedures is bounded by the active domains of the canonical
//! instances and workload databases in play.

use crate::value::Value;
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// A dense id for an interned [`Value`].  Ids are process-global: two equal
/// values always intern to the same id, and two distinct values never share
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(u32);

impl ValueId {
    /// The raw index into the pool.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Intern `value`, returning its id (minting one on first sight).
    pub fn intern(value: &Value) -> ValueId {
        pool().intern(value)
    }

    /// The id of `value` if it has been interned before; `None` otherwise.
    /// A value that was never interned occurs in no snapshot, so a probe for
    /// it can be answered (negatively) without touching the pool.
    pub fn lookup(value: &Value) -> Option<ValueId> {
        pool().lookup(value)
    }

    /// Resolve the id back to its value (clones out of the pool; `Value`
    /// clones are `Copy`-or-`Arc`, so this is cheap).
    pub fn value(self) -> Value {
        pool().resolve(self)
    }
}

/// The process-wide pool.  `values` is append-only; `by_value` is the
/// reverse map.  Reads (resolve, lookup) take the read lock only.
struct ValuePool {
    by_value: RwLock<HashMap<Value, u32>>,
    values: RwLock<Vec<Value>>,
}

static POOL: OnceLock<ValuePool> = OnceLock::new();

fn pool() -> &'static ValuePool {
    POOL.get_or_init(|| ValuePool {
        by_value: RwLock::new(HashMap::new()),
        values: RwLock::new(Vec::new()),
    })
}

impl ValuePool {
    // The pool maps are only ever mutated append-style with both write locks
    // held, so a panicking holder cannot leave them torn: poisoned locks are
    // recovered rather than propagated.
    fn intern(&self, value: &Value) -> ValueId {
        use std::sync::PoisonError;
        if let Some(&id) = self
            .by_value
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(value)
        {
            return ValueId(id);
        }
        let mut by_value = self
            .by_value
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        // Re-check under the write lock: another thread may have won the race.
        if let Some(&id) = by_value.get(value) {
            return ValueId(id);
        }
        let mut values = self.values.write().unwrap_or_else(PoisonError::into_inner);
        let id = u32::try_from(values.len()).expect("value pool overflow");
        values.push(value.clone());
        by_value.insert(value.clone(), id);
        ValueId(id)
    }

    fn lookup(&self, value: &Value) -> Option<ValueId> {
        self.by_value
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(value)
            .copied()
            .map(ValueId)
    }

    fn resolve(&self, id: ValueId) -> Value {
        self.values
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)[id.0 as usize]
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_round_trips() {
        for v in [
            Value::int(42),
            Value::str("NASA"),
            Value::bool(true),
            Value::int(-7),
            Value::str(""),
        ] {
            let id = ValueId::intern(&v);
            assert_eq!(id.value(), v, "Value → id → Value must round-trip");
        }
    }

    #[test]
    fn equal_values_share_an_id_distinct_values_do_not() {
        let a = ValueId::intern(&Value::str("shared-id-test"));
        let b = ValueId::intern(&Value::str("shared-id-test"));
        assert_eq!(a, b);
        let c = ValueId::intern(&Value::str("shared-id-test-other"));
        assert_ne!(a, c);
        // An integer and a string rendering alike are still distinct values.
        let i = ValueId::intern(&Value::int(99_991));
        let s = ValueId::intern(&Value::str("99991"));
        assert_ne!(i, s);
    }

    #[test]
    fn lookup_does_not_mint() {
        let novel = Value::str("never-interned-by-any-other-test-7f3a9c");
        assert_eq!(ValueId::lookup(&novel), None);
        let id = ValueId::intern(&novel);
        assert_eq!(ValueId::lookup(&novel), Some(id));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..100)
                        .map(|i| ValueId::intern(&Value::int(1_000_000 + i)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<ValueId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ids in &all[1..] {
            assert_eq!(ids, &all[0], "every thread must see the same ids");
        }
        for (i, id) in all[0].iter().enumerate() {
            assert_eq!(id.value(), Value::int(1_000_000 + i as i64));
        }
    }
}
