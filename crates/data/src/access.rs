//! Access schemas: cardinality constraints `R(X → Y, N)` with associated
//! indices (Section 2 of the paper).
//!
//! An instance `D` satisfies `R(X → Y, N)` if for every `X`-value `ā`
//! occurring in the instance of `R`, the number of distinct `Y`-projections
//! of tuples with that `X`-value is at most `N`, and there is an index that
//! returns `D_{R:XY}(X = ā)` in `O(N)` time.  The index half lives in
//! [`crate::index`]; this module holds the declarative half.

use crate::database::Database;
use crate::error::DataError;
use crate::schema::DatabaseSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A single access constraint `R(X → Y, N)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccessConstraint {
    relation: String,
    x: Vec<String>,
    y: Vec<String>,
    n: usize,
}

impl AccessConstraint {
    /// Create a constraint `relation(x → y, n)`.
    ///
    /// `x` may be empty (the constraint then bounds the whole relation's
    /// `Y`-projection, as in `R(∅ → Y, N)`); `y` must not be empty.
    pub fn new(relation: impl Into<String>, x: &[&str], y: &[&str], n: usize) -> Result<Self> {
        if y.is_empty() {
            return Err(DataError::InvalidConstraint(
                "the Y attribute set of an access constraint must be non-empty".to_string(),
            ));
        }
        let mut seen = BTreeSet::new();
        for a in x.iter().chain(y.iter()) {
            // X and Y may overlap in principle, but repeated names within one
            // side are meaningless; reject them to catch typos early.
            let _ = a;
        }
        for a in x {
            if !seen.insert(*a) {
                return Err(DataError::InvalidConstraint(format!(
                    "attribute `{a}` repeated in X of constraint on `{}`",
                    relation.into()
                )));
            }
        }
        let mut seen_y = BTreeSet::new();
        for a in y {
            if !seen_y.insert(*a) {
                return Err(DataError::InvalidConstraint(format!(
                    "attribute `{a}` repeated in Y of constraint on `{}`",
                    relation.into()
                )));
            }
        }
        Ok(AccessConstraint {
            relation: relation.into(),
            x: x.iter().map(|s| s.to_string()).collect(),
            y: y.iter().map(|s| s.to_string()).collect(),
            n,
        })
    }

    /// A functional dependency `R(X → Y, 1)` with an index — the special case
    /// the paper's PTIME results (Corollary 4.4, Proposition 4.5) rely on.
    pub fn fd(relation: impl Into<String>, x: &[&str], y: &[&str]) -> Result<Self> {
        AccessConstraint::new(relation, x, y, 1)
    }

    /// The constrained relation's name.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The `X` attributes (index key).
    pub fn x(&self) -> &[String] {
        &self.x
    }

    /// The `Y` attributes (bounded, fetched values).
    pub fn y(&self) -> &[String] {
        &self.y
    }

    /// The cardinality bound `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// True if this constraint is a functional dependency (`N = 1`).
    pub fn is_fd(&self) -> bool {
        self.n == 1
    }

    /// The attributes the index can return, `X ∪ Y`, in `X`-then-`Y` order
    /// without duplicates.
    pub fn xy(&self) -> Vec<String> {
        let mut out = self.x.clone();
        for a in &self.y {
            if !out.contains(a) {
                out.push(a.clone());
            }
        }
        out
    }

    /// Validate the constraint against a schema: the relation and all
    /// attributes must exist.
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<()> {
        let rel = schema.expect_relation(&self.relation)?;
        for a in self.x.iter().chain(self.y.iter()) {
            if rel.position(a).is_none() {
                return Err(DataError::UnknownAttribute {
                    relation: self.relation.clone(),
                    attribute: a.clone(),
                });
            }
        }
        Ok(())
    }

    /// Check whether a database instance satisfies the cardinality half of
    /// this constraint; returns the first violation found, if any.
    pub fn check(&self, db: &Database) -> Result<Option<ConstraintViolation>> {
        let rel = db.expect_relation(&self.relation)?;
        let x_pos = rel.schema().positions(&self.x)?;
        let y_pos = rel.schema().positions(&self.y)?;
        let mut groups: BTreeMap<Tuple, BTreeSet<Tuple>> = BTreeMap::new();
        for t in rel.iter() {
            let key = t.project(&x_pos);
            let y_val = t.project(&y_pos);
            groups.entry(key).or_default().insert(y_val);
        }
        for (key, ys) in groups {
            if ys.len() > self.n {
                return Ok(Some(ConstraintViolation {
                    constraint: self.clone(),
                    x_value: key.into_values(),
                    distinct_y: ys.len(),
                }));
            }
        }
        Ok(None)
    }
}

impl fmt::Display for AccessConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let xs = if self.x.is_empty() {
            "∅".to_string()
        } else {
            self.x.join(",")
        };
        write!(
            f,
            "{}(({xs}) -> ({}), {})",
            self.relation,
            self.y.join(","),
            self.n
        )
    }
}

/// A witnessed violation of an access constraint: an `X`-value with more than
/// `N` distinct `Y`-projections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintViolation {
    /// The violated constraint.
    pub constraint: AccessConstraint,
    /// The offending `X`-value.
    pub x_value: Vec<Value>,
    /// How many distinct `Y`-values that `X`-value has.
    pub distinct_y: usize,
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violated: X-value ({}) has {} distinct Y-values (bound {})",
            self.constraint,
            self.x_value
                .iter()
                .map(|v| v.render().into_owned())
                .collect::<Vec<_>>()
                .join(", "),
            self.distinct_y,
            self.constraint.n()
        )
    }
}

/// An access schema `A`: a set of access constraints over one database
/// schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessSchema {
    constraints: Vec<AccessConstraint>,
}

impl AccessSchema {
    /// The empty access schema (`A = ∅`).
    pub fn empty() -> Self {
        AccessSchema::default()
    }

    /// Build an access schema from constraints.
    pub fn new(constraints: Vec<AccessConstraint>) -> Self {
        AccessSchema { constraints }
    }

    /// Add a constraint.
    pub fn add(&mut self, constraint: AccessConstraint) {
        self.constraints.push(constraint);
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Iterate over constraints.
    pub fn constraints(&self) -> impl Iterator<Item = &AccessConstraint> {
        self.constraints.iter()
    }

    /// Constraint at an index (stable ordering; indices are referenced by
    /// `fetch` plan nodes).
    pub fn constraint(&self, idx: usize) -> Option<&AccessConstraint> {
        self.constraints.get(idx)
    }

    /// Constraints on a given relation.
    pub fn constraints_on<'a>(
        &'a self,
        relation: &'a str,
    ) -> impl Iterator<Item = &'a AccessConstraint> + 'a {
        self.constraints
            .iter()
            .filter(move |c| c.relation() == relation)
    }

    /// True if every constraint is a functional dependency (`N = 1`) — the
    /// hypothesis of Corollary 4.4 / Proposition 4.5.
    pub fn is_fd_only(&self) -> bool {
        self.constraints.iter().all(AccessConstraint::is_fd)
    }

    /// Validate every constraint against a schema.
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<()> {
        for c in &self.constraints {
            c.validate(schema)?;
        }
        Ok(())
    }

    /// Check whether `D |= A`, returning every violation found.
    pub fn violations(&self, db: &Database) -> Result<Vec<ConstraintViolation>> {
        let mut out = Vec::new();
        for c in &self.constraints {
            if let Some(v) = c.check(db)? {
                out.push(v);
            }
        }
        Ok(out)
    }

    /// Check whether `D |= A`.
    pub fn satisfied_by(&self, db: &Database) -> Result<bool> {
        Ok(self.violations(db)?.is_empty())
    }

    /// The maximum bound `N` appearing in the schema (0 if empty); used to
    /// derive worst-case fetch sizes for plan cost estimates.
    pub fn max_bound(&self) -> usize {
        self.constraints
            .iter()
            .map(AccessConstraint::n)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for AccessSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<AccessConstraint> for AccessSchema {
    fn from_iter<T: IntoIterator<Item = AccessConstraint>>(iter: T) -> Self {
        AccessSchema::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DatabaseSchema;
    use crate::tuple;

    /// Schema and constraints of Example 1.1 (`R_0`, `A_0`).
    fn movie_setting() -> (DatabaseSchema, AccessSchema) {
        let schema = DatabaseSchema::with_relations(&[
            ("person", &["pid", "name", "affiliation"]),
            ("movie", &["mid", "mname", "studio", "release"]),
            ("rating", &["mid", "rank"]),
            ("like", &["pid", "id", "type"]),
        ])
        .unwrap();
        let phi1 = AccessConstraint::new("movie", &["studio", "release"], &["mid"], 2).unwrap();
        let phi2 = AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap();
        (schema, AccessSchema::new(vec![phi1, phi2]))
    }

    #[test]
    fn constructor_validation() {
        assert!(AccessConstraint::new("r", &["a"], &[], 3).is_err());
        assert!(AccessConstraint::new("r", &["a", "a"], &["b"], 3).is_err());
        assert!(AccessConstraint::new("r", &["a"], &["b", "b"], 3).is_err());
        let c = AccessConstraint::new("r", &[], &["b"], 3).unwrap();
        assert_eq!(c.x(), &[] as &[String]);
        assert_eq!(c.n(), 3);
        assert!(!c.is_fd());
        assert!(AccessConstraint::fd("r", &["a"], &["b"]).unwrap().is_fd());
    }

    #[test]
    fn xy_deduplicates_overlap() {
        let c = AccessConstraint::new("r", &["a", "b"], &["b", "c"], 1).unwrap();
        assert_eq!(c.xy(), vec!["a", "b", "c"]);
    }

    #[test]
    fn validate_against_schema() {
        let (schema, access) = movie_setting();
        assert!(access.validate(&schema).is_ok());
        let bad = AccessConstraint::new("movie", &["studio"], &["director"], 1).unwrap();
        assert!(bad.validate(&schema).is_err());
        let bad_rel = AccessConstraint::new("cinema", &["id"], &["city"], 1).unwrap();
        assert!(bad_rel.validate(&schema).is_err());
    }

    #[test]
    fn satisfaction_of_example_1_1() {
        let (schema, access) = movie_setting();
        let mut db = Database::empty(schema);
        db.insert("movie", tuple![1, "Lucy", "Universal", "2014"])
            .unwrap();
        db.insert("movie", tuple![2, "Ouija", "Universal", "2014"])
            .unwrap();
        db.insert("rating", tuple![1, 5]).unwrap();
        db.insert("rating", tuple![2, 3]).unwrap();
        assert!(access.satisfied_by(&db).unwrap());

        // A third Universal/2014 movie breaks φ1 = movie((studio,release) → mid, 2).
        db.insert("movie", tuple![3, "Dracula", "Universal", "2014"])
            .unwrap();
        let violations = access.violations(&db).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].distinct_y, 3);
        assert_eq!(violations[0].constraint.relation(), "movie");
        assert!(violations[0].to_string().contains("violated"));
        assert!(!access.satisfied_by(&db).unwrap());
    }

    #[test]
    fn fd_violation_detected() {
        let (schema, access) = movie_setting();
        let mut db = Database::empty(schema);
        db.insert("rating", tuple![1, 5]).unwrap();
        db.insert("rating", tuple![1, 4]).unwrap();
        assert!(!access.satisfied_by(&db).unwrap());
    }

    #[test]
    fn empty_x_bounds_whole_relation() {
        let schema = DatabaseSchema::with_relations(&[("r01", &["a"])]).unwrap();
        let c = AccessConstraint::new("r01", &[], &["a"], 2).unwrap();
        let access = AccessSchema::new(vec![c]);
        let mut db = Database::empty(schema);
        db.insert("r01", tuple![0]).unwrap();
        db.insert("r01", tuple![1]).unwrap();
        assert!(access.satisfied_by(&db).unwrap());
        db.insert("r01", tuple![2]).unwrap();
        assert!(!access.satisfied_by(&db).unwrap());
    }

    #[test]
    fn schema_helpers() {
        let (_, access) = movie_setting();
        assert_eq!(access.len(), 2);
        assert!(!access.is_empty());
        assert!(!access.is_fd_only());
        assert_eq!(access.max_bound(), 2);
        assert_eq!(access.constraints_on("movie").count(), 1);
        assert_eq!(access.constraints_on("person").count(), 0);
        assert!(access.constraint(0).is_some());
        assert!(access.constraint(7).is_none());
        assert!(AccessSchema::empty().is_fd_only());
        assert_eq!(AccessSchema::empty().max_bound(), 0);
        let display = access.to_string();
        assert!(display.contains("movie"));
        assert!(display.contains("rating"));
    }

    #[test]
    fn empty_database_satisfies_everything() {
        let (schema, access) = movie_setting();
        let db = Database::empty(schema);
        assert!(access.satisfied_by(&db).unwrap());
    }
}
