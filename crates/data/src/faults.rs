//! A vendored-shim-style failpoint facility for chaos testing.
//!
//! Production code marks *injection sites* — points where the real world can
//! fail (index build, snapshot interning, cache insert, thread spawn, mutate
//! closures) — by calling [`check`] with a site name from [`sites`].  Tests
//! compiled with the `failpoints` cargo feature activate faults at those
//! sites through a process-global registry ([`inject`] / [`inject_times`] /
//! [`clear`]); `tests/chaos.rs` in the umbrella crate drives the full matrix
//! under concurrent sessions.
//!
//! Without the feature (the default, and every production build) the whole
//! registry is compiled out and [`check`] is an `#[inline(always)]` `Ok(())`
//! — zero branches, zero atomics, zero cost on the serving path.
//!
//! Two fault kinds cover the failure modes the guardrails must contain:
//!
//! * [`FaultKind::Error`] — the site returns
//!   [`DataError::FaultInjected`], exercising the typed-error propagation
//!   path (all-or-nothing mutate, errors-never-cached, …);
//! * [`FaultKind::Panic`] — the site panics, exercising panic containment
//!   and lock-poison recovery (`catch_unwind` around shard workers and
//!   mutate closures, `PoisonError::into_inner` at every lock).
//!
//! Because the registry is process-global, tests that activate faults must
//! serialise themselves (the chaos suite holds one test-local mutex) and
//! should use the RAII [`FaultGuard`] so a failing assertion cannot leak an
//! active fault into the next test.

use crate::error::DataError;

/// The named injection sites compiled into the stack.  Site constants live
/// here (in the lowest crate) so `bqr-plan` and `bqr-engine` can mark their
/// sites without owning registry machinery.
pub mod sites {
    /// [`crate::IndexedDatabase::build`] — rebuilding access indexes while
    /// attaching or mutating an instance.
    pub const INDEX_BUILD: &str = "data.index.build";
    /// [`crate::snapshot_of`] — interning a relation snapshot (panic-only:
    /// the interning path is infallible, so an injected `Error` also
    /// surfaces as a panic at the site).
    pub const SNAPSHOT_INTERN: &str = "data.snapshot.intern";
    /// [`crate::snapshot::patched_snapshot_of`] — patching a predecessor
    /// snapshot in place from an exact write delta.  An injected `Error`
    /// degrades the patch to a from-scratch intern with identical contents
    /// (the fallback the chaos suite pins down); a `Panic` propagates and
    /// is contained by the engine's all-or-nothing mutate.
    pub const SNAPSHOT_PATCH: &str = "data.snapshot.patch";
    /// `bqr-plan`'s `PipelineCache` — registering a freshly compiled
    /// pipeline, with the cache lock held.
    pub const CACHE_INSERT: &str = "plan.cache.insert";
    /// `bqr-plan`'s sharded executor — spawning one shard worker thread
    /// (an active fault simulates spawn failure: the shard runs inline).
    pub const THREAD_SPAWN: &str = "plan.exec.spawn";
    /// `bqr-plan`'s morsel scheduler — dispatching a parallel morsel run
    /// (an active fault degrades the whole operator to the serial path,
    /// which must produce bit-identical answers).
    pub const MORSEL_DISPATCH: &str = "plan.exec.morsel";
    /// `bqr-engine`'s `Engine::mutate` — inside the panic-contained region
    /// around the user closure.
    pub const MUTATE_CLOSURE: &str = "engine.mutate.closure";
    /// `bqr-query`'s semi-naive view maintenance — applying a write delta
    /// to the materialised view extents during `Engine::mutate`.
    pub const VIEW_MAINTAIN: &str = "query.views.maintain";
    /// `bqr-server`'s admission gate — accepting a request into the serving
    /// front.  An active fault sheds the request with a typed error before
    /// any work is queued; nothing is half-admitted.
    pub const SERVER_ACCEPT: &str = "server.accept";
    /// `bqr-server`'s batch flusher — draining a coalesced read or write
    /// batch.  An active `Error` degrades the batch to serialised
    /// per-request execution (identical answers, no request dropped); a
    /// `Panic` is contained and every request in the batch gets a typed
    /// error, never a partial or duplicated answer.
    pub const BATCH_FLUSH: &str = "server.batch.flush";
}

/// What an activated fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The site returns [`DataError::FaultInjected`].
    Error,
    /// The site panics (message names the site).
    Panic,
}

/// Check the failpoint `site`.  Inactive (or feature-off): `Ok(())`.
/// Active with [`FaultKind::Error`]: `Err(DataError::FaultInjected)`.
/// Active with [`FaultKind::Panic`]: panics.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn check(_site: &str) -> Result<(), DataError> {
    Ok(())
}

/// Check the failpoint `site`.  Inactive (or feature-off): `Ok(())`.
/// Active with [`FaultKind::Error`]: `Err(DataError::FaultInjected)`.
/// Active with [`FaultKind::Panic`]: panics.
#[cfg(feature = "failpoints")]
pub fn check(site: &str) -> Result<(), DataError> {
    match registry::trigger(site) {
        None => Ok(()),
        Some(FaultKind::Error) => Err(DataError::FaultInjected(site.to_string())),
        Some(FaultKind::Panic) => panic!("failpoint `{site}`: injected panic"),
    }
}

#[cfg(feature = "failpoints")]
mod registry {
    use super::FaultKind;
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    struct Fault {
        kind: FaultKind,
        /// Remaining activations; `usize::MAX` means unlimited.
        remaining: usize,
    }

    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, Fault>>> = OnceLock::new();

    fn lock() -> MutexGuard<'static, HashMap<&'static str, Fault>> {
        REGISTRY
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            // The map is consistent at every await-free point; a panic kind
            // fires *after* this guard drops, so recovery is always safe.
            .unwrap_or_else(PoisonError::into_inner)
    }

    pub(super) fn trigger(site: &str) -> Option<FaultKind> {
        let mut map = lock();
        let fault = map.get_mut(site)?;
        let kind = fault.kind;
        if fault.remaining != usize::MAX {
            fault.remaining -= 1;
            if fault.remaining == 0 {
                map.remove(site);
            }
        }
        Some(kind)
    }

    pub(super) fn set(site: &'static str, kind: FaultKind, remaining: usize) {
        if remaining == 0 {
            return;
        }
        lock().insert(site, Fault { kind, remaining });
    }

    pub(super) fn unset(site: &str) {
        lock().remove(site);
    }

    pub(super) fn unset_all() {
        lock().clear();
    }

    pub(super) fn is_active(site: &str) -> bool {
        lock().contains_key(site)
    }
}

/// Activate `kind` at `site` until [`clear`]ed.
#[cfg(feature = "failpoints")]
pub fn inject(site: &'static str, kind: FaultKind) {
    registry::set(site, kind, usize::MAX);
}

/// Activate `kind` at `site` for the next `times` checks, then auto-clear.
#[cfg(feature = "failpoints")]
pub fn inject_times(site: &'static str, kind: FaultKind, times: usize) {
    registry::set(site, kind, times);
}

/// Deactivate any fault at `site`.
#[cfg(feature = "failpoints")]
pub fn clear(site: &str) {
    registry::unset(site);
}

/// Deactivate every fault.
#[cfg(feature = "failpoints")]
pub fn clear_all() {
    registry::unset_all();
}

/// Is a fault currently active at `site`?
#[cfg(feature = "failpoints")]
pub fn is_active(site: &str) -> bool {
    registry::is_active(site)
}

/// RAII activation: the fault is cleared when the guard drops, so a failing
/// assertion in a test cannot leak an active fault into the next one.
#[cfg(feature = "failpoints")]
#[must_use = "the fault is cleared when the guard drops"]
pub struct FaultGuard {
    site: &'static str,
}

#[cfg(feature = "failpoints")]
impl Drop for FaultGuard {
    fn drop(&mut self) {
        clear(self.site);
    }
}

/// [`inject`] with RAII cleanup.
#[cfg(feature = "failpoints")]
pub fn inject_guard(site: &'static str, kind: FaultKind) -> FaultGuard {
    inject(site, kind);
    FaultGuard { site }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// The registry is process-global; serialise the tests touching it.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn inactive_sites_pass() {
        let _serial = serial();
        assert!(check("no.such.site").is_ok());
        assert!(!is_active(sites::INDEX_BUILD));
    }

    #[test]
    fn error_kind_returns_the_typed_error() {
        let _serial = serial();
        let _guard = inject_guard(sites::INDEX_BUILD, FaultKind::Error);
        assert!(matches!(
            check(sites::INDEX_BUILD),
            Err(DataError::FaultInjected(s)) if s == sites::INDEX_BUILD
        ));
        drop(_guard);
        assert!(check(sites::INDEX_BUILD).is_ok(), "guard cleared the fault");
    }

    #[test]
    fn counted_faults_expire() {
        let _serial = serial();
        inject_times(sites::CACHE_INSERT, FaultKind::Error, 2);
        assert!(check(sites::CACHE_INSERT).is_err());
        assert!(check(sites::CACHE_INSERT).is_err());
        assert!(check(sites::CACHE_INSERT).is_ok(), "fault expired");
        assert!(!is_active(sites::CACHE_INSERT));
    }

    #[test]
    fn panic_kind_panics_and_clears() {
        let _serial = serial();
        let _guard = inject_guard(sites::MUTATE_CLOSURE, FaultKind::Panic);
        let caught = std::panic::catch_unwind(|| check(sites::MUTATE_CLOSURE));
        assert!(caught.is_err());
        drop(_guard);
        assert!(check(sites::MUTATE_CLOSURE).is_ok());
    }
}
