//! Tuples: ordered sequences of values.

use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// A tuple of values, positionally matching the attributes of some
/// [`RelationSchema`](crate::schema::RelationSchema).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Create a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The empty (0-ary) tuple — the single answer of a Boolean query.
    pub fn unit() -> Self {
        Tuple { values: Vec::new() }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// True for the 0-ary tuple.
    pub fn is_unit(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the underlying values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Field at position `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Project onto the given positions (in the given order).
    ///
    /// # Panics
    /// Panics if any position is out of range; callers validate positions
    /// against the relation schema.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(positions.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenate two tuples (used by Cartesian product).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }

    /// Iterate over fields.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.values.iter()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", v.render())?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

/// Build a tuple from anything convertible into values.
///
/// ```
/// use bqr_data::{tuple, Value};
/// let t = tuple![1, "NASA", true];
/// assert_eq!(t.arity(), 3);
/// assert_eq!(t[1], Value::str("NASA"));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_and_basic_accessors() {
        let t = tuple![1, "a", false];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::int(1));
        assert_eq!(t.get(1), Some(&Value::str("a")));
        assert_eq!(t.get(3), None);
        assert!(!t.is_unit());
        assert!(Tuple::unit().is_unit());
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let t = tuple![10, 20, 30];
        let p = t.project(&[2, 0, 0]);
        assert_eq!(p, tuple![30, 10, 10]);
        assert_eq!(t.project(&[]), Tuple::unit());
    }

    #[test]
    fn concat_appends() {
        let a = tuple![1, 2];
        let b = tuple!["x"];
        assert_eq!(a.concat(&b), tuple![1, 2, "x"]);
        assert_eq!(Tuple::unit().concat(&a), a);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(tuple![1, "NASA"].to_string(), "(1, NASA)");
        assert_eq!(Tuple::unit().to_string(), "()");
    }

    #[test]
    fn from_iterator_collects() {
        let t: Tuple = vec![Value::int(1), Value::int(2)].into_iter().collect();
        assert_eq!(t, tuple![1, 2]);
        let sum: i64 = t.iter().filter_map(Value::as_int).sum();
        assert_eq!(sum, 3);
    }
}
