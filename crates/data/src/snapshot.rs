//! Interned, immutable relation snapshots, shared process-wide per epoch.
//!
//! An [`InternedSnapshot`] freezes one relation epoch as a flat, row-major
//! `Vec<ValueId>` (see [`crate::intern`]) plus its [`RelationStats`].  It is
//! the storage format the slot-based homomorphism engine executes over: the
//! inner search loop touches only dense `u32` ids, never `Value`s.
//!
//! Snapshots are **shared across [`crate::IndexCache`] instances** through a
//! process-global registry keyed by relation epoch and holding `Weak`
//! references: two caches (or two threads) snapshotting the same unmutated
//! relation receive the same `Arc`, so the tuple data and statistics are
//! interned and materialised exactly once per epoch.  The registry piggybacks
//! on the epoch discipline of [`crate::Relation`] for invalidation: a mutated
//! relation presents a fresh epoch, its old snapshot entry simply goes stale
//! and is swept out once the last cache drops its `Arc`.
//!
//! Successive epochs of the same relation need not rebuild from scratch:
//! given the predecessor snapshot and the exact [`RelationDelta`] of the
//! mutation, [`patched_snapshot_of`] derives the successor in `O(|Δ|)` by
//! patching the flat row array and the occurrence-count statistics in place
//! — the write-path counterpart of `AccessIndex::with_delta`.

use crate::delta::RelationDelta;
use crate::intern::ValueId;
use crate::relation::Relation;
use crate::stats::RelationStats;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// An immutable, interned copy of one relation epoch.  Rows appear in
/// deterministic *first-seen* order: a from-scratch build interns in the
/// relation's sorted iteration order, and a delta-patched successor (see
/// [`InternedSnapshot::apply_delta`]) keeps its predecessor's order minus
/// the removed rows, with insertions appended.  Consumers may rely on the
/// order being deterministic per epoch, not on it being sorted — answer
/// sets are re-sorted at plan boundaries.
#[derive(Debug)]
pub struct InternedSnapshot {
    epoch: u64,
    arity: usize,
    rows: usize,
    /// Row-major: row `i` occupies `data[i*arity .. (i+1)*arity]`.
    data: Vec<ValueId>,
    stats: RelationStats,
    /// Exact per-position occurrence counts: `counts[p][id]` is the number
    /// of rows holding `id` at position `p`, so `counts[p].len()` is the
    /// distinct count reported by `stats`.  Carrying the full multiset
    /// (rather than just the distinct totals) is what lets
    /// [`InternedSnapshot::apply_delta`] keep the statistics exact under
    /// removals without re-scanning the surviving rows.
    counts: Vec<HashMap<ValueId, u32>>,
}

impl InternedSnapshot {
    fn build(relation: &Relation) -> Self {
        let arity = relation.schema().arity();
        let mut data = Vec::with_capacity(relation.len() * arity);
        for tuple in relation.iter() {
            for value in tuple.iter() {
                data.push(ValueId::intern(value));
            }
        }
        Self::from_data(relation.epoch(), arity, relation.len(), data)
    }

    fn from_data(epoch: u64, arity: usize, rows: usize, data: Vec<ValueId>) -> Self {
        debug_assert_eq!(data.len(), rows * arity);
        let mut counts: Vec<HashMap<ValueId, u32>> = vec![HashMap::new(); arity];
        for (pos, c) in counts.iter_mut().enumerate() {
            for row in 0..rows {
                *c.entry(data[row * arity + pos]).or_insert(0) += 1;
            }
        }
        let stats = RelationStats::from_parts(rows, counts.iter().map(HashMap::len).collect());
        InternedSnapshot {
            epoch,
            arity,
            rows,
            data,
            stats,
            counts,
        }
    }

    /// The successor snapshot for `relation = predecessor + delta`, built by
    /// patching this snapshot instead of re-interning `|R|` tuples: removed
    /// rows are filtered out of the flat row array, interned inserted rows
    /// are appended (in their sorted delta order), and the per-position
    /// occurrence counts — and through them the [`RelationStats`] distinct
    /// counts — are adjusted incrementally.  Only the `O(|Δ| · arity)`
    /// delta values are interned; the surviving rows are copied as ids.
    ///
    /// Returns `None` when the inputs do not reconcile (the delta applied
    /// to this snapshot does not yield exactly `relation`'s cardinality, a
    /// removed tuple has no matching row, or the relation is nullary) — the
    /// caller falls back to a from-scratch build with identical contents.
    pub fn apply_delta(
        &self,
        relation: &Relation,
        delta: &RelationDelta,
    ) -> Option<InternedSnapshot> {
        let arity = self.arity;
        let expected = (self.rows + delta.inserted.len()).checked_sub(delta.removed.len())?;
        if arity == 0 || relation.schema().arity() != arity || expected != relation.len() {
            return None;
        }
        let rows = relation.len();
        let mut counts = self.counts.clone();
        let mut data: Vec<ValueId> = Vec::with_capacity(rows.max(self.rows) * arity);
        if delta.removed.is_empty() {
            data.extend_from_slice(&self.data);
        } else {
            // Intern the removed tuples once, then filter their rows out
            // while keeping every survivor in predecessor order.
            let mut removed: HashSet<Vec<ValueId>> = delta
                .removed
                .iter()
                .filter(|t| t.arity() == arity)
                .map(|t| t.iter().map(ValueId::intern).collect())
                .collect();
            if removed.len() != delta.removed.len() {
                return None;
            }
            for row in self.data.chunks_exact(arity) {
                if removed.take(row).is_some() {
                    for (pos, id) in row.iter().enumerate() {
                        match counts[pos].get_mut(id) {
                            Some(n) if *n > 1 => *n -= 1,
                            Some(_) => {
                                counts[pos].remove(id);
                            }
                            None => return None,
                        }
                    }
                } else {
                    data.extend_from_slice(row);
                }
            }
            if !removed.is_empty() {
                // A removed tuple had no matching row: the delta does not
                // describe this snapshot's contents.
                return None;
            }
        }
        for t in &delta.inserted {
            if t.arity() != arity {
                return None;
            }
            for (pos, value) in t.iter().enumerate() {
                let id = ValueId::intern(value);
                data.push(id);
                *counts[pos].entry(id).or_insert(0) += 1;
            }
        }
        debug_assert_eq!(data.len(), rows * arity);
        let stats = RelationStats::from_parts(rows, counts.iter().map(HashMap::len).collect());
        Some(InternedSnapshot {
            epoch: relation.epoch(),
            arity,
            rows,
            data,
            stats,
            counts,
        })
    }

    /// The epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Attribute count.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the snapshot holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row `i` as a slice of interned ids.
    pub fn row(&self, i: u32) -> &[ValueId] {
        let start = i as usize * self.arity;
        &self.data[start..start + self.arity]
    }

    /// The flat row-major id data: `len() * arity()` ids.  This is the view
    /// the plan executor copies from (one `memcpy`, no per-row work).
    pub fn id_rows(&self) -> &[ValueId] {
        &self.data
    }

    /// The snapshot's cardinality statistics.
    pub fn stats(&self) -> &RelationStats {
        &self.stats
    }

    /// The flat id data of rows `range.start .. range.end` — the batch view
    /// vectorised kernels scan (`(range.end - range.start) * arity()` ids,
    /// no per-row indirection).
    pub fn batch(&self, range: std::ops::Range<usize>) -> &[ValueId] {
        &self.data[range.start * self.arity..range.end * self.arity]
    }

    /// Split the snapshot into at most `shards` contiguous, near-equal row
    /// ranges — [`shard_ranges`] packaged as borrowing views for data-layer
    /// consumers (the snapshot is `Send + Sync`, so shards can be handed to
    /// scoped threads).  The plan executor in `bqr-plan` drives the same
    /// partition through [`shard_ranges`] directly; either way the ranges
    /// depend only on `(len, shards)`, so evaluations that merge shard
    /// outputs in shard order are deterministic.
    pub fn shards(&self, shards: usize) -> Vec<SnapshotShard<'_>> {
        shard_ranges(self.rows, shards)
            .into_iter()
            .map(|(start, end)| SnapshotShard {
                snapshot: self,
                start: start as u32,
                end: end as u32,
            })
            .collect()
    }
}

/// A contiguous row range of an [`InternedSnapshot`].
#[derive(Debug, Clone, Copy)]
pub struct SnapshotShard<'a> {
    snapshot: &'a InternedSnapshot,
    start: u32,
    end: u32,
}

impl<'a> SnapshotShard<'a> {
    /// Number of rows in the shard.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True when the shard holds no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The shard's `[start, end)` row range within the snapshot.
    pub fn row_range(&self) -> (u32, u32) {
        (self.start, self.end)
    }

    /// Iterate over the shard's rows (slices into the snapshot).
    pub fn rows(&self) -> impl Iterator<Item = &'a [ValueId]> + '_ {
        let snapshot = self.snapshot;
        (self.start..self.end).map(move |i| snapshot.row(i))
    }

    /// The shard's flat row-major data.
    pub fn data(&self) -> &'a [ValueId] {
        let arity = self.snapshot.arity;
        &self.snapshot.data[self.start as usize * arity..self.end as usize * arity]
    }

    /// The shard's rows in fixed-size batches of at most `batch_rows` rows,
    /// each a flat row-major slice — the unit vectorised kernels consume.
    /// Concatenating the batches in order reproduces [`SnapshotShard::data`],
    /// so batch-at-a-time evaluation preserves the deterministic row order.
    pub fn batches(&self, batch_rows: usize) -> impl Iterator<Item = &'a [ValueId]> + '_ {
        let arity = self.snapshot.arity.max(1);
        self.data().chunks(batch_rows.max(1) * arity)
    }
}

/// Split `rows` into at most `shards` contiguous, near-equal `[start, end)`
/// ranges (fewer when `rows < shards`; never an empty range unless
/// `rows == 0`, which yields one empty range so callers still run their
/// merge path).  Pure function of `(rows, shards)` — the basis of
/// deterministic sharded evaluation.
pub fn shard_ranges(rows: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1).min(rows.max(1));
    let base = rows / shards;
    let extra = rows % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Registry of live snapshots, keyed by epoch.  `Weak` entries keep the
/// registry from pinning snapshots nobody uses; the sweep below bounds the
/// dead-entry backlog.
static REGISTRY: OnceLock<Mutex<HashMap<u64, Weak<InternedSnapshot>>>> = OnceLock::new();

/// Sweep threshold: when the registry holds this many entries, dead `Weak`s
/// are dropped before inserting the next snapshot.
const SWEEP_AT: usize = 1024;

/// The shared snapshot of `relation`'s current epoch, building (and
/// registering) it on first request.  All callers — every [`crate::IndexCache`]
/// on every thread — receive the same `Arc` for the same epoch.
///
/// The registry lock is never held across a build: the `O(|R| · arity)`
/// interning work happens unlocked, so a thread looking up an
/// already-registered snapshot never waits behind another thread's build.
/// Two threads racing to build the same epoch both do the work; the loser's
/// copy is discarded in favour of the registered one, which is benign (the
/// builds are content-identical) and keeps `Arc::ptr_eq` sharing intact.
pub fn snapshot_of(relation: &Relation) -> Arc<InternedSnapshot> {
    if let Some(live) = lookup(relation.epoch()) {
        return live;
    }
    // Interning is infallible, so this failpoint is panic-only: an injected
    // `Error` kind also surfaces as a panic here, outside the registry lock.
    if let Err(e) = crate::faults::check(crate::faults::sites::SNAPSHOT_INTERN) {
        panic!("{e}");
    }
    register(
        relation.epoch(),
        Arc::new(InternedSnapshot::build(relation)),
    )
}

/// The shared snapshot of `relation`'s current epoch, built by patching
/// `prev` — the snapshot of the predecessor contents — with the exact
/// `delta` separating the two versions: `O(|Δ|)` interning instead of the
/// `O(|R| · arity)` re-intern of a cold [`snapshot_of`].  The patched
/// snapshot is registered like any other, so lazily interning siblings
/// (per-maintenance index caches, concurrent sessions) receive the same
/// `Arc` and the epoch stays content-precise.
///
/// Falls back to the from-scratch build — identical contents, identical
/// statistics — whenever the patch cannot be applied: inconsistent inputs,
/// or an active [`crate::faults::sites::SNAPSHOT_PATCH`] `Error` fault.
pub fn patched_snapshot_of(
    relation: &Relation,
    prev: &InternedSnapshot,
    delta: &RelationDelta,
) -> Arc<InternedSnapshot> {
    if let Some(live) = lookup(relation.epoch()) {
        return live;
    }
    if crate::faults::check(crate::faults::sites::SNAPSHOT_PATCH).is_err() {
        return snapshot_of(relation);
    }
    match prev.apply_delta(relation, delta) {
        Some(patched) => register(relation.epoch(), Arc::new(patched)),
        None => snapshot_of(relation),
    }
}

/// The live registered snapshot for `epoch`, if any.
fn lookup(epoch: u64) -> Option<Arc<InternedSnapshot>> {
    REGISTRY
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&epoch)
        .and_then(Weak::upgrade)
}

/// Register `built` under `epoch` with the standard double-check: a racing
/// registration wins (keeping `Arc::ptr_eq` sharing intact), and dead
/// `Weak` entries are swept once the registry crosses [`SWEEP_AT`].
fn register(epoch: u64, built: Arc<InternedSnapshot>) -> Arc<InternedSnapshot> {
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = registry
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(live) = map.get(&epoch).and_then(Weak::upgrade) {
        return live;
    }
    if map.len() >= SWEEP_AT {
        map.retain(|_, w| w.strong_count() > 0);
    }
    map.insert(epoch, Arc::downgrade(&built));
    built
}

/// The epochs whose snapshots are currently live (registered and still held
/// by at least one `Arc`), in ascending order.  Introspection for cache
/// diagnostics and tests: a *warm* epoch appears here, so a prepared-plan
/// executor about to re-use a pipeline can tell whether its view snapshots
/// are still shared or would have to be re-interned (the cold-path cost
/// tracked in ROADMAP).  Dead `Weak` entries are not reported (nor swept).
pub fn live_snapshot_epochs() -> Vec<u64> {
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut live: Vec<u64> = registry
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .filter(|(_, w)| w.strong_count() > 0)
        .map(|(&epoch, _)| epoch)
        .collect();
    live.sort_unstable();
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;
    use crate::value::Value;

    fn rating() -> Relation {
        let schema = RelationSchema::new("rating", &["mid", "rank"]).unwrap();
        Relation::from_tuples(schema, vec![tuple![1, 5], tuple![2, 4], tuple![3, 5]]).unwrap()
    }

    #[test]
    fn snapshot_rows_are_interned_in_iteration_order() {
        let r = rating();
        let snap = snapshot_of(&r);
        assert_eq!(snap.arity(), 2);
        assert_eq!(snap.len(), 3);
        assert!(!snap.is_empty());
        assert_eq!(snap.epoch(), r.epoch());
        // Row 0 is the smallest tuple (1, 5); ids round-trip to the values.
        let row0: Vec<Value> = snap.row(0).iter().map(|id| id.value()).collect();
        assert_eq!(row0, vec![Value::int(1), Value::int(5)]);
        assert_eq!(snap.stats().tuples(), 3);
        assert_eq!(snap.stats().distinct(1), 2);
    }

    #[test]
    fn same_epoch_shares_one_snapshot() {
        let r = rating();
        let a = snapshot_of(&r);
        let b = snapshot_of(&r);
        assert!(Arc::ptr_eq(&a, &b), "one epoch, one snapshot");
        let clone = r.clone();
        let c = snapshot_of(&clone);
        assert!(Arc::ptr_eq(&a, &c), "unmutated clones share the epoch");
    }

    #[test]
    fn mutation_yields_a_fresh_snapshot() {
        let mut r = rating();
        let before = snapshot_of(&r);
        r.insert(tuple![4, 5]).unwrap();
        let after = snapshot_of(&r);
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(before.len(), 3, "old snapshot is frozen");
        assert_eq!(after.len(), 4);
    }

    #[test]
    fn dropped_snapshots_are_rebuilt_on_demand() {
        let r = rating();
        let first = snapshot_of(&r);
        let epoch = first.epoch();
        drop(first);
        // The registry only holds a Weak: after the last Arc is gone the
        // snapshot is rebuilt (fresh allocation) for the same epoch.
        let again = snapshot_of(&r);
        assert_eq!(again.epoch(), epoch);
        assert_eq!(again.len(), 3);
    }

    /// Mutate `rel` under delta tracking and return the recorded delta.
    fn tracked(rel: &mut Relation, f: impl FnOnce(&mut Relation)) -> RelationDelta {
        rel.begin_delta_tracking();
        f(rel);
        rel.end_delta_tracking().unwrap().1
    }

    #[test]
    fn patched_snapshot_matches_a_from_scratch_build() {
        let mut r = rating();
        let before = snapshot_of(&r);
        let delta = tracked(&mut r, |r| {
            r.insert(tuple![9, 4]).unwrap();
            r.insert(tuple![0, 5]).unwrap();
            r.remove(&tuple![2, 4]).unwrap();
        });
        let patched = before.apply_delta(&r, &delta).unwrap();
        let rebuilt = InternedSnapshot::build(&r);
        assert_eq!(patched.epoch(), r.epoch());
        assert_eq!(patched.len(), rebuilt.len());
        assert_eq!(
            patched.stats(),
            rebuilt.stats(),
            "exact stats under removals"
        );
        // Same row *set*; the patched snapshot keeps first-seen order
        // (predecessor order minus removals, insertions appended).
        let rows = |s: &InternedSnapshot| -> Vec<Vec<ValueId>> {
            (0..s.len() as u32).map(|i| s.row(i).to_vec()).collect()
        };
        let mut a = rows(&patched);
        let mut b = rows(&rebuilt);
        let first: Vec<Value> = patched.row(0).iter().map(|id| id.value()).collect();
        assert_eq!(first, vec![Value::int(1), Value::int(5)], "survivor order");
        let last: Vec<Value> = patched
            .row(patched.len() as u32 - 1)
            .iter()
            .map(|id| id.value())
            .collect();
        assert_eq!(last, vec![Value::int(9), Value::int(4)], "inserts appended");
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn inconsistent_deltas_refuse_to_patch() {
        let r = rating();
        let snap = snapshot_of(&r);
        // A removed tuple that never existed cannot be reconciled.
        let mut bogus = RelationDelta::default();
        bogus.removed.insert(tuple![77, 1]);
        bogus.inserted.insert(tuple![78, 1]);
        assert!(snap.apply_delta(&r, &bogus).is_none());
        // A delta whose cardinality math does not land on |R| is rejected.
        let mut short = RelationDelta::default();
        short.inserted.insert(tuple![77, 1]);
        assert!(snap.apply_delta(&r, &short).is_none());
    }

    #[test]
    fn patched_snapshot_of_registers_and_shares() {
        let mut r = rating();
        let before = snapshot_of(&r);
        let delta = tracked(&mut r, |r| {
            r.insert(tuple![6, 2]).unwrap();
        });
        let patched = patched_snapshot_of(&r, &before, &delta);
        assert_eq!(patched.epoch(), r.epoch());
        assert_eq!(patched.len(), 4);
        // Siblings resolving the same epoch share the patched Arc.
        let again = snapshot_of(&r);
        assert!(Arc::ptr_eq(&patched, &again));
        // A repeat request for the same epoch never re-patches.
        let fresh = patched_snapshot_of(&r, &before, &RelationDelta::default());
        assert!(Arc::ptr_eq(&fresh, &patched), "registry hit short-circuits");
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        assert_eq!(shard_ranges(0, 4), vec![(0, 0)]);
        assert_eq!(shard_ranges(3, 1), vec![(0, 3)]);
        assert_eq!(shard_ranges(2, 4), vec![(0, 1), (1, 2)], "never empty");
        assert_eq!(shard_ranges(10, 4), vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        assert_eq!(shard_ranges(10, 0), vec![(0, 10)], "0 shards clamps to 1");
        // Every partition covers [0, rows) without gaps or overlaps.
        for rows in [0usize, 1, 7, 100, 101] {
            for shards in [1usize, 2, 3, 4, 8] {
                let ranges = shard_ranges(rows, shards);
                let mut expect = 0;
                for (s, e) in &ranges {
                    assert_eq!(*s, expect);
                    assert!(e >= s);
                    expect = *e;
                }
                assert_eq!(expect, rows);
            }
        }
    }

    #[test]
    fn snapshot_shards_cover_every_row() {
        let r = rating();
        let snap = snapshot_of(&r);
        assert_eq!(snap.id_rows().len(), snap.len() * snap.arity());
        let shards = snap.shards(2);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards.iter().map(SnapshotShard::len).sum::<usize>(), 3);
        assert!(!shards[0].is_empty());
        assert_eq!(shards[0].row_range().0, 0);
        // Concatenating shard data in shard order reproduces the snapshot.
        let mut data = Vec::new();
        let mut rows = 0usize;
        for s in &shards {
            data.extend_from_slice(s.data());
            rows += s.rows().count();
        }
        assert_eq!(data, snap.id_rows());
        assert_eq!(rows, snap.len());
        // More shards than rows: one shard per row.
        assert_eq!(snap.shards(16).len(), 3);
    }

    #[test]
    fn batch_views_tile_the_snapshot() {
        let r = rating();
        let snap = snapshot_of(&r);
        assert_eq!(snap.batch(0..3), snap.id_rows());
        assert_eq!(snap.batch(1..2), snap.row(1));
        assert!(snap.batch(2..2).is_empty());
        // Shard batches of 2 rows: concatenation reproduces the shard data.
        let shards = snap.shards(1);
        let batches: Vec<_> = shards[0].batches(2).collect();
        assert_eq!(batches.len(), 2, "3 rows in batches of 2");
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[1].len(), 2);
        let joined: Vec<_> = batches.concat();
        assert_eq!(joined, shards[0].data());
    }

    #[test]
    fn live_epochs_track_snapshot_lifetimes() {
        let r = rating();
        let epoch = r.epoch();
        assert!(
            !live_snapshot_epochs().contains(&epoch),
            "nothing snapshotted this epoch yet"
        );
        let snap = snapshot_of(&r);
        assert!(live_snapshot_epochs().contains(&epoch), "live while held");
        drop(snap);
        assert!(
            !live_snapshot_epochs().contains(&epoch),
            "dead once the last Arc is gone"
        );
    }

    #[test]
    fn concurrent_readers_share_one_snapshot() {
        let r = rating();
        let snap = snapshot_of(&r);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&snap);
                let rel = r.clone();
                std::thread::spawn(move || {
                    let local = snapshot_of(&rel);
                    assert!(Arc::ptr_eq(&local, &s), "threads share the epoch snapshot");
                    // Concurrent reads resolve consistently.
                    (0..local.len() as u32)
                        .map(|i| local.row(i)[0].value())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            let firsts = h.join().unwrap();
            assert_eq!(firsts, vec![Value::int(1), Value::int(2), Value::int(3)]);
        }
    }
}
