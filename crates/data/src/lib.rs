//! # bqr-data — storage substrate for bounded query rewriting
//!
//! This crate provides the data layer used throughout the reproduction of
//! *Bounded Query Rewriting Using Views* (Cao, Fan, Geerts, Lu; PODS'16 /
//! TODS'18):
//!
//! * [`Value`], [`Tuple`] — the data model (a countably infinite domain `U`
//!   of constants, instantiated here with integers, strings and booleans);
//! * [`RelationSchema`], [`DatabaseSchema`] — relational schemas `R = (R_1,
//!   ..., R_n)` with named attributes;
//! * [`Relation`], [`Database`] — set-semantics instances `D` of a schema;
//! * [`AccessConstraint`], [`AccessSchema`] — access constraints
//!   `R(X → Y, N)`: a cardinality bound combined with an index on `X` for
//!   `XY`;
//! * [`AccessIndex`], [`IndexedDatabase`] — the indices associated with an
//!   access schema, supporting the `fetch` primitive of bounded query plans;
//! * [`IndexCache`], [`RelationIndex`], [`InternedIndex`] — epoch-keyed
//!   memoisation of per-access-pattern hash indexes, shared by the
//!   homomorphism engine and the evaluators in `bqr-query` (invalidated
//!   automatically on mutation via [`Relation::epoch`]);
//! * [`ValueId`] ([`intern`]), [`InternedSnapshot`] ([`snapshot`]) — dense
//!   `u32` value interning and immutable per-epoch relation snapshots,
//!   shared process-wide so the join engine's hot loop never touches a
//!   [`Value`];
//! * [`DeltaLog`], [`RelationDelta`] ([`delta`]) — per-relation write sets
//!   captured during a mutation, the currency of `O(|Δ|)` view maintenance,
//!   in-place index patching and per-relation cache invalidation upstream;
//! * [`FetchStats`] — I/O accounting: how many base tuples a plan fetched
//!   (`|D_ξ|` in the paper) versus how many a full scan would touch — and
//!   [`RelationStats`], the per-snapshot cardinality statistics consumed by
//!   the cost-based join planner in `bqr-query`;
//! * [`faults`] — a registry-activated failpoint facility (compiled to
//!   no-ops unless the `failpoints` cargo feature is on) whose injection
//!   sites thread through the whole serving stack for chaos testing.
//!
//! The crate is deliberately free of query-language concepts; those live in
//! `bqr-query` and `bqr-plan`.

pub mod access;
pub mod database;
pub mod delta;
pub mod error;
pub mod faults;
pub mod index;
pub mod index_cache;
pub mod intern;
pub mod relation;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod tuple;
pub mod value;

pub use access::{AccessConstraint, AccessSchema, ConstraintViolation};
pub use database::{Database, DeltaCheckpoint};
pub use delta::{DeltaLog, RelationChange, RelationDelta};
pub use error::DataError;
pub use index::{AccessIndex, IndexedDatabase, InternedAccessIndex};
pub use index_cache::{IndexCache, InternedIndex, RelationIndex};
pub use intern::ValueId;
pub use relation::Relation;
pub use schema::{DatabaseSchema, RelationSchema};
pub use snapshot::{
    live_snapshot_epochs, patched_snapshot_of, shard_ranges, snapshot_of, InternedSnapshot,
    SnapshotShard,
};
pub use stats::{FetchStats, RelationStats};
pub use tuple::Tuple;
pub use value::Value;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, DataError>;
