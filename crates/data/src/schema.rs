//! Relational schemas: relation schemas with named attributes and database
//! schemas `R = (R_1, ..., R_n)`.

use crate::error::DataError;
use crate::Result;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A relation schema: a relation name together with an ordered list of
/// attribute names.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelationSchema {
    name: Arc<str>,
    attributes: Vec<Arc<str>>,
}

impl RelationSchema {
    /// Create a relation schema.
    ///
    /// Returns an error if an attribute name is repeated.
    pub fn new(name: impl AsRef<str>, attributes: &[&str]) -> Result<Self> {
        let mut seen = std::collections::BTreeSet::new();
        for a in attributes {
            if !seen.insert(*a) {
                return Err(DataError::DuplicateAttribute {
                    relation: name.as_ref().to_string(),
                    attribute: (*a).to_string(),
                });
            }
        }
        Ok(RelationSchema {
            name: Arc::from(name.as_ref()),
            attributes: attributes.iter().map(|a| Arc::from(*a)).collect(),
        })
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute names in declaration order.
    pub fn attributes(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(|a| a.as_ref())
    }

    /// Position of an attribute, if present.
    pub fn position(&self, attribute: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.as_ref() == attribute)
    }

    /// Positions of a list of attributes, failing on the first unknown one.
    pub fn positions(&self, attributes: &[impl AsRef<str>]) -> Result<Vec<usize>> {
        attributes
            .iter()
            .map(|a| {
                self.position(a.as_ref())
                    .ok_or_else(|| DataError::UnknownAttribute {
                        relation: self.name.to_string(),
                        attribute: a.as_ref().to_string(),
                    })
            })
            .collect()
    }

    /// Attribute name at a position.
    pub fn attribute(&self, i: usize) -> Option<&str> {
        self.attributes.get(i).map(|a| a.as_ref())
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A database schema: a named collection of relation schemas.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatabaseSchema {
    relations: BTreeMap<String, RelationSchema>,
}

impl DatabaseSchema {
    /// The empty schema.
    pub fn new() -> Self {
        DatabaseSchema::default()
    }

    /// Build a schema from `(name, attributes)` pairs.
    pub fn with_relations(relations: &[(&str, &[&str])]) -> Result<Self> {
        let mut schema = DatabaseSchema::new();
        for (name, attrs) in relations {
            schema.add_relation(RelationSchema::new(name, attrs)?)?;
        }
        Ok(schema)
    }

    /// Add a relation schema; rejects duplicates.
    pub fn add_relation(&mut self, relation: RelationSchema) -> Result<()> {
        if self.relations.contains_key(relation.name()) {
            return Err(DataError::DuplicateRelation(relation.name().to_string()));
        }
        self.relations.insert(relation.name().to_string(), relation);
        Ok(())
    }

    /// Look up a relation schema by name.
    pub fn relation(&self, name: &str) -> Option<&RelationSchema> {
        self.relations.get(name)
    }

    /// Look up a relation schema by name, returning an error if absent.
    pub fn expect_relation(&self, name: &str) -> Result<&RelationSchema> {
        self.relation(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Number of relations in the schema.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterate over relation schemas in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }

    /// Relation names in deterministic (sorted) order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(|k| k.as_str())
    }

    /// Total number of attribute positions across all relations; used by the
    /// effective-syntax machinery to bound variable counts (`|R|` in the
    /// paper's complexity statements).
    pub fn total_arity(&self) -> usize {
        self.relations.values().map(|r| r.arity()).sum()
    }
}

impl fmt::Display for DatabaseSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.relations.values().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[
            ("person", &["pid", "name", "affiliation"]),
            ("movie", &["mid", "mname", "studio", "release"]),
            ("rating", &["mid", "rank"]),
            ("like", &["pid", "id", "type"]),
        ])
        .unwrap()
    }

    #[test]
    fn relation_schema_positions() {
        let r = RelationSchema::new("movie", &["mid", "mname", "studio", "release"]).unwrap();
        assert_eq!(r.arity(), 4);
        assert_eq!(r.position("studio"), Some(2));
        assert_eq!(r.position("nope"), None);
        assert_eq!(r.positions(&["release", "mid"]).unwrap(), vec![3, 0]);
        assert!(r.positions(&["release", "nope"]).is_err());
        assert_eq!(r.attribute(1), Some("mname"));
        assert_eq!(r.attribute(9), None);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = RelationSchema::new("r", &["a", "b", "a"]).unwrap_err();
        assert!(matches!(err, DataError::DuplicateAttribute { .. }));
    }

    #[test]
    fn database_schema_lookup() {
        let s = movie_schema();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(s.relation("movie").is_some());
        assert!(s.relation("unknown").is_none());
        assert!(s.expect_relation("rating").is_ok());
        assert!(matches!(
            s.expect_relation("unknown"),
            Err(DataError::UnknownRelation(_))
        ));
        assert_eq!(s.total_arity(), 3 + 4 + 2 + 3);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut s = movie_schema();
        let err = s
            .add_relation(RelationSchema::new("movie", &["a"]).unwrap())
            .unwrap_err();
        assert!(matches!(err, DataError::DuplicateRelation(_)));
    }

    #[test]
    fn names_are_sorted() {
        let s = movie_schema();
        let names: Vec<_> = s.relation_names().collect();
        assert_eq!(names, vec!["like", "movie", "person", "rating"]);
    }

    #[test]
    fn display_formats() {
        let r = RelationSchema::new("rating", &["mid", "rank"]).unwrap();
        assert_eq!(r.to_string(), "rating(mid, rank)");
        let s = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])]).unwrap();
        assert_eq!(s.to_string(), "rating(mid, rank)");
    }
}
