//! Relation instances: sets of tuples over a relation schema.

use crate::delta::RelationDelta;
use crate::error::DataError;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Global epoch counter: every stamp is issued exactly once, so two
/// relations share an epoch only when one is an unmutated clone of the
/// other — i.e. when their contents are guaranteed identical.  This is what
/// lets [`crate::IndexCache`] key cached indexes by epoch alone.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

fn fresh_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// A relation instance `D` of a single relation schema `R`, with set
/// semantics and deterministic (sorted) iteration order.
///
/// Each instance carries an *epoch*: a globally unique stamp refreshed on
/// every content mutation.  Derived structures (hash indexes, snapshots) can
/// therefore be cached under the epoch and are implicitly invalidated the
/// moment the relation changes.  Clones share the epoch of their source —
/// sound, because a clone has identical contents until it is itself mutated
/// (which re-stamps it).
///
/// Tuple storage is behind an [`Arc`]: cloning a relation (and hence a whole
/// [`crate::Database`]) is `O(1)` per relation, and the underlying set is
/// copied lazily on the first genuine write to a shared instance.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    tuples: Arc<BTreeSet<Tuple>>,
    epoch: u64,
    /// Present only between `begin_delta_tracking` / `end_delta_tracking`:
    /// the net write set accumulated since tracking began.
    tracking: Option<Box<DeltaState>>,
}

#[derive(Debug, Clone)]
struct DeltaState {
    /// The epoch at the moment tracking began.
    base_epoch: u64,
    delta: RelationDelta,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        // The epoch is an identity stamp, not content: equal-content
        // relations must compare equal regardless of their mutation history.
        self.schema == other.schema && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl Relation {
    /// An empty instance of the given schema.
    pub fn empty(schema: RelationSchema) -> Self {
        Relation {
            schema,
            tuples: Arc::new(BTreeSet::new()),
            epoch: fresh_epoch(),
            tracking: None,
        }
    }

    /// The relation's current epoch: a globally unique stamp that changes on
    /// every mutation.  Two relations with the same epoch are guaranteed to
    /// have identical contents.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Build a relation from an iterator of tuples, validating arity.
    pub fn from_tuples(
        schema: RelationSchema,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self> {
        let mut rel = Relation::empty(schema);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Relation name (shorthand for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; returns `true` if it was not already present.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.check_arity(&tuple)?;
        // The membership test comes first so a no-op insert neither copies
        // shared storage nor re-stamps the epoch.
        if self.tuples.contains(&tuple) {
            return Ok(false);
        }
        if let Some(state) = self.tracking.as_deref_mut() {
            // An insert that undoes a tracked removal cancels out: the net
            // delta always satisfies inserted = new∖old, removed = old∖new.
            if !state.delta.removed.remove(&tuple) {
                state.delta.inserted.insert(tuple.clone());
            }
        }
        Arc::make_mut(&mut self.tuples).insert(tuple);
        self.epoch = fresh_epoch();
        Ok(true)
    }

    /// Remove a tuple; returns `true` if it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> Result<bool> {
        self.check_arity(tuple)?;
        if !self.tuples.contains(tuple) {
            return Ok(false);
        }
        if let Some(state) = self.tracking.as_deref_mut() {
            if !state.delta.inserted.remove(tuple) {
                state.delta.removed.insert(tuple.clone());
            }
        }
        Arc::make_mut(&mut self.tuples).remove(tuple);
        self.epoch = fresh_epoch();
        Ok(true)
    }

    fn check_arity(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(DataError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        Ok(())
    }

    /// Begin recording the net write set of this instance.  Any previous
    /// tracking state is discarded.
    pub fn begin_delta_tracking(&mut self) {
        self.tracking = Some(Box::new(DeltaState {
            base_epoch: self.epoch,
            delta: RelationDelta::default(),
        }));
    }

    /// Stop recording and return `(base_epoch, net delta)` — the epoch the
    /// relation had when tracking began plus everything that changed since.
    /// Returns `None` if tracking state was lost, which happens exactly when
    /// the instance was replaced wholesale (e.g. by assignment through
    /// `Database::relation_mut`) rather than mutated in place.
    pub fn end_delta_tracking(&mut self) -> Option<(u64, RelationDelta)> {
        self.tracking.take().map(|s| (s.base_epoch, s.delta))
    }

    /// The live tracking state — `(base epoch, net delta so far)` — without
    /// consuming it.  `None` when tracking is off or was lost to a wholesale
    /// replacement.  This is what [`crate::Database::delta_checkpoint`]
    /// captures to make a span of writes invertible.
    pub fn tracking_state(&self) -> Option<(u64, &RelationDelta)> {
        self.tracking.as_deref().map(|s| (s.base_epoch, &s.delta))
    }

    /// Restore a previously issued epoch.  Only sound when the caller can
    /// prove the contents are identical to what they were under that epoch —
    /// e.g. after a tracked mutation whose net delta came out empty.
    pub(crate) fn restore_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// True when `self` and `other` share the same underlying tuple storage
    /// (copy-on-write has not forked them apart).  Shared storage implies
    /// identical contents; the converse does not hold.
    pub fn shares_storage(&self, other: &Relation) -> bool {
        Arc::ptr_eq(&self.tuples, &other.tuples)
    }

    /// Insert a tuple built from values convertible into [`Value`].
    pub fn insert_values<V: Into<Value>>(&mut self, values: Vec<V>) -> Result<bool> {
        self.insert(Tuple::new(values.into_iter().map(Into::into).collect()))
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterate over tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Project every tuple onto the given attribute names, deduplicating.
    pub fn project(&self, attributes: &[&str]) -> Result<Vec<Tuple>> {
        let positions = self.schema.positions(attributes)?;
        let mut out = BTreeSet::new();
        for t in self.tuples.iter() {
            out.insert(t.project(&positions));
        }
        Ok(out.into_iter().collect())
    }

    /// All tuples `t` with `t[X] = key` where `X` is given by attribute
    /// positions.  Linear scan; the indexed access path lives in
    /// [`crate::index::AccessIndex`].
    pub fn select_eq(&self, positions: &[usize], key: &[Value]) -> Vec<&Tuple> {
        self.tuples
            .iter()
            .filter(|t| positions.iter().zip(key).all(|(&p, v)| &t[p] == v))
            .collect()
    }

    /// Distinct values of the attribute at `position`.
    pub fn distinct_values(&self, position: usize) -> BTreeSet<Value> {
        self.tuples.iter().map(|t| t[position].clone()).collect()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.tuples.len())?;
        for t in self.tuples.iter() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_set::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rating() -> Relation {
        let schema = RelationSchema::new("rating", &["mid", "rank"]).unwrap();
        Relation::from_tuples(
            schema,
            vec![tuple![1, 5], tuple![2, 4], tuple![3, 5], tuple![2, 4]],
        )
        .unwrap()
    }

    #[test]
    fn set_semantics_dedup() {
        let r = rating();
        assert_eq!(r.len(), 3, "duplicate tuple must be deduplicated");
        assert!(r.contains(&tuple![1, 5]));
        assert!(!r.contains(&tuple![1, 4]));
    }

    #[test]
    fn arity_checked_on_insert() {
        let mut r = rating();
        let err = r.insert(tuple![1, 2, 3]).unwrap_err();
        assert!(matches!(
            err,
            DataError::ArityMismatch {
                expected: 2,
                actual: 3,
                ..
            }
        ));
        assert!(r.insert(tuple![9, 1]).unwrap());
        assert!(!r.insert(tuple![9, 1]).unwrap(), "re-insert reports false");
    }

    #[test]
    fn insert_values_converts() {
        let schema = RelationSchema::new("person", &["pid", "name", "affiliation"]).unwrap();
        let mut r = Relation::empty(schema);
        r.insert_values(vec![
            Value::from(1),
            Value::from("Ann"),
            Value::from("NASA"),
        ])
        .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn projection_dedups() {
        let r = rating();
        let ranks = r.project(&["rank"]).unwrap();
        assert_eq!(ranks, vec![tuple![4], tuple![5]]);
        assert!(r.project(&["bogus"]).is_err());
    }

    #[test]
    fn select_eq_scans() {
        let r = rating();
        let hits = r.select_eq(&[1], &[Value::int(5)]);
        assert_eq!(hits.len(), 2);
        let hits = r.select_eq(&[0, 1], &[Value::int(2), Value::int(4)]);
        assert_eq!(hits.len(), 1);
        let hits = r.select_eq(&[0], &[Value::int(42)]);
        assert!(hits.is_empty());
    }

    #[test]
    fn distinct_values_sorted() {
        let r = rating();
        let vals: Vec<_> = r.distinct_values(1).into_iter().collect();
        assert_eq!(vals, vec![Value::int(4), Value::int(5)]);
    }

    #[test]
    fn epoch_changes_on_mutation_only() {
        let mut r = rating();
        let e0 = r.epoch();
        // Re-inserting an existing tuple leaves the contents (and epoch) alone.
        assert!(!r.insert(tuple![1, 5]).unwrap());
        assert_eq!(r.epoch(), e0);
        // A genuine insertion re-stamps the relation.
        assert!(r.insert(tuple![7, 7]).unwrap());
        assert_ne!(r.epoch(), e0);
    }

    #[test]
    fn epoch_is_shared_by_clones_until_divergence() {
        let r = rating();
        let mut c = r.clone();
        assert_eq!(
            r.epoch(),
            c.epoch(),
            "unmutated clone has identical contents"
        );
        c.insert(tuple![8, 1]).unwrap();
        assert_ne!(r.epoch(), c.epoch(), "divergent clone must be re-stamped");
        // Epochs are globally unique: two fresh relations never collide.
        let schema = RelationSchema::new("x", &["a"]).unwrap();
        assert_ne!(
            Relation::empty(schema.clone()).epoch(),
            Relation::empty(schema).epoch()
        );
    }

    #[test]
    fn equality_ignores_epoch() {
        let a = rating();
        let b = rating();
        assert_ne!(a.epoch(), b.epoch());
        assert_eq!(a, b, "content equality must ignore the identity stamp");
    }

    #[test]
    fn remove_mirrors_insert() {
        let mut r = rating();
        let e0 = r.epoch();
        assert!(!r.remove(&tuple![42, 1]).unwrap(), "absent tuple");
        assert_eq!(r.epoch(), e0, "no-op remove keeps the epoch");
        assert!(r.remove(&tuple![1, 5]).unwrap());
        assert_ne!(r.epoch(), e0);
        assert_eq!(r.len(), 2);
        assert!(r.remove(&tuple![1, 2, 3]).is_err(), "arity checked");
    }

    #[test]
    fn clones_share_storage_until_first_write() {
        let r = rating();
        let mut c = r.clone();
        assert!(r.shares_storage(&c));
        // No-op writes must not fork the storage.
        assert!(!c.insert(tuple![1, 5]).unwrap());
        assert!(!c.remove(&tuple![42, 1]).unwrap());
        assert!(r.shares_storage(&c));
        // The first genuine write copies.
        c.insert(tuple![8, 8]).unwrap();
        assert!(!r.shares_storage(&c));
        assert_eq!(r.len(), 3);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn delta_tracking_records_the_net_write_set() {
        let mut r = rating();
        let e0 = r.epoch();
        r.begin_delta_tracking();
        r.insert(tuple![9, 9]).unwrap();
        r.remove(&tuple![1, 5]).unwrap();
        // Cancelling pairs: net no-ops on both sides.
        r.insert(tuple![7, 7]).unwrap();
        r.remove(&tuple![7, 7]).unwrap();
        r.remove(&tuple![2, 4]).unwrap();
        r.insert(tuple![2, 4]).unwrap();
        let (base, delta) = r.end_delta_tracking().unwrap();
        assert_eq!(base, e0);
        assert_eq!(delta.inserted.iter().collect::<Vec<_>>(), [&tuple![9, 9]]);
        assert_eq!(delta.removed.iter().collect::<Vec<_>>(), [&tuple![1, 5]]);
        assert!(r.end_delta_tracking().is_none(), "tracking is one-shot");
    }

    #[test]
    fn display_mentions_cardinality() {
        let text = rating().to_string();
        assert!(text.contains("[3 tuples]"));
        assert!(text.contains("(1, 5)"));
    }
}
