//! Error type for the data layer.

use std::error::Error;
use std::fmt;

/// Errors produced by schema construction, instance manipulation and index
/// maintenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A relation with the same name was already declared.
    DuplicateRelation(String),
    /// An attribute name is repeated within one relation schema.
    DuplicateAttribute { relation: String, attribute: String },
    /// A relation name does not exist in the schema.
    UnknownRelation(String),
    /// An attribute name does not exist in a relation schema.
    UnknownAttribute { relation: String, attribute: String },
    /// A tuple's arity does not match its relation schema.
    ArityMismatch {
        relation: String,
        expected: usize,
        actual: usize,
    },
    /// An access constraint refers to a relation or attribute that does not
    /// exist, or is otherwise malformed.
    InvalidConstraint(String),
    /// A fetch was issued against a constraint that the indexed database does
    /// not maintain an index for.
    NoIndexForConstraint(String),
    /// A fault injected at a named failpoint site (see [`crate::faults`];
    /// only ever produced by test builds with the `failpoints` feature).
    FaultInjected(String),
    /// A rollback to a delta checkpoint found a relation whose write history
    /// was lost since the checkpoint (wholesale replacement while tracking),
    /// so the writes cannot be inverted.
    RollbackHistoryLost(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` is declared more than once")
            }
            DataError::DuplicateAttribute {
                relation,
                attribute,
            } => write!(
                f,
                "attribute `{attribute}` is declared more than once in relation `{relation}`"
            ),
            DataError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            DataError::UnknownAttribute {
                relation,
                attribute,
            } => {
                write!(f, "relation `{relation}` has no attribute `{attribute}`")
            }
            DataError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "tuple of arity {actual} inserted into relation `{relation}` of arity {expected}"
            ),
            DataError::InvalidConstraint(msg) => write!(f, "invalid access constraint: {msg}"),
            DataError::NoIndexForConstraint(c) => {
                write!(f, "no index is maintained for access constraint {c}")
            }
            DataError::FaultInjected(site) => {
                write!(f, "injected fault at failpoint `{site}`")
            }
            DataError::RollbackHistoryLost(relation) => {
                write!(
                    f,
                    "cannot roll back relation `{relation}`: its write history was lost since the checkpoint"
                )
            }
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let cases: Vec<(DataError, &str)> = vec![
            (DataError::DuplicateRelation("r".into()), "r"),
            (
                DataError::DuplicateAttribute {
                    relation: "r".into(),
                    attribute: "a".into(),
                },
                "a",
            ),
            (DataError::UnknownRelation("q".into()), "q"),
            (
                DataError::UnknownAttribute {
                    relation: "r".into(),
                    attribute: "z".into(),
                },
                "z",
            ),
            (
                DataError::ArityMismatch {
                    relation: "r".into(),
                    expected: 2,
                    actual: 3,
                },
                "arity 3",
            ),
            (DataError::InvalidConstraint("bad".into()), "bad"),
            (
                DataError::NoIndexForConstraint("r(X->Y,2)".into()),
                "r(X->Y,2)",
            ),
            (
                DataError::FaultInjected("data.index.build".into()),
                "data.index.build",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn is_std_error() {
        fn takes_error(_: &dyn Error) {}
        takes_error(&DataError::UnknownRelation("x".into()));
    }
}
