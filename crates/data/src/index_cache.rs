//! Cached per-access-pattern hash indexes over relation instances.
//!
//! Every hot path of the reproduction — homomorphism search, CQ containment
//! (thousands of Chandra–Merlin tests against the same canonical instance),
//! naive `Q(D)` evaluation — probes relations through a hash index keyed on
//! some subset of attribute positions.  Building such an index is `O(|R|)`;
//! before this module existed it was rebuilt on *every* call, so a workload
//! of repeated containment checks paid index construction thousands of times
//! over.
//!
//! [`IndexCache`] memoises [`RelationIndex`]es under the key
//! `(relation epoch, key positions)`.  The epoch (see [`Relation::epoch`])
//! is a globally unique stamp refreshed on every mutation, which gives
//! invalidation for free: a mutated relation presents a new epoch, its stale
//! indexes are simply never looked up again.  Tuple snapshots are shared
//! across the indexes of one epoch, so indexing the same relation under
//! several access patterns clones its tuples once.
//!
//! The cache uses `Rc`/`RefCell` interior mutability: callers share an
//! `&IndexCache` and receive `Rc<RelationIndex>` handles that stay valid
//! across further cache activity.  It is single-threaded by design, like the
//! rest of the decision procedures.

use crate::intern::ValueId;
use crate::relation::Relation;
use crate::snapshot::{snapshot_of, InternedSnapshot};
use crate::tuple::Tuple;
use crate::value::Value;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// A hash index over one relation snapshot, keyed on a fixed list of
/// attribute positions.  Probing with a key returns the positions (into the
/// snapshot) of all tuples whose projection onto `key_positions` equals the
/// key.
#[derive(Debug)]
pub struct RelationIndex {
    key_positions: Vec<usize>,
    /// Snapshot of the relation's tuples in its (sorted) iteration order,
    /// shared across all indexes built for the same epoch.
    tuples: Rc<Vec<Tuple>>,
    map: HashMap<Vec<Value>, Vec<u32>>,
}

impl RelationIndex {
    /// Build an index over `snapshot` keyed on `key_positions`.
    fn build(snapshot: Rc<Vec<Tuple>>, key_positions: &[usize]) -> Self {
        let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        for (i, t) in snapshot.iter().enumerate() {
            let key: Vec<Value> = key_positions.iter().map(|&p| t[p].clone()).collect();
            map.entry(key).or_default().push(i as u32);
        }
        RelationIndex {
            key_positions: key_positions.to_vec(),
            tuples: snapshot,
            map,
        }
    }

    /// Build a standalone (uncached) index over the current contents of
    /// `relation`.
    pub fn over(relation: &Relation, key_positions: &[usize]) -> Self {
        RelationIndex::build(Rc::new(relation.iter().cloned().collect()), key_positions)
    }

    /// The positions this index is keyed on.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_positions
    }

    /// Positions (for [`RelationIndex::tuple`]) of the tuples matching `key`.
    ///
    /// Accepts a borrowed slice so callers can reuse a scratch buffer for the
    /// probe key instead of allocating per probe.
    pub fn probe(&self, key: &[Value]) -> &[u32] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The tuple at snapshot position `i` (as returned by `probe`).
    pub fn tuple(&self, i: u32) -> &Tuple {
        &self.tuples[i as usize]
    }

    /// Number of tuples in the snapshot.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// A hash index over an [`InternedSnapshot`], keyed on a fixed list of
/// attribute positions.  This is the index shape the slot-based homomorphism
/// engine probes: keys and payloads are dense `u32` ids, so hashing an
/// integer key and comparing candidates never touches a [`Value`].
#[derive(Debug)]
pub struct InternedIndex {
    key_positions: Vec<usize>,
    snapshot: Arc<InternedSnapshot>,
    map: HashMap<Vec<ValueId>, Vec<u32>>,
}

impl InternedIndex {
    fn build(snapshot: Arc<InternedSnapshot>, key_positions: &[usize]) -> Self {
        let mut map: HashMap<Vec<ValueId>, Vec<u32>> = HashMap::new();
        for i in 0..snapshot.len() as u32 {
            let row = snapshot.row(i);
            let key: Vec<ValueId> = key_positions.iter().map(|&p| row[p]).collect();
            map.entry(key).or_default().push(i);
        }
        InternedIndex {
            key_positions: key_positions.to_vec(),
            snapshot,
            map,
        }
    }

    /// The positions this index is keyed on.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_positions
    }

    /// The snapshot the index is built over.
    pub fn snapshot(&self) -> &Arc<InternedSnapshot> {
        &self.snapshot
    }

    /// Row indexes (for [`InternedIndex::row`]) of the rows matching `key`.
    pub fn probe(&self, key: &[ValueId]) -> &[u32] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The row at snapshot position `i` (as returned by `probe`).
    pub fn row(&self, i: u32) -> &[ValueId] {
        self.snapshot.row(i)
    }

    /// Number of rows in the underlying snapshot.
    pub fn len(&self) -> usize {
        self.snapshot.len()
    }

    /// True when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_empty()
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// Cache key: a relation epoch plus the indexed key positions.
type IndexKey = (u64, Vec<usize>);

/// Memoisation of [`RelationIndex`]es and [`InternedIndex`]es keyed by
/// `(epoch, key positions)`.  Interned snapshots themselves come from the
/// process-global registry (see [`crate::snapshot`]), so they are shared
/// *across* cache instances; the per-cache maps below only memoise the
/// indexes built over them.
#[derive(Debug, Default)]
pub struct IndexCache {
    snapshots: RefCell<HashMap<u64, Rc<Vec<Tuple>>>>,
    indexes: RefCell<HashMap<IndexKey, Rc<RelationIndex>>>,
    interned: RefCell<HashMap<IndexKey, Rc<InternedIndex>>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

/// Soft bound on cached indexes; exceeding it clears the cache.  Long-running
/// searches over ever-fresh canonical instances would otherwise accumulate
/// entries for epochs that are never probed again.
const MAX_CACHED_INDEXES: usize = 4096;

impl IndexCache {
    /// An empty cache.
    pub fn new() -> Self {
        IndexCache::default()
    }

    /// The index for `relation` keyed on `key_positions`, built at most once
    /// per (content-identical) relation and access pattern.
    pub fn index_for(&self, relation: &Relation, key_positions: &[usize]) -> Rc<RelationIndex> {
        let epoch = relation.epoch();
        if let Some(idx) = self.indexes.borrow().get(&(epoch, key_positions.to_vec())) {
            self.hits.set(self.hits.get() + 1);
            return Rc::clone(idx);
        }
        self.misses.set(self.misses.get() + 1);
        if self.indexes.borrow().len() >= MAX_CACHED_INDEXES {
            self.clear();
        }
        let snapshot = {
            let mut snapshots = self.snapshots.borrow_mut();
            Rc::clone(
                snapshots
                    .entry(epoch)
                    .or_insert_with(|| Rc::new(relation.iter().cloned().collect())),
            )
        };
        let idx = Rc::new(RelationIndex::build(snapshot, key_positions));
        self.indexes
            .borrow_mut()
            .insert((epoch, key_positions.to_vec()), Rc::clone(&idx));
        idx
    }

    /// The shared interned snapshot of `relation`'s current epoch (built at
    /// most once per epoch *process-wide*, not per cache).
    pub fn snapshot(&self, relation: &Relation) -> Arc<InternedSnapshot> {
        snapshot_of(relation)
    }

    /// The interned index for `relation` keyed on `key_positions`, built at
    /// most once per (epoch, access pattern) in this cache; the underlying
    /// snapshot is shared across caches.
    pub fn interned_index_for(
        &self,
        relation: &Relation,
        key_positions: &[usize],
    ) -> Rc<InternedIndex> {
        let epoch = relation.epoch();
        if let Some(idx) = self.interned.borrow().get(&(epoch, key_positions.to_vec())) {
            self.hits.set(self.hits.get() + 1);
            return Rc::clone(idx);
        }
        self.misses.set(self.misses.get() + 1);
        if self.interned.borrow().len() >= MAX_CACHED_INDEXES {
            self.interned.borrow_mut().clear();
        }
        let idx = Rc::new(InternedIndex::build(snapshot_of(relation), key_positions));
        self.interned
            .borrow_mut()
            .insert((epoch, key_positions.to_vec()), Rc::clone(&idx));
        idx
    }

    /// Cache hits so far (index served without building).
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses so far (index built).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Number of indexes currently cached (value-keyed and interned).
    pub fn len(&self) -> usize {
        self.indexes.borrow().len() + self.interned.borrow().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.indexes.borrow().is_empty() && self.interned.borrow().is_empty()
    }

    /// Drop every cached snapshot and index (statistics are kept).
    pub fn clear(&self) {
        self.snapshots.borrow_mut().clear();
        self.indexes.borrow_mut().clear();
        self.interned.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;

    fn rating() -> Relation {
        let schema = RelationSchema::new("rating", &["mid", "rank"]).unwrap();
        Relation::from_tuples(schema, vec![tuple![1, 5], tuple![2, 4], tuple![3, 5]]).unwrap()
    }

    #[test]
    fn probe_groups_by_key() {
        let r = rating();
        let idx = RelationIndex::over(&r, &[1]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        let hits = idx.probe(&[Value::int(5)]);
        assert_eq!(hits.len(), 2);
        let mids: Vec<i64> = hits
            .iter()
            .map(|&i| idx.tuple(i)[0].as_int().unwrap())
            .collect();
        assert_eq!(mids, vec![1, 3]);
        assert!(idx.probe(&[Value::int(9)]).is_empty());
    }

    #[test]
    fn empty_key_positions_index_everything_under_the_unit_key() {
        let r = rating();
        let idx = RelationIndex::over(&r, &[]);
        assert_eq!(idx.probe(&[]).len(), 3);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn cache_hits_on_repeated_lookups() {
        let cache = IndexCache::new();
        let r = rating();
        let a = cache.index_for(&r, &[0]);
        let b = cache.index_for(&r, &[0]);
        assert!(
            Rc::ptr_eq(&a, &b),
            "second lookup must reuse the built index"
        );
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different access pattern is a different index but shares the
        // tuple snapshot.
        let c = cache.index_for(&r, &[1]);
        assert!(!Rc::ptr_eq(&a, &c));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn mutation_invalidates_via_epoch() {
        let cache = IndexCache::new();
        let mut r = rating();
        let before = cache.index_for(&r, &[1]);
        assert_eq!(before.probe(&[Value::int(5)]).len(), 2);

        r.insert(tuple![4, 5]).unwrap();
        let after = cache.index_for(&r, &[1]);
        assert!(!Rc::ptr_eq(&before, &after), "mutation must miss the cache");
        assert_eq!(
            after.probe(&[Value::int(5)]).len(),
            3,
            "fresh index sees the new tuple"
        );
        // The stale index is untouched (snapshot semantics).
        assert_eq!(before.probe(&[Value::int(5)]).len(), 2);
    }

    #[test]
    fn unmutated_clone_shares_cached_index() {
        let cache = IndexCache::new();
        let r = rating();
        let a = cache.index_for(&r, &[0]);
        let clone = r.clone();
        let b = cache.index_for(&clone, &[0]);
        assert!(
            Rc::ptr_eq(&a, &b),
            "clone with identical contents may share the index"
        );
    }

    #[test]
    fn interned_index_probes_by_id() {
        let cache = IndexCache::new();
        let r = rating();
        let idx = cache.interned_index_for(&r, &[1]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.key_positions(), &[1]);
        let five = crate::intern::ValueId::intern(&Value::int(5));
        let hits = idx.probe(&[five]);
        assert_eq!(hits.len(), 2);
        let mids: Vec<Value> = hits.iter().map(|&i| idx.row(i)[0].value()).collect();
        assert_eq!(mids, vec![Value::int(1), Value::int(3)]);
        let nine = crate::intern::ValueId::intern(&Value::int(9));
        assert!(idx.probe(&[nine]).is_empty());
    }

    #[test]
    fn interned_indexes_share_the_snapshot_and_invalidate_by_epoch() {
        let cache = IndexCache::new();
        let other_cache = IndexCache::new();
        let mut r = rating();
        let a = cache.interned_index_for(&r, &[0]);
        let b = cache.interned_index_for(&r, &[1]);
        assert!(
            std::sync::Arc::ptr_eq(a.snapshot(), b.snapshot()),
            "two access patterns share one interned snapshot"
        );
        let c = other_cache.interned_index_for(&r, &[0]);
        assert!(
            std::sync::Arc::ptr_eq(a.snapshot(), c.snapshot()),
            "snapshots are shared across cache instances"
        );
        let again = cache.interned_index_for(&r, &[0]);
        assert!(Rc::ptr_eq(&a, &again), "repeat lookups hit the cache");

        r.insert(tuple![4, 5]).unwrap();
        let fresh = cache.interned_index_for(&r, &[0]);
        assert!(!Rc::ptr_eq(&a, &fresh), "mutation must miss the cache");
        assert_eq!(fresh.len(), 4);
        assert_eq!(a.len(), 3, "stale index keeps its frozen snapshot");
    }

    #[test]
    fn clear_resets_entries() {
        let cache = IndexCache::new();
        let r = rating();
        let _ = cache.index_for(&r, &[0]);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        let _ = cache.index_for(&r, &[0]);
        assert_eq!(cache.misses(), 2);
    }
}
