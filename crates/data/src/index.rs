//! Constraint-backed indices and the `fetch` primitive.
//!
//! Each access constraint `R(X → Y, N)` comes with an index that, given an
//! `X`-value `ā`, returns `D_{R:XY}(X = ā)` — the `X∪Y` projections of the
//! tuples of `R` matching `ā` — in time `O(N)`.  [`AccessIndex`] is a hash
//! index realising exactly that contract, and [`IndexedDatabase`] bundles a
//! [`Database`] with one index per constraint of an [`AccessSchema`], which is
//! what bounded query plans execute against.

use crate::access::{AccessConstraint, AccessSchema};
use crate::database::Database;
use crate::delta::{DeltaLog, RelationDelta};
use crate::error::DataError;
use crate::intern::ValueId;
use crate::snapshot::{patched_snapshot_of, snapshot_of, InternedSnapshot};
use crate::stats::FetchStats;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A hash index on `X` for `X ∪ Y`, backing one access constraint.
#[derive(Debug, Clone)]
pub struct AccessIndex {
    constraint: AccessConstraint,
    /// Attribute names of the tuples returned by [`AccessIndex::probe`]
    /// (the constraint's `X ∪ Y`, in that order).
    xy_attributes: Vec<String>,
    /// Group storage is `Arc`-shared so [`AccessIndex::with_delta`] can
    /// copy the whole index in `O(#groups)` *pointer* clones and fork only
    /// the groups the delta actually lands in (`Arc::make_mut`).
    map: HashMap<Vec<Value>, Arc<Group>>,
    /// The id-native sibling, built lazily on first interned probe.  The
    /// index is immutable after construction, so the lazily built sibling
    /// can never go stale.
    interned: OnceLock<InternedAccessIndex>,
}

/// One key's group: the deduplicated `X ∪ Y` projections, plus a source
/// multiplicity per projection.  The multiplicities are what make removals
/// patchable: several source tuples can project to the same group entry, so
/// a removed tuple decrements its entry's count and the entry only leaves
/// the group when the count reaches zero — no rebuild needed to decide
/// whether another source tuple still supports it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Group {
    rows: Vec<Tuple>,
    /// `sources[i]` = number of source tuples projecting to `rows[i]`.
    sources: Vec<u32>,
}

impl Group {
    /// Record one more source tuple projecting to `row`.
    fn add_source(&mut self, row: Tuple) {
        match self.rows.iter().position(|r| *r == row) {
            Some(i) => self.sources[i] += 1,
            None => {
                self.rows.push(row);
                self.sources.push(1);
            }
        }
    }

    /// Drop one source tuple projecting to `row`; returns `true` when the
    /// projection lost its last source and was removed from the group.
    fn remove_source(&mut self, row: &Tuple) -> bool {
        let Some(i) = self.rows.iter().position(|r| r == row) else {
            debug_assert!(false, "exact delta removed a tuple the index never saw");
            return false;
        };
        self.sources[i] -= 1;
        if self.sources[i] == 0 {
            self.rows.remove(i);
            self.sources.remove(i);
            return true;
        }
        false
    }
}

/// The id-native form of an [`AccessIndex`]: groups are stored contiguously
/// in one flat row-major `Vec<ValueId>`, and probing with an interned key
/// returns the whole group `D_{R:XY}(X = ā)` as a flat id slice.  This is
/// the index the compiled plan executor fetches through — the hot loop never
/// touches a [`Value`], yet every probe still accounts `|D_ξ|` tuple by
/// tuple (the group's row count) exactly like the `Value`-keyed path.
#[derive(Debug, Clone)]
pub struct InternedAccessIndex {
    /// `|X ∪ Y|` — always ≥ 1 (constraints require a non-empty `Y`).
    arity: usize,
    /// Flattened groups, row-major; each key's group is contiguous.
    rows: Vec<ValueId>,
    /// Key → (first row, row count) into `rows`.
    map: HashMap<Vec<ValueId>, (u32, u32)>,
}

impl InternedAccessIndex {
    fn build(index: &AccessIndex) -> Self {
        let arity = index.xy_attributes.len();
        let mut rows = Vec::new();
        let mut map = HashMap::with_capacity(index.map.len());
        for (key, group) in &index.map {
            let key_ids: Vec<ValueId> = key.iter().map(ValueId::intern).collect();
            let first = (rows.len() / arity) as u32;
            for t in &group.rows {
                for v in t.iter() {
                    rows.push(ValueId::intern(v));
                }
            }
            map.insert(key_ids, (first, group.rows.len() as u32));
        }
        InternedAccessIndex { arity, rows, map }
    }

    /// Arity of the returned rows (`|X ∪ Y|`).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Retrieve `D_{R:XY}(X = ā)` as a flat id slice of
    /// `n · arity()` ids (`n` tuples, in the same deterministic group order
    /// as [`AccessIndex::probe`]).  Empty for absent keys.
    pub fn probe(&self, key: &[ValueId]) -> &[ValueId] {
        match self.map.get(key) {
            Some(&(first, count)) => {
                let start = first as usize * self.arity;
                &self.rows[start..start + count as usize * self.arity]
            }
            None => &[],
        }
    }

    /// Number of tuples a probe result holds.
    pub fn probe_len(&self, key: &[ValueId]) -> usize {
        self.map.get(key).map(|&(_, n)| n as usize).unwrap_or(0)
    }

    /// Number of distinct `X`-values indexed.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Total number of indexed tuples (across all groups).
    pub fn total_rows(&self) -> usize {
        self.rows.len() / self.arity
    }

    /// The mean group size, rounded up and never below 1 — the
    /// cardinality statistic the executor's cost heuristics consume
    /// (expected `|D_{R:XY}(X = ā)|` for a random indexed key).
    pub fn avg_group_len(&self) -> usize {
        let keys = self.map.len().max(1);
        self.total_rows().div_ceil(keys).max(1)
    }

    /// Vectorised probe: look up a whole batch of keys (`n_keys` keys stored
    /// contiguously in `keys_flat`, each of `keys_flat.len() / n_keys` ids)
    /// and append every matching `X ∪ Y` row to `out`, recording each probe
    /// in `stats` exactly as `n_keys` successive [`InternedAccessIndex::probe`]
    /// calls would — one `fetch_call` per key, one fetched tuple per matching
    /// row, in batch order.  Returns the number of rows appended.
    pub fn probe_batch(
        &self,
        keys_flat: &[ValueId],
        n_keys: usize,
        out: &mut Vec<ValueId>,
        stats: &mut FetchStats,
    ) -> usize {
        let before = out.len();
        if n_keys == 0 {
            return 0;
        }
        let key_len = keys_flat.len() / n_keys;
        debug_assert_eq!(keys_flat.len(), key_len * n_keys);
        if key_len == 0 {
            // X = ∅: every "key" is the empty tuple; probe it once per key so
            // the per-probe accounting matches the scalar path.
            for _ in 0..n_keys {
                let rows = self.probe(&[]);
                stats.record_fetch(rows.len() / self.arity);
                out.extend_from_slice(rows);
            }
        } else {
            for key in keys_flat.chunks_exact(key_len) {
                let rows = self.probe(key);
                stats.record_fetch(rows.len() / self.arity);
                out.extend_from_slice(rows);
            }
        }
        (out.len() - before) / self.arity
    }
}

impl AccessIndex {
    /// Build the index for `constraint` over the current contents of `db`.
    pub fn build(constraint: &AccessConstraint, db: &Database) -> Result<Self> {
        let rel = db.expect_relation(constraint.relation())?;
        let x_pos = rel.schema().positions(constraint.x())?;
        let xy_attrs = constraint.xy();
        let xy_pos = rel
            .schema()
            .positions(&xy_attrs.iter().map(String::as_str).collect::<Vec<_>>())?;
        let mut map: HashMap<Vec<Value>, Arc<Group>> = HashMap::new();
        for t in rel.iter() {
            let key: Vec<Value> = x_pos.iter().map(|&p| t[p].clone()).collect();
            let entry = Arc::make_mut(map.entry(key).or_default());
            // Deduplicate: the index returns the *set* D_{R:XY}(X = ā), but
            // the per-projection source count is kept so removals can patch.
            entry.add_source(t.project(&xy_pos));
        }
        Ok(AccessIndex {
            constraint: constraint.clone(),
            xy_attributes: xy_attrs,
            map,
            interned: OnceLock::new(),
        })
    }

    /// The id-native form of the index, built (and its values interned) on
    /// first use and cached for the lifetime of the index.
    pub fn interned(&self) -> &InternedAccessIndex {
        self.interned
            .get_or_init(|| InternedAccessIndex::build(self))
    }

    /// The constraint this index backs.
    pub fn constraint(&self) -> &AccessConstraint {
        &self.constraint
    }

    /// Attribute names of the returned tuples (`X ∪ Y`).
    pub fn xy_attributes(&self) -> &[String] {
        &self.xy_attributes
    }

    /// Number of distinct `X`-values indexed.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Retrieve `D_{R:XY}(X = ā)`.  Returns an empty slice for `X`-values not
    /// present in the data.
    pub fn probe(&self, key: &[Value]) -> &[Tuple] {
        self.map.get(key).map(|g| g.rows.as_slice()).unwrap_or(&[])
    }

    /// The number of source tuples supporting the group entry `row` under
    /// `key` (zero when absent) — exposes the multiplicity bookkeeping that
    /// makes removals patchable, for the differential tests.
    pub fn source_multiplicity(&self, key: &[Value], row: &Tuple) -> u32 {
        self.map
            .get(key)
            .and_then(|g| g.rows.iter().position(|r| r == row).map(|i| g.sources[i]))
            .unwrap_or(0)
    }

    /// The largest group size in the index — useful for verifying that the
    /// cardinality bound holds on the indexed data.
    pub fn max_group_size(&self) -> usize {
        self.map.values().map(|g| g.rows.len()).max().unwrap_or(0)
    }

    /// A copy of this index with an exact write delta patched into the
    /// groups — `O(#groups)` `Arc` clones plus `O(|Δ|)` forked-group work,
    /// instead of the `O(|R|)` of a full rebuild.  Removals are as cheap as
    /// inserts: the per-projection source multiplicities decide whether a
    /// removed tuple's projection is still supported by another source
    /// tuple, so the last rebuild-on-removal path is gone.
    pub fn with_delta(&self, delta: &RelationDelta, rel: &crate::Relation) -> Result<Self> {
        let x_pos = rel.schema().positions(self.constraint.x())?;
        let xy_pos = rel.schema().positions(
            &self
                .xy_attributes
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
        )?;
        let mut map = self.map.clone();
        // The net delta's inserted/removed sets are disjoint, so the order
        // of application is immaterial; either way, only the groups the
        // delta lands in are forked — every other group stays shared with
        // the predecessor index.
        for t in &delta.removed {
            let key: Vec<Value> = x_pos.iter().map(|&p| t[p].clone()).collect();
            let Some(group) = map.get_mut(&key) else {
                debug_assert!(false, "exact delta removed a tuple from an unindexed key");
                continue;
            };
            Arc::make_mut(group).remove_source(&t.project(&xy_pos));
            if group.rows.is_empty() {
                // Keys with no surviving projection leave the map entirely,
                // keeping distinct-key statistics identical to a rebuild.
                map.remove(&key);
            }
        }
        for t in &delta.inserted {
            let key: Vec<Value> = x_pos.iter().map(|&p| t[p].clone()).collect();
            let entry = Arc::make_mut(map.entry(key).or_default());
            entry.add_source(t.project(&xy_pos));
        }
        Ok(AccessIndex {
            constraint: self.constraint.clone(),
            xy_attributes: self.xy_attributes.clone(),
            map,
            // The patched index has new contents: its id-native sibling is
            // re-interned lazily on first probe.
            interned: OnceLock::new(),
        })
    }
}

/// A database together with the indices of an access schema.  This is the
/// runtime object bounded query plans execute against: views are cached
/// separately (see `bqr-plan`), and base data is reachable *only* through
/// [`IndexedDatabase::fetch`].
#[derive(Debug, Clone)]
pub struct IndexedDatabase {
    db: Database,
    access: AccessSchema,
    /// One index per constraint, in the order of `access.constraints()`.
    /// Behind `Arc` so successive versions share the indexes of untouched
    /// relations — including their lazily interned id-native siblings.
    indexes: Vec<Arc<AccessIndex>>,
    /// Strong per-relation anchors into the process-global snapshot
    /// registry, filled by [`IndexedDatabase::apply_delta`].  The registry
    /// itself only holds `Weak` references, so without an anchor every
    /// snapshot dies with the last per-evaluation cache that held it and
    /// the next mutation re-interns `O(|R|)` values from scratch.  Anchored
    /// here, an untouched relation's snapshot stays warm across versions
    /// (the successor carries the same `Arc` forward) and a touched
    /// relation's snapshot is derived from its anchored predecessor in
    /// `O(|Δ|)` via [`crate::snapshot::patched_snapshot_of`].
    snapshots: HashMap<String, Arc<InternedSnapshot>>,
}

impl IndexedDatabase {
    /// Build all indices for `access` over `db`.
    ///
    /// This does *not* require `db |= access`; callers that need the
    /// cardinality guarantee should check
    /// [`AccessSchema::satisfied_by`] first (the decision procedures only
    /// promise bounded fetches on satisfying instances).
    pub fn build(db: Database, access: AccessSchema) -> Result<Self> {
        crate::faults::check(crate::faults::sites::INDEX_BUILD)?;
        access.validate(db.schema())?;
        let indexes = access
            .constraints()
            .map(|c| AccessIndex::build(c, &db).map(Arc::new))
            .collect::<Result<Vec<_>>>()?;
        Ok(IndexedDatabase {
            db,
            access,
            indexes,
            // Snapshots are anchored lazily by the first `apply_delta`, so
            // attach (and the Rebuild maintenance mode) pays no interning
            // cost for relations nothing ever snapshots.
            snapshots: HashMap::new(),
        })
    }

    /// Re-index `db` (the successor of this instance's database) from a
    /// write delta, touching only the indexes of changed relations:
    /// untouched constraints share this instance's [`AccessIndex`] (and its
    /// interned sibling) by `Arc`; exact deltas — inserts *and* removals,
    /// thanks to the per-projection source multiplicities — are patched in
    /// `O(#groups + |Δ|)`; only unknown (wholesale-replacement) changes
    /// rebuild that relation's index.
    ///
    /// Interned snapshots follow the same discipline: every relation's
    /// snapshot is anchored on the successor, carried forward by `Arc` when
    /// untouched, patched from the anchored predecessor in `O(|Δ|)` for
    /// exact deltas ([`patched_snapshot_of`]), and re-interned from scratch
    /// only for unknown (wholesale-replacement) changes or on the first
    /// delta application after an attach.
    pub fn apply_delta(&self, db: Database, delta: &DeltaLog) -> Result<Self> {
        crate::faults::check(crate::faults::sites::INDEX_BUILD)?;
        let indexes = self
            .access
            .constraints()
            .zip(&self.indexes)
            .map(|(c, old)| {
                let name = c.relation();
                if !delta.touches(name) {
                    return Ok(Arc::clone(old));
                }
                match delta.exact(name) {
                    Some(d) => old.with_delta(d, db.expect_relation(name)?).map(Arc::new),
                    None => AccessIndex::build(c, &db).map(Arc::new),
                }
            })
            .collect::<Result<Vec<_>>>()?;
        let mut snapshots = HashMap::with_capacity(self.snapshots.len().max(1));
        for rel in db.relations() {
            let name = rel.name();
            // An anchor is only usable if it really is the predecessor's
            // snapshot; epochs are globally unique, so comparing against the
            // predecessor relation's epoch proves it.
            let anchored = self.snapshots.get(name).filter(|prev| {
                self.db
                    .relation(name)
                    .is_some_and(|r| r.epoch() == prev.epoch())
            });
            let snap = if !delta.touches(name) {
                match anchored {
                    // Untouched relation, warm anchor: same epoch, same Arc.
                    Some(prev) => Arc::clone(prev),
                    None => snapshot_of(rel),
                }
            } else {
                match (delta.exact(name), anchored) {
                    (Some(d), Some(prev)) => patched_snapshot_of(rel, prev, d),
                    _ => snapshot_of(rel),
                }
            };
            snapshots.insert(name.to_string(), snap);
        }
        Ok(IndexedDatabase {
            db,
            access: self.access.clone(),
            indexes,
            snapshots,
        })
    }

    /// The anchored snapshot of `relation`, if this version holds one (only
    /// versions produced by [`IndexedDatabase::apply_delta`] do).
    pub fn snapshot(&self, relation: &str) -> Option<&Arc<InternedSnapshot>> {
        self.snapshots.get(relation)
    }

    /// True when the `idx`-th constraint's index is the same shared object
    /// as `other`'s (no rebuild or patch happened between the two versions).
    pub fn shares_index(&self, other: &IndexedDatabase, idx: usize) -> bool {
        match (self.indexes.get(idx), other.indexes.get(idx)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The access schema whose indices are maintained.
    pub fn access_schema(&self) -> &AccessSchema {
        &self.access
    }

    /// The index for the `idx`-th constraint of the access schema.
    pub fn index(&self, idx: usize) -> Option<&AccessIndex> {
        self.indexes.get(idx).map(Arc::as_ref)
    }

    /// Locate a constraint (by content) and return its position, if indexed.
    pub fn constraint_position(&self, constraint: &AccessConstraint) -> Option<usize> {
        self.access.constraints().position(|c| c == constraint)
    }

    /// Execute a `fetch(X ∈ S, R, Y)` for a single `X`-value through the index
    /// of the constraint at `constraint_idx`, recording the I/O in `stats`.
    pub fn fetch(
        &self,
        constraint_idx: usize,
        key: &[Value],
        stats: &mut FetchStats,
    ) -> Result<&[Tuple]> {
        let index = self.indexes.get(constraint_idx).ok_or_else(|| {
            DataError::NoIndexForConstraint(format!("constraint #{constraint_idx}"))
        })?;
        let tuples = index.probe(key);
        stats.record_fetch(tuples.len());
        Ok(tuples)
    }

    /// The id-native path of [`IndexedDatabase::fetch`]: probe the constraint
    /// index with an interned key and return the matching `X ∪ Y` rows as a
    /// flat slice of `n · arity` ids, recording `n` fetched tuples in
    /// `stats` — the same `|D_ξ|` accounting as the `Value`-keyed path,
    /// preserved to the tuple.
    pub fn fetch_ids(
        &self,
        constraint_idx: usize,
        key: &[ValueId],
        stats: &mut FetchStats,
    ) -> Result<(&[ValueId], usize)> {
        let index = self.interned_access_index(constraint_idx)?;
        let rows = index.probe(key);
        stats.record_fetch(rows.len() / index.arity());
        Ok((rows, index.arity()))
    }

    /// The vectorised form of [`IndexedDatabase::fetch_ids`]: probe the
    /// constraint index with a whole batch of interned keys and append every
    /// matching row to `out`, with per-key `FetchStats` accounting identical
    /// to `n_keys` scalar fetches.  Returns `(rows_appended, arity)`.
    pub fn fetch_ids_batch(
        &self,
        constraint_idx: usize,
        keys_flat: &[ValueId],
        n_keys: usize,
        out: &mut Vec<ValueId>,
        stats: &mut FetchStats,
    ) -> Result<(usize, usize)> {
        let index = self.interned_access_index(constraint_idx)?;
        let appended = index.probe_batch(keys_flat, n_keys, out, stats);
        Ok((appended, index.arity()))
    }

    /// The id-native index of the `idx`-th constraint (built lazily; callers
    /// that record their own [`FetchStats`] — e.g. sharded probe loops —
    /// probe it directly).
    pub fn interned_access_index(&self, idx: usize) -> Result<&InternedAccessIndex> {
        self.indexes
            .get(idx)
            .map(|index| index.interned())
            .ok_or_else(|| DataError::NoIndexForConstraint(format!("constraint #{idx}")))
    }

    /// Whether the wrapped instance satisfies the access schema.
    pub fn satisfies_access_schema(&self) -> Result<bool> {
        self.access.satisfied_by(&self.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DatabaseSchema;
    use crate::tuple;

    fn movie_db() -> (Database, AccessSchema) {
        let schema = DatabaseSchema::with_relations(&[
            ("movie", &["mid", "mname", "studio", "release"]),
            ("rating", &["mid", "rank"]),
        ])
        .unwrap();
        let mut db = Database::empty(schema);
        db.insert("movie", tuple![1, "Lucy", "Universal", "2014"])
            .unwrap();
        db.insert("movie", tuple![2, "Ouija", "Universal", "2014"])
            .unwrap();
        db.insert("movie", tuple![3, "Her", "WB", "2013"]).unwrap();
        db.insert("rating", tuple![1, 5]).unwrap();
        db.insert("rating", tuple![2, 3]).unwrap();
        db.insert("rating", tuple![3, 5]).unwrap();
        let access = AccessSchema::new(vec![
            AccessConstraint::new("movie", &["studio", "release"], &["mid"], 2).unwrap(),
            AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap(),
        ]);
        (db, access)
    }

    #[test]
    fn index_groups_by_key() {
        let (db, access) = movie_db();
        let idx = AccessIndex::build(access.constraint(0).unwrap(), &db).unwrap();
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.max_group_size(), 2);
        assert_eq!(idx.xy_attributes(), &["studio", "release", "mid"]);
        let hits = idx.probe(&[Value::str("Universal"), Value::str("2014")]);
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&tuple!["Universal", "2014", 1]));
        assert!(hits.contains(&tuple!["Universal", "2014", 2]));
        assert!(idx
            .probe(&[Value::str("MGM"), Value::str("1999")])
            .is_empty());
    }

    #[test]
    fn index_deduplicates_projections() {
        let schema = DatabaseSchema::with_relations(&[("like", &["pid", "id", "type"])]).unwrap();
        let mut db = Database::empty(schema);
        db.insert("like", tuple![1, 10, "movie"]).unwrap();
        db.insert("like", tuple![1, 10, "page"]).unwrap();
        let c = AccessConstraint::new("like", &["pid"], &["id"], 5).unwrap();
        let idx = AccessIndex::build(&c, &db).unwrap();
        // Both tuples project to (pid=1, id=10); the set semantics of the
        // index must collapse them.
        assert_eq!(idx.probe(&[Value::int(1)]).len(), 1);
    }

    #[test]
    fn fetch_records_stats() {
        let (db, access) = movie_db();
        let idb = IndexedDatabase::build(db, access).unwrap();
        assert!(idb.satisfies_access_schema().unwrap());
        let mut stats = FetchStats::new();
        let hits = idb
            .fetch(
                0,
                &[Value::str("Universal"), Value::str("2014")],
                &mut stats,
            )
            .unwrap();
        assert_eq!(hits.len(), 2);
        let hits = idb.fetch(1, &[Value::int(1)], &mut stats).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(stats.fetch_calls, 2);
        assert_eq!(stats.fetched_tuples, 3);
        assert_eq!(stats.scanned_tuples, 0);
    }

    #[test]
    fn interned_fetch_agrees_with_value_fetch() {
        let (db, access) = movie_db();
        let idb = IndexedDatabase::build(db, access).unwrap();
        let mut stats = FetchStats::new();
        let key = [Value::str("Universal"), Value::str("2014")];
        let tuples: Vec<Tuple> = idb.fetch(0, &key, &mut stats).unwrap().to_vec();

        let id_key: Vec<ValueId> = key.iter().map(ValueId::intern).collect();
        let mut id_stats = FetchStats::new();
        let (rows, arity) = idb.fetch_ids(0, &id_key, &mut id_stats).unwrap();
        assert_eq!(arity, 3, "studio, release, mid");
        // Same tuples, in the same group order, resolved out of the pool.
        let resolved: Vec<Tuple> = rows
            .chunks(arity)
            .map(|r| Tuple::new(r.iter().map(|id| id.value()).collect()))
            .collect();
        assert_eq!(resolved, tuples);
        // Identical |D_ξ| accounting, preserved to the tuple.
        assert_eq!(id_stats, stats);

        // Absent keys fetch zero tuples but still count the probe.
        let ghost: Vec<ValueId> = [Value::str("MGM"), Value::str("1950")]
            .iter()
            .map(ValueId::intern)
            .collect();
        let (rows, _) = idb.fetch_ids(0, &ghost, &mut id_stats).unwrap();
        assert!(rows.is_empty());
        assert_eq!(id_stats.fetch_calls, 2);
        assert_eq!(id_stats.fetched_tuples, 2);

        let interned = idb.interned_access_index(0).unwrap();
        assert_eq!(interned.distinct_keys(), 2);
        assert_eq!(interned.probe_len(&id_key), 2);
        assert!(idb.interned_access_index(9).is_err());
        assert!(matches!(
            idb.fetch_ids(9, &[], &mut id_stats),
            Err(DataError::NoIndexForConstraint(_))
        ));
    }

    #[test]
    fn batch_probe_matches_scalar_probes_to_the_tuple() {
        let (db, access) = movie_db();
        let idb = IndexedDatabase::build(db, access).unwrap();
        let keys: Vec<Vec<ValueId>> = [
            [Value::str("Universal"), Value::str("2014")],
            [Value::str("MGM"), Value::str("1950")],
            [Value::str("WB"), Value::str("2013")],
        ]
        .iter()
        .map(|k| k.iter().map(ValueId::intern).collect())
        .collect();

        // Scalar reference: one fetch_ids per key, concatenated.
        let mut scalar_out = Vec::new();
        let mut scalar_stats = FetchStats::new();
        for key in &keys {
            let (rows, _) = idb.fetch_ids(0, key, &mut scalar_stats).unwrap();
            scalar_out.extend_from_slice(rows);
        }

        let flat: Vec<ValueId> = keys.iter().flatten().copied().collect();
        let mut batch_out = Vec::new();
        let mut batch_stats = FetchStats::new();
        let (appended, arity) = idb
            .fetch_ids_batch(0, &flat, keys.len(), &mut batch_out, &mut batch_stats)
            .unwrap();
        assert_eq!(arity, 3);
        assert_eq!(appended * arity, batch_out.len());
        assert_eq!(batch_out, scalar_out);
        assert_eq!(batch_stats, scalar_stats);
        assert_eq!(batch_stats.fetch_calls, 3, "absent keys still count");

        // Empty batch: no rows, no probes.
        let mut empty_stats = FetchStats::new();
        let (none, _) = idb
            .fetch_ids_batch(0, &[], 0, &mut Vec::new(), &mut empty_stats)
            .unwrap();
        assert_eq!(none, 0);
        assert_eq!(empty_stats, FetchStats::new());
        assert!(idb
            .fetch_ids_batch(9, &[], 0, &mut Vec::new(), &mut empty_stats)
            .is_err());
    }

    #[test]
    fn batch_probe_with_empty_key_arity() {
        let schema = DatabaseSchema::with_relations(&[("r01", &["a"])]).unwrap();
        let mut db = Database::empty(schema);
        db.insert("r01", tuple![0]).unwrap();
        db.insert("r01", tuple![1]).unwrap();
        let access = AccessSchema::new(vec![AccessConstraint::new("r01", &[], &["a"], 2).unwrap()]);
        let idb = IndexedDatabase::build(db, access).unwrap();
        let mut out = Vec::new();
        let mut stats = FetchStats::new();
        let (rows, arity) = idb
            .fetch_ids_batch(0, &[], 1, &mut out, &mut stats)
            .unwrap();
        assert_eq!((rows, arity), (2, 1));
        assert_eq!(stats.fetch_calls, 1);
        assert_eq!(stats.fetched_tuples, 2);
        let interned = idb.interned_access_index(0).unwrap();
        assert_eq!(interned.total_rows(), 2);
        assert_eq!(interned.avg_group_len(), 2);
    }

    #[test]
    fn fetch_unknown_constraint_errors() {
        let (db, access) = movie_db();
        let idb = IndexedDatabase::build(db, access).unwrap();
        let mut stats = FetchStats::new();
        assert!(matches!(
            idb.fetch(9, &[], &mut stats),
            Err(DataError::NoIndexForConstraint(_))
        ));
    }

    #[test]
    fn build_rejects_invalid_constraints() {
        let (db, _) = movie_db();
        let access = AccessSchema::new(vec![AccessConstraint::new(
            "movie",
            &["studio"],
            &["director"],
            1,
        )
        .unwrap()]);
        assert!(IndexedDatabase::build(db, access).is_err());
    }

    #[test]
    fn constraint_position_lookup() {
        let (db, access) = movie_db();
        let c0 = access.constraint(0).unwrap().clone();
        let idb = IndexedDatabase::build(db, access).unwrap();
        assert_eq!(idb.constraint_position(&c0), Some(0));
        let other = AccessConstraint::new("rating", &["rank"], &["mid"], 1).unwrap();
        assert_eq!(idb.constraint_position(&other), None);
        assert!(idb.index(0).is_some());
        assert!(idb.index(5).is_none());
        assert_eq!(idb.database().size(), 6);
        assert_eq!(idb.access_schema().len(), 2);
    }

    #[test]
    fn apply_delta_patches_touched_indexes_and_shares_the_rest() {
        let (db, access) = movie_db();
        let idb = IndexedDatabase::build(db.clone(), access).unwrap();

        // Insert-only delta on `rating`: its index is patched, movie's is
        // the identical shared object.
        let mut next = db.clone();
        next.begin_delta_tracking();
        next.insert("rating", tuple![4, 2]).unwrap();
        let log = next.take_delta(&db);
        let patched = idb.apply_delta(next.clone(), &log).unwrap();
        assert!(patched.shares_index(&idb, 0), "movie untouched");
        assert!(!patched.shares_index(&idb, 1), "rating patched");
        let rebuilt = IndexedDatabase::build(next.clone(), idb.access_schema().clone()).unwrap();
        for idx in 0..2 {
            let mut a = FetchStats::new();
            let mut b = FetchStats::new();
            for key in [vec![Value::int(4)], vec![Value::int(1)]] {
                if idx == 0 {
                    continue;
                }
                assert_eq!(
                    patched.fetch(idx, &key, &mut a).unwrap(),
                    rebuilt.fetch(idx, &key, &mut b).unwrap()
                );
            }
            assert_eq!(a, b);
        }

        // A delta with removals patches that index too (multiplicity
        // bookkeeping, no rebuild): the removed key's group disappears, the
        // untouched constraint still shares its index.
        let mut shrunk = next.clone();
        shrunk.begin_delta_tracking();
        shrunk.remove("rating", &tuple![1, 5]).unwrap();
        let log = shrunk.take_delta(&next);
        let after = patched.apply_delta(shrunk.clone(), &log).unwrap();
        assert!(after.shares_index(&patched, 0));
        let mut stats = FetchStats::new();
        assert!(after
            .fetch(1, &[Value::int(1)], &mut stats)
            .unwrap()
            .is_empty());
        assert_eq!(
            after.fetch(1, &[Value::int(4)], &mut stats).unwrap().len(),
            1
        );
        // Patched-index statistics match a rebuild exactly.
        let rebuilt = IndexedDatabase::build(shrunk.clone(), idb.access_schema().clone()).unwrap();
        assert_eq!(
            after.index(1).unwrap().distinct_keys(),
            rebuilt.index(1).unwrap().distinct_keys()
        );
        assert_eq!(
            after.index(1).unwrap().max_group_size(),
            rebuilt.index(1).unwrap().max_group_size()
        );
    }

    #[test]
    fn removal_patch_respects_source_multiplicities() {
        // Two source tuples project to the same (pid, id) entry; removing
        // one must keep the entry alive, removing the second must drop it —
        // exactly what a rebuild over the shrunken relation would produce.
        let schema = DatabaseSchema::with_relations(&[("like", &["pid", "id", "type"])]).unwrap();
        let mut db = Database::empty(schema);
        db.insert("like", tuple![1, 10, "movie"]).unwrap();
        db.insert("like", tuple![1, 10, "page"]).unwrap();
        db.insert("like", tuple![1, 11, "movie"]).unwrap();
        let access = AccessSchema::new(vec![
            AccessConstraint::new("like", &["pid"], &["id"], 5).unwrap()
        ]);
        let idb = IndexedDatabase::build(db.clone(), access).unwrap();
        let key = [Value::int(1)];
        assert_eq!(
            idb.index(0)
                .unwrap()
                .source_multiplicity(&key, &tuple![1, 10]),
            2
        );

        // Drop the first supporting source: the entry survives.
        let mut v1 = db.clone();
        v1.begin_delta_tracking();
        v1.remove("like", &tuple![1, 10, "movie"]).unwrap();
        let log = v1.take_delta(&db);
        let idb1 = idb.apply_delta(v1.clone(), &log).unwrap();
        let rebuilt1 = IndexedDatabase::build(v1.clone(), idb.access_schema().clone()).unwrap();
        let (mut a, mut b) = (FetchStats::new(), FetchStats::new());
        assert_eq!(
            idb1.fetch(0, &key, &mut a).unwrap(),
            rebuilt1.fetch(0, &key, &mut b).unwrap()
        );
        assert_eq!(a, b);
        assert_eq!(
            idb1.index(0)
                .unwrap()
                .source_multiplicity(&key, &tuple![1, 10]),
            1
        );

        // Drop the last supporting source: the entry goes, bit-identically
        // to the rebuild.
        let mut v2 = v1.clone();
        v2.begin_delta_tracking();
        v2.remove("like", &tuple![1, 10, "page"]).unwrap();
        let log = v2.take_delta(&v1);
        let idb2 = idb1.apply_delta(v2.clone(), &log).unwrap();
        let rebuilt2 = IndexedDatabase::build(v2.clone(), idb.access_schema().clone()).unwrap();
        let (mut a, mut b) = (FetchStats::new(), FetchStats::new());
        assert_eq!(
            idb2.fetch(0, &key, &mut a).unwrap(),
            rebuilt2.fetch(0, &key, &mut b).unwrap()
        );
        assert_eq!(a, b);
        assert_eq!(idb2.fetch(0, &key, &mut a).unwrap(), &[tuple![1, 11]]);
        assert_eq!(
            idb2.index(0)
                .unwrap()
                .source_multiplicity(&key, &tuple![1, 10]),
            0
        );
    }

    #[test]
    fn removal_patch_drops_emptied_keys_like_a_rebuild() {
        // A mixed delta (remove the whole group of one key, insert a new
        // key) patched in one pass agrees with a rebuild on every probe,
        // every statistic, and the interned sibling's accounting.
        let (db, access) = movie_db();
        let idb = IndexedDatabase::build(db.clone(), access).unwrap();
        let mut next = db.clone();
        next.begin_delta_tracking();
        next.remove("rating", &tuple![2, 3]).unwrap();
        next.remove("rating", &tuple![3, 5]).unwrap();
        next.insert("rating", tuple![7, 1]).unwrap();
        let log = next.take_delta(&db);
        assert!(log.exact("rating").is_some(), "tracked mutation is exact");
        let patched = idb.apply_delta(next.clone(), &log).unwrap();
        let rebuilt = IndexedDatabase::build(next.clone(), idb.access_schema().clone()).unwrap();
        assert_eq!(
            patched.index(1).unwrap().distinct_keys(),
            rebuilt.index(1).unwrap().distinct_keys()
        );
        for mid in 1..=7 {
            let key = [Value::int(mid)];
            let (mut a, mut b) = (FetchStats::new(), FetchStats::new());
            assert_eq!(
                patched.fetch(1, &key, &mut a).unwrap(),
                rebuilt.fetch(1, &key, &mut b).unwrap()
            );
            assert_eq!(a, b);
            // The interned siblings agree too (both rebuilt lazily).
            let id_key = [ValueId::intern(&Value::int(mid))];
            let (mut ia, mut ib) = (FetchStats::new(), FetchStats::new());
            assert_eq!(
                patched.fetch_ids(1, &id_key, &mut ia).unwrap(),
                rebuilt.fetch_ids(1, &id_key, &mut ib).unwrap()
            );
            assert_eq!(ia, ib);
        }
    }

    #[test]
    fn apply_delta_anchors_and_patches_snapshots() {
        let (db, access) = movie_db();
        let idb = IndexedDatabase::build(db.clone(), access).unwrap();
        assert!(idb.snapshot("rating").is_none(), "build anchors lazily");

        // First delta application anchors every relation's snapshot.
        let mut v1 = db.clone();
        v1.begin_delta_tracking();
        v1.insert("rating", tuple![4, 2]).unwrap();
        let log = v1.take_delta(&db);
        let idb1 = idb.apply_delta(v1.clone(), &log).unwrap();
        for name in ["movie", "rating"] {
            let snap = idb1.snapshot(name).expect("anchored");
            let rel = v1.relation(name).unwrap();
            assert_eq!(snap.epoch(), rel.epoch());
            assert_eq!(snap.len(), rel.len());
        }

        // Second application: the untouched relation carries the same Arc
        // forward, the touched one is patched to its new epoch and shared
        // with the registry.
        let mut v2 = v1.clone();
        v2.begin_delta_tracking();
        v2.insert("rating", tuple![5, 1]).unwrap();
        v2.remove("rating", &tuple![1, 5]).unwrap();
        let log = v2.take_delta(&v1);
        let idb2 = idb1.apply_delta(v2.clone(), &log).unwrap();
        assert!(Arc::ptr_eq(
            idb2.snapshot("movie").unwrap(),
            idb1.snapshot("movie").unwrap()
        ));
        let patched = idb2.snapshot("rating").unwrap();
        assert_eq!(patched.epoch(), v2.relation("rating").unwrap().epoch());
        assert_eq!(patched.len(), 4);
        let shared = crate::snapshot::snapshot_of(v2.relation("rating").unwrap());
        assert!(Arc::ptr_eq(patched, &shared), "registry serves the patch");
        // Patched statistics are exact even under the removal.
        let rebuilt_stats =
            crate::stats::RelationStats::of_rows(patched.len(), patched.arity(), shared.id_rows());
        assert_eq!(patched.stats(), &rebuilt_stats);
    }

    #[test]
    fn empty_key_constraint_probe() {
        let schema = DatabaseSchema::with_relations(&[("r01", &["a"])]).unwrap();
        let mut db = Database::empty(schema);
        db.insert("r01", tuple![0]).unwrap();
        db.insert("r01", tuple![1]).unwrap();
        let c = AccessConstraint::new("r01", &[], &["a"], 2).unwrap();
        let idx = AccessIndex::build(&c, &db).unwrap();
        // With X = ∅ the single key is the empty tuple and probing it returns
        // the whole (bounded) relation.
        assert_eq!(idx.probe(&[]).len(), 2);
        assert_eq!(idx.distinct_keys(), 1);
    }
}
