//! The query `Q_ξ` expressed by a plan.
//!
//! Section 2 of the paper: for every plan `ξ` in a language `L` there is a
//! query `Q_ξ ∈ L` with `ξ(D) = Q_ξ(D)` on all instances (satisfying `A` or
//! not), of size linear in `|ξ|`.  This module performs that conversion into
//! the calculus ([`FoQuery`]), with view atoms kept symbolic (consumers
//! unfold them against a `ViewSet` when needed), and offers CQ / UCQ
//! specialisations for plans in those fragments.

use crate::node::{PlanNode, QueryPlan, SelectCondition};
use crate::Result;
use bqr_data::DatabaseSchema;
use bqr_query::{Atom, Budget, ConjunctiveQuery, Fo, FoQuery, Term, UnionQuery};

/// Convert a plan into the FO query it expresses.  Output columns become the
/// head variables `o0, ..., o{k-1}`.
pub fn plan_to_fo(plan: &QueryPlan, schema: &DatabaseSchema) -> Result<FoQuery> {
    node_to_fo(plan.root(), schema)
}

/// Convert a plan node into the FO query it expresses.
pub fn node_to_fo(node: &PlanNode, schema: &DatabaseSchema) -> Result<FoQuery> {
    let arity = node.arity();
    let out_vars: Vec<String> = (0..arity).map(|i| format!("o{i}")).collect();
    let mut counter = 0usize;
    let body = formula(node, &out_vars, schema, &mut counter)?;
    let head: Vec<Term> = out_vars.into_iter().map(Term::var).collect();
    Ok(FoQuery::new(head, body)?)
}

/// Convert a CQ-shaped plan into a conjunctive query (view atoms kept).
pub fn plan_to_cq(plan: &QueryPlan, schema: &DatabaseSchema) -> Result<ConjunctiveQuery> {
    Ok(plan_to_fo(plan, schema)?.to_cq()?)
}

/// Convert a positive plan into the union of conjunctive queries it
/// expresses; `Ok(None)` means the plan is unsatisfiable (it always returns
/// the empty relation).
pub fn plan_to_ucq(
    plan: &QueryPlan,
    schema: &DatabaseSchema,
    budget: &Budget,
) -> Result<Option<UnionQuery>> {
    Ok(plan_to_fo(plan, schema)?.to_ucq(budget)?)
}

/// Convert a plan node (sub-plan) into the UCQ it expresses.
pub fn node_to_ucq(
    node: &PlanNode,
    schema: &DatabaseSchema,
    budget: &Budget,
) -> Result<Option<UnionQuery>> {
    Ok(node_to_fo(node, schema)?.to_ucq(budget)?)
}

fn fresh(counter: &mut usize) -> String {
    let name = format!("__p{counter}");
    *counter += 1;
    name
}

fn formula(
    node: &PlanNode,
    out_vars: &[String],
    schema: &DatabaseSchema,
    counter: &mut usize,
) -> Result<Fo> {
    match node {
        PlanNode::Const(t) => {
            let eqs: Vec<Fo> = out_vars
                .iter()
                .zip(t.iter())
                .map(|(v, c)| Fo::Eq(Term::var(v.clone()), Term::cnst(c.clone())))
                .collect();
            Ok(Fo::conjunction(eqs))
        }
        PlanNode::View { name, .. } => Ok(Fo::Atom(Atom::new(
            name.clone(),
            out_vars.iter().map(|v| Term::var(v.clone())).collect(),
        ))),
        PlanNode::Fetch {
            input,
            constraint,
            key_columns,
        } => {
            let rel_schema = schema
                .expect_relation(constraint.relation())
                .map_err(bqr_query::QueryError::from)?;
            let xy = constraint.xy();
            // Input variables.
            let in_vars: Vec<String> = (0..input.arity()).map(|_| fresh(counter)).collect();
            let input_formula = formula(input, &in_vars, schema, counter)?;
            // The relation atom: XY positions take the output variables, the
            // remaining positions take fresh existential variables.
            let mut atom_args = Vec::with_capacity(rel_schema.arity());
            let mut extra_vars = Vec::new();
            for attr in rel_schema.attributes() {
                match xy.iter().position(|a| a == attr) {
                    Some(j) => atom_args.push(Term::var(out_vars[j].clone())),
                    None => {
                        let v = fresh(counter);
                        extra_vars.push(v.clone());
                        atom_args.push(Term::var(v));
                    }
                }
            }
            let atom = Fo::Atom(Atom::new(constraint.relation(), atom_args));
            // The key equalities: the i-th X attribute equals the
            // key_columns[i]-th input column.  X attributes occupy the first
            // |X| positions of `xy`.
            let mut parts = vec![input_formula, atom];
            for (i, &col) in key_columns.iter().enumerate() {
                parts.push(Fo::Eq(
                    Term::var(out_vars[i].clone()),
                    Term::var(in_vars[col].clone()),
                ));
            }
            let mut bound = in_vars;
            bound.extend(extra_vars);
            Ok(Fo::exists(bound, Fo::conjunction(parts)))
        }
        PlanNode::Project { input, columns } => {
            let in_vars: Vec<String> = (0..input.arity()).map(|_| fresh(counter)).collect();
            let input_formula = formula(input, &in_vars, schema, counter)?;
            let mut parts = vec![input_formula];
            for (i, &col) in columns.iter().enumerate() {
                parts.push(Fo::Eq(
                    Term::var(out_vars[i].clone()),
                    Term::var(in_vars[col].clone()),
                ));
            }
            Ok(Fo::exists(in_vars, Fo::conjunction(parts)))
        }
        PlanNode::Select { input, conditions } => {
            let input_formula = formula(input, out_vars, schema, counter)?;
            let mut parts = vec![input_formula];
            for cond in conditions {
                parts.push(condition_to_fo(cond, out_vars));
            }
            Ok(Fo::conjunction(parts))
        }
        PlanNode::Rename { input } => formula(input, out_vars, schema, counter),
        PlanNode::Product(a, b) => {
            let left = formula(a, &out_vars[..a.arity()], schema, counter)?;
            let right = formula(b, &out_vars[a.arity()..], schema, counter)?;
            Ok(Fo::and(left, right))
        }
        PlanNode::Union(a, b) => {
            let left = formula(a, out_vars, schema, counter)?;
            let right = formula(b, out_vars, schema, counter)?;
            Ok(Fo::or(left, right))
        }
        PlanNode::Difference(a, b) => {
            let left = formula(a, out_vars, schema, counter)?;
            let right = formula(b, out_vars, schema, counter)?;
            Ok(Fo::and(left, Fo::not(right)))
        }
    }
}

fn condition_to_fo(cond: &SelectCondition, out_vars: &[String]) -> Fo {
    match cond {
        SelectCondition::ColEqConst(c, v) => {
            Fo::Eq(Term::var(out_vars[*c].clone()), Term::cnst(v.clone()))
        }
        SelectCondition::ColNeConst(c, v) => Fo::not(Fo::Eq(
            Term::var(out_vars[*c].clone()),
            Term::cnst(v.clone()),
        )),
        SelectCondition::ColEqCol(a, b) => Fo::Eq(
            Term::var(out_vars[*a].clone()),
            Term::var(out_vars[*b].clone()),
        ),
        SelectCondition::ColNeCol(a, b) => Fo::not(Fo::Eq(
            Term::var(out_vars[*a].clone()),
            Term::var(out_vars[*b].clone()),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{figure1_plan, Plan};
    use bqr_data::{AccessConstraint, Value};
    use bqr_query::eval::{eval_cq, eval_fo};
    use bqr_query::parser::parse_cq;
    use bqr_query::{QueryLanguage, ViewSet};

    fn movie_schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[
            ("person", &["pid", "name", "affiliation"]),
            ("movie", &["mid", "mname", "studio", "release"]),
            ("rating", &["mid", "rank"]),
            ("like", &["pid", "id", "type"]),
        ])
        .unwrap()
    }

    fn phi1() -> AccessConstraint {
        AccessConstraint::new("movie", &["studio", "release"], &["mid"], 100).unwrap()
    }
    fn phi2() -> AccessConstraint {
        AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap()
    }

    #[test]
    fn figure1_plan_expresses_example_2_3_rewriting() {
        let plan = figure1_plan(&phi1(), &phi2()).unwrap();
        let schema = movie_schema();
        let fo = plan_to_fo(&plan, &schema).unwrap();
        assert_eq!(fo.arity(), 1);
        assert_eq!(fo.language(), QueryLanguage::Cq);
        let cq = plan_to_cq(&plan, &schema).unwrap();
        // The expressed query mentions movie, rating and the view V1.
        assert!(cq.relation_names().contains("movie"));
        assert!(cq.relation_names().contains("rating"));
        assert!(cq.relation_names().contains("V1"));
        // After unfolding V1, the expressed query is classically equivalent to
        // the rewriting Qξ of Example 2.3.
        let mut views = ViewSet::empty();
        views
            .add_cq(
                "V1",
                parse_cq(
                    "V1(mid) :- person(xp, xn, 'NASA'), movie(mid, ym, z1, z2), like(xp, mid, 'movie')",
                )
                .unwrap(),
            )
            .unwrap();
        let unfolded = views.unfold_cq(&cq).unwrap();
        let q_xi = views
            .unfold_cq(
                &parse_cq("Q(mid) :- movie(mid, ym, 'Universal', '2014'), V1(mid), rating(mid, 5)")
                    .unwrap(),
            )
            .unwrap();
        assert!(bqr_query::containment::cq_equivalent(&unfolded, &q_xi, &schema).unwrap());
    }

    #[test]
    fn expressed_query_agrees_with_plan_execution() {
        // Check ξ(D) = Qξ(D) on a concrete instance, with the view unfolded.
        use bqr_data::{tuple, AccessSchema, Database, IndexedDatabase};
        let schema = movie_schema();
        let mut db = Database::empty(schema.clone());
        db.insert("person", tuple![1, "Ann", "NASA"]).unwrap();
        db.insert("movie", tuple![10, "Lucy", "Universal", "2014"])
            .unwrap();
        db.insert("movie", tuple![11, "Ouija", "Universal", "2014"])
            .unwrap();
        db.insert("rating", tuple![10, 5]).unwrap();
        db.insert("rating", tuple![11, 3]).unwrap();
        db.insert("like", tuple![1, 10, "movie"]).unwrap();

        let mut views = ViewSet::empty();
        views
            .add_cq(
                "V1",
                parse_cq(
                    "V1(mid) :- person(xp, xn, 'NASA'), movie(mid, ym, z1, z2), like(xp, mid, 'movie')",
                )
                .unwrap(),
            )
            .unwrap();
        let cache = views.materialize(&db).unwrap();
        let access = AccessSchema::new(vec![phi1(), phi2()]);
        let idb = IndexedDatabase::build(db.clone(), access).unwrap();

        let plan = figure1_plan(&phi1(), &phi2()).unwrap();
        let plan_answers = crate::exec::execute(&plan, &idb, &cache).unwrap().tuples;

        let cq = plan_to_cq(&plan, &schema).unwrap();
        let query_answers = eval_cq(&cq, &db, Some(&cache)).unwrap();
        assert_eq!(plan_answers, query_answers);
        assert_eq!(plan_answers, vec![tuple![10]]);
    }

    #[test]
    fn const_and_view_conversions() {
        let schema = movie_schema();
        let plan = Plan::constant(vec![Value::int(7), Value::str("x")])
            .build()
            .unwrap();
        let fo = plan_to_fo(&plan, &schema).unwrap();
        assert_eq!(fo.arity(), 2);
        // Constants appear as equalities in the body.
        assert!(fo.body().constants().contains(&Value::int(7)));

        let plan = Plan::view("V9", 2).select_eq_cols(0, 1).build().unwrap();
        let cq = plan_to_cq(&plan, &schema).unwrap();
        assert!(cq.relation_names().contains("V9"));
        assert_eq!(cq.arity(), 2);
        // The selection equates the two head variables.
        assert_eq!(cq.head()[0], cq.head()[1]);
    }

    #[test]
    fn union_and_difference_classify_correctly() {
        let schema = movie_schema();
        let union = Plan::constant(vec![1])
            .union(Plan::constant(vec![2]))
            .build()
            .unwrap();
        let fo = plan_to_fo(&union, &schema).unwrap();
        assert_eq!(fo.language(), QueryLanguage::Ucq);
        let ucq = plan_to_ucq(&union, &schema, &Budget::generous())
            .unwrap()
            .unwrap();
        assert_eq!(ucq.len(), 2);

        let diff = Plan::constant(vec![1])
            .difference(Plan::constant(vec![1]))
            .build()
            .unwrap();
        let fo = plan_to_fo(&diff, &schema).unwrap();
        assert_eq!(fo.language(), QueryLanguage::Fo);
        assert!(plan_to_cq(&diff, &schema).is_err());
        assert!(plan_to_ucq(&diff, &schema, &Budget::generous()).is_err());
    }

    #[test]
    fn expressed_fo_query_evaluates_like_the_plan_with_negation() {
        use bqr_data::{tuple, AccessSchema, Database, IndexedDatabase};
        let schema = movie_schema();
        let mut db = Database::empty(schema.clone());
        db.insert("rating", tuple![10, 5]).unwrap();
        db.insert("rating", tuple![11, 3]).unwrap();
        let access = AccessSchema::new(vec![phi2()]);
        let idb = IndexedDatabase::build(db.clone(), access).unwrap();
        let cache = bqr_query::MaterializedViews::empty();

        // Fetch the rating of movie 10 and movie 11, keep those ≠ 5.
        let plan = Plan::constant(vec![10])
            .union(Plan::constant(vec![11]))
            .fetch(phi2(), vec![0])
            .select(vec![SelectCondition::ColNeConst(1, Value::int(5))])
            .project(vec![0])
            .build()
            .unwrap();
        let out = crate::exec::execute(&plan, &idb, &cache).unwrap();
        assert_eq!(out.tuples, vec![tuple![11]]);

        let fo = plan_to_fo(&plan, &schema).unwrap();
        let answers = eval_fo(&fo, &db, None).unwrap();
        assert_eq!(answers, out.tuples);
    }

    #[test]
    fn fetch_with_empty_x_constraint() {
        let schema = DatabaseSchema::with_relations(&[("r01", &["a"])]).unwrap();
        let c = AccessConstraint::new("r01", &[], &["a"], 2).unwrap();
        let plan = Plan::constant(Vec::<Value>::new())
            .fetch(c, vec![])
            .build()
            .unwrap();
        let fo = node_to_fo(plan.root(), &schema).unwrap();
        assert_eq!(fo.arity(), 1);
        let ucq = node_to_ucq(plan.root(), &schema, &Budget::generous())
            .unwrap()
            .unwrap();
        assert_eq!(ucq.len(), 1);
        assert!(ucq.disjuncts()[0].relation_names().contains("r01"));
    }
}
