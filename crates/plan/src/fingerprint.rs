//! Canonical structural fingerprints for query plans.
//!
//! A [`PlanFingerprint`] is a 128-bit digest of a plan's *executable*
//! structure: node shapes, column indices, constants (by value), view names
//! and access constraints.  It is the plan half of the
//! [`crate::prepared::PipelineCache`] key — two plans with equal fingerprints
//! compile to pipelines with identical observable behaviour (answer tuples
//! *and* `FetchStats`), so a cached pipeline may serve either.
//!
//! Canonicalisation rules:
//!
//! * the digest depends only on structure, never on allocation identity —
//!   `clone()`d plans, plans rebuilt from scratch, and plans shared behind an
//!   `Arc` all fingerprint equal;
//! * `ρ` (rename) nodes are **transparent**: with positional columns a
//!   renaming never changes the data, and the compiled executor erases it
//!   (see [`crate::exec`]), so plans that differ only in `ρ` placement share
//!   one fingerprint — and therefore one cached pipeline.  (A `ρ` can block
//!   the σ-over-view fusion, yielding a *differently shaped* pipeline, but
//!   the two shapes are execution-equivalent down to the pinned `FetchStats`
//!   accounting, which `tests/prepared_cache.rs` holds them to.)
//! * everything else is hashed positionally, in a prefix-free encoding
//!   (every variable-length field is preceded by its length), so distinct
//!   structures cannot collide by concatenation ambiguity.
//!
//! The digest itself is FNV-1a/128 — not cryptographic, but 128 bits of a
//! well-dispersed hash make accidental collisions between the handful of
//! distinct plans a process ever prepares astronomically unlikely, with no
//! dependencies and deterministic output across platforms and runs.

use crate::node::{PlanNode, QueryPlan, SelectCondition};
use bqr_data::Value;
use std::fmt;

/// A canonical 128-bit structural fingerprint of a [`QueryPlan`].
///
/// Obtain one with [`fingerprint`]; use it as a cache key (it is `Copy`,
/// `Eq`, `Hash` and `Ord`) or render it with `Display` (32 hex digits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanFingerprint(u128);

impl PlanFingerprint {
    /// The raw 128-bit digest.
    pub fn as_u128(&self) -> u128 {
        self.0
    }
}

impl fmt::Display for PlanFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Compute the canonical structural fingerprint of a plan.  Pure function of
/// the plan tree (see the module docs for the canonicalisation rules).
pub fn fingerprint(plan: &QueryPlan) -> PlanFingerprint {
    let mut h = Fnv128::new();
    hash_node(plan.root(), &mut h);
    PlanFingerprint(h.finish())
}

/// FNV-1a with a 128-bit state (the parameters of the reference FNV-128).
struct Fnv128 {
    state: u128,
}

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Fnv128 {
    fn new() -> Self {
        Fnv128 {
            state: FNV128_OFFSET,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.write(&[b]);
    }

    fn write_usize(&mut self, n: usize) {
        self.write(&(n as u64).to_le_bytes());
    }

    /// A length-prefixed string (prefix-free across adjacent fields).
    fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    fn finish(&self) -> u128 {
        self.state
    }
}

/// Node tags.  `Rename` deliberately has none: it is erased.
mod tag {
    pub const CONST: u8 = 1;
    pub const VIEW: u8 = 2;
    pub const FETCH: u8 = 3;
    pub const PROJECT: u8 = 4;
    pub const SELECT: u8 = 5;
    pub const PRODUCT: u8 = 6;
    pub const UNION: u8 = 7;
    pub const DIFFERENCE: u8 = 8;
    pub const COND_EQ_CONST: u8 = 16;
    pub const COND_NE_CONST: u8 = 17;
    pub const COND_EQ_COL: u8 = 18;
    pub const COND_NE_COL: u8 = 19;
    pub const VAL_BOOL: u8 = 24;
    pub const VAL_INT: u8 = 25;
    pub const VAL_STR: u8 = 26;
}

fn hash_value(v: &Value, h: &mut Fnv128) {
    match v {
        Value::Bool(b) => {
            h.write_u8(tag::VAL_BOOL);
            h.write_u8(*b as u8);
        }
        Value::Int(i) => {
            h.write_u8(tag::VAL_INT);
            h.write(&i.to_le_bytes());
        }
        Value::Str(s) => {
            h.write_u8(tag::VAL_STR);
            h.write_str(s);
        }
    }
}

fn hash_condition(c: &SelectCondition, h: &mut Fnv128) {
    match c {
        SelectCondition::ColEqConst(col, v) => {
            h.write_u8(tag::COND_EQ_CONST);
            h.write_usize(*col);
            hash_value(v, h);
        }
        SelectCondition::ColNeConst(col, v) => {
            h.write_u8(tag::COND_NE_CONST);
            h.write_usize(*col);
            hash_value(v, h);
        }
        SelectCondition::ColEqCol(a, b) => {
            h.write_u8(tag::COND_EQ_COL);
            h.write_usize(*a);
            h.write_usize(*b);
        }
        SelectCondition::ColNeCol(a, b) => {
            h.write_u8(tag::COND_NE_COL);
            h.write_usize(*a);
            h.write_usize(*b);
        }
    }
}

fn hash_node(node: &PlanNode, h: &mut Fnv128) {
    match node {
        PlanNode::Const(t) => {
            h.write_u8(tag::CONST);
            h.write_usize(t.arity());
            for v in t.iter() {
                hash_value(v, h);
            }
        }
        PlanNode::View { name, arity } => {
            h.write_u8(tag::VIEW);
            h.write_str(name);
            h.write_usize(*arity);
        }
        PlanNode::Fetch {
            input,
            constraint,
            key_columns,
        } => {
            h.write_u8(tag::FETCH);
            // The constraint is hashed by content (relation, X, Y, N): two
            // structurally equal constraints drive the same fetch.
            h.write_str(constraint.relation());
            h.write_usize(constraint.x().len());
            for a in constraint.x() {
                h.write_str(a);
            }
            h.write_usize(constraint.y().len());
            for a in constraint.y() {
                h.write_str(a);
            }
            h.write_usize(constraint.n());
            h.write_usize(key_columns.len());
            for &c in key_columns {
                h.write_usize(c);
            }
            hash_node(input, h);
        }
        PlanNode::Project { input, columns } => {
            h.write_u8(tag::PROJECT);
            h.write_usize(columns.len());
            for &c in columns {
                h.write_usize(c);
            }
            hash_node(input, h);
        }
        PlanNode::Select { input, conditions } => {
            h.write_u8(tag::SELECT);
            h.write_usize(conditions.len());
            for c in conditions {
                hash_condition(c, h);
            }
            hash_node(input, h);
        }
        // ρ is transparent: positional renaming never changes the data and
        // the compiled executor erases it.
        PlanNode::Rename { input } => hash_node(input, h),
        PlanNode::Product(a, b) => {
            h.write_u8(tag::PRODUCT);
            hash_node(a, h);
            hash_node(b, h);
        }
        PlanNode::Union(a, b) => {
            h.write_u8(tag::UNION);
            hash_node(a, h);
            hash_node(b, h);
        }
        PlanNode::Difference(a, b) => {
            h.write_u8(tag::DIFFERENCE);
            hash_node(a, h);
            hash_node(b, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Plan;
    use bqr_data::AccessConstraint;

    fn phi() -> AccessConstraint {
        AccessConstraint::new("movie", &["studio", "release"], &["mid"], 100).unwrap()
    }

    fn sample() -> QueryPlan {
        Plan::constant(vec![Value::str("Universal"), Value::str("2014")])
            .fetch(phi(), vec![0, 1])
            .select_eq_const(2, 10)
            .project(vec![2])
            .build()
            .unwrap()
    }

    #[test]
    fn equal_structure_equal_fingerprint() {
        let a = sample();
        let b = sample();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
        let rendered = fingerprint(&a).to_string();
        assert_eq!(rendered.len(), 32, "{rendered}");
        assert_eq!(fingerprint(&a).as_u128(), fingerprint(&b).as_u128());
    }

    #[test]
    fn structural_differences_change_the_fingerprint() {
        let base = fingerprint(&sample());
        // A different constant.
        let other = Plan::constant(vec![Value::str("Universal"), Value::str("2015")])
            .fetch(phi(), vec![0, 1])
            .select_eq_const(2, 10)
            .project(vec![2])
            .build()
            .unwrap();
        assert_ne!(base, fingerprint(&other));
        // A different constraint bound.
        let phi2 = AccessConstraint::new("movie", &["studio", "release"], &["mid"], 50).unwrap();
        let other = Plan::constant(vec![Value::str("Universal"), Value::str("2014")])
            .fetch(phi2, vec![0, 1])
            .select_eq_const(2, 10)
            .project(vec![2])
            .build()
            .unwrap();
        assert_ne!(base, fingerprint(&other));
        // A different projection.
        let other = Plan::constant(vec![Value::str("Universal"), Value::str("2014")])
            .fetch(phi(), vec![0, 1])
            .select_eq_const(2, 10)
            .project(vec![0])
            .build()
            .unwrap();
        assert_ne!(base, fingerprint(&other));
        // Value sorts are tagged: int 1 ≠ str "1" ≠ bool true even where
        // renderings collide.
        let int1 = Plan::constant(vec![Value::int(1)]).build().unwrap();
        let str1 = Plan::constant(vec![Value::str("1")]).build().unwrap();
        let bool1 = Plan::constant(vec![Value::bool(true)]).build().unwrap();
        assert_ne!(fingerprint(&int1), fingerprint(&str1));
        assert_ne!(fingerprint(&int1), fingerprint(&bool1));
        assert_ne!(fingerprint(&str1), fingerprint(&bool1));
    }

    #[test]
    fn renames_are_transparent() {
        let plain = Plan::view("V", 2).select_eq_cols(0, 1).build().unwrap();
        let renamed = Plan::view("V", 2)
            .rename()
            .select_eq_cols(0, 1)
            .rename()
            .build()
            .unwrap();
        assert_eq!(fingerprint(&plain), fingerprint(&renamed));
        assert_ne!(plain, renamed, "the trees themselves differ");
    }

    #[test]
    fn encoding_is_prefix_free_across_fields() {
        // ["ab"] + ["c"] vs ["a"] + ["bc"] as view names in a union: the
        // length prefixes keep the digests apart.
        let a = Plan::view("ab", 1)
            .union(Plan::view("c", 1))
            .build()
            .unwrap();
        let b = Plan::view("a", 1)
            .union(Plan::view("bc", 1))
            .build()
            .unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
        // Operator tags separate same-leaf trees.
        let u = Plan::view("V", 1)
            .union(Plan::view("V", 1))
            .build()
            .unwrap();
        let d = Plan::view("V", 1)
            .difference(Plan::view("V", 1))
            .build()
            .unwrap();
        assert_ne!(fingerprint(&u), fingerprint(&d));
    }
}
