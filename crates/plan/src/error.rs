//! Error type for plan construction, execution and analysis.

use bqr_data::DataError;
use bqr_query::QueryError;
use std::error::Error;
use std::fmt;

/// Errors produced while building, executing or analysing query plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// An underlying data-layer error.
    Data(DataError),
    /// An underlying query-layer error.
    Query(QueryError),
    /// A column index is out of range for a node's output arity.
    ColumnOutOfRange { column: usize, arity: usize },
    /// A binary node combines children of different arities.
    ArityMismatch { left: usize, right: usize },
    /// A fetch node's key columns do not match its constraint's X attributes.
    FetchKeyMismatch { expected: usize, actual: usize },
    /// A view referenced by the plan is not materialised / not declared.
    UnknownView(String),
    /// A fetch refers to a constraint that is not part of the access schema
    /// the plan is being executed / checked against.
    ConstraintNotInSchema(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Data(e) => write!(f, "{e}"),
            PlanError::Query(e) => write!(f, "{e}"),
            PlanError::ColumnOutOfRange { column, arity } => {
                write!(f, "column {column} is out of range for arity {arity}")
            }
            PlanError::ArityMismatch { left, right } => write!(
                f,
                "binary operator combines children of arities {left} and {right}"
            ),
            PlanError::FetchKeyMismatch { expected, actual } => write!(
                f,
                "fetch key has {actual} columns but the constraint's X has {expected} attributes"
            ),
            PlanError::UnknownView(v) => write!(f, "view `{v}` is not available"),
            PlanError::ConstraintNotInSchema(c) => {
                write!(f, "fetch constraint {c} is not part of the access schema")
            }
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::Data(e) => Some(e),
            PlanError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for PlanError {
    fn from(e: DataError) -> Self {
        PlanError::Data(e)
    }
}

impl From<QueryError> for PlanError {
    fn from(e: QueryError) -> Self {
        PlanError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = PlanError::ColumnOutOfRange {
            column: 3,
            arity: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(Error::source(&e).is_none());
        let e: PlanError = DataError::UnknownRelation("r".into()).into();
        assert!(Error::source(&e).is_some());
        let e: PlanError = QueryError::UnknownRelation("r".into()).into();
        assert!(e.to_string().contains('r'));
        assert!(PlanError::UnknownView("V".into()).to_string().contains('V'));
        assert!(PlanError::ArityMismatch { left: 1, right: 2 }
            .to_string()
            .contains('2'));
        assert!(PlanError::FetchKeyMismatch {
            expected: 2,
            actual: 1
        }
        .to_string()
        .contains('2'));
        assert!(PlanError::ConstraintNotInSchema("c".into())
            .to_string()
            .contains('c'));
    }
}
