//! Error type for plan construction, execution and analysis.

use bqr_data::DataError;
use bqr_query::QueryError;
use std::error::Error;
use std::fmt;

/// Errors produced while building, executing or analysing query plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// An underlying data-layer error.
    Data(DataError),
    /// An underlying query-layer error.
    Query(QueryError),
    /// A column index is out of range for a node's output arity.
    ColumnOutOfRange { column: usize, arity: usize },
    /// A binary node combines children of different arities.
    ArityMismatch { left: usize, right: usize },
    /// A fetch node's key columns do not match its constraint's X attributes.
    FetchKeyMismatch { expected: usize, actual: usize },
    /// A view referenced by the plan is not materialised / not declared.
    UnknownView(String),
    /// A fetch refers to a constraint that is not part of the access schema
    /// the plan is being executed / checked against.
    ConstraintNotInSchema(String),
    /// A runtime guardrail fired during execution (see [`ExecError`]).
    Exec(ExecError),
}

/// Runtime guardrail failures raised by the executor: the query was valid
/// and the plan sound, but execution was stopped by a dynamic limit
/// (see [`crate::guard`]) or a contained worker panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The execution's cancellation token was tripped (externally, or
    /// internally because a sibling shard failed).
    Cancelled,
    /// The wall-clock deadline elapsed mid-execution.
    DeadlineExceeded {
        /// The configured deadline, in milliseconds.
        deadline_ms: u64,
    },
    /// The intermediate-row (memory) budget was exhausted.
    MemoryBudgetExceeded {
        /// The configured budget, in rows.
        budget_rows: usize,
    },
    /// The runtime fetched-tuple cap was exhausted.
    FetchBudgetExceeded {
        /// The configured cap, in base tuples.
        budget_tuples: usize,
    },
    /// A shard worker panicked; the panic was contained (siblings cancelled,
    /// process intact) and its message captured here.
    WorkerPanic(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Cancelled => write!(f, "execution was cancelled"),
            ExecError::DeadlineExceeded { deadline_ms } => {
                write!(f, "execution exceeded its {deadline_ms} ms deadline")
            }
            ExecError::MemoryBudgetExceeded { budget_rows } => write!(
                f,
                "execution exceeded its intermediate-row budget of {budget_rows} rows"
            ),
            ExecError::FetchBudgetExceeded { budget_tuples } => write!(
                f,
                "execution exceeded its runtime fetch cap of {budget_tuples} tuples"
            ),
            ExecError::WorkerPanic(msg) => {
                write!(f, "a shard worker panicked (contained): {msg}")
            }
        }
    }
}

impl Error for ExecError {}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Data(e) => write!(f, "{e}"),
            PlanError::Query(e) => write!(f, "{e}"),
            PlanError::ColumnOutOfRange { column, arity } => {
                write!(f, "column {column} is out of range for arity {arity}")
            }
            PlanError::ArityMismatch { left, right } => write!(
                f,
                "binary operator combines children of arities {left} and {right}"
            ),
            PlanError::FetchKeyMismatch { expected, actual } => write!(
                f,
                "fetch key has {actual} columns but the constraint's X has {expected} attributes"
            ),
            PlanError::UnknownView(v) => write!(f, "view `{v}` is not available"),
            PlanError::ConstraintNotInSchema(c) => {
                write!(f, "fetch constraint {c} is not part of the access schema")
            }
            PlanError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::Data(e) => Some(e),
            PlanError::Query(e) => Some(e),
            PlanError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for PlanError {
    fn from(e: ExecError) -> Self {
        PlanError::Exec(e)
    }
}

impl From<DataError> for PlanError {
    fn from(e: DataError) -> Self {
        PlanError::Data(e)
    }
}

impl From<QueryError> for PlanError {
    fn from(e: QueryError) -> Self {
        PlanError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = PlanError::ColumnOutOfRange {
            column: 3,
            arity: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(Error::source(&e).is_none());
        let e: PlanError = DataError::UnknownRelation("r".into()).into();
        assert!(Error::source(&e).is_some());
        let e: PlanError = QueryError::UnknownRelation("r".into()).into();
        assert!(e.to_string().contains('r'));
        assert!(PlanError::UnknownView("V".into()).to_string().contains('V'));
        assert!(PlanError::ArityMismatch { left: 1, right: 2 }
            .to_string()
            .contains('2'));
        assert!(PlanError::FetchKeyMismatch {
            expected: 2,
            actual: 1
        }
        .to_string()
        .contains('2'));
        assert!(PlanError::ConstraintNotInSchema("c".into())
            .to_string()
            .contains('c'));
    }

    #[test]
    fn exec_errors_display_their_limits_and_source_through_plan_error() {
        let cases: Vec<(ExecError, &str)> = vec![
            (ExecError::Cancelled, "cancelled"),
            (ExecError::DeadlineExceeded { deadline_ms: 50 }, "50 ms"),
            (
                ExecError::MemoryBudgetExceeded { budget_rows: 1024 },
                "1024 rows",
            ),
            (
                ExecError::FetchBudgetExceeded { budget_tuples: 99 },
                "99 tuples",
            ),
            (ExecError::WorkerPanic("boom".into()), "boom"),
        ];
        for (e, needle) in cases {
            assert!(
                e.to_string().contains(needle),
                "{e} should mention {needle}"
            );
            let wrapped: PlanError = e.clone().into();
            assert!(wrapped.to_string().contains(needle));
            assert!(Error::source(&wrapped).is_some());
        }
    }
}
