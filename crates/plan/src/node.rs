//! The plan tree: nodes, size, arity, language classification and
//! pretty-printing.

use crate::error::PlanError;
use crate::Result;
use bqr_data::{AccessConstraint, Tuple, Value};
use std::fmt;

/// A selection condition on the columns of a node's output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectCondition {
    /// Column equals a constant.
    ColEqConst(usize, Value),
    /// Column differs from a constant.
    ColNeConst(usize, Value),
    /// Two columns are equal.
    ColEqCol(usize, usize),
    /// Two columns are different.
    ColNeCol(usize, usize),
}

impl SelectCondition {
    /// Largest column index referenced by the condition.
    pub fn max_column(&self) -> usize {
        match self {
            SelectCondition::ColEqConst(c, _) | SelectCondition::ColNeConst(c, _) => *c,
            SelectCondition::ColEqCol(a, b) | SelectCondition::ColNeCol(a, b) => (*a).max(*b),
        }
    }

    /// Evaluate the condition on a tuple.
    pub fn holds(&self, tuple: &Tuple) -> bool {
        match self {
            SelectCondition::ColEqConst(c, v) => &tuple[*c] == v,
            SelectCondition::ColNeConst(c, v) => &tuple[*c] != v,
            SelectCondition::ColEqCol(a, b) => tuple[*a] == tuple[*b],
            SelectCondition::ColNeCol(a, b) => tuple[*a] != tuple[*b],
        }
    }

    /// True if the condition only uses equality (allowed in CQ/UCQ/∃FO+
    /// plans; inequalities force the FO classification).
    pub fn is_equality(&self) -> bool {
        matches!(
            self,
            SelectCondition::ColEqConst(_, _) | SelectCondition::ColEqCol(_, _)
        )
    }
}

impl fmt::Display for SelectCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectCondition::ColEqConst(c, v) => write!(f, "#{c} = {v}"),
            SelectCondition::ColNeConst(c, v) => write!(f, "#{c} ≠ {v}"),
            SelectCondition::ColEqCol(a, b) => write!(f, "#{a} = #{b}"),
            SelectCondition::ColNeCol(a, b) => write!(f, "#{a} ≠ #{b}"),
        }
    }
}

/// One node of a query plan tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// A constant single-tuple relation `{c̄}`.
    Const(Tuple),
    /// A cached view extent `V(D)`; the arity is recorded so that plans are
    /// self-describing.
    View { name: String, arity: usize },
    /// `fetch(X ∈ S, R, Y)`: for every tuple of the input, project the
    /// `key_columns` to obtain an `X`-value and retrieve `D_{R:XY}(X = ā)`
    /// through the index of `constraint`.  The output columns are the
    /// constraint's `X ∪ Y` attributes in that order.
    Fetch {
        input: Box<PlanNode>,
        constraint: AccessConstraint,
        key_columns: Vec<usize>,
    },
    /// Projection onto the given columns (in the given order).
    Project {
        input: Box<PlanNode>,
        columns: Vec<usize>,
    },
    /// Selection by a conjunction of conditions.
    Select {
        input: Box<PlanNode>,
        conditions: Vec<SelectCondition>,
    },
    /// Cartesian product.
    Product(Box<PlanNode>, Box<PlanNode>),
    /// Set union (children must have equal arity).
    Union(Box<PlanNode>, Box<PlanNode>),
    /// Set difference (children must have equal arity).
    Difference(Box<PlanNode>, Box<PlanNode>),
    /// Renaming.  With positional columns renaming does not change the data;
    /// the node exists so that plan sizes match the paper's counting of `ρ`
    /// operations.
    Rename { input: Box<PlanNode> },
}

/// The plan languages of Section 2 (which queries a plan can express).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PlanLanguage {
    /// fetch, π, σ, ×, ρ (and constant / view leaves).
    Cq,
    /// additionally ∪, but only at the top of the tree.
    Ucq,
    /// ∪ anywhere.
    PosFo,
    /// additionally set difference `\` or non-equality selections.
    Fo,
}

impl fmt::Display for PlanLanguage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanLanguage::Cq => write!(f, "CQ"),
            PlanLanguage::Ucq => write!(f, "UCQ"),
            PlanLanguage::PosFo => write!(f, "∃FO+"),
            PlanLanguage::Fo => write!(f, "FO"),
        }
    }
}

impl PlanNode {
    /// Output arity of the node.
    pub fn arity(&self) -> usize {
        match self {
            PlanNode::Const(t) => t.arity(),
            PlanNode::View { arity, .. } => *arity,
            PlanNode::Fetch { constraint, .. } => constraint.xy().len(),
            PlanNode::Project { columns, .. } => columns.len(),
            PlanNode::Select { input, .. } | PlanNode::Rename { input } => input.arity(),
            PlanNode::Product(a, b) => a.arity() + b.arity(),
            PlanNode::Union(a, _) | PlanNode::Difference(a, _) => a.arity(),
        }
    }

    /// Number of nodes in the subtree (the paper's plan size measure).
    pub fn size(&self) -> usize {
        1 + match self {
            PlanNode::Const(_) | PlanNode::View { .. } => 0,
            PlanNode::Fetch { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Select { input, .. }
            | PlanNode::Rename { input } => input.size(),
            PlanNode::Product(a, b) | PlanNode::Union(a, b) | PlanNode::Difference(a, b) => {
                a.size() + b.size()
            }
        }
    }

    /// Validate structural well-formedness: column indices in range, equal
    /// arities for union/difference, fetch keys matching constraint arity.
    pub fn validate(&self) -> Result<()> {
        match self {
            PlanNode::Const(_) | PlanNode::View { .. } => Ok(()),
            PlanNode::Fetch {
                input,
                constraint,
                key_columns,
            } => {
                input.validate()?;
                if key_columns.len() != constraint.x().len() {
                    return Err(PlanError::FetchKeyMismatch {
                        expected: constraint.x().len(),
                        actual: key_columns.len(),
                    });
                }
                for &c in key_columns {
                    if c >= input.arity() {
                        return Err(PlanError::ColumnOutOfRange {
                            column: c,
                            arity: input.arity(),
                        });
                    }
                }
                Ok(())
            }
            PlanNode::Project { input, columns } => {
                input.validate()?;
                for &c in columns {
                    if c >= input.arity() {
                        return Err(PlanError::ColumnOutOfRange {
                            column: c,
                            arity: input.arity(),
                        });
                    }
                }
                Ok(())
            }
            PlanNode::Select { input, conditions } => {
                input.validate()?;
                for cond in conditions {
                    if cond.max_column() >= input.arity() {
                        return Err(PlanError::ColumnOutOfRange {
                            column: cond.max_column(),
                            arity: input.arity(),
                        });
                    }
                }
                Ok(())
            }
            PlanNode::Rename { input } => input.validate(),
            PlanNode::Product(a, b) => {
                a.validate()?;
                b.validate()
            }
            PlanNode::Union(a, b) | PlanNode::Difference(a, b) => {
                a.validate()?;
                b.validate()?;
                if a.arity() != b.arity() {
                    return Err(PlanError::ArityMismatch {
                        left: a.arity(),
                        right: b.arity(),
                    });
                }
                Ok(())
            }
        }
    }

    /// All fetch nodes of the subtree (pre-order).
    pub fn fetches(&self) -> Vec<&PlanNode> {
        let mut out = Vec::new();
        self.visit(&mut |n| {
            if matches!(n, PlanNode::Fetch { .. }) {
                out.push(n);
            }
        });
        out
    }

    /// Names of views used anywhere in the subtree.
    pub fn view_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |n| {
            if let PlanNode::View { name, .. } = n {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Constants used anywhere in the subtree (in `Const` leaves or selection
    /// conditions) — bounded rewritings may only use constants from the query.
    pub fn constants(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.visit(&mut |n| match n {
            PlanNode::Const(t) => {
                for v in t.iter() {
                    if !out.contains(v) {
                        out.push(v.clone());
                    }
                }
            }
            PlanNode::Select { conditions, .. } => {
                for c in conditions {
                    if let SelectCondition::ColEqConst(_, v) | SelectCondition::ColNeConst(_, v) = c
                    {
                        if !out.contains(v) {
                            out.push(v.clone());
                        }
                    }
                }
            }
            _ => {}
        });
        out
    }

    /// Visit every node of the subtree (pre-order).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a PlanNode)) {
        f(self);
        match self {
            PlanNode::Const(_) | PlanNode::View { .. } => {}
            PlanNode::Fetch { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Select { input, .. }
            | PlanNode::Rename { input } => input.visit(f),
            PlanNode::Product(a, b) | PlanNode::Union(a, b) | PlanNode::Difference(a, b) => {
                a.visit(f);
                b.visit(f);
            }
        }
    }

    /// The smallest plan language the subtree belongs to.
    pub fn language(&self) -> PlanLanguage {
        fn has_difference_or_inequality(n: &PlanNode) -> bool {
            let mut found = false;
            n.visit(&mut |m| match m {
                PlanNode::Difference(_, _) => found = true,
                PlanNode::Select { conditions, .. }
                    if conditions.iter().any(|c| !c.is_equality()) =>
                {
                    found = true;
                }
                _ => {}
            });
            found
        }
        fn has_union(n: &PlanNode) -> bool {
            let mut found = false;
            n.visit(&mut |m| {
                if matches!(m, PlanNode::Union(_, _)) {
                    found = true;
                }
            });
            found
        }
        /// Unions only along the spine from the root (every ancestor of a
        /// union is a union).
        fn unions_top_level_only(n: &PlanNode) -> bool {
            match n {
                PlanNode::Union(a, b) => unions_top_level_only(a) && unions_top_level_only(b),
                other => !has_union(other),
            }
        }
        if has_difference_or_inequality(self) {
            PlanLanguage::Fo
        } else if !has_union(self) {
            PlanLanguage::Cq
        } else if unions_top_level_only(self) {
            PlanLanguage::Ucq
        } else {
            PlanLanguage::PosFo
        }
    }

    fn render(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match self {
            PlanNode::Const(t) => out.push_str(&format!("{pad}const {t}\n")),
            PlanNode::View { name, arity } => out.push_str(&format!("{pad}view {name}/{arity}\n")),
            PlanNode::Fetch {
                input,
                constraint,
                key_columns,
            } => {
                out.push_str(&format!("{pad}fetch[{constraint}] keys {key_columns:?}\n"));
                input.render(indent + 1, out);
            }
            PlanNode::Project { input, columns } => {
                out.push_str(&format!("{pad}π{columns:?}\n"));
                input.render(indent + 1, out);
            }
            PlanNode::Select { input, conditions } => {
                let conds: Vec<String> = conditions.iter().map(|c| c.to_string()).collect();
                out.push_str(&format!("{pad}σ[{}]\n", conds.join(" ∧ ")));
                input.render(indent + 1, out);
            }
            PlanNode::Rename { input } => {
                out.push_str(&format!("{pad}ρ\n"));
                input.render(indent + 1, out);
            }
            PlanNode::Product(a, b) => {
                out.push_str(&format!("{pad}×\n"));
                a.render(indent + 1, out);
                b.render(indent + 1, out);
            }
            PlanNode::Union(a, b) => {
                out.push_str(&format!("{pad}∪\n"));
                a.render(indent + 1, out);
                b.render(indent + 1, out);
            }
            PlanNode::Difference(a, b) => {
                out.push_str(&format!("{pad}\\\n"));
                a.render(indent + 1, out);
                b.render(indent + 1, out);
            }
        }
    }
}

/// A complete query plan: a validated plan tree.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    root: PlanNode,
}

impl QueryPlan {
    /// Wrap and validate a plan tree.
    pub fn new(root: PlanNode) -> Result<Self> {
        root.validate()?;
        Ok(QueryPlan { root })
    }

    /// The root node.
    pub fn root(&self) -> &PlanNode {
        &self.root
    }

    /// Plan size (number of nodes), the quantity bounded by `M`.
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.root.arity()
    }

    /// Plan language classification.
    pub fn language(&self) -> PlanLanguage {
        self.root.language()
    }

    /// Views used by the plan.
    pub fn view_names(&self) -> Vec<String> {
        self.root.view_names()
    }

    /// Constants used by the plan.
    pub fn constants(&self) -> Vec<Value> {
        self.root.constants()
    }

    /// Fetch nodes of the plan.
    pub fn fetches(&self) -> Vec<&PlanNode> {
        self.root.fetches()
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.root.render(0, &mut out);
        write!(f, "{out}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqr_data::tuple;

    fn constraint() -> AccessConstraint {
        AccessConstraint::new("movie", &["studio", "release"], &["mid"], 100).unwrap()
    }

    fn small_fetch() -> PlanNode {
        PlanNode::Fetch {
            input: Box::new(PlanNode::Const(tuple!["Universal", "2014"])),
            constraint: constraint(),
            key_columns: vec![0, 1],
        }
    }

    #[test]
    fn arity_and_size() {
        let fetch = small_fetch();
        assert_eq!(fetch.arity(), 3, "X ∪ Y = studio, release, mid");
        assert_eq!(fetch.size(), 2);
        let project = PlanNode::Project {
            input: Box::new(fetch),
            columns: vec![2],
        };
        assert_eq!(project.arity(), 1);
        assert_eq!(project.size(), 3);
        let view = PlanNode::View {
            name: "V1".into(),
            arity: 1,
        };
        assert_eq!(view.arity(), 1);
        let product = PlanNode::Product(Box::new(project.clone()), Box::new(view.clone()));
        assert_eq!(product.arity(), 2);
        assert_eq!(product.size(), 5);
        let plan = QueryPlan::new(product).unwrap();
        assert_eq!(plan.size(), 5);
        assert_eq!(plan.view_names(), vec!["V1".to_string()]);
        assert!(plan.constants().contains(&Value::str("Universal")));
        assert_eq!(plan.fetches().len(), 1);
    }

    #[test]
    fn validation_catches_errors() {
        let bad_project = PlanNode::Project {
            input: Box::new(PlanNode::Const(tuple![1])),
            columns: vec![2],
        };
        assert!(matches!(
            QueryPlan::new(bad_project),
            Err(PlanError::ColumnOutOfRange { .. })
        ));

        let bad_union = PlanNode::Union(
            Box::new(PlanNode::Const(tuple![1])),
            Box::new(PlanNode::Const(tuple![1, 2])),
        );
        assert!(matches!(
            QueryPlan::new(bad_union),
            Err(PlanError::ArityMismatch { .. })
        ));

        let bad_fetch = PlanNode::Fetch {
            input: Box::new(PlanNode::Const(tuple!["Universal"])),
            constraint: constraint(),
            key_columns: vec![0],
        };
        assert!(matches!(
            QueryPlan::new(bad_fetch),
            Err(PlanError::FetchKeyMismatch { .. })
        ));

        let bad_select = PlanNode::Select {
            input: Box::new(PlanNode::Const(tuple![1])),
            conditions: vec![SelectCondition::ColEqCol(0, 4)],
        };
        assert!(matches!(
            QueryPlan::new(bad_select),
            Err(PlanError::ColumnOutOfRange { .. })
        ));

        let bad_fetch_key = PlanNode::Fetch {
            input: Box::new(PlanNode::Const(tuple!["U"])),
            constraint: AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap(),
            key_columns: vec![3],
        };
        assert!(QueryPlan::new(bad_fetch_key).is_err());
    }

    #[test]
    fn language_classification() {
        let cq = small_fetch();
        assert_eq!(cq.language(), PlanLanguage::Cq);

        let union_top = PlanNode::Union(Box::new(cq.clone()), Box::new(small_fetch()));
        assert_eq!(union_top.language(), PlanLanguage::Ucq);

        // A union below a projection is ∃FO+ but not UCQ.
        let nested = PlanNode::Project {
            input: Box::new(union_top.clone()),
            columns: vec![0],
        };
        assert_eq!(nested.language(), PlanLanguage::PosFo);

        let diff = PlanNode::Difference(Box::new(cq.clone()), Box::new(small_fetch()));
        assert_eq!(diff.language(), PlanLanguage::Fo);

        let neq = PlanNode::Select {
            input: Box::new(cq),
            conditions: vec![SelectCondition::ColNeConst(0, Value::int(1))],
        };
        assert_eq!(neq.language(), PlanLanguage::Fo);
        assert!(PlanLanguage::Cq < PlanLanguage::Fo);
        assert_eq!(PlanLanguage::PosFo.to_string(), "∃FO+");
    }

    #[test]
    fn select_conditions() {
        let t = tuple![1, 1, 2];
        assert!(SelectCondition::ColEqCol(0, 1).holds(&t));
        assert!(!SelectCondition::ColEqCol(0, 2).holds(&t));
        assert!(SelectCondition::ColNeCol(1, 2).holds(&t));
        assert!(SelectCondition::ColEqConst(2, Value::int(2)).holds(&t));
        assert!(SelectCondition::ColNeConst(2, Value::int(3)).holds(&t));
        assert!(SelectCondition::ColEqConst(0, Value::int(1)).is_equality());
        assert!(!SelectCondition::ColNeCol(0, 1).is_equality());
        assert_eq!(SelectCondition::ColEqCol(0, 1).max_column(), 1);
        assert_eq!(
            SelectCondition::ColNeConst(4, Value::int(0)).max_column(),
            4
        );
        assert!(SelectCondition::ColEqCol(0, 1).to_string().contains('='));
    }

    #[test]
    fn display_renders_tree() {
        let plan = QueryPlan::new(PlanNode::Project {
            input: Box::new(PlanNode::Select {
                input: Box::new(small_fetch()),
                conditions: vec![SelectCondition::ColEqConst(2, Value::int(1))],
            }),
            columns: vec![2],
        })
        .unwrap();
        let text = plan.to_string();
        assert!(text.contains("π[2]"));
        assert!(text.contains("σ["));
        assert!(text.contains("fetch["));
        assert!(text.contains("const"));
    }

    #[test]
    fn rename_preserves_arity_and_counts_as_node() {
        let renamed = PlanNode::Rename {
            input: Box::new(PlanNode::Const(tuple![1, 2])),
        };
        assert_eq!(renamed.arity(), 2);
        assert_eq!(renamed.size(), 2);
        assert!(QueryPlan::new(renamed).is_ok());
    }
}
