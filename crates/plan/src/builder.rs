//! A fluent builder for query plans.
//!
//! The primitive operators mirror the paper's plan grammar exactly; the
//! `join_eq` convenience expands into `×` followed by `σ` (and is therefore
//! counted as two or more plan nodes, matching how Fig. 1 counts its join).

use crate::node::{PlanNode, QueryPlan, SelectCondition};
use crate::Result;
use bqr_data::{AccessConstraint, Tuple, Value};

/// A plan under construction.
#[derive(Debug, Clone)]
pub struct Plan {
    node: PlanNode,
}

impl Plan {
    /// A constant single-tuple leaf `{c̄}`.
    pub fn constant<V: Into<Value>>(values: Vec<V>) -> Plan {
        Plan {
            node: PlanNode::Const(Tuple::new(values.into_iter().map(Into::into).collect())),
        }
    }

    /// A cached-view leaf.
    pub fn view(name: impl Into<String>, arity: usize) -> Plan {
        Plan {
            node: PlanNode::View {
                name: name.into(),
                arity,
            },
        }
    }

    /// Wrap an existing node.
    pub fn from_node(node: PlanNode) -> Plan {
        Plan { node }
    }

    /// `fetch(X ∈ self, R, Y)` through `constraint`; `key_columns` are the
    /// columns of `self` holding the `X`-value (in the constraint's order).
    pub fn fetch(self, constraint: AccessConstraint, key_columns: Vec<usize>) -> Plan {
        Plan {
            node: PlanNode::Fetch {
                input: Box::new(self.node),
                constraint,
                key_columns,
            },
        }
    }

    /// Projection onto columns.
    pub fn project(self, columns: Vec<usize>) -> Plan {
        Plan {
            node: PlanNode::Project {
                input: Box::new(self.node),
                columns,
            },
        }
    }

    /// Selection by a list of conditions.
    pub fn select(self, conditions: Vec<SelectCondition>) -> Plan {
        Plan {
            node: PlanNode::Select {
                input: Box::new(self.node),
                conditions,
            },
        }
    }

    /// Selection `#col = constant`.
    pub fn select_eq_const(self, column: usize, value: impl Into<Value>) -> Plan {
        self.select(vec![SelectCondition::ColEqConst(column, value.into())])
    }

    /// Selection `#a = #b`.
    pub fn select_eq_cols(self, a: usize, b: usize) -> Plan {
        self.select(vec![SelectCondition::ColEqCol(a, b)])
    }

    /// Cartesian product.
    pub fn product(self, other: Plan) -> Plan {
        Plan {
            node: PlanNode::Product(Box::new(self.node), Box::new(other.node)),
        }
    }

    /// Set union.
    pub fn union(self, other: Plan) -> Plan {
        Plan {
            node: PlanNode::Union(Box::new(self.node), Box::new(other.node)),
        }
    }

    /// Set difference.
    pub fn difference(self, other: Plan) -> Plan {
        Plan {
            node: PlanNode::Difference(Box::new(self.node), Box::new(other.node)),
        }
    }

    /// Renaming (a counted no-op on positional columns).
    pub fn rename(self) -> Plan {
        Plan {
            node: PlanNode::Rename {
                input: Box::new(self.node),
            },
        }
    }

    /// Equi-join: `self × other` followed by one selection per column pair
    /// `(left column, right column of other)`.
    pub fn join_eq(self, other: Plan, pairs: &[(usize, usize)]) -> Plan {
        let left_arity = self.node.arity();
        let conditions = pairs
            .iter()
            .map(|&(l, r)| SelectCondition::ColEqCol(l, left_arity + r))
            .collect();
        self.product(other).select(conditions)
    }

    /// Current size of the plan under construction.
    pub fn size(&self) -> usize {
        self.node.size()
    }

    /// Current arity.
    pub fn arity(&self) -> usize {
        self.node.arity()
    }

    /// Borrow the underlying node.
    pub fn node(&self) -> &PlanNode {
        &self.node
    }

    /// Finish and validate.
    pub fn build(self) -> Result<QueryPlan> {
        QueryPlan::new(self.node)
    }
}

/// The 11-node plan `ξ_0` of Fig. 1: answer `Q_0` using the view `V1` under
/// `A_0`.  Exposed here because examples, tests and benchmarks all use it.
///
/// Structure (bottom-up), matching the eleven relations `S_1 ... S_11` of the
/// figure:
///
/// 1. `const ("Universal")`             — S1
/// 2. `const ("2014")`                  — S2
/// 3. `×`                               — S3 = S1 × S2
/// 4. `fetch` movie via φ1              — S4: (studio, release, mid)
/// 5. `π mid`                           — S5
/// 6. `view V1`                         — S6: (mid)
/// 7. `×`                               — S7
/// 8. `σ (#0 = #1)`                     — S8: movies both fetched and liked
/// 9. `fetch` rating via φ2 (key #0)    — S9: (mid, rank)
/// 10. `σ rank = 5`                     — S10
/// 11. `π mid`                          — S11
pub fn figure1_plan(phi1: &AccessConstraint, phi2: &AccessConstraint) -> Result<QueryPlan> {
    Plan::constant(vec![Value::str("Universal")])
        .product(Plan::constant(vec![Value::str("2014")]))
        .fetch(phi1.clone(), vec![0, 1]) // (studio, release, mid)
        .project(vec![2]) // (mid)
        .join_eq(Plan::view("V1", 1), &[(0, 0)]) // ×, σ  → (mid, mid)
        .fetch(phi2.clone(), vec![0]) // (mid, rank)
        .select_eq_const(1, 5) // rank = 5
        .project(vec![0]) // (mid)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PlanLanguage;

    fn phi1() -> AccessConstraint {
        AccessConstraint::new("movie", &["studio", "release"], &["mid"], 100).unwrap()
    }
    fn phi2() -> AccessConstraint {
        AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap()
    }

    #[test]
    fn figure1_plan_has_eleven_nodes_and_is_cq() {
        let plan = figure1_plan(&phi1(), &phi2()).unwrap();
        assert_eq!(plan.size(), 11, "\n{plan}");
        assert_eq!(plan.arity(), 1);
        assert_eq!(plan.language(), PlanLanguage::Cq);
        assert_eq!(plan.view_names(), vec!["V1".to_string()]);
        assert_eq!(plan.fetches().len(), 2);
        assert!(plan.constants().contains(&Value::str("Universal")));
        assert!(plan.constants().contains(&Value::int(5)));
    }

    #[test]
    fn builder_operations_compose() {
        let plan = Plan::constant(vec![1, 2])
            .rename()
            .project(vec![1])
            .union(Plan::constant(vec![3]))
            .build()
            .unwrap();
        assert_eq!(plan.arity(), 1);
        assert_eq!(plan.size(), 5);
        assert_eq!(plan.language(), PlanLanguage::Ucq);

        let diff = Plan::constant(vec![1])
            .difference(Plan::constant(vec![2]))
            .build()
            .unwrap();
        assert_eq!(diff.language(), PlanLanguage::Fo);
    }

    #[test]
    fn join_eq_expands_to_product_and_select() {
        let joined = Plan::constant(vec![1, 2]).join_eq(Plan::constant(vec![2, 9]), &[(1, 0)]);
        // const + const + product + select = 4 nodes, arity 4.
        assert_eq!(joined.size(), 4);
        assert_eq!(joined.arity(), 4);
        let plan = joined.build().unwrap();
        assert_eq!(plan.language(), PlanLanguage::Cq);
    }

    #[test]
    fn builder_exposes_node_access() {
        let p = Plan::view("V", 2).select_eq_cols(0, 1);
        assert_eq!(p.node().arity(), 2);
        assert!(Plan::from_node(p.node().clone()).build().is_ok());
    }
}
