//! Plan execution: a compiled operator pipeline over interned ids, with
//! I/O accounting.
//!
//! The invariant that makes bounded rewriting work is visible directly in the
//! code: the only place base data is read is the fetch operator, which goes
//! through the constraint indices of the access schema ([`bqr_data::IndexedDatabase`]).
//! Everything else works on intermediate results, cached view extents, or
//! constants.
//!
//! # Execution model
//!
//! [`execute`] compiles the plan tree into a flat [`Pipeline`] of operators
//! (fetch, view scan, hash join, select, project, product, union,
//! difference, dedup) and evaluates them in dependency order over columns of
//! dense [`ValueId`]s:
//!
//! * view extents are read through the process-wide interned snapshots of
//!   `bqr-data` (one `memcpy` per scan, shared across executions of the same
//!   epoch);
//! * fetches go through the id-native constraint indexes
//!   ([`bqr_data::InternedAccessIndex`]), with `X`-keys deduplicated globally
//!   so `fetch_calls` counts distinct probes exactly as the set-semantics
//!   interpreter did;
//! * the σ-over-× join pattern compiles to a hash join whose build side is
//!   the smaller input (the PR 2 lesson — actual cardinalities are the best
//!   statistics, and at pipeline time they are exact);
//! * `Tuple`s (and `Value`s) are materialised only at the root.
//!
//! # `FetchStats` semantics (pinned)
//!
//! `fetched_tuples` is the paper's `|D_ξ|`, counted as a bag over distinct
//! `X`-keys per fetch operator.  `view_tuples` counts the **full cached
//! extent** once per view leaf, *before* any selection above it: reading the
//! cache is the I/O, filtering happens afterwards in memory.  Both engines
//! (this pipeline and [`mod@reference`]) implement exactly these semantics and
//! `tests/exec_diff.rs` holds them equal on randomized plans.
//!
//! # Vectorised kernels
//!
//! The hot operators — selection, view filtering, projection, hash-join
//! build/probe, fetch probing, dedup — run as batch kernels
//! (the crate-private `kernel` module, `BATCH_ROWS` = 1024 rows at a time)
//! with
//! selection-vector passing: a filter never copies a row until every
//! condition has voted, probes hash bare `ValueId`s for single-column join
//! keys, and guard checks/row-budget charges happen once per batch (the
//! same cadence as the former per-row checkpoint mask, preserving PR 6's
//! pre-charge semantics and overhead gate).
//!
//! # Parallelism
//!
//! [`execute_with`] takes [`ExecOptions`]: with `parallel` set,
//! data-parallel operators (select, project, hash-join probe, fetch probe,
//! product) are driven by the morsel scheduler (the crate-private `morsel`
//! module): worker
//! threads pull fixed-size morsels of the input from a shared queue and
//! results merge *in morsel order*.  Because morsel boundaries are a pure
//! function of `(rows, workers)` and every kernel is order-preserving,
//! parallel execution produces bit-identical tables (and identical
//! `FetchStats`) to serial execution.  [`ExecOptions::parallel_auto`]
//! additionally picks the worker count per operator from its input
//! cardinalities (see [`ExecOptions::auto_worker_count`]).
//!
//! The original tree-walking interpreter (`BTreeSet<Tuple>` at every node)
//! is retained verbatim as [`mod@reference`]: it is the oracle for the
//! differential tests and the baseline of the plan benchmarks.

use crate::error::PlanError;
use crate::guard::{Guard, GuardLimits};
use crate::kernel;
use crate::morsel::run_morsels;
use crate::node::{PlanNode, QueryPlan, SelectCondition};
use crate::Result;
use bqr_data::{snapshot_of, FetchStats, IndexedDatabase, InternedSnapshot, Tuple, Value, ValueId};
use bqr_query::MaterializedViews;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// The result of executing a plan: the answer relation and the I/O counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutput {
    /// The answer tuples (sorted, duplicate-free).
    pub tuples: Vec<Tuple>,
    /// How much data was accessed: `fetched_tuples` is the paper's `|D_ξ|`.
    pub stats: FetchStats,
}

impl ExecOutput {
    /// `|D_ξ|`: the number of base tuples fetched while executing the plan.
    pub fn base_tuples_fetched(&self) -> usize {
        self.stats.fetched_tuples
    }
}

/// Options controlling pipeline execution.  `Hash` so the options can be
/// part of a [`crate::prepared::PipelineCache`] key (which strips the
/// runtime-only [`GuardLimits`] via [`ExecOptions::cache_key`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecOptions {
    /// How many contiguous row ranges data-parallel operators split their
    /// inputs into.  Meaningful only with `parallel`; clamped to ≥ 1.
    pub shards: usize,
    /// Evaluate data-parallel operators on `shards` scoped threads.  Inputs
    /// below [`ExecOptions::PARALLEL_MIN_ROWS`] rows stay serial — thread
    /// startup would dominate.  Output is bit-identical to serial execution.
    pub parallel: bool,
    /// With `parallel`, ignore `shards` and pick the morsel worker count per
    /// operator from its input cardinalities
    /// ([`ExecOptions::auto_worker_count`] over the operator's work hint,
    /// capped at the hardware thread count).  Output is bit-identical for
    /// every worker count, so auto-selection never changes answers.
    pub auto: bool,
    /// Runtime guardrails (deadline, intermediate-row budget, fetch cap).
    /// All disabled by default; see [`crate::guard`] for semantics.
    pub limits: GuardLimits,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            shards: 1,
            parallel: false,
            auto: false,
            limits: GuardLimits::none(),
        }
    }
}

impl ExecOptions {
    /// Operators with fewer input rows than this run serially even under
    /// `parallel` (spawning threads costs more than the work saved).
    pub const PARALLEL_MIN_ROWS: usize = 4096;

    /// Serial execution (the default).
    pub fn serial() -> Self {
        ExecOptions::default()
    }

    /// Parallel execution over `shards` morsel-pulling workers.
    pub fn parallel(shards: usize) -> Self {
        ExecOptions {
            shards: shards.max(1),
            parallel: true,
            auto: false,
            limits: GuardLimits::none(),
        }
    }

    /// Parallel execution with an automatically chosen worker count: each
    /// data-parallel operator sizes its worker pool from its own input
    /// cardinalities (row counts, index group statistics) via
    /// [`ExecOptions::auto_worker_count`], so small inputs stay serial and
    /// large ones scale up to the hardware thread count without the caller
    /// guessing a shard number.
    pub fn parallel_auto() -> Self {
        ExecOptions {
            shards: 1,
            parallel: true,
            auto: true,
            limits: GuardLimits::none(),
        }
    }

    /// The cost heuristic behind [`ExecOptions::parallel_auto`], as a pure
    /// function so its choices are deterministic and unit-testable: one
    /// worker per [`ExecOptions::PARALLEL_MIN_ROWS`] units of estimated
    /// work (the cardinality-derived work hint operators already compute —
    /// input rows for filters/projections, `probe_rows · avg_group` for
    /// joins, `keys · expected_group` for fetches), clamped to
    /// `[1, max_workers]`.  A hint below the threshold therefore always
    /// yields 1 (serial), matching the work-hint gate of fixed shard counts.
    pub fn auto_worker_count(work_hint: usize, max_workers: usize) -> usize {
        (work_hint / Self::PARALLEL_MIN_ROWS).clamp(1, max_workers.max(1))
    }

    /// How many morsel workers an operator with this estimated `work_hint`
    /// should use under these options: 1 (serial) unless `parallel` is set
    /// and the hint clears [`ExecOptions::PARALLEL_MIN_ROWS`]; then the
    /// fixed `shards` count, or the cardinality heuristic capped at the
    /// hardware thread count when `auto` is set.
    pub fn workers_for(&self, work_hint: usize) -> usize {
        if !self.parallel || work_hint < Self::PARALLEL_MIN_ROWS {
            return 1;
        }
        if self.auto {
            Self::auto_worker_count(work_hint, hardware_workers())
        } else {
            self.shards.max(1)
        }
    }

    /// Set a wall-clock deadline (counted from when execution starts).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.limits.deadline_ms = Some(deadline.as_millis().try_into().unwrap_or(u64::MAX));
        self
    }

    /// [`ExecOptions::with_deadline`], in milliseconds.
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.limits.deadline_ms = Some(deadline_ms);
        self
    }

    /// Cap total intermediate rows materialised across all operators.
    pub fn with_row_budget(mut self, max_intermediate_rows: usize) -> Self {
        self.limits.max_intermediate_rows = Some(max_intermediate_rows);
        self
    }

    /// Cap base tuples fetched at runtime (a dynamic re-check of the
    /// paper's static `|D_ξ| <= M` bound).
    pub fn with_fetch_budget(mut self, max_fetched_tuples: usize) -> Self {
        self.limits.max_fetched_tuples = Some(max_fetched_tuples);
        self
    }

    /// These options with limits stripped: [`GuardLimits`] are runtime-only,
    /// so the pipeline cache keys on this normal form — two executions of
    /// the same plan under different deadlines share one compiled pipeline.
    pub fn cache_key(&self) -> ExecOptions {
        ExecOptions {
            limits: GuardLimits::none(),
            ..*self
        }
    }
}

/// The hardware thread count, resolved once per process (the cap for
/// [`ExecOptions::parallel_auto`]'s per-operator worker counts).
fn hardware_workers() -> usize {
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Execute a plan over `idb` (base data reachable only through constraint
/// indices) and `views` (cached extents), serially.
pub fn execute(
    plan: &QueryPlan,
    idb: &IndexedDatabase,
    views: &MaterializedViews,
) -> Result<ExecOutput> {
    execute_with(plan, idb, views, &ExecOptions::serial())
}

/// [`execute`] under explicit [`ExecOptions`] (e.g. morsel-parallel).
pub fn execute_with(
    plan: &QueryPlan,
    idb: &IndexedDatabase,
    views: &MaterializedViews,
    options: &ExecOptions,
) -> Result<ExecOutput> {
    Pipeline::compile(plan, idb, views)?.execute(idb, options)
}

/// A selection condition over interned ids.  Constants are interned at
/// compile time: a constant absent from the pool would have minted a fresh
/// id, which by construction matches no id occurring in any table — so
/// equality against it is always false and inequality always true, exactly
/// the `Value` semantics.
#[derive(Debug, Clone)]
pub(crate) enum IdCond {
    EqConst(usize, ValueId),
    NeConst(usize, ValueId),
    EqCol(usize, usize),
    NeCol(usize, usize),
}

impl IdCond {
    fn compile(cond: &SelectCondition) -> IdCond {
        match cond {
            SelectCondition::ColEqConst(c, v) => IdCond::EqConst(*c, ValueId::intern(v)),
            SelectCondition::ColNeConst(c, v) => IdCond::NeConst(*c, ValueId::intern(v)),
            SelectCondition::ColEqCol(a, b) => IdCond::EqCol(*a, *b),
            SelectCondition::ColNeCol(a, b) => IdCond::NeCol(*a, *b),
        }
    }

    pub(crate) fn holds(&self, row: &[ValueId]) -> bool {
        match self {
            IdCond::EqConst(c, v) => row[*c] == *v,
            IdCond::NeConst(c, v) => row[*c] != *v,
            IdCond::EqCol(a, b) => row[*a] == row[*b],
            IdCond::NeCol(a, b) => row[*a] != row[*b],
        }
    }
}

impl fmt::Display for IdCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdCond::EqConst(c, v) => write!(f, "#{c} = id:{}", v.as_u32()),
            IdCond::NeConst(c, v) => write!(f, "#{c} ≠ id:{}", v.as_u32()),
            IdCond::EqCol(a, b) => write!(f, "#{a} = #{b}"),
            IdCond::NeCol(a, b) => write!(f, "#{a} ≠ #{b}"),
        }
    }
}

/// One operator of the compiled pipeline.  Operands are indexes of earlier
/// operators (the pipeline is in dependency order by construction).
#[derive(Debug)]
enum Op {
    /// A constant single-row table.
    Const { ids: Vec<ValueId>, arity: usize },
    /// Scan of a cached view extent through its interned snapshot.
    ViewScan {
        name: String,
        snapshot: Arc<InternedSnapshot>,
    },
    /// Selection fused directly over a view extent: filters the interned
    /// snapshot's rows (morsel-partitioned under a parallel driver) without
    /// materialising the unfiltered scan first.
    ViewFilter {
        name: String,
        snapshot: Arc<InternedSnapshot>,
        conds: Vec<IdCond>,
    },
    /// `fetch(X ∈ input, R, Y)` through the id-native constraint index.
    /// `bound` is the constraint's `N`, the per-key output ceiling — used to
    /// estimate the operator's work for the parallel driver.
    Fetch {
        input: usize,
        constraint_idx: usize,
        constraint_display: String,
        key_cols: Vec<usize>,
        arity: usize,
        bound: usize,
    },
    /// Projection onto columns.
    Project { input: usize, cols: Vec<usize> },
    /// Selection by a conjunction of conditions.
    Select { input: usize, conds: Vec<IdCond> },
    /// Equi-join (compiled from the σ-over-× pattern); `residual` holds the
    /// non-join conditions, applied to the concatenated row.
    HashJoin {
        left: usize,
        right: usize,
        pairs: Vec<(usize, usize)>,
        residual: Vec<IdCond>,
    },
    /// Cartesian product.
    Product { left: usize, right: usize },
    /// Concatenation (set union once deduplicated).
    Union { left: usize, right: usize },
    /// Set difference.
    Difference { left: usize, right: usize },
    /// Sort + dedup, inserted after duplicate-introducing operators so every
    /// intermediate table stays set-like (matching the interpreter's
    /// `BTreeSet` semantics without its per-tuple cost).
    Dedup { input: usize },
}

/// A `QueryPlan` compiled to a flat operator pipeline over interned ids.
///
/// Compile once with [`Pipeline::compile`], inspect with
/// [`Pipeline::describe`], run with [`Pipeline::execute`].  The pipeline
/// resolves views (snapshots) and fetch constraints (index positions)
/// against the `idb`/`views` it was compiled for; execute it against the
/// same `idb`.
#[derive(Debug)]
pub struct Pipeline {
    ops: Vec<Op>,
    root: usize,
    arity: usize,
}

impl Pipeline {
    /// Compile `plan` against an indexed database and materialised views.
    /// Resolution errors (unknown views, view arity mismatches, fetches
    /// through constraints outside the access schema) surface here, exactly
    /// as the interpreter reported them during evaluation.
    pub fn compile(
        plan: &QueryPlan,
        idb: &IndexedDatabase,
        views: &MaterializedViews,
    ) -> Result<Pipeline> {
        let mut ops = Vec::new();
        let root = compile_node(plan.root(), idb, views, &mut ops)?;
        Ok(Pipeline {
            ops,
            root,
            arity: plan.arity(),
        })
    }

    /// Number of operators in the pipeline.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the pipeline holds no operators (never the case for a
    /// compiled plan; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// A human-readable rendering of the compiled pipeline, one operator per
    /// line — the plan-level counterpart of the homomorphism engine's
    /// `plan_summary()`.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            let line = match op {
                Op::Const { arity, .. } => format!("const/{arity}"),
                Op::ViewScan { name, snapshot } => {
                    format!("view-scan {name} [{} rows]", snapshot.len())
                }
                Op::ViewFilter {
                    name,
                    snapshot,
                    conds,
                } => {
                    let conds: Vec<String> = conds.iter().map(|c| c.to_string()).collect();
                    format!(
                        "view-filter {name} [{} rows] σ[{}]",
                        snapshot.len(),
                        conds.join(" ∧ ")
                    )
                }
                Op::Fetch {
                    input,
                    constraint_display,
                    key_cols,
                    ..
                } => format!("fetch[{constraint_display}] keys {key_cols:?} of %{input}"),
                Op::Project { input, cols } => format!("π{cols:?} %{input}"),
                Op::Select { input, conds } => {
                    let conds: Vec<String> = conds.iter().map(|c| c.to_string()).collect();
                    format!("σ[{}] %{input}", conds.join(" ∧ "))
                }
                Op::HashJoin {
                    left, right, pairs, ..
                } => format!("hash-join %{left} ⋈ %{right} on {pairs:?}"),
                Op::Product { left, right } => format!("× %{left} %{right}"),
                Op::Union { left, right } => format!("∪ %{left} %{right}"),
                Op::Difference { left, right } => format!("\\ %{left} %{right}"),
                Op::Dedup { input } => format!("dedup %{input}"),
            };
            out.push_str(&format!("%{i} = {line}\n"));
        }
        out.push_str(&format!("root: %{} (arity {})", self.root, self.arity));
        out
    }

    /// Evaluate the pipeline.  `idb` must be the database the pipeline was
    /// compiled against (fetches are resolved by constraint position).
    /// Guardrails come from `options.limits`; to share a cancellation token
    /// or engine metrics, use [`Pipeline::execute_guarded`].
    pub fn execute(&self, idb: &IndexedDatabase, options: &ExecOptions) -> Result<ExecOutput> {
        self.execute_guarded(idb, options, &Guard::new(&options.limits))
    }

    /// [`Pipeline::execute`] under an externally constructed [`Guard`]
    /// (caller-held cancellation token, engine-lifetime metrics).  Guardrail
    /// trips surface as [`PlanError::Exec`] and are recorded in the guard's
    /// metrics exactly once per execution.
    pub fn execute_guarded(
        &self,
        idb: &IndexedDatabase,
        options: &ExecOptions,
        guard: &Guard,
    ) -> Result<ExecOutput> {
        let result = self.run(idb, options, guard);
        if let Err(PlanError::Exec(e)) = &result {
            guard.record_trip(e);
        }
        result
    }

    fn run(
        &self,
        idb: &IndexedDatabase,
        options: &ExecOptions,
        guard: &Guard,
    ) -> Result<ExecOutput> {
        let mut stats = FetchStats::new();
        // Each operator's inputs are dropped after their final consumer so
        // peak memory follows the live path, not the sum of every
        // intermediate (the tree interpreter freed child sets the same way).
        let last_use = self.last_use();
        let mut tables: Vec<IdTable> = Vec::with_capacity(self.ops.len());
        for (op_idx, op) in self.ops.iter().enumerate() {
            guard.check()?;
            let table = match op {
                Op::Const { ids, arity } => {
                    guard.charge_rows(1)?;
                    IdTable {
                        arity: *arity,
                        rows: 1,
                        data: ids.clone(),
                    }
                }
                Op::ViewScan { snapshot, .. } => {
                    stats.record_view_read(snapshot.len());
                    guard.charge_rows(snapshot.len())?;
                    IdTable {
                        arity: snapshot.arity(),
                        rows: snapshot.len(),
                        data: snapshot.id_rows().to_vec(),
                    }
                }
                Op::ViewFilter {
                    snapshot, conds, ..
                } => eval_view_filter(snapshot, conds, &mut stats, options, guard)?,
                Op::Fetch {
                    input,
                    constraint_idx,
                    key_cols,
                    arity,
                    bound,
                    ..
                } => eval_fetch(
                    &tables[*input],
                    idb,
                    *constraint_idx,
                    key_cols,
                    *arity,
                    *bound,
                    &mut stats,
                    options,
                    guard,
                )?,
                Op::Project { input, cols } => eval_project(&tables[*input], cols, options, guard)?,
                Op::Select { input, conds } => eval_select(&tables[*input], conds, options, guard)?,
                Op::HashJoin {
                    left,
                    right,
                    pairs,
                    residual,
                } => eval_hash_join(
                    &tables[*left],
                    &tables[*right],
                    pairs,
                    residual,
                    options,
                    guard,
                )?,
                Op::Product { left, right } => {
                    eval_product(&tables[*left], &tables[*right], options, guard)?
                }
                Op::Union { left, right } => eval_union(&tables[*left], &tables[*right], guard)?,
                Op::Difference { left, right } => {
                    eval_difference(&tables[*left], &tables[*right], guard)?
                }
                Op::Dedup { input } => dedup_table(&tables[*input], guard)?,
            };
            tables.push(table);
            for (input, &last) in last_use.iter().enumerate() {
                if last == op_idx && input != self.root {
                    tables[input] = IdTable::default();
                }
            }
        }
        Ok(ExecOutput {
            tuples: materialize(&tables[self.root], guard)?,
            stats,
        })
    }

    /// For every operator, the index of the last operator consuming its
    /// output (its own index when nothing does; the root is exempted from
    /// dropping in `execute`, which materialises it at the end).
    fn last_use(&self) -> Vec<usize> {
        let mut last: Vec<usize> = (0..self.ops.len()).collect();
        for (i, op) in self.ops.iter().enumerate() {
            let mut mark = |input: usize| last[input] = i;
            match op {
                Op::Const { .. } | Op::ViewScan { .. } | Op::ViewFilter { .. } => {}
                Op::Fetch { input, .. }
                | Op::Project { input, .. }
                | Op::Select { input, .. }
                | Op::Dedup { input } => mark(*input),
                Op::HashJoin { left, right, .. }
                | Op::Product { left, right }
                | Op::Union { left, right }
                | Op::Difference { left, right } => {
                    mark(*left);
                    mark(*right);
                }
            }
        }
        last
    }
}

/// Compile one plan node, appending its operators to `ops` and returning the
/// index of the operator producing the node's output.
fn compile_node(
    node: &PlanNode,
    idb: &IndexedDatabase,
    views: &MaterializedViews,
    ops: &mut Vec<Op>,
) -> Result<usize> {
    let idx = match node {
        PlanNode::Const(t) => {
            let ids = t.iter().map(ValueId::intern).collect();
            push(
                ops,
                Op::Const {
                    ids,
                    arity: t.arity(),
                },
            )
        }
        PlanNode::View { name, arity } => {
            let extent = views
                .extent(name)
                .ok_or_else(|| PlanError::UnknownView(name.clone()))?;
            if extent.schema().arity() != *arity {
                return Err(PlanError::ArityMismatch {
                    left: *arity,
                    right: extent.schema().arity(),
                });
            }
            push(
                ops,
                Op::ViewScan {
                    name: name.clone(),
                    snapshot: snapshot_of(extent),
                },
            )
        }
        PlanNode::Fetch {
            input,
            constraint,
            key_columns,
        } => {
            let input = compile_node(input, idb, views, ops)?;
            let position = idb
                .constraint_position(constraint)
                .ok_or_else(|| PlanError::ConstraintNotInSchema(constraint.to_string()))?;
            // Force the id-native index (and the interning of its values)
            // into existence now, so select-constant interning below always
            // sees a fully populated pool for this database.
            let _ = idb.interned_access_index(position)?;
            push(
                ops,
                Op::Fetch {
                    input,
                    constraint_idx: position,
                    constraint_display: constraint.to_string(),
                    key_cols: key_columns.clone(),
                    arity: constraint.xy().len(),
                    bound: constraint.n(),
                },
            )
        }
        PlanNode::Project { input, columns } => {
            let input = compile_node(input, idb, views, ops)?;
            let project = push(
                ops,
                Op::Project {
                    input,
                    cols: columns.clone(),
                },
            );
            // Projection introduces duplicates; keep the table set-like.
            push(ops, Op::Dedup { input: project })
        }
        PlanNode::Select { input, conditions } => {
            // The σ-over-× pattern is how plans express joins (the plan
            // grammar has no join operator).  Materialising the product
            // first would make joins quadratic, so equi-joins across the
            // product boundary are compiled to hash joins.
            if let PlanNode::Product(a, b) = input.as_ref() {
                let left_arity = a.arity();
                let pairs: Vec<(usize, usize)> = conditions
                    .iter()
                    .filter_map(|c| match c {
                        SelectCondition::ColEqCol(i, j) if *i < left_arity && *j >= left_arity => {
                            Some((*i, *j - left_arity))
                        }
                        SelectCondition::ColEqCol(i, j) if *j < left_arity && *i >= left_arity => {
                            Some((*j, *i - left_arity))
                        }
                        _ => None,
                    })
                    .collect();
                if !pairs.is_empty() {
                    let left = compile_node(a, idb, views, ops)?;
                    let right = compile_node(b, idb, views, ops)?;
                    let residual: Vec<IdCond> = conditions
                        .iter()
                        .filter(|c| {
                            !matches!(c, SelectCondition::ColEqCol(i, j)
                                if (*i < left_arity) != (*j < left_arity))
                        })
                        .map(IdCond::compile)
                        .collect();
                    return Ok(push(
                        ops,
                        Op::HashJoin {
                            left,
                            right,
                            pairs,
                            residual,
                        },
                    ));
                }
            }
            // A selection directly over a view leaf fuses into one
            // snapshot-filtering operator: the unfiltered scan is never
            // materialised, and under a parallel driver the filter runs
            // over the snapshot's morsels.
            if let PlanNode::View { name, arity } = input.as_ref() {
                let extent = views
                    .extent(name)
                    .ok_or_else(|| PlanError::UnknownView(name.clone()))?;
                if extent.schema().arity() != *arity {
                    return Err(PlanError::ArityMismatch {
                        left: *arity,
                        right: extent.schema().arity(),
                    });
                }
                return Ok(push(
                    ops,
                    Op::ViewFilter {
                        name: name.clone(),
                        snapshot: snapshot_of(extent),
                        conds: conditions.iter().map(IdCond::compile).collect(),
                    },
                ));
            }
            let input = compile_node(input, idb, views, ops)?;
            push(
                ops,
                Op::Select {
                    input,
                    conds: conditions.iter().map(IdCond::compile).collect(),
                },
            )
        }
        PlanNode::Rename { input } => compile_node(input, idb, views, ops)?,
        PlanNode::Product(a, b) => {
            let left = compile_node(a, idb, views, ops)?;
            let right = compile_node(b, idb, views, ops)?;
            push(ops, Op::Product { left, right })
        }
        PlanNode::Union(a, b) => {
            let left = compile_node(a, idb, views, ops)?;
            let right = compile_node(b, idb, views, ops)?;
            let union = push(ops, Op::Union { left, right });
            push(ops, Op::Dedup { input: union })
        }
        PlanNode::Difference(a, b) => {
            let left = compile_node(a, idb, views, ops)?;
            let right = compile_node(b, idb, views, ops)?;
            push(ops, Op::Difference { left, right })
        }
    };
    Ok(idx)
}

fn push(ops: &mut Vec<Op>, op: Op) -> usize {
    ops.push(op);
    ops.len() - 1
}

/// An intermediate result: `rows` rows of `arity` interned ids, row-major.
/// The row count is explicit because nullary tables (`arity == 0`, e.g. the
/// unit constant or a Boolean projection) carry no data yet hold rows.
#[derive(Debug, Clone, Default)]
struct IdTable {
    arity: usize,
    rows: usize,
    data: Vec<ValueId>,
}

impl IdTable {
    fn empty(arity: usize) -> IdTable {
        IdTable {
            arity,
            rows: 0,
            data: Vec::new(),
        }
    }

    fn row(&self, i: usize) -> &[ValueId] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    fn from_data(arity: usize, rows_hint: usize, data: Vec<ValueId>) -> IdTable {
        // A nullary table has no data to derive the row count from; the
        // caller's hint is authoritative there.
        let rows = data.len().checked_div(arity).unwrap_or(rows_hint);
        IdTable { arity, rows, data }
    }
}

/// Concatenate per-morsel flat outputs in morsel order — the merge step of
/// the bit-identical-output guarantee.
fn merge_flat(shards: Vec<Vec<ValueId>>) -> Vec<ValueId> {
    let total: usize = shards.iter().map(Vec::len).sum();
    let mut data = Vec::with_capacity(total);
    for shard in shards {
        data.extend(shard);
    }
    data
}

#[allow(clippy::too_many_arguments)]
fn eval_fetch(
    input: &IdTable,
    idb: &IndexedDatabase,
    constraint_idx: usize,
    key_cols: &[usize],
    arity: usize,
    bound: usize,
    stats: &mut FetchStats,
    options: &ExecOptions,
    guard: &Guard,
) -> Result<IdTable> {
    // Resolve the index up front: a missing constraint errors before any
    // probing (and before any threads spawn).
    let index = idb.interned_access_index(constraint_idx)?;
    debug_assert_eq!(index.arity(), arity);
    // Global key dedup in first-seen order: each distinct X-value is fetched
    // (and counted) exactly once, matching the interpreter — and making the
    // accounting independent of morsel boundaries.  Keys are kept flat
    // (`n_keys · klen` ids) for the batch probes below; single-column keys
    // dedup through a bare-id set, never hashing a slice.
    let klen = key_cols.len();
    let mut keys_flat: Vec<ValueId> = Vec::new();
    let n_keys = if klen == 0 {
        // X = ∅: the one key is the empty tuple (when any input row exists).
        usize::from(input.rows > 0)
    } else if klen == 1 {
        let c = key_cols[0];
        let mut seen: HashSet<ValueId> = HashSet::new();
        let mut i = 0;
        while i < input.rows {
            guard.check()?;
            let end = (i + kernel::BATCH_ROWS).min(input.rows);
            while i < end {
                let k = input.data[i * input.arity + c];
                if seen.insert(k) {
                    keys_flat.push(k);
                }
                i += 1;
            }
        }
        keys_flat.len()
    } else {
        let mut seen: HashSet<Vec<ValueId>> = HashSet::new();
        let mut key: Vec<ValueId> = Vec::with_capacity(klen);
        let mut i = 0;
        while i < input.rows {
            guard.check()?;
            let end = (i + kernel::BATCH_ROWS).min(input.rows);
            while i < end {
                let row = input.row(i);
                key.clear();
                key.extend(key_cols.iter().map(|&c| row[c]));
                if !seen.contains(&key) {
                    seen.insert(key.clone());
                    keys_flat.extend_from_slice(&key);
                }
                i += 1;
            }
        }
        keys_flat.len() / klen
    };
    // Work hint from the index's own cardinality statistics: each key probes
    // once and returns the mean group size (never more than the constraint's
    // bound N), so an output-heavy fetch parallelises like an output-heavy
    // join while a sparse index no longer over-provisions workers.
    let expected_group = index.avg_group_len().min(bound.max(1));
    let work_hint = n_keys.saturating_mul(expected_group);
    let shard_results = run_morsels(n_keys, work_hint, options, guard, |range| {
        let mut data = Vec::new();
        let mut local = FetchStats::new();
        let mut start = range.start;
        while start < range.end {
            guard.check()?;
            let end = (start + kernel::BATCH_ROWS).min(range.end);
            let before = local.fetched_tuples;
            // One batch probe per BATCH_ROWS keys: the index extends `data`
            // directly and records each probe's |D_ξ| into the morsel-local
            // counters, exactly as the scalar path did per key.
            index.probe_batch(
                &keys_flat[start * klen..end * klen],
                end - start,
                &mut data,
                &mut local,
            );
            // The runtime re-check of the paper's bound, charged per batch
            // on the tuples actually pulled out of base data.
            guard.charge_fetched(local.fetched_tuples - before)?;
            start = end;
        }
        guard.charge_rows(data.len() / arity.max(1))?;
        Ok((data, local))
    })?;
    let mut data = Vec::new();
    for (shard_data, shard_stats) in shard_results {
        data.extend(shard_data);
        stats.merge(&shard_stats);
    }
    Ok(IdTable::from_data(arity, 0, data))
}

fn eval_project(
    input: &IdTable,
    cols: &[usize],
    options: &ExecOptions,
    guard: &Guard,
) -> Result<IdTable> {
    let arity = cols.len();
    if arity == 0 {
        guard.charge_rows(input.rows)?;
        return Ok(IdTable {
            arity: 0,
            rows: input.rows,
            data: Vec::new(),
        });
    }
    let in_arity = input.arity;
    let shard_results = run_morsels(input.rows, input.rows, options, guard, |range| {
        let mut data = Vec::with_capacity(range.len() * arity);
        let mut start = range.start;
        while start < range.end {
            guard.check()?;
            let end = (start + kernel::BATCH_ROWS).min(range.end);
            guard.charge_rows(end - start)?;
            kernel::project(
                &input.data[start * in_arity..end * in_arity],
                in_arity,
                cols,
                &mut data,
            );
            start = end;
        }
        Ok(data)
    })?;
    Ok(IdTable::from_data(arity, 0, merge_flat(shard_results)))
}

fn eval_select(
    input: &IdTable,
    conds: &[IdCond],
    options: &ExecOptions,
    guard: &Guard,
) -> Result<IdTable> {
    if input.arity == 0 {
        // Conditions reference columns, so a nullary select has none and
        // passes everything through.
        guard.charge_rows(input.rows)?;
        return Ok(input.clone());
    }
    let arity = input.arity;
    let shard_results = run_morsels(input.rows, input.rows, options, guard, |range| {
        let mut data = Vec::new();
        let mut sel: Vec<u32> = Vec::with_capacity(kernel::BATCH_ROWS);
        let mut start = range.start;
        while start < range.end {
            guard.check()?;
            let end = (start + kernel::BATCH_ROWS).min(range.end);
            let batch = &input.data[start * arity..end * arity];
            kernel::filter(conds, batch, arity, end - start, &mut sel);
            guard.charge_rows(sel.len())?;
            kernel::gather(batch, arity, end - start, &sel, &mut data);
            start = end;
        }
        Ok(data)
    })?;
    Ok(IdTable::from_data(arity, 0, merge_flat(shard_results)))
}

/// Fused σ-over-view: filter the snapshot's rows directly — the same
/// contiguous batches [`bqr_data::InternedSnapshot::batch`] exposes (and
/// [`bqr_data::SnapshotShard::batches`] tiles for data-layer consumers),
/// threaded here through the executor's shared morsel driver.  The pinned
/// `FetchStats` semantics hold: the **full** extent counts as read before
/// filtering.
fn eval_view_filter(
    snapshot: &InternedSnapshot,
    conds: &[IdCond],
    stats: &mut FetchStats,
    options: &ExecOptions,
    guard: &Guard,
) -> Result<IdTable> {
    stats.record_view_read(snapshot.len());
    if snapshot.arity() == 0 {
        // Conditions reference columns, so a nullary filter has none and
        // passes the (at most one-row) extent through.
        guard.charge_rows(snapshot.len())?;
        return Ok(IdTable {
            arity: 0,
            rows: snapshot.len(),
            data: Vec::new(),
        });
    }
    let arity = snapshot.arity();
    let shard_results = run_morsels(snapshot.len(), snapshot.len(), options, guard, |range| {
        let mut data = Vec::new();
        let mut sel: Vec<u32> = Vec::with_capacity(kernel::BATCH_ROWS);
        let mut start = range.start;
        while start < range.end {
            guard.check()?;
            let end = (start + kernel::BATCH_ROWS).min(range.end);
            let batch = snapshot.batch(start..end);
            kernel::filter(conds, batch, arity, end - start, &mut sel);
            guard.charge_rows(sel.len())?;
            kernel::gather(batch, arity, end - start, &sel, &mut data);
            start = end;
        }
        Ok(data)
    })?;
    Ok(IdTable::from_data(arity, 0, merge_flat(shard_results)))
}

fn eval_hash_join(
    left: &IdTable,
    right: &IdTable,
    pairs: &[(usize, usize)],
    residual: &[IdCond],
    options: &ExecOptions,
    guard: &Guard,
) -> Result<IdTable> {
    let out_arity = left.arity + right.arity;
    if left.rows == 0 || right.rows == 0 {
        return Ok(IdTable::empty(out_arity));
    }
    // Cost model: build on the smaller input, probe the larger — with exact
    // cardinalities in hand the textbook rule is exact, not an estimate.
    let build_left = left.rows < right.rows;
    let (build, probe) = if build_left {
        (left, right)
    } else {
        (right, left)
    };
    let build_cols: Vec<usize> = pairs
        .iter()
        .map(|&(l, r)| if build_left { l } else { r })
        .collect();
    let probe_cols: Vec<usize> = pairs
        .iter()
        .map(|&(l, r)| if build_left { r } else { l })
        .collect();
    let table = kernel::JoinTable::build(&build.data, build.arity, build.rows, &build_cols, guard)?;
    // Emit one joined row; residual conditions roll back the append.
    let emit = |data: &mut Vec<ValueId>, b: u32, probe_row: &[ValueId]| {
        let build_row = build.row(b as usize);
        let (l_row, r_row) = if build_left {
            (build_row, probe_row)
        } else {
            (probe_row, build_row)
        };
        let start = data.len();
        data.extend_from_slice(l_row);
        data.extend_from_slice(r_row);
        if !residual.iter().all(|c| c.holds(&data[start..])) {
            data.truncate(start);
        }
    };
    // Work hint: probing is at least one lookup per probe row, plus the
    // output rows a fanning-out build side produces.
    let avg_group = (build.rows / table.groups().max(1)).max(1);
    let work_hint = probe.rows.saturating_mul(avg_group);
    let shard_results = run_morsels(probe.rows, work_hint, options, guard, |range| {
        let mut data = Vec::new();
        let mut start = range.start;
        while start < range.end {
            guard.check()?;
            let end = (start + kernel::BATCH_ROWS).min(range.end);
            let before = data.len();
            match &table {
                kernel::JoinTable::Single(map) => {
                    // Single-column key: probe the map with a bare id —
                    // no per-row key vector, the dominant join shape.
                    let pc = probe_cols[0];
                    for i in start..end {
                        let probe_row = probe.row(i);
                        if let Some(matches) = map.get(&probe_row[pc]) {
                            for &b in matches {
                                emit(&mut data, b, probe_row);
                            }
                        }
                    }
                }
                kernel::JoinTable::Multi(map) => {
                    let mut key: Vec<ValueId> = Vec::with_capacity(probe_cols.len());
                    for i in start..end {
                        let probe_row = probe.row(i);
                        key.clear();
                        key.extend(probe_cols.iter().map(|&c| probe_row[c]));
                        if let Some(matches) = map.get(&key) {
                            for &b in matches {
                                emit(&mut data, b, probe_row);
                            }
                        }
                    }
                }
            }
            guard.charge_rows((data.len() - before) / out_arity)?;
            start = end;
        }
        Ok(data)
    })?;
    Ok(IdTable::from_data(out_arity, 0, merge_flat(shard_results)))
}

fn eval_product(
    left: &IdTable,
    right: &IdTable,
    options: &ExecOptions,
    guard: &Guard,
) -> Result<IdTable> {
    let out_arity = left.arity + right.arity;
    let out_rows = left.rows.saturating_mul(right.rows);
    // Pre-charge the whole output *before* allocating: an adversarial
    // product's row count is known exactly here, and the memory budget must
    // trip before the allocation it is guarding against.
    guard.charge_rows(out_rows)?;
    if out_arity == 0 {
        return Ok(IdTable {
            arity: 0,
            rows: out_rows,
            data: Vec::new(),
        });
    }
    let shard_results = run_morsels(left.rows, out_rows, options, guard, |range| {
        // Cap the pre-allocation: an astronomically large product under a
        // deadline (but no row budget) must not OOM on `with_capacity`
        // before the first checkpoint fires.
        const PREALLOC_CAP: usize = 1 << 22;
        let exact = range
            .len()
            .saturating_mul(right.rows)
            .saturating_mul(out_arity);
        let mut data = Vec::with_capacity(exact.min(PREALLOC_CAP));
        let mut emitted = 0usize;
        for i in range {
            let l_row = left.row(i);
            for j in 0..right.rows {
                guard.checkpoint(emitted)?;
                emitted += 1;
                data.extend_from_slice(l_row);
                data.extend_from_slice(right.row(j));
            }
        }
        Ok(data)
    })?;
    Ok(IdTable::from_data(
        out_arity,
        out_rows,
        merge_flat(shard_results),
    ))
}

fn eval_union(left: &IdTable, right: &IdTable, guard: &Guard) -> Result<IdTable> {
    guard.check()?;
    guard.charge_rows(left.rows + right.rows)?;
    let mut data = left.data.clone();
    data.extend_from_slice(&right.data);
    Ok(IdTable::from_data(left.arity, left.rows + right.rows, data))
}

fn eval_difference(left: &IdTable, right: &IdTable, guard: &Guard) -> Result<IdTable> {
    if left.arity == 0 {
        return Ok(IdTable {
            arity: 0,
            rows: if right.rows > 0 { 0 } else { left.rows },
            data: Vec::new(),
        });
    }
    let exclude: HashSet<&[ValueId]> = (0..right.rows).map(|i| right.row(i)).collect();
    let mut data = Vec::new();
    for i in 0..left.rows {
        guard.checkpoint(i)?;
        let row = left.row(i);
        if !exclude.contains(row) {
            data.extend_from_slice(row);
        }
    }
    guard.charge_rows(data.len() / left.arity)?;
    Ok(IdTable::from_data(left.arity, 0, data))
}

/// Sort + dedup a table's rows (lexicographic on ids).  Intermediate order
/// is only an engine-internal detail — the root materialisation re-sorts by
/// `Value` — but it is deterministic, which keeps parallel runs bit-identical.
fn dedup_table(input: &IdTable, guard: &Guard) -> Result<IdTable> {
    guard.check()?;
    if input.arity == 0 {
        return Ok(IdTable {
            arity: 0,
            rows: input.rows.min(1),
            data: Vec::new(),
        });
    }
    let data = kernel::dedup(input.data.clone(), input.arity);
    guard.charge_rows(data.len() / input.arity)?;
    Ok(IdTable::from_data(input.arity, 0, data))
}

/// Resolve the root table back to sorted, duplicate-free `Tuple`s — the only
/// point where the executor touches `Value`s.
fn materialize(root: &IdTable, guard: &Guard) -> Result<Vec<Tuple>> {
    let mut memo: HashMap<ValueId, Value> = HashMap::new();
    let mut tuples: Vec<Tuple> = Vec::with_capacity(root.rows);
    for i in 0..root.rows {
        guard.checkpoint(i)?;
        tuples.push(Tuple::new(
            root.row(i)
                .iter()
                .map(|id| memo.entry(*id).or_insert_with(|| id.value()).clone())
                .collect(),
        ));
    }
    tuples.sort_unstable();
    tuples.dedup();
    Ok(tuples)
}

/// The original tree-walking interpreter: `BTreeSet<Tuple>` at every node,
/// `Value` comparisons throughout.  Retained verbatim as the oracle for
/// `tests/exec_diff.rs` and the baseline of the plan benchmarks
/// (`BENCH_plan.json`); semantics — including the pinned `FetchStats`
/// accounting — are identical to the compiled pipeline.
pub mod reference {
    use super::{ExecOutput, PlanError, Result};
    use crate::node::{PlanNode, QueryPlan, SelectCondition};
    use bqr_data::{FetchStats, IndexedDatabase, Tuple, Value};
    use bqr_query::MaterializedViews;
    use std::collections::BTreeSet;

    /// Execute a plan with the reference interpreter.
    pub fn execute(
        plan: &QueryPlan,
        idb: &IndexedDatabase,
        views: &MaterializedViews,
    ) -> Result<ExecOutput> {
        let mut stats = FetchStats::new();
        let tuples = eval(plan.root(), idb, views, &mut stats)?;
        Ok(ExecOutput {
            tuples: tuples.into_iter().collect(),
            stats,
        })
    }

    fn eval(
        node: &PlanNode,
        idb: &IndexedDatabase,
        views: &MaterializedViews,
        stats: &mut FetchStats,
    ) -> Result<BTreeSet<Tuple>> {
        match node {
            PlanNode::Const(t) => Ok([t.clone()].into_iter().collect()),
            PlanNode::View { name, arity } => {
                let extent = views
                    .extent(name)
                    .ok_or_else(|| PlanError::UnknownView(name.clone()))?;
                // Pinned semantics: the whole cached extent counts as read,
                // before any selection above this leaf (see the module docs).
                stats.record_view_read(extent.len());
                if extent.schema().arity() != *arity {
                    return Err(PlanError::ArityMismatch {
                        left: *arity,
                        right: extent.schema().arity(),
                    });
                }
                Ok(extent.iter().cloned().collect())
            }
            PlanNode::Fetch {
                input,
                constraint,
                key_columns,
            } => {
                let input_tuples = eval(input, idb, views, stats)?;
                let position = idb
                    .constraint_position(constraint)
                    .ok_or_else(|| PlanError::ConstraintNotInSchema(constraint.to_string()))?;
                let mut out = BTreeSet::new();
                let mut seen_keys: BTreeSet<Vec<Value>> = BTreeSet::new();
                for t in &input_tuples {
                    let key: Vec<Value> = key_columns.iter().map(|&c| t[c].clone()).collect();
                    // Each distinct X-value is fetched once (the index
                    // returns the same set for duplicates; re-fetching would
                    // double-count I/O).
                    if !seen_keys.insert(key.clone()) {
                        continue;
                    }
                    for fetched in idb.fetch(position, &key, stats)? {
                        out.insert(fetched.clone());
                    }
                }
                Ok(out)
            }
            PlanNode::Project { input, columns } => {
                let input_tuples = eval(input, idb, views, stats)?;
                Ok(input_tuples.iter().map(|t| t.project(columns)).collect())
            }
            PlanNode::Select { input, conditions } => {
                // The σ-over-× pattern is how plans express joins (the plan
                // grammar has no join operator).  Materialising the product
                // first would make joins quadratic, so equi-joins across the
                // product boundary are executed as hash joins.
                if let PlanNode::Product(a, b) = input.as_ref() {
                    let left_arity = a.arity();
                    let cross_eq: Vec<(usize, usize)> = conditions
                        .iter()
                        .filter_map(|c| match c {
                            SelectCondition::ColEqCol(i, j)
                                if *i < left_arity && *j >= left_arity =>
                            {
                                Some((*i, *j - left_arity))
                            }
                            SelectCondition::ColEqCol(i, j)
                                if *j < left_arity && *i >= left_arity =>
                            {
                                Some((*j, *i - left_arity))
                            }
                            _ => None,
                        })
                        .collect();
                    if !cross_eq.is_empty() {
                        let left = eval(a, idb, views, stats)?;
                        let right = eval(b, idb, views, stats)?;
                        let mut index: std::collections::HashMap<Vec<Value>, Vec<&Tuple>> =
                            std::collections::HashMap::new();
                        for r in &right {
                            let key: Vec<Value> =
                                cross_eq.iter().map(|&(_, j)| r[j].clone()).collect();
                            index.entry(key).or_default().push(r);
                        }
                        let mut out = BTreeSet::new();
                        for l in &left {
                            let key: Vec<Value> =
                                cross_eq.iter().map(|&(i, _)| l[i].clone()).collect();
                            if let Some(matches) = index.get(&key) {
                                for r in matches {
                                    let joined = l.concat(r);
                                    if conditions.iter().all(|c| c.holds(&joined)) {
                                        out.insert(joined);
                                    }
                                }
                            }
                        }
                        return Ok(out);
                    }
                }
                let input_tuples = eval(input, idb, views, stats)?;
                Ok(input_tuples
                    .into_iter()
                    .filter(|t| conditions.iter().all(|c| c.holds(t)))
                    .collect())
            }
            PlanNode::Rename { input } => eval(input, idb, views, stats),
            PlanNode::Product(a, b) => {
                let left = eval(a, idb, views, stats)?;
                let right = eval(b, idb, views, stats)?;
                let mut out = BTreeSet::new();
                for l in &left {
                    for r in &right {
                        out.insert(l.concat(r));
                    }
                }
                Ok(out)
            }
            PlanNode::Union(a, b) => {
                let mut left = eval(a, idb, views, stats)?;
                let right = eval(b, idb, views, stats)?;
                left.extend(right);
                Ok(left)
            }
            PlanNode::Difference(a, b) => {
                let left = eval(a, idb, views, stats)?;
                let right = eval(b, idb, views, stats)?;
                Ok(left.difference(&right).cloned().collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{figure1_plan, Plan};
    use bqr_data::{tuple, AccessConstraint, AccessSchema, Database, DatabaseSchema};
    use bqr_query::parser::parse_cq;
    use bqr_query::ViewSet;

    fn movie_schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[
            ("person", &["pid", "name", "affiliation"]),
            ("movie", &["mid", "mname", "studio", "release"]),
            ("rating", &["mid", "rank"]),
            ("like", &["pid", "id", "type"]),
        ])
        .unwrap()
    }

    fn phi1() -> AccessConstraint {
        AccessConstraint::new("movie", &["studio", "release"], &["mid"], 100).unwrap()
    }
    fn phi2() -> AccessConstraint {
        AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap()
    }

    fn setup() -> (IndexedDatabase, MaterializedViews) {
        let mut db = Database::empty(movie_schema());
        db.insert("person", tuple![1, "Ann", "NASA"]).unwrap();
        db.insert("person", tuple![2, "Bob", "NASA"]).unwrap();
        db.insert("person", tuple![3, "Cat", "ESA"]).unwrap();
        db.insert("movie", tuple![10, "Lucy", "Universal", "2014"])
            .unwrap();
        db.insert("movie", tuple![11, "Ouija", "Universal", "2014"])
            .unwrap();
        db.insert("movie", tuple![12, "Her", "WB", "2013"]).unwrap();
        db.insert("rating", tuple![10, 5]).unwrap();
        db.insert("rating", tuple![11, 3]).unwrap();
        db.insert("rating", tuple![12, 5]).unwrap();
        db.insert("like", tuple![1, 10, "movie"]).unwrap();
        db.insert("like", tuple![2, 12, "movie"]).unwrap();
        db.insert("like", tuple![3, 11, "movie"]).unwrap();
        let access = AccessSchema::new(vec![phi1(), phi2()]);

        let mut views = ViewSet::empty();
        views
            .add_cq(
                "V1",
                parse_cq(
                    "V1(mid) :- person(xp, xn, 'NASA'), movie(mid, ym, z1, z2), like(xp, mid, 'movie')",
                )
                .unwrap(),
            )
            .unwrap();
        let cache = views.materialize(&db).unwrap();
        let idb = IndexedDatabase::build(db, access).unwrap();
        (idb, cache)
    }

    #[test]
    fn figure1_plan_computes_q0_with_bounded_io() {
        let (idb, cache) = setup();
        let plan = figure1_plan(&phi1(), &phi2()).unwrap();
        let out = execute(&plan, &idb, &cache).unwrap();
        assert_eq!(out.tuples, vec![tuple![10]], "only Lucy qualifies");
        // The plan fetched 2 movie ids (Universal/2014) and then at most 2
        // ratings — far fewer than the 12 tuples in the database, and
        // independent of how many person/like tuples exist.
        assert!(out.base_tuples_fetched() <= 4, "{:?}", out.stats);
        assert_eq!(out.stats.scanned_tuples, 0, "bounded plans never scan");
        assert!(out.stats.view_tuples >= 1, "V1 was read from cache");
    }

    #[test]
    fn compiled_pipeline_matches_reference_on_figure1() {
        let (idb, cache) = setup();
        let plan = figure1_plan(&phi1(), &phi2()).unwrap();
        let compiled = execute(&plan, &idb, &cache).unwrap();
        let interpreted = reference::execute(&plan, &idb, &cache).unwrap();
        assert_eq!(compiled.tuples, interpreted.tuples);
        assert_eq!(
            compiled.stats, interpreted.stats,
            "identical |D_ξ| accounting"
        );
        // Parallel execution is bit-identical too.
        for shards in [1usize, 2, 4] {
            let parallel =
                execute_with(&plan, &idb, &cache, &ExecOptions::parallel(shards)).unwrap();
            assert_eq!(parallel.tuples, interpreted.tuples, "{shards} shards");
            assert_eq!(parallel.stats, interpreted.stats, "{shards} shards");
        }
    }

    #[test]
    fn pipeline_introspection_names_the_operators() {
        let (idb, cache) = setup();
        let plan = figure1_plan(&phi1(), &phi2()).unwrap();
        let pipeline = Pipeline::compile(&plan, &idb, &cache).unwrap();
        assert!(!pipeline.is_empty());
        assert_eq!(pipeline.arity(), 1);
        let text = pipeline.describe();
        assert!(text.contains("fetch["), "{text}");
        assert!(text.contains("view-scan V1"), "{text}");
        assert!(text.contains("hash-join"), "{text}");
        assert!(text.contains("π"), "{text}");
        assert!(text.contains("root: %"), "{text}");
        // Fig. 1's σ-over-× join compiled into a hash join; the only
        // surviving bare product is the const × const key constructor.
        assert_eq!(text.matches("hash-join").count(), 1, "{text}");
        assert_eq!(text.matches("× %").count(), 1, "{text}");
    }

    /// Pinned `FetchStats` semantics: a view leaf records its full cached
    /// extent — reading the cache is the I/O — even when a selection above
    /// it keeps nothing; fetches count every retrieved tuple even when a
    /// selection above the fetch drops them all.  Both engines agree.
    #[test]
    fn view_and_fetch_reads_are_counted_before_selection() {
        let (idb, cache) = setup();
        let extent_len = cache.extent("V1").unwrap().len();
        assert!(extent_len >= 2);
        let plan = Plan::view("V1", 1)
            .select_eq_const(0, -777)
            .build()
            .unwrap();
        for out in [
            execute(&plan, &idb, &cache).unwrap(),
            reference::execute(&plan, &idb, &cache).unwrap(),
        ] {
            assert!(out.tuples.is_empty(), "the selection keeps nothing");
            assert_eq!(
                out.stats.view_tuples, extent_len,
                "the full extent counts as read"
            );
        }

        let plan = Plan::constant(vec![Value::str("Universal"), Value::str("2014")])
            .fetch(phi1(), vec![0, 1])
            .select_eq_const(2, -777)
            .build()
            .unwrap();
        for out in [
            execute(&plan, &idb, &cache).unwrap(),
            reference::execute(&plan, &idb, &cache).unwrap(),
        ] {
            assert!(out.tuples.is_empty());
            assert_eq!(out.stats.fetched_tuples, 2, "both fetched movies count");
            assert_eq!(out.stats.fetch_calls, 1);
        }
    }

    /// σ directly over a view leaf fuses into one snapshot-filtering
    /// operator (no intermediate scan), with unchanged semantics and the
    /// pinned view-read accounting.
    #[test]
    fn select_over_view_fuses_into_view_filter() {
        let (idb, cache) = setup();
        let plan = Plan::view("V1", 1).select_eq_const(0, 10).build().unwrap();
        let pipeline = Pipeline::compile(&plan, &idb, &cache).unwrap();
        let text = pipeline.describe();
        assert!(text.contains("view-filter V1"), "{text}");
        assert!(!text.contains("view-scan"), "{text}");
        assert_eq!(pipeline.len(), 1, "one fused operator");
        let out = pipeline.execute(&idb, &ExecOptions::serial()).unwrap();
        let interpreted = reference::execute(&plan, &idb, &cache).unwrap();
        assert_eq!(out, interpreted);
        assert_eq!(out.tuples, vec![tuple![10]]);
        // A rename in between blocks the fusion (matching the interpreter's
        // node-by-node evaluation structure).
        let unfused = Plan::view("V1", 1)
            .rename()
            .select_eq_const(0, 10)
            .build()
            .unwrap();
        let pipeline = Pipeline::compile(&unfused, &idb, &cache).unwrap();
        assert!(pipeline.describe().contains("view-scan V1"));
        assert_eq!(
            pipeline.execute(&idb, &ExecOptions::serial()).unwrap(),
            interpreted
        );
    }

    #[test]
    fn fetch_deduplicates_keys() {
        let (idb, cache) = setup();
        // Two identical keys in the input: the fetch must count the probe once.
        let plan = Plan::constant(vec![Value::str("Universal"), Value::str("2014")])
            .union(Plan::constant(vec![
                Value::str("Universal"),
                Value::str("2014"),
            ]))
            .fetch(phi1(), vec![0, 1])
            .build()
            .unwrap();
        let out = execute(&plan, &idb, &cache).unwrap();
        assert_eq!(out.stats.fetch_calls, 1);
        assert_eq!(out.tuples.len(), 2);
        assert_eq!(out, reference::execute(&plan, &idb, &cache).unwrap());
    }

    #[test]
    fn missing_view_and_foreign_constraint_error() {
        let (idb, cache) = setup();
        let plan = Plan::view("NoSuchView", 1).build().unwrap();
        assert!(matches!(
            execute(&plan, &idb, &cache),
            Err(PlanError::UnknownView(_))
        ));
        assert!(matches!(
            reference::execute(&plan, &idb, &cache),
            Err(PlanError::UnknownView(_))
        ));

        let foreign = AccessConstraint::new("like", &["pid"], &["id"], 5000).unwrap();
        let plan = Plan::constant(vec![1])
            .fetch(foreign, vec![0])
            .build()
            .unwrap();
        assert!(matches!(
            execute(&plan, &idb, &cache),
            Err(PlanError::ConstraintNotInSchema(_))
        ));
        assert!(matches!(
            reference::execute(&plan, &idb, &cache),
            Err(PlanError::ConstraintNotInSchema(_))
        ));
    }

    #[test]
    fn relational_operators_behave_setwise() {
        let (idb, cache) = setup();
        let a = Plan::constant(vec![1]).union(Plan::constant(vec![2]));
        let b = Plan::constant(vec![2]).union(Plan::constant(vec![3]));
        let diff = a.clone().difference(b.clone()).build().unwrap();
        assert_eq!(
            execute(&diff, &idb, &cache).unwrap().tuples,
            vec![tuple![1]]
        );
        let union = a.clone().union(b.clone()).build().unwrap();
        assert_eq!(execute(&union, &idb, &cache).unwrap().tuples.len(), 3);
        let product = a.product(b).build().unwrap();
        assert_eq!(execute(&product, &idb, &cache).unwrap().tuples.len(), 4);
        let renamed = Plan::constant(vec![7, 8])
            .rename()
            .project(vec![1])
            .build()
            .unwrap();
        assert_eq!(
            execute(&renamed, &idb, &cache).unwrap().tuples,
            vec![tuple![8]]
        );
        let selected = Plan::constant(vec![7, 7])
            .select_eq_cols(0, 1)
            .build()
            .unwrap();
        assert_eq!(execute(&selected, &idb, &cache).unwrap().tuples.len(), 1);
        let empty_select = Plan::constant(vec![7, 8])
            .select_eq_cols(0, 1)
            .build()
            .unwrap();
        assert!(execute(&empty_select, &idb, &cache)
            .unwrap()
            .tuples
            .is_empty());
    }

    #[test]
    fn nullary_plans_execute() {
        let (idb, cache) = setup();
        // The unit constant, a Boolean projection, and their difference.
        let unit = Plan::constant(Vec::<Value>::new()).build().unwrap();
        let out = execute(&unit, &idb, &cache).unwrap();
        assert_eq!(out.tuples, vec![Tuple::unit()]);
        assert_eq!(out, reference::execute(&unit, &idb, &cache).unwrap());

        let boolean = Plan::constant(vec![7]).project(vec![]).build().unwrap();
        let out = execute(&boolean, &idb, &cache).unwrap();
        assert_eq!(out.tuples, vec![Tuple::unit()]);

        let empty = Plan::constant(Vec::<Value>::new())
            .difference(Plan::constant(Vec::<Value>::new()))
            .build()
            .unwrap();
        let out = execute(&empty, &idb, &cache).unwrap();
        assert!(out.tuples.is_empty());
        assert_eq!(out, reference::execute(&empty, &idb, &cache).unwrap());

        let product = Plan::constant(Vec::<Value>::new())
            .product(Plan::constant(vec![1]))
            .build()
            .unwrap();
        let out = execute(&product, &idb, &cache).unwrap();
        assert_eq!(out.tuples, vec![tuple![1]]);
    }

    #[test]
    fn fetch_on_absent_key_returns_empty() {
        let (idb, cache) = setup();
        let plan = Plan::constant(vec![Value::str("MGM"), Value::str("1950")])
            .fetch(phi1(), vec![0, 1])
            .build()
            .unwrap();
        let out = execute(&plan, &idb, &cache).unwrap();
        assert!(out.tuples.is_empty());
        assert_eq!(out.stats.fetch_calls, 1);
        assert_eq!(out.stats.fetched_tuples, 0);
        assert_eq!(out, reference::execute(&plan, &idb, &cache).unwrap());
    }

    #[test]
    fn view_arity_mismatch_detected_at_execution() {
        let (idb, cache) = setup();
        let plan = Plan::view("V1", 2).build().unwrap();
        assert!(matches!(
            execute(&plan, &idb, &cache),
            Err(PlanError::ArityMismatch { .. })
        ));
        assert!(matches!(
            reference::execute(&plan, &idb, &cache),
            Err(PlanError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn exec_options_constructors() {
        assert_eq!(ExecOptions::default(), ExecOptions::serial());
        let p = ExecOptions::parallel(4);
        assert!(p.parallel);
        assert!(!p.auto);
        assert_eq!(p.shards, 4);
        assert_eq!(ExecOptions::parallel(0).shards, 1, "shards clamp to ≥ 1");
        let a = ExecOptions::parallel_auto();
        assert!(a.parallel && a.auto);
    }

    /// The auto heuristic is a pure function of `(work_hint, max_workers)`:
    /// one worker per `PARALLEL_MIN_ROWS` of estimated work, clamped to the
    /// machine.  Deterministic by construction — pinned here so the chosen
    /// counts never drift silently.
    #[test]
    fn auto_worker_count_is_deterministic_in_the_work_hint() {
        let w = ExecOptions::auto_worker_count;
        assert_eq!(w(0, 8), 1);
        assert_eq!(w(4096, 8), 1);
        assert_eq!(w(8192, 8), 2);
        assert_eq!(w(3 * 4096 + 1, 8), 3, "floor of work / threshold");
        assert_eq!(w(1 << 20, 8), 8, "clamped to the machine");
        assert_eq!(w(1 << 20, 1), 1);
        assert_eq!(w(usize::MAX, 0), 1, "zero max still yields one worker");

        // Below the threshold no operator parallelises at all, auto or not.
        let auto = ExecOptions::parallel_auto();
        assert_eq!(auto.workers_for(100), 1);
        let fixed = ExecOptions::parallel(4);
        assert_eq!(fixed.workers_for(100), 1);
        assert_eq!(fixed.workers_for(1 << 20), 4, "fixed counts stay fixed");
        assert_eq!(ExecOptions::serial().workers_for(1 << 20), 1);
    }

    /// Sharded-parallel execution over an input large enough to cross the
    /// parallel threshold is bit-identical to serial execution.
    #[test]
    fn parallel_execution_is_deterministic_over_large_inputs() {
        let schema = DatabaseSchema::with_relations(&[("edge", &["src", "dst"])]).unwrap();
        let mut db = Database::empty(schema);
        for i in 0..3000i64 {
            db.insert("edge", tuple![i % 300, i]).unwrap();
        }
        let mut views = ViewSet::empty();
        views
            .add_cq("E", parse_cq("E(x, y) :- edge(x, y)").unwrap())
            .unwrap();
        let cache = views.materialize(&db).unwrap();
        let idb = IndexedDatabase::build(db, AccessSchema::empty()).unwrap();
        // E ⋈ E on dst = src: 3000 × fan-in join, well above the threshold.
        let plan = Plan::view("E", 2)
            .join_eq(Plan::view("E", 2), &[(1, 0)])
            .project(vec![0, 3])
            .build()
            .unwrap();
        let serial = execute(&plan, &idb, &cache).unwrap();
        assert_eq!(serial, reference::execute(&plan, &idb, &cache).unwrap());
        for shards in [2usize, 4, 8] {
            let parallel =
                execute_with(&plan, &idb, &cache, &ExecOptions::parallel(shards)).unwrap();
            assert_eq!(parallel, serial, "{shards} shards");
        }
        // Auto worker selection changes only the scheduling, never the answer.
        let auto = execute_with(&plan, &idb, &cache, &ExecOptions::parallel_auto()).unwrap();
        assert_eq!(auto, serial, "auto worker count");
    }
}
