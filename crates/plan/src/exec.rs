//! Plan execution over an indexed database and cached views, with
//! I/O accounting.
//!
//! The invariant that makes bounded rewriting work is visible directly in the
//! code: the only place base data is read is the `Fetch` arm, which goes
//! through [`IndexedDatabase::fetch`] and therefore through the indices of
//! the access schema.  Everything else works on intermediate results, cached
//! view extents, or constants.

use crate::error::PlanError;
use crate::node::{PlanNode, QueryPlan, SelectCondition};
use crate::Result;
use bqr_data::{FetchStats, IndexedDatabase, Tuple, Value};
use bqr_query::MaterializedViews;
use std::collections::BTreeSet;

/// The result of executing a plan: the answer relation and the I/O counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutput {
    /// The answer tuples (sorted, duplicate-free).
    pub tuples: Vec<Tuple>,
    /// How much data was accessed: `fetched_tuples` is the paper's `|D_ξ|`.
    pub stats: FetchStats,
}

impl ExecOutput {
    /// `|D_ξ|`: the number of base tuples fetched while executing the plan.
    pub fn base_tuples_fetched(&self) -> usize {
        self.stats.fetched_tuples
    }
}

/// Execute a plan over `idb` (base data reachable only through constraint
/// indices) and `views` (cached extents).
pub fn execute(
    plan: &QueryPlan,
    idb: &IndexedDatabase,
    views: &MaterializedViews,
) -> Result<ExecOutput> {
    let mut stats = FetchStats::new();
    let tuples = eval(plan.root(), idb, views, &mut stats)?;
    Ok(ExecOutput {
        tuples: tuples.into_iter().collect(),
        stats,
    })
}

fn eval(
    node: &PlanNode,
    idb: &IndexedDatabase,
    views: &MaterializedViews,
    stats: &mut FetchStats,
) -> Result<BTreeSet<Tuple>> {
    match node {
        PlanNode::Const(t) => Ok([t.clone()].into_iter().collect()),
        PlanNode::View { name, arity } => {
            let extent = views
                .extent(name)
                .ok_or_else(|| PlanError::UnknownView(name.clone()))?;
            stats.record_view_read(extent.len());
            if extent.schema().arity() != *arity {
                return Err(PlanError::ArityMismatch {
                    left: *arity,
                    right: extent.schema().arity(),
                });
            }
            Ok(extent.iter().cloned().collect())
        }
        PlanNode::Fetch {
            input,
            constraint,
            key_columns,
        } => {
            let input_tuples = eval(input, idb, views, stats)?;
            let position = idb
                .constraint_position(constraint)
                .ok_or_else(|| PlanError::ConstraintNotInSchema(constraint.to_string()))?;
            let mut out = BTreeSet::new();
            let mut seen_keys: BTreeSet<Vec<Value>> = BTreeSet::new();
            for t in &input_tuples {
                let key: Vec<Value> = key_columns.iter().map(|&c| t[c].clone()).collect();
                // Each distinct X-value is fetched once (the index returns the
                // same set for duplicates; re-fetching would double-count I/O).
                if !seen_keys.insert(key.clone()) {
                    continue;
                }
                for fetched in idb.fetch(position, &key, stats)? {
                    out.insert(fetched.clone());
                }
            }
            Ok(out)
        }
        PlanNode::Project { input, columns } => {
            let input_tuples = eval(input, idb, views, stats)?;
            Ok(input_tuples.iter().map(|t| t.project(columns)).collect())
        }
        PlanNode::Select { input, conditions } => {
            // The σ-over-× pattern is how plans express joins (the plan
            // grammar has no join operator).  Materialising the product first
            // would make joins quadratic, so equi-joins across the product
            // boundary are executed as hash joins.
            if let PlanNode::Product(a, b) = input.as_ref() {
                let left_arity = a.arity();
                let cross_eq: Vec<(usize, usize)> = conditions
                    .iter()
                    .filter_map(|c| match c {
                        SelectCondition::ColEqCol(i, j) if *i < left_arity && *j >= left_arity => {
                            Some((*i, *j - left_arity))
                        }
                        SelectCondition::ColEqCol(i, j) if *j < left_arity && *i >= left_arity => {
                            Some((*j, *i - left_arity))
                        }
                        _ => None,
                    })
                    .collect();
                if !cross_eq.is_empty() {
                    let left = eval(a, idb, views, stats)?;
                    let right = eval(b, idb, views, stats)?;
                    let mut index: std::collections::HashMap<Vec<Value>, Vec<&Tuple>> =
                        std::collections::HashMap::new();
                    for r in &right {
                        let key: Vec<Value> = cross_eq.iter().map(|&(_, j)| r[j].clone()).collect();
                        index.entry(key).or_default().push(r);
                    }
                    let mut out = BTreeSet::new();
                    for l in &left {
                        let key: Vec<Value> = cross_eq.iter().map(|&(i, _)| l[i].clone()).collect();
                        if let Some(matches) = index.get(&key) {
                            for r in matches {
                                let joined = l.concat(r);
                                if conditions.iter().all(|c| c.holds(&joined)) {
                                    out.insert(joined);
                                }
                            }
                        }
                    }
                    return Ok(out);
                }
            }
            let input_tuples = eval(input, idb, views, stats)?;
            Ok(input_tuples
                .into_iter()
                .filter(|t| conditions.iter().all(|c| c.holds(t)))
                .collect())
        }
        PlanNode::Rename { input } => eval(input, idb, views, stats),
        PlanNode::Product(a, b) => {
            let left = eval(a, idb, views, stats)?;
            let right = eval(b, idb, views, stats)?;
            let mut out = BTreeSet::new();
            for l in &left {
                for r in &right {
                    out.insert(l.concat(r));
                }
            }
            Ok(out)
        }
        PlanNode::Union(a, b) => {
            let mut left = eval(a, idb, views, stats)?;
            let right = eval(b, idb, views, stats)?;
            left.extend(right);
            Ok(left)
        }
        PlanNode::Difference(a, b) => {
            let left = eval(a, idb, views, stats)?;
            let right = eval(b, idb, views, stats)?;
            Ok(left.difference(&right).cloned().collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{figure1_plan, Plan};
    use bqr_data::{tuple, AccessConstraint, AccessSchema, Database, DatabaseSchema};
    use bqr_query::parser::parse_cq;
    use bqr_query::ViewSet;

    fn movie_schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[
            ("person", &["pid", "name", "affiliation"]),
            ("movie", &["mid", "mname", "studio", "release"]),
            ("rating", &["mid", "rank"]),
            ("like", &["pid", "id", "type"]),
        ])
        .unwrap()
    }

    fn phi1() -> AccessConstraint {
        AccessConstraint::new("movie", &["studio", "release"], &["mid"], 100).unwrap()
    }
    fn phi2() -> AccessConstraint {
        AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap()
    }

    fn setup() -> (IndexedDatabase, MaterializedViews) {
        let mut db = Database::empty(movie_schema());
        db.insert("person", tuple![1, "Ann", "NASA"]).unwrap();
        db.insert("person", tuple![2, "Bob", "NASA"]).unwrap();
        db.insert("person", tuple![3, "Cat", "ESA"]).unwrap();
        db.insert("movie", tuple![10, "Lucy", "Universal", "2014"])
            .unwrap();
        db.insert("movie", tuple![11, "Ouija", "Universal", "2014"])
            .unwrap();
        db.insert("movie", tuple![12, "Her", "WB", "2013"]).unwrap();
        db.insert("rating", tuple![10, 5]).unwrap();
        db.insert("rating", tuple![11, 3]).unwrap();
        db.insert("rating", tuple![12, 5]).unwrap();
        db.insert("like", tuple![1, 10, "movie"]).unwrap();
        db.insert("like", tuple![2, 12, "movie"]).unwrap();
        db.insert("like", tuple![3, 11, "movie"]).unwrap();
        let access = AccessSchema::new(vec![phi1(), phi2()]);

        let mut views = ViewSet::empty();
        views
            .add_cq(
                "V1",
                parse_cq(
                    "V1(mid) :- person(xp, xn, 'NASA'), movie(mid, ym, z1, z2), like(xp, mid, 'movie')",
                )
                .unwrap(),
            )
            .unwrap();
        let cache = views.materialize(&db).unwrap();
        let idb = IndexedDatabase::build(db, access).unwrap();
        (idb, cache)
    }

    #[test]
    fn figure1_plan_computes_q0_with_bounded_io() {
        let (idb, cache) = setup();
        let plan = figure1_plan(&phi1(), &phi2()).unwrap();
        let out = execute(&plan, &idb, &cache).unwrap();
        assert_eq!(out.tuples, vec![tuple![10]], "only Lucy qualifies");
        // The plan fetched 2 movie ids (Universal/2014) and then at most 2
        // ratings — far fewer than the 12 tuples in the database, and
        // independent of how many person/like tuples exist.
        assert!(out.base_tuples_fetched() <= 4, "{:?}", out.stats);
        assert_eq!(out.stats.scanned_tuples, 0, "bounded plans never scan");
        assert!(out.stats.view_tuples >= 1, "V1 was read from cache");
    }

    #[test]
    fn fetch_deduplicates_keys() {
        let (idb, cache) = setup();
        // Two identical keys in the input: the fetch must count the probe once.
        let plan = Plan::constant(vec![Value::str("Universal"), Value::str("2014")])
            .union(Plan::constant(vec![
                Value::str("Universal"),
                Value::str("2014"),
            ]))
            .fetch(phi1(), vec![0, 1])
            .build()
            .unwrap();
        let out = execute(&plan, &idb, &cache).unwrap();
        assert_eq!(out.stats.fetch_calls, 1);
        assert_eq!(out.tuples.len(), 2);
    }

    #[test]
    fn missing_view_and_foreign_constraint_error() {
        let (idb, cache) = setup();
        let plan = Plan::view("NoSuchView", 1).build().unwrap();
        assert!(matches!(
            execute(&plan, &idb, &cache),
            Err(PlanError::UnknownView(_))
        ));

        let foreign = AccessConstraint::new("like", &["pid"], &["id"], 5000).unwrap();
        let plan = Plan::constant(vec![1])
            .fetch(foreign, vec![0])
            .build()
            .unwrap();
        assert!(matches!(
            execute(&plan, &idb, &cache),
            Err(PlanError::ConstraintNotInSchema(_))
        ));
    }

    #[test]
    fn relational_operators_behave_setwise() {
        let (idb, cache) = setup();
        let a = Plan::constant(vec![1]).union(Plan::constant(vec![2]));
        let b = Plan::constant(vec![2]).union(Plan::constant(vec![3]));
        let diff = a.clone().difference(b.clone()).build().unwrap();
        assert_eq!(
            execute(&diff, &idb, &cache).unwrap().tuples,
            vec![tuple![1]]
        );
        let union = a.clone().union(b.clone()).build().unwrap();
        assert_eq!(execute(&union, &idb, &cache).unwrap().tuples.len(), 3);
        let product = a.product(b).build().unwrap();
        assert_eq!(execute(&product, &idb, &cache).unwrap().tuples.len(), 4);
        let renamed = Plan::constant(vec![7, 8])
            .rename()
            .project(vec![1])
            .build()
            .unwrap();
        assert_eq!(
            execute(&renamed, &idb, &cache).unwrap().tuples,
            vec![tuple![8]]
        );
        let selected = Plan::constant(vec![7, 7])
            .select_eq_cols(0, 1)
            .build()
            .unwrap();
        assert_eq!(execute(&selected, &idb, &cache).unwrap().tuples.len(), 1);
        let empty_select = Plan::constant(vec![7, 8])
            .select_eq_cols(0, 1)
            .build()
            .unwrap();
        assert!(execute(&empty_select, &idb, &cache)
            .unwrap()
            .tuples
            .is_empty());
    }

    #[test]
    fn fetch_on_absent_key_returns_empty() {
        let (idb, cache) = setup();
        let plan = Plan::constant(vec![Value::str("MGM"), Value::str("1950")])
            .fetch(phi1(), vec![0, 1])
            .build()
            .unwrap();
        let out = execute(&plan, &idb, &cache).unwrap();
        assert!(out.tuples.is_empty());
        assert_eq!(out.stats.fetch_calls, 1);
        assert_eq!(out.stats.fetched_tuples, 0);
    }

    #[test]
    fn view_arity_mismatch_detected_at_execution() {
        let (idb, cache) = setup();
        let plan = Plan::view("V1", 2).build().unwrap();
        assert!(matches!(
            execute(&plan, &idb, &cache),
            Err(PlanError::ArityMismatch { .. })
        ));
    }
}
