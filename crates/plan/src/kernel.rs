//! Vectorised batch kernels over flat `ValueId` data.
//!
//! The executor's intermediate tables are already column-shaped (row-major
//! `Vec<ValueId>`); these kernels are the tight loops that process them a
//! *batch* ([`BATCH_ROWS`] rows) at a time:
//!
//! * [`filter`] evaluates a conjunction of [`IdCond`]s condition-at-a-time
//!   into a **selection vector** (row indices, batch-relative).  The first
//!   condition scans one column with a strided loop; each further condition
//!   compacts the surviving indices in place.  No row data moves until
//!   [`gather`] copies the survivors out in one pass (a single `memcpy`
//!   when everything passed).
//! * [`project`] copies a column subset of a batch without any per-row
//!   branching.
//! * [`JoinTable`] is the hash-join build side, specialised for the
//!   overwhelmingly common single-column equi-join key: a bare
//!   `ValueId → rows` map probed without building a key vector per row.
//! * [`dedup`] sorts + dedups a table's rows, sorting ids directly for
//!   arity-1 tables (no per-row slice indirection).
//!
//! Every kernel is deterministic and order-preserving: output rows appear
//! in input order, so concatenating per-batch (and per-morsel, see
//! [`crate::morsel`]) outputs reproduces the serial result bit for bit.
//! Guard checks happen *between* batches, in the callers — the loops here
//! never branch on anything but the data.

use crate::exec::IdCond;
use crate::guard::Guard;
use crate::Result;
use bqr_data::ValueId;
use std::collections::HashMap;

/// Rows per kernel batch.  Matches the guard's former per-row checkpoint
/// mask interval, so one `Guard::check` per batch preserves the PR 6
/// cancellation cadence (and its ≤5% overhead gate).
pub(crate) const BATCH_ROWS: usize = 1024;

/// Evaluate `conds` over a batch of `rows` rows (flat row-major `data` of
/// `rows * arity` ids), leaving the batch-relative indices of the surviving
/// rows in `sel` (cleared first, ascending order).
pub(crate) fn filter(
    conds: &[IdCond],
    data: &[ValueId],
    arity: usize,
    rows: usize,
    sel: &mut Vec<u32>,
) {
    sel.clear();
    let Some((first, rest)) = conds.split_first() else {
        sel.extend(0..rows as u32);
        return;
    };
    // First condition: one strided pass over the column(s) it touches.
    match *first {
        IdCond::EqConst(c, v) => {
            let mut p = c;
            for i in 0..rows as u32 {
                if data[p] == v {
                    sel.push(i);
                }
                p += arity;
            }
        }
        IdCond::NeConst(c, v) => {
            let mut p = c;
            for i in 0..rows as u32 {
                if data[p] != v {
                    sel.push(i);
                }
                p += arity;
            }
        }
        IdCond::EqCol(a, b) => {
            let (mut pa, mut pb) = (a, b);
            for i in 0..rows as u32 {
                if data[pa] == data[pb] {
                    sel.push(i);
                }
                pa += arity;
                pb += arity;
            }
        }
        IdCond::NeCol(a, b) => {
            let (mut pa, mut pb) = (a, b);
            for i in 0..rows as u32 {
                if data[pa] != data[pb] {
                    sel.push(i);
                }
                pa += arity;
                pb += arity;
            }
        }
    }
    // Remaining conditions compact the selection vector in place: only the
    // surviving rows are revisited, and no row data is copied.
    for cond in rest {
        let mut k = 0;
        for idx in 0..sel.len() {
            let i = sel[idx] as usize * arity;
            if cond.holds(&data[i..i + arity]) {
                sel[k] = sel[idx];
                k += 1;
            }
        }
        sel.truncate(k);
    }
}

/// Append the rows selected by `sel` (batch-relative indices into `data`,
/// which holds `rows * arity` ids) to `out`.  An all-pass selection is one
/// `memcpy` of the whole batch.
pub(crate) fn gather(
    data: &[ValueId],
    arity: usize,
    rows: usize,
    sel: &[u32],
    out: &mut Vec<ValueId>,
) {
    if sel.len() == rows {
        out.extend_from_slice(data);
        return;
    }
    out.reserve(sel.len() * arity);
    for &i in sel {
        let s = i as usize * arity;
        out.extend_from_slice(&data[s..s + arity]);
    }
}

/// Append the projection of a batch onto `cols` to `out`.
pub(crate) fn project(data: &[ValueId], arity: usize, cols: &[usize], out: &mut Vec<ValueId>) {
    out.reserve(data.len() / arity.max(1) * cols.len());
    if let [col] = *cols {
        // Single output column: one strided pass.
        let mut p = col;
        while p < data.len() {
            out.push(data[p]);
            p += arity;
        }
        return;
    }
    for row in data.chunks_exact(arity) {
        out.extend(cols.iter().map(|&c| row[c]));
    }
}

/// The build side of a hash join: join-key → build-row indices.  The
/// single-column key case — every equi-join the σ-over-× compiler emits for
/// chain/star/triangle-shaped plans — hashes a bare `ValueId`; only
/// multi-column keys pay for a key vector.
pub(crate) enum JoinTable {
    Single(HashMap<ValueId, Vec<u32>>),
    Multi(HashMap<Vec<ValueId>, Vec<u32>>),
}

impl JoinTable {
    /// Build the table over `rows` rows of flat `data`, keyed by `key_cols`.
    /// The guard is checked once per [`BATCH_ROWS`] rows.
    pub(crate) fn build(
        data: &[ValueId],
        arity: usize,
        rows: usize,
        key_cols: &[usize],
        guard: &Guard,
    ) -> Result<JoinTable> {
        if let [col] = *key_cols {
            let mut map: HashMap<ValueId, Vec<u32>> = HashMap::new();
            let mut start = 0;
            while start < rows {
                guard.check()?;
                let end = (start + BATCH_ROWS).min(rows);
                for i in start..end {
                    map.entry(data[i * arity + col]).or_default().push(i as u32);
                }
                start = end;
            }
            Ok(JoinTable::Single(map))
        } else {
            let mut map: HashMap<Vec<ValueId>, Vec<u32>> = HashMap::new();
            let mut start = 0;
            while start < rows {
                guard.check()?;
                let end = (start + BATCH_ROWS).min(rows);
                for i in start..end {
                    let row = &data[i * arity..(i + 1) * arity];
                    let key: Vec<ValueId> = key_cols.iter().map(|&c| row[c]).collect();
                    map.entry(key).or_default().push(i as u32);
                }
                start = end;
            }
            Ok(JoinTable::Multi(map))
        }
    }

    /// Number of distinct join keys — the group count behind the probe-side
    /// work hint (`probe_rows · avg_group`).
    pub(crate) fn groups(&self) -> usize {
        match self {
            JoinTable::Single(map) => map.len(),
            JoinTable::Multi(map) => map.len(),
        }
    }
}

/// Sort + dedup `data`'s rows (lexicographic on ids), returning the flat
/// deduplicated data.  `arity` must be ≥ 1.  Arity-1 tables sort the id
/// column directly; wider tables sort row slices.
pub(crate) fn dedup(data: Vec<ValueId>, arity: usize) -> Vec<ValueId> {
    debug_assert!(arity >= 1);
    if arity == 1 {
        let mut data = data;
        data.sort_unstable();
        data.dedup();
        return data;
    }
    let mut rows: Vec<&[ValueId]> = data.chunks_exact(arity).collect();
    rows.sort_unstable();
    rows.dedup();
    let mut out = Vec::with_capacity(rows.len() * arity);
    for row in &rows {
        out.extend_from_slice(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqr_data::Value;

    fn ids(vals: &[i64]) -> Vec<ValueId> {
        vals.iter()
            .map(|&v| ValueId::intern(&Value::int(v)))
            .collect()
    }

    fn id(v: i64) -> ValueId {
        ValueId::intern(&Value::int(v))
    }

    /// Reference semantics: row-at-a-time `IdCond::holds` over every row.
    fn filter_reference(conds: &[IdCond], data: &[ValueId], arity: usize, rows: usize) -> Vec<u32> {
        (0..rows as u32)
            .filter(|&i| {
                let s = i as usize * arity;
                conds.iter().all(|c| c.holds(&data[s..s + arity]))
            })
            .collect()
    }

    #[test]
    fn filter_matches_row_at_a_time_reference() {
        // 2-column batch with repeats, equal pairs and a sentinel constant.
        let data = ids(&[1, 1, 2, 3, 1, 5, 4, 4, 9, 9, 1, 2]);
        let arity = 2;
        let rows = 6;
        let cond_sets: Vec<Vec<IdCond>> = vec![
            vec![],
            vec![IdCond::EqConst(0, id(1))],
            vec![IdCond::NeConst(0, id(1))],
            vec![IdCond::EqCol(0, 1)],
            vec![IdCond::NeCol(0, 1)],
            vec![IdCond::EqConst(0, id(1)), IdCond::NeCol(0, 1)],
            vec![
                IdCond::NeCol(0, 1),
                IdCond::EqConst(1, id(2)),
                IdCond::NeConst(0, id(4)),
            ],
        ];
        let mut sel = Vec::new();
        for conds in &cond_sets {
            filter(conds, &data, arity, rows, &mut sel);
            assert_eq!(
                sel,
                filter_reference(conds, &data, arity, rows),
                "{conds:?}"
            );
        }
    }

    #[test]
    fn filter_all_pass_and_all_fail_extremes() {
        let data = ids(&[7, 7, 7, 7]);
        let mut sel = vec![99];
        // All-pass: every index, ascending.
        filter(&[IdCond::EqConst(0, id(7))], &data, 1, 4, &mut sel);
        assert_eq!(sel, vec![0, 1, 2, 3]);
        // All-fail: empty selection (and the previous contents are cleared).
        filter(&[IdCond::NeConst(0, id(7))], &data, 1, 4, &mut sel);
        assert!(sel.is_empty());
        // Empty batch: nothing selected regardless of conditions.
        filter(&[IdCond::EqConst(0, id(7))], &[], 1, 0, &mut sel);
        assert!(sel.is_empty());
    }

    #[test]
    fn gather_copies_selected_rows_in_order() {
        let data = ids(&[1, 2, 3, 4, 5, 6]);
        let mut out = Vec::new();
        gather(&data, 2, 3, &[0, 2], &mut out);
        assert_eq!(out, ids(&[1, 2, 5, 6]));
        // All-pass takes the memcpy path; output identical to the input.
        out.clear();
        gather(&data, 2, 3, &[0, 1, 2], &mut out);
        assert_eq!(out, data);
        // Empty selection appends nothing.
        gather(&data, 2, 3, &[], &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn project_single_and_multi_column() {
        let data = ids(&[1, 2, 3, 4, 5, 6]);
        let mut out = Vec::new();
        project(&data, 2, &[1], &mut out);
        assert_eq!(out, ids(&[2, 4, 6]));
        out.clear();
        project(&data, 2, &[1, 0], &mut out);
        assert_eq!(out, ids(&[2, 1, 4, 3, 6, 5]));
        out.clear();
        project(&[], 2, &[0], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn join_table_single_key_specialisation_agrees_with_multi() {
        let guard = Guard::new(&crate::guard::GuardLimits::none());
        let data = ids(&[1, 10, 2, 20, 1, 30]);
        let single = JoinTable::build(&data, 2, 3, &[0], &guard).unwrap();
        assert!(matches!(single, JoinTable::Single(_)));
        assert_eq!(single.groups(), 2);
        let multi = JoinTable::build(&data, 2, 3, &[0, 1], &guard).unwrap();
        assert!(matches!(multi, JoinTable::Multi(_)));
        assert_eq!(multi.groups(), 3);
        if let JoinTable::Single(map) = &single {
            assert_eq!(map[&id(1)], vec![0, 2], "build rows in input order");
            assert_eq!(map[&id(2)], vec![1]);
        }
    }

    #[test]
    fn dedup_arity_one_fast_path_matches_slice_path() {
        // Duplicates scattered across what would be several batches.
        let vals: Vec<i64> = (0..5000).map(|i| i % 97).collect();
        let flat = ids(&vals);
        let narrow = dedup(flat.clone(), 1);
        // The slice path on the same data (forced by calling with the rows
        // laid out identically) must agree.
        let mut expect: Vec<ValueId> = flat;
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(narrow, expect);
        assert_eq!(narrow.len(), 97);

        let wide = dedup(ids(&[3, 4, 1, 2, 3, 4, 1, 2]), 2);
        assert_eq!(wide.len(), 4, "two distinct rows of arity 2");
        assert_eq!(dedup(Vec::new(), 2), Vec::new());
    }
}
