//! Runtime guardrails for pipeline execution.
//!
//! The paper's contract is *static*: `analyze()` certifies that a bounded
//! plan fetches at most `M` base tuples.  This module adds the *dynamic*
//! guarantees a serving engine needs on top of that promise — an adversarial
//! cyclic query or a skewed hash join can still blow up wall-clock time and
//! intermediate memory long after the fetch bound is satisfied.
//!
//! A [`Guard`] bundles four cooperative limits:
//!
//! * **cancellation** — a shared [`CancellationToken`] a caller can trip from
//!   another thread;
//! * **deadline** — a wall-clock budget resolved to an [`Instant`] when
//!   execution starts;
//! * **intermediate-row budget** — a cap on the total rows materialised
//!   across all operators (the memory proxy: every intermediate row has
//!   fixed arity, so rows x arity bounds resident `ValueId`s);
//! * **fetched-tuple cap** — a *runtime* re-check of the paper's fetch bound
//!   (`|D_ξ| <= M`), independent of the static certificate.
//!
//! The executor checks the guard at operator boundaries and every
//! [`CHECK_INTERVAL`] rows inside hot loops ([`Guard::checkpoint`]), so an
//! exceeded limit surfaces as a typed [`ExecError`](crate::ExecError) within
//! microseconds rather than minutes.  Limits are configured per execution on
//! [`ExecOptions::limits`](crate::ExecOptions) — all disabled by default, in
//! which case every check is a couple of relaxed atomic loads.
//!
//! [`GuardMetrics`] accumulates engine-lifetime counters ([`GuardStats`]) of
//! trips, contained panics and serial fallbacks; `bqr-engine` owns one per
//! engine and surfaces it as `engine.guard_stats()`.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::ExecError;

/// How many rows a hot loop may process between guard checks.  Must be a
/// power of two ([`Guard::checkpoint`] uses a mask).
pub const CHECK_INTERVAL: usize = 1024;
const CHECK_MASK: usize = CHECK_INTERVAL - 1;

/// A shareable cancellation handle.  Cloning is cheap (one `Arc`); tripping
/// it from any thread makes every execution guarded by it return
/// [`ExecError::Cancelled`] at the next checkpoint.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    inner: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the token.  Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner.store(true, Ordering::Release);
    }

    /// Has the token been tripped?
    pub fn is_cancelled(&self) -> bool {
        self.inner.load(Ordering::Acquire)
    }
}

/// Declarative, hashable runtime limits carried on
/// [`ExecOptions`](crate::ExecOptions).  All `None` (the default) disables
/// every check except cancellation-token polling.
///
/// Limits are *runtime-only*: the pipeline cache strips them from its key
/// (see `ExecOptions::cache_key`), so two executions of the same plan with
/// different deadlines share one compiled pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct GuardLimits {
    /// Wall-clock deadline in milliseconds, resolved against `Instant::now()`
    /// when execution starts.
    pub deadline_ms: Option<u64>,
    /// Cap on total intermediate rows materialised across all operators.
    pub max_intermediate_rows: Option<usize>,
    /// Cap on base tuples fetched at runtime (a dynamic re-check of the
    /// paper's static bound `|D_ξ| <= M`).
    pub max_fetched_tuples: Option<usize>,
}

impl GuardLimits {
    /// No limits: every check is a no-op beyond token polling.
    pub fn none() -> Self {
        Self::default()
    }

    /// Are all limits disabled?
    pub fn is_unlimited(&self) -> bool {
        self.deadline_ms.is_none()
            && self.max_intermediate_rows.is_none()
            && self.max_fetched_tuples.is_none()
    }
}

/// The per-execution governor: checked cooperatively inside the hot operator
/// loops and shared by reference across shard workers (it is `Sync`; the
/// counters are atomics).
///
/// Construction resolves the deadline once; `check()` only reads the clock
/// when a deadline is actually set.
#[derive(Debug)]
pub struct Guard {
    token: CancellationToken,
    /// Internal abort flag: set when one shard worker fails so its siblings
    /// stop at their next checkpoint.  Distinct from the caller's token so a
    /// sibling-abort is never mistaken for an external cancellation.
    aborted: AtomicBool,
    deadline: Option<Instant>,
    deadline_ms: u64,
    max_rows: Option<usize>,
    rows: AtomicUsize,
    max_fetched: Option<usize>,
    fetched: AtomicUsize,
    metrics: Option<Arc<GuardMetrics>>,
}

impl Guard {
    /// A guard enforcing `limits`, with a fresh (untrippable-from-outside)
    /// token.  The deadline countdown starts now.
    pub fn new(limits: &GuardLimits) -> Self {
        Self::with_token(limits, CancellationToken::new())
    }

    /// A guard enforcing `limits` that also honours an external `token`.
    pub fn with_token(limits: &GuardLimits, token: CancellationToken) -> Self {
        Guard {
            token,
            aborted: AtomicBool::new(false),
            deadline: limits
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            deadline_ms: limits.deadline_ms.unwrap_or(0),
            max_rows: limits.max_intermediate_rows,
            rows: AtomicUsize::new(0),
            max_fetched: limits.max_fetched_tuples,
            fetched: AtomicUsize::new(0),
            metrics: None,
        }
    }

    /// Attach engine-lifetime metrics; trips recorded via [`record_trip`]
    /// (and panics/fallbacks noted by the executor) accumulate there.
    ///
    /// [`record_trip`]: Guard::record_trip
    pub fn with_metrics(mut self, metrics: Arc<GuardMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The token this guard polls.
    pub fn token(&self) -> &CancellationToken {
        &self.token
    }

    /// Fail fast if cancelled (externally or by a failed sibling shard) or
    /// past the deadline.  The clock is only read when a deadline is set.
    pub fn check(&self) -> Result<(), ExecError> {
        if self.aborted.load(Ordering::Acquire) || self.token.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(ExecError::DeadlineExceeded {
                    deadline_ms: self.deadline_ms,
                });
            }
        }
        Ok(())
    }

    /// Amortised [`check`](Guard::check) for per-row loops: runs the real
    /// check once every [`CHECK_INTERVAL`] iterations.
    #[inline]
    pub fn checkpoint(&self, i: usize) -> Result<(), ExecError> {
        if i & CHECK_MASK == 0 {
            self.check()
        } else {
            Ok(())
        }
    }

    /// Charge `n` intermediate rows against the memory budget.  Call once
    /// per materialised batch (per shard), not per row.
    pub fn charge_rows(&self, n: usize) -> Result<(), ExecError> {
        let Some(budget) = self.max_rows else {
            return Ok(());
        };
        let total = self.rows.fetch_add(n, Ordering::AcqRel) + n;
        if total > budget {
            return Err(ExecError::MemoryBudgetExceeded {
                budget_rows: budget,
            });
        }
        Ok(())
    }

    /// Charge `n` fetched base tuples against the runtime fetch cap.
    pub fn charge_fetched(&self, n: usize) -> Result<(), ExecError> {
        let Some(budget) = self.max_fetched else {
            return Ok(());
        };
        let total = self.fetched.fetch_add(n, Ordering::AcqRel) + n;
        if total > budget {
            return Err(ExecError::FetchBudgetExceeded {
                budget_tuples: budget,
            });
        }
        Ok(())
    }

    /// Abort this execution: sibling shards observe it at their next
    /// checkpoint and return [`ExecError::Cancelled`].  Does not touch the
    /// caller's token.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
    }

    /// Note that a shard worker panicked and the panic was contained.
    pub fn note_panic_contained(&self) {
        if let Some(m) = &self.metrics {
            m.panics_contained.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Note that parallel execution fell back to running a shard inline
    /// because a worker thread could not be spawned.
    pub fn note_serial_fallback(&self) {
        if let Some(m) = &self.metrics {
            m.serial_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one tripped limit in the attached metrics.  Called once per
    /// execution at the top level, so a limit tripped by several shards
    /// counts once.
    pub fn record_trip(&self, err: &ExecError) {
        let Some(m) = &self.metrics else { return };
        match err {
            ExecError::Cancelled => m.cancellations.fetch_add(1, Ordering::Relaxed),
            ExecError::DeadlineExceeded { .. } => m.deadline_trips.fetch_add(1, Ordering::Relaxed),
            ExecError::MemoryBudgetExceeded { .. } => {
                m.memory_trips.fetch_add(1, Ordering::Relaxed)
            }
            ExecError::FetchBudgetExceeded { .. } => m.fetch_trips.fetch_add(1, Ordering::Relaxed),
            // Contained panics are counted where they are caught.
            ExecError::WorkerPanic(_) => 0,
        };
    }
}

/// Engine-lifetime guardrail counters.  One per `Engine`, shared (via `Arc`)
/// into every guarded execution; snapshot with [`GuardMetrics::stats`].
#[derive(Debug, Default)]
pub struct GuardMetrics {
    cancellations: AtomicU64,
    deadline_trips: AtomicU64,
    memory_trips: AtomicU64,
    fetch_trips: AtomicU64,
    panics_contained: AtomicU64,
    serial_fallbacks: AtomicU64,
}

impl GuardMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// A consistent-enough snapshot of the counters (each counter is read
    /// atomically; the set is not mutually synchronised).
    pub fn stats(&self) -> GuardStats {
        GuardStats {
            cancellations: self.cancellations.load(Ordering::Relaxed),
            deadline_trips: self.deadline_trips.load(Ordering::Relaxed),
            memory_trips: self.memory_trips.load(Ordering::Relaxed),
            fetch_trips: self.fetch_trips.load(Ordering::Relaxed),
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
            serial_fallbacks: self.serial_fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of [`GuardMetrics`]: how often each guardrail has fired over an
/// engine's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardStats {
    /// Executions that returned [`ExecError::Cancelled`].
    pub cancellations: u64,
    /// Executions that returned [`ExecError::DeadlineExceeded`].
    pub deadline_trips: u64,
    /// Executions that returned [`ExecError::MemoryBudgetExceeded`].
    pub memory_trips: u64,
    /// Executions that returned [`ExecError::FetchBudgetExceeded`].
    pub fetch_trips: u64,
    /// Shard-worker panics caught and converted to typed errors.
    pub panics_contained: u64,
    /// Shards run inline because a worker thread could not be spawned.
    pub serial_fallbacks: u64,
}

/// Best-effort human-readable message from a caught panic payload (the
/// value `std::panic::catch_unwind` returns in its `Err`).  Used by the
/// executor's shard containment and the engine's mutate containment.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_always_passes() {
        let g = Guard::new(&GuardLimits::none());
        g.check().unwrap();
        g.charge_rows(usize::MAX / 2).unwrap();
        g.charge_fetched(usize::MAX / 2).unwrap();
        for i in 0..10_000 {
            g.checkpoint(i).unwrap();
        }
    }

    #[test]
    fn cancellation_is_observed_by_clones() {
        let token = CancellationToken::new();
        let g = Guard::with_token(&GuardLimits::none(), token.clone());
        g.check().unwrap();
        token.cancel();
        assert_eq!(g.check(), Err(ExecError::Cancelled));
        assert!(g.token().is_cancelled());
    }

    #[test]
    fn internal_abort_reads_as_cancellation_without_tripping_the_token() {
        let token = CancellationToken::new();
        let g = Guard::with_token(&GuardLimits::none(), token.clone());
        g.abort();
        assert_eq!(g.check(), Err(ExecError::Cancelled));
        assert!(
            !token.is_cancelled(),
            "abort must not trip the caller token"
        );
    }

    #[test]
    fn elapsed_deadline_trips() {
        let limits = GuardLimits {
            deadline_ms: Some(0),
            ..GuardLimits::default()
        };
        let g = Guard::new(&limits);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(
            g.check(),
            Err(ExecError::DeadlineExceeded { deadline_ms: 0 })
        );
    }

    #[test]
    fn row_budget_is_cumulative_across_charges() {
        let limits = GuardLimits {
            max_intermediate_rows: Some(100),
            ..GuardLimits::default()
        };
        let g = Guard::new(&limits);
        g.charge_rows(60).unwrap();
        g.charge_rows(40).unwrap();
        assert_eq!(
            g.charge_rows(1),
            Err(ExecError::MemoryBudgetExceeded { budget_rows: 100 })
        );
    }

    #[test]
    fn fetch_budget_trips_with_the_configured_cap_in_the_error() {
        let limits = GuardLimits {
            max_fetched_tuples: Some(5),
            ..GuardLimits::default()
        };
        let g = Guard::new(&limits);
        g.charge_fetched(5).unwrap();
        assert_eq!(
            g.charge_fetched(1),
            Err(ExecError::FetchBudgetExceeded { budget_tuples: 5 })
        );
    }

    #[test]
    fn checkpoint_only_checks_on_interval_boundaries() {
        let token = CancellationToken::new();
        let g = Guard::with_token(&GuardLimits::none(), token.clone());
        token.cancel();
        // Off-boundary indices skip the check entirely.
        g.checkpoint(1).unwrap();
        g.checkpoint(CHECK_INTERVAL - 1).unwrap();
        assert_eq!(g.checkpoint(0), Err(ExecError::Cancelled));
        assert_eq!(g.checkpoint(CHECK_INTERVAL), Err(ExecError::Cancelled));
    }

    #[test]
    fn metrics_count_trips_panics_and_fallbacks() {
        let metrics = Arc::new(GuardMetrics::new());
        let g = Guard::new(&GuardLimits::none()).with_metrics(Arc::clone(&metrics));
        g.record_trip(&ExecError::Cancelled);
        g.record_trip(&ExecError::DeadlineExceeded { deadline_ms: 50 });
        g.record_trip(&ExecError::MemoryBudgetExceeded { budget_rows: 1 });
        g.record_trip(&ExecError::FetchBudgetExceeded { budget_tuples: 1 });
        g.record_trip(&ExecError::WorkerPanic("boom".into()));
        g.note_panic_contained();
        g.note_serial_fallback();
        g.note_serial_fallback();
        let stats = metrics.stats();
        assert_eq!(stats.cancellations, 1);
        assert_eq!(stats.deadline_trips, 1);
        assert_eq!(stats.memory_trips, 1);
        assert_eq!(stats.fetch_trips, 1);
        assert_eq!(stats.panics_contained, 1);
        assert_eq!(stats.serial_fallbacks, 2);
    }

    #[test]
    fn panic_message_extracts_both_payload_shapes() {
        let caught = std::panic::catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "static str");
        let caught = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "formatted 7");
    }

    #[test]
    fn guard_is_sync_and_token_is_send() {
        fn assert_sync<T: Sync>() {}
        fn assert_send<T: Send>() {}
        assert_sync::<Guard>();
        assert_send::<CancellationToken>();
        assert_sync::<GuardMetrics>();
    }
}
