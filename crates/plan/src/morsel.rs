//! Morsel-driven parallel scheduling for data-parallel operators.
//!
//! The former driver split an operator's input into exactly `shards`
//! static ranges behind a barrier: one slow range (skew, a cold cache, a
//! descheduled worker) idled every other thread.  Here the input is cut
//! into fixed-size **morsels** (at most [`MORSEL_ROWS`] rows) and worker
//! threads *pull* the next morsel index from a shared atomic counter —
//! fast workers simply take more morsels, so the wall clock follows the
//! total work, not the slowest equal share.
//!
//! Determinism is preserved structurally: morsel boundaries are a pure
//! function of `(rows, workers)`, every operator kernel is
//! order-preserving within its range, and results are merged **in morsel
//! order** — so the concatenated output is bit-identical to the serial
//! run no matter which worker ran which morsel, or in what order they
//! finished.
//!
//! Failure semantics (unchanged from the sharded driver):
//!
//! * a morsel returning `Err` aborts the shared guard so sibling workers
//!   stop at their next per-batch check; the merged result is the first
//!   non-[`ExecError::Cancelled`] error in morsel order (the root cause
//!   wins over sibling-abort echoes);
//! * a panicking morsel is contained with `catch_unwind` and surfaces as
//!   [`ExecError::WorkerPanic`];
//! * if a worker thread cannot be spawned
//!   ([`bqr_data::faults::sites::THREAD_SPAWN`]), the coordinator absorbs
//!   its share (noted as a serial fallback in the guard metrics);
//! * a fault at the dispatch site
//!   ([`bqr_data::faults::sites::MORSEL_DISPATCH`]) degrades the whole
//!   operator to the serial path — identical answers, no threads.

use crate::error::{ExecError, PlanError};
use crate::exec::ExecOptions;
use crate::guard::{panic_message, Guard};
use crate::Result;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Upper bound on rows per morsel.  A multiple of the kernel batch
/// ([`crate::kernel::BATCH_ROWS`]), so per-batch guard charges tile morsels
/// exactly.
pub(crate) const MORSEL_ROWS: usize = 4096;

/// Cut `rows` into contiguous morsel ranges for `workers` pullers: roughly
/// four morsels per worker so the queue can absorb skew, capped at
/// [`MORSEL_ROWS`].  Pure function of `(rows, workers)` — the first half of
/// the bit-identical-merge guarantee.  `rows == 0` yields one empty range
/// so callers still run their merge path.
pub(crate) fn morsel_ranges(rows: usize, workers: usize) -> Vec<Range<usize>> {
    let size = rows.div_ceil(workers.max(1) * 4).clamp(1, MORSEL_ROWS);
    let mut out = Vec::with_capacity(rows.div_ceil(size).max(1));
    let mut start = 0;
    while start < rows {
        let end = (start + size).min(rows);
        out.push(start..end);
        start = end;
    }
    if out.is_empty() {
        out.push(0..0);
    }
    out
}

/// Run `work` over `0..rows`, in parallel morsels when `options` asks for
/// parallelism and `work_hint` (the operator's estimated total work: at
/// least its row count, more for output-heavy joins and fetches) clears
/// [`ExecOptions::PARALLEL_MIN_ROWS`].  Results return in morsel order.
pub(crate) fn run_morsels<T, F>(
    rows: usize,
    work_hint: usize,
    options: &ExecOptions,
    guard: &Guard,
    work: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(Range<usize>) -> Result<T> + Sync,
{
    let workers = options.workers_for(work_hint);
    if workers <= 1 {
        return Ok(vec![work(0..rows)?]);
    }
    // Dispatch failpoint: degrade to serial, never fail the query.
    if bqr_data::faults::check(bqr_data::faults::sites::MORSEL_DISPATCH).is_err() {
        guard.note_serial_fallback();
        return Ok(vec![work(0..rows)?]);
    }
    let morsels = morsel_ranges(rows, workers);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T>>>> =
        (0..morsels.len()).map(|_| Mutex::new(None)).collect();
    // One panic-contained, sibling-aborting wrapper shared by every worker.
    let run = |range: Range<usize>| -> Result<T> {
        match catch_unwind(AssertUnwindSafe(|| work(range))) {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => {
                guard.abort();
                Err(e)
            }
            Err(payload) => {
                guard.abort();
                guard.note_panic_contained();
                Err(PlanError::Exec(ExecError::WorkerPanic(panic_message(
                    payload.as_ref(),
                ))))
            }
        }
    };
    // The pull loop every worker (and the coordinator) drains: claim the
    // next morsel index, run it, park the result in its slot.  A worker
    // that hits an error stops pulling; siblings drain the rest (tripping
    // Cancelled at their next guard check, which the merge below folds
    // away in favour of the root cause).
    let drain = || loop {
        let m = next.fetch_add(1, Ordering::Relaxed);
        let Some(range) = morsels.get(m) else { break };
        let result = run(range.clone());
        let failed = result.is_err();
        *slots[m].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        if failed {
            break;
        }
    };
    std::thread::scope(|scope| {
        let drain = &drain;
        for w in 1..workers {
            let spawned = if bqr_data::faults::check(bqr_data::faults::sites::THREAD_SPAWN).is_ok()
            {
                std::thread::Builder::new()
                    .name(format!("bqr-morsel-{w}"))
                    .spawn_scoped(scope, drain)
                    .is_ok()
            } else {
                false
            };
            if !spawned {
                // Degrade, don't fail: the coordinator absorbs this
                // worker's share of the queue.
                guard.note_serial_fallback();
            }
        }
        drain();
    });
    let mut out = Vec::with_capacity(slots.len());
    let mut cancelled = false;
    for slot in slots {
        match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(Ok(v)) => out.push(v),
            // Sibling-abort echoes read as Cancelled; keep scanning for the
            // root cause and report Cancelled only when nothing else failed.
            Some(Err(PlanError::Exec(ExecError::Cancelled))) => cancelled = true,
            Some(Err(e)) => return Err(e),
            // Unclaimed after every worker stopped on an error elsewhere.
            None => cancelled = true,
        }
    }
    if cancelled {
        return Err(PlanError::Exec(ExecError::Cancelled));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::GuardLimits;

    fn unlimited() -> Guard {
        Guard::new(&GuardLimits::none())
    }

    #[test]
    fn ranges_tile_the_input_exactly() {
        for rows in [0usize, 1, 7, 100, 4096, 4097, 100_000] {
            for workers in [1usize, 2, 4, 16] {
                let ranges = morsel_ranges(rows, workers);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect, "{rows} rows / {workers} workers");
                    assert!(r.end >= r.start);
                    assert!(r.len() <= MORSEL_ROWS);
                    expect = r.end;
                }
                assert_eq!(expect, rows);
            }
        }
        // Zero rows still produce one (empty) morsel for the merge path.
        assert_eq!(morsel_ranges(0, 4), vec![0..0]);
        // Enough work for skew absorption: several morsels per worker.
        assert!(morsel_ranges(100_000, 4).len() >= 16);
    }

    #[test]
    fn results_merge_in_morsel_order() {
        let guard = unlimited();
        let options = ExecOptions::parallel(4);
        let rows = 50_000;
        let out = run_morsels(rows, rows, &options, &guard, |range| {
            Ok::<_, PlanError>(range.clone())
        })
        .unwrap();
        // Concatenated ranges reproduce 0..rows in order regardless of
        // which worker ran which morsel.
        let mut expect = 0;
        for r in &out {
            assert_eq!(r.start, expect);
            expect = r.end;
        }
        assert_eq!(expect, rows);
        assert_eq!(out.len(), morsel_ranges(rows, 4).len());
    }

    #[test]
    fn below_threshold_runs_serial_in_one_range() {
        let guard = unlimited();
        let options = ExecOptions::parallel(4);
        let out = run_morsels(100, 100, &options, &guard, |range| {
            Ok::<_, PlanError>(range.clone())
        })
        .unwrap();
        assert_eq!(out, vec![0..100], "one serial call covers everything");
    }

    #[test]
    fn first_real_error_wins_over_cancelled_echoes() {
        let guard = unlimited();
        let options = ExecOptions::parallel(2);
        let rows = 20_000;
        let err = run_morsels(rows, rows, &options, &guard, |range| {
            if range.start == 0 {
                // Sibling morsels see the aborted guard as Cancelled.
                Err::<(), _>(PlanError::Exec(ExecError::MemoryBudgetExceeded {
                    budget_rows: 1,
                }))
            } else {
                guard.check()?;
                Ok(())
            }
        })
        .unwrap_err();
        assert!(
            matches!(err, PlanError::Exec(ExecError::MemoryBudgetExceeded { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn worker_panics_are_contained() {
        let metrics = std::sync::Arc::new(crate::guard::GuardMetrics::new());
        let guard = unlimited().with_metrics(std::sync::Arc::clone(&metrics));
        let options = ExecOptions::parallel(4);
        let rows = 20_000;
        let err = run_morsels(rows, rows, &options, &guard, |range| {
            if range.start == 0 {
                panic!("morsel worker exploded");
            }
            guard.check()?;
            Ok::<(), _>(())
        })
        .unwrap_err();
        assert!(
            matches!(&err, PlanError::Exec(ExecError::WorkerPanic(msg)) if msg.contains("exploded")),
            "{err:?}"
        );
        assert!(metrics.stats().panics_contained > 0);
    }
}
