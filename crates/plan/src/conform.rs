//! Conformance of plans to an access schema (Section 2 / Lemma 3.8).
//!
//! A plan `ξ` *conforms to* `A` when
//!
//! 1. every `fetch(X ∈ S, R, Y)` is justified by a constraint
//!    `R(X → Y', N) ∈ A` with `Y ⊆ X ∪ Y'`, and
//! 2. there is a constant `N_ξ` such that `|D_ξ| ≤ N_ξ` on every `D |= A` —
//!    equivalently, the query expressed by every fetch's input sub-plan has
//!    bounded output under `A`.
//!
//! Condition 2 is the expensive one: it reduces to `BOP`, which is
//! coNP-complete for positive plans and undecidable once set difference is
//! involved (Theorem 3.4).  The checker therefore returns a three-valued
//! answer and takes a budget.

use crate::node::{PlanNode, QueryPlan};
use crate::to_query::node_to_ucq;
use crate::Result;
use bqr_data::{AccessSchema, DatabaseSchema};
use bqr_query::bounded_output::{ucq_output, OutputBound};
use bqr_query::{Budget, QueryError, UnionQuery, ViewSet};

/// Outcome of a conformance check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Conformance {
    /// The plan conforms; `fetch_bound` is an upper bound on `|D_ξ|` over all
    /// instances satisfying the access schema.
    Conforms { fetch_bound: usize },
    /// The plan does not conform, with a human-readable reason.
    Violation(String),
    /// Conformance could not be decided within the supported fragment /
    /// budget (e.g. a fetch driven by a sub-plan with set difference).
    Unknown(String),
}

impl Conformance {
    /// Does the plan (provably) conform?
    pub fn is_conforming(&self) -> bool {
        matches!(self, Conformance::Conforms { .. })
    }
}

/// Check whether `plan` conforms to `access`.
///
/// `views` is needed to unfold view atoms inside fetch inputs before the
/// bounded-output analysis; CQ-definable views are unfolded exactly, other
/// views make the answer `Unknown`.
pub fn check_conformance(
    plan: &QueryPlan,
    access: &AccessSchema,
    schema: &DatabaseSchema,
    views: &ViewSet,
    budget: &Budget,
) -> Result<Conformance> {
    let mut total_bound: usize = 0;
    for fetch in plan.fetches() {
        let PlanNode::Fetch {
            input, constraint, ..
        } = fetch
        else {
            unreachable!("fetches() only returns fetch nodes")
        };
        // Condition (1): the constraint must belong to the access schema.
        if !access.constraints().any(|c| c == constraint) {
            return Ok(Conformance::Violation(format!(
                "fetch uses constraint {constraint} which is not in the access schema"
            )));
        }
        // Condition (2): the input sub-plan must have bounded output.
        match input_output_bound(input, access, schema, views, budget)? {
            BoundOutcome::Bounded(n) => {
                total_bound = total_bound.saturating_add(n.saturating_mul(constraint.n()));
            }
            BoundOutcome::Unbounded => {
                return Ok(Conformance::Violation(format!(
                    "the input of fetch[{constraint}] does not have bounded output under the access schema"
                )));
            }
            BoundOutcome::Unknown(reason) => return Ok(Conformance::Unknown(reason)),
        }
    }
    Ok(Conformance::Conforms {
        fetch_bound: total_bound,
    })
}

enum BoundOutcome {
    Bounded(usize),
    Unbounded,
    Unknown(String),
}

fn input_output_bound(
    input: &PlanNode,
    access: &AccessSchema,
    schema: &DatabaseSchema,
    views: &ViewSet,
    budget: &Budget,
) -> Result<BoundOutcome> {
    // Convert the sub-plan to the UCQ it expresses.  Plans with difference or
    // non-equality selections are outside the decidable fragment.
    let ucq = match node_to_ucq(input, schema, budget) {
        Ok(Some(ucq)) => ucq,
        Ok(None) => return Ok(BoundOutcome::Bounded(0)),
        Err(crate::PlanError::Query(QueryError::UnsupportedFragment(msg))) => {
            return Ok(BoundOutcome::Unknown(format!(
                "cannot decide bounded output of a non-positive fetch input: {msg}"
            )))
        }
        Err(e) => return Err(e),
    };
    // Unfold CQ views; other view kinds leave us in Unknown territory.
    let mut unfolded = Vec::with_capacity(ucq.len());
    for d in ucq.disjuncts() {
        match views.unfold_cq(d) {
            Ok(q) => unfolded.push(q),
            Err(QueryError::UnsupportedFragment(msg)) => {
                return Ok(BoundOutcome::Unknown(format!(
                    "fetch input uses a non-CQ view: {msg}"
                )))
            }
            Err(e) => return Err(e.into()),
        }
    }
    let ucq = UnionQuery::new(unfolded)?;
    match ucq_output(&ucq, access, schema, budget) {
        Ok(OutputBound::Bounded(n)) => Ok(BoundOutcome::Bounded(n)),
        Ok(OutputBound::Unbounded) => Ok(BoundOutcome::Unbounded),
        Err(QueryError::BudgetExceeded(what)) => Ok(BoundOutcome::Unknown(format!(
            "budget exceeded while {what}"
        ))),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{figure1_plan, Plan};
    use bqr_data::AccessConstraint;
    use bqr_query::parser::parse_cq;

    fn movie_schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[
            ("person", &["pid", "name", "affiliation"]),
            ("movie", &["mid", "mname", "studio", "release"]),
            ("rating", &["mid", "rank"]),
            ("like", &["pid", "id", "type"]),
        ])
        .unwrap()
    }

    fn phi1(n0: usize) -> AccessConstraint {
        AccessConstraint::new("movie", &["studio", "release"], &["mid"], n0).unwrap()
    }
    fn phi2() -> AccessConstraint {
        AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap()
    }
    fn v1_views() -> ViewSet {
        let mut views = ViewSet::empty();
        views
            .add_cq(
                "V1",
                parse_cq(
                    "V1(mid) :- person(xp, xn, 'NASA'), movie(mid, ym, z1, z2), like(xp, mid, 'movie')",
                )
                .unwrap(),
            )
            .unwrap();
        views
    }

    #[test]
    fn figure1_plan_conforms_with_2n0_bound() {
        // Example 2.2: ξ0 accesses at most 2·N0 tuples.
        let n0 = 100;
        let access = AccessSchema::new(vec![phi1(n0), phi2()]);
        let plan = figure1_plan(&phi1(n0), &phi2()).unwrap();
        let result = check_conformance(
            &plan,
            &access,
            &movie_schema(),
            &v1_views(),
            &Budget::generous(),
        )
        .unwrap();
        match result {
            Conformance::Conforms { fetch_bound } => {
                assert_eq!(fetch_bound, 2 * n0, "1·N0 from φ1 plus N0·1 from φ2");
            }
            other => panic!("expected conformance, got {other:?}"),
        }
    }

    #[test]
    fn fetch_with_foreign_constraint_violates() {
        let access = AccessSchema::new(vec![phi2()]);
        let plan = figure1_plan(&phi1(10), &phi2()).unwrap();
        let result = check_conformance(
            &plan,
            &access,
            &movie_schema(),
            &v1_views(),
            &Budget::generous(),
        )
        .unwrap();
        assert!(matches!(result, Conformance::Violation(_)));
        assert!(!result.is_conforming());
    }

    #[test]
    fn fetch_driven_by_unbounded_view_violates() {
        // Feeding the whole (unbounded) V1 into a fetch breaks condition (2):
        // |V1(D)| is not bounded under A0 (Example 3.3).
        let access = AccessSchema::new(vec![phi1(10), phi2()]);
        let plan = Plan::view("V1", 1).fetch(phi2(), vec![0]).build().unwrap();
        let result = check_conformance(
            &plan,
            &access,
            &movie_schema(),
            &v1_views(),
            &Budget::generous(),
        )
        .unwrap();
        assert!(matches!(result, Conformance::Violation(_)), "{result:?}");
    }

    #[test]
    fn fetch_driven_by_constant_conforms() {
        let access = AccessSchema::new(vec![phi2()]);
        let plan = Plan::constant(vec![42])
            .fetch(phi2(), vec![0])
            .build()
            .unwrap();
        let result = check_conformance(
            &plan,
            &access,
            &movie_schema(),
            &ViewSet::empty(),
            &Budget::generous(),
        )
        .unwrap();
        assert_eq!(result, Conformance::Conforms { fetch_bound: 1 });
    }

    #[test]
    fn plan_without_fetches_trivially_conforms() {
        let access = AccessSchema::empty();
        let plan = Plan::view("V1", 1).project(vec![0]).build().unwrap();
        let result = check_conformance(
            &plan,
            &access,
            &movie_schema(),
            &v1_views(),
            &Budget::generous(),
        )
        .unwrap();
        assert_eq!(result, Conformance::Conforms { fetch_bound: 0 });
        assert!(result.is_conforming());
    }

    #[test]
    fn difference_inside_fetch_input_is_unknown() {
        let access = AccessSchema::new(vec![phi2()]);
        let input = Plan::constant(vec![1]).difference(Plan::constant(vec![2]));
        let plan = input.fetch(phi2(), vec![0]).build().unwrap();
        let result = check_conformance(
            &plan,
            &access,
            &movie_schema(),
            &ViewSet::empty(),
            &Budget::generous(),
        )
        .unwrap();
        assert!(matches!(result, Conformance::Unknown(_)), "{result:?}");
    }

    #[test]
    fn chained_fetches_accumulate_bounds() {
        // fetch movies for a constant key (≤ N0), then fetch their ratings
        // (≤ N0 · 1): total bound N0 + N0.
        let n0 = 7;
        let access = AccessSchema::new(vec![phi1(n0), phi2()]);
        let plan = Plan::constant(vec!["Universal", "2014"])
            .fetch(phi1(n0), vec![0, 1])
            .project(vec![2])
            .fetch(phi2(), vec![0])
            .build()
            .unwrap();
        let result = check_conformance(
            &plan,
            &access,
            &movie_schema(),
            &ViewSet::empty(),
            &Budget::generous(),
        )
        .unwrap();
        assert_eq!(
            result,
            Conformance::Conforms {
                fetch_bound: 2 * n0
            }
        );
    }
}
