//! Prepared plan execution: a process-wide pipeline cache and the
//! prepared-statement handle built on it.
//!
//! PR 3 compiles every plan into a flat [`Pipeline`], but a serving workload
//! re-executes the *same* plan against a *slowly changing* instance — the
//! paper's bounded-rewriting shape (decide once, construct the topped plan
//! once, answer many queries).  Recompiling per execution re-does view
//! resolution, snapshot interning and constant interning on every call.  This
//! module amortises it:
//!
//! * [`PipelineCache`] — a bounded, thread-safe map from
//!   `(`[`PlanFingerprint`]`, `[`ExecOptions`]`, `[`EpochVector`]`)` to
//!   compiled [`Pipeline`]s, with LRU eviction and observable hit / miss /
//!   invalidation / eviction counters;
//! * [`EpochVector`] — the data half of the key: the epochs of the base
//!   relations reachable through the plan's fetch constraints plus the
//!   epochs of the view extents the plan reads, together with a digest of
//!   the access schema (constraint *positions* are resolved at compile time,
//!   so a pipeline may only be re-used under a content-identical schema);
//! * [`PreparedPlan`] — the handle: fingerprints its plan once, re-validates
//!   the epoch vector on every [`execute`](PreparedPlan::execute), and
//!   recompiles **only** when the key misses (a mutated relation or view
//!   presents fresh epochs; the stale entry is swept and counted as an
//!   invalidation on the next insert).
//!
//! Correctness contract, held by `tests/prepared_cache.rs`: a cached
//! execution is **bit-identical** — answer tuples *and* [`FetchStats`] — to
//! compiling a fresh [`Pipeline`] at that moment.  This falls out of the
//! design: epochs are globally unique stamps (equal epochs ⟹ equal
//! contents), compilation is a pure function of `(plan, schema contents,
//! extent contents)` up to the shared value interner (append-only, so ids
//! never change meaning), and execution-time statistics are recorded per
//! run, never baked into the pipeline.
//!
//! [`FetchStats`]: bqr_data::FetchStats

use crate::exec::{ExecOptions, ExecOutput, Pipeline};
use crate::fingerprint::{fingerprint, PlanFingerprint};
use crate::node::{PlanNode, QueryPlan};
use crate::Result;
use bqr_data::{AccessSchema, IndexedDatabase};
use bqr_query::MaterializedViews;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The data half of a pipeline-cache key: every epoch the compiled pipeline
/// depends on, plus a digest of the access schema it resolved constraint
/// positions against.
///
/// Built by [`EpochVector::capture`] in `O(#relations + #views)` — this is
/// the whole point: re-validating a prepared plan costs a handful of map
/// lookups, never `O(|D|)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EpochVector {
    /// Digest of the access schema's constraint list (order and content).
    access: u64,
    /// Epochs of the plan's fetched base relations (sorted by name) followed
    /// by the epochs of its view extents (sorted by name).
    epochs: Vec<u64>,
}

impl EpochVector {
    /// Capture the current epochs of `base_relations` (out of `idb`) and
    /// `view_names` (out of `views`).  Returns `None` when a name cannot be
    /// resolved — compilation would fail for such a plan, and the caller
    /// should let [`Pipeline::compile`] surface that error uncached.
    pub fn capture(
        base_relations: &[String],
        view_names: &[String],
        idb: &IndexedDatabase,
        views: &MaterializedViews,
    ) -> Option<EpochVector> {
        let mut epochs = Vec::with_capacity(base_relations.len() + view_names.len());
        for name in base_relations {
            epochs.push(idb.database().relation(name)?.epoch());
        }
        for name in view_names {
            epochs.push(views.extent(name)?.epoch());
        }
        Some(EpochVector {
            access: access_schema_digest(idb.access_schema()),
            epochs,
        })
    }

    /// True when `self` strictly supersedes `older`: same access schema and
    /// shape, every epoch at least as new, and at least one strictly newer.
    /// Epochs are issued from one global monotone counter, so "newer stamp"
    /// means "later data version".  The invalidation sweep removes only
    /// superseded entries: an update invalidates its predecessor, while two
    /// *coexisting* instance versions (blue/green, or a retained old
    /// snapshot) keep their entries and stay warm side by side.
    fn supersedes(&self, older: &EpochVector) -> bool {
        self.access == older.access
            && self.epochs.len() == older.epochs.len()
            && self != older
            && self
                .epochs
                .iter()
                .zip(&older.epochs)
                .all(|(new, old)| new >= old)
    }
}

/// A content digest of an access schema's constraint list.  Pipelines store
/// constraint *positions*; two schemas with equal digests resolve every
/// constraint to the same position, so their pipelines are interchangeable.
/// (Process-local: the digest uses the std hasher and is not persisted.)
fn access_schema_digest(access: &AccessSchema) -> u64 {
    let mut h = DefaultHasher::new();
    for c in access.constraints() {
        c.relation().hash(&mut h);
        c.x().hash(&mut h);
        c.y().hash(&mut h);
        c.n().hash(&mut h);
    }
    h.finish()
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: PlanFingerprint,
    options: ExecOptions,
    epochs: EpochVector,
}

struct Entry {
    pipeline: Arc<Pipeline>,
    last_used: u64,
}

struct Inner {
    entries: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// A point-in-time snapshot of a cache's counters.
///
/// `lookups == hits + misses` always (the three are updated under one lock);
/// the concurrency stress test in `tests/prepared_cache.rs` asserts exactly
/// that reconciliation under contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a compile.
    pub misses: u64,
    /// Total lookups (`hits + misses`).
    pub lookups: u64,
    /// Entries dropped because a fresh epoch vector superseded them (the
    /// same plan, any options, strictly older epochs — see
    /// `EpochVector::supersedes`).
    pub invalidations: u64,
    /// Entries dropped by LRU pressure at capacity.
    pub evictions: u64,
}

/// A bounded, thread-safe cache of compiled [`Pipeline`]s keyed by
/// `(fingerprint, options, epoch vector)`.
///
/// One cache instance can safely serve any number of [`PreparedPlan`]s and
/// threads; [`PipelineCache::global`] is the process-wide default.
/// Compilation happens **outside** the cache lock (the same discipline as
/// the snapshot registry in `bqr-data`): a thread re-using a hot entry never
/// waits behind another thread's compile, and two threads racing to compile
/// the same key both succeed — the loser's pipeline is dropped in favour of
/// the registered one.
pub struct PipelineCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    lookups: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PipelineCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Default capacity of [`PipelineCache::global`]: generous for a serving
/// process (hundreds of distinct prepared statements), small enough that the
/// pinned view snapshots stay bounded.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

static GLOBAL: OnceLock<Arc<PipelineCache>> = OnceLock::new();

impl PipelineCache {
    /// A cache holding at most `capacity` compiled pipelines (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        PipelineCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide cache ([`DEFAULT_CACHE_CAPACITY`] entries), shared by
    /// every [`PreparedPlan::new`] handle.
    pub fn global() -> &'static Arc<PipelineCache> {
        GLOBAL.get_or_init(|| Arc::new(PipelineCache::new(DEFAULT_CACHE_CAPACITY)))
    }

    /// Maximum number of cached pipelines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The cache's map lock, recovering from poison: the map is consistent
    /// at every point a panic can escape a holder (all mutations complete
    /// before any call that could unwind), so a poisoned lock only means
    /// *some* thread panicked — the data is fine and serving must continue.
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of cached pipelines.
    pub fn len(&self) -> usize {
        self.lock_inner().entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counter values.  All counter writes happen under the cache's
    /// map lock; taking it here makes the snapshot consistent — in
    /// particular `lookups == hits + misses` holds in every snapshot, even
    /// one taken concurrently with a lookup in flight on another thread.
    pub fn stats(&self) -> CacheStats {
        let _consistent = self.lock_inner();
        CacheStats {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
            lookups: self.lookups.load(Ordering::SeqCst),
            invalidations: self.invalidations.load(Ordering::SeqCst),
            evictions: self.evictions.load(Ordering::SeqCst),
        }
    }

    /// Drop every entry (counters are retained).
    pub fn clear(&self) {
        self.lock_inner().entries.clear();
    }

    /// The cached pipeline for `key`, or `compile` it, register it, and sweep
    /// entries the fresh epochs invalidate.  Errors are never cached.
    fn get_or_compile(
        &self,
        key: CacheKey,
        compile: impl FnOnce() -> Result<Pipeline>,
    ) -> Result<Arc<Pipeline>> {
        {
            let mut inner = self.lock_inner();
            inner.tick += 1;
            let tick = inner.tick;
            self.lookups.fetch_add(1, Ordering::SeqCst);
            if let Some(entry) = inner.entries.get_mut(&key) {
                self.hits.fetch_add(1, Ordering::SeqCst);
                entry.last_used = tick;
                return Ok(Arc::clone(&entry.pipeline));
            }
            self.misses.fetch_add(1, Ordering::SeqCst);
        }
        // Compile unlocked — see the type-level docs.
        let pipeline = Arc::new(compile()?);
        let mut inner = self.lock_inner();
        // Failpoint inside the critical section: a Panic kind injected here
        // poisons this lock, which `lock_inner` must then recover from; an
        // Error kind verifies a failed registration is never cached.
        bqr_data::faults::check(bqr_data::faults::sites::CACHE_INSERT)?;
        if let Some(existing) = inner.entries.get(&key) {
            // Lost a benign compile race; share the registered pipeline.
            return Ok(Arc::clone(&existing.pipeline));
        }
        // Sweep entries this insert supersedes: same plan (any options —
        // options never change what a pipeline computes), strictly older
        // epochs.  That is the cache-level face of epoch invalidation.
        // Entries for a *coexisting* newer-or-incomparable version are kept,
        // so serving two live instance versions from one cache stays warm
        // on both sides instead of thrashing.
        let before = inner.entries.len();
        inner
            .entries
            .retain(|k, _| !(k.fingerprint == key.fingerprint && key.epochs.supersedes(&k.epochs)));
        let swept = (before - inner.entries.len()) as u64;
        if swept > 0 {
            self.invalidations.fetch_add(swept, Ordering::SeqCst);
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            key,
            Entry {
                pipeline: Arc::clone(&pipeline),
                last_used: tick,
            },
        );
        // LRU eviction at capacity.
        while inner.entries.len() > self.capacity {
            let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            inner.entries.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::SeqCst);
        }
        Ok(pipeline)
    }
}

/// A prepared plan: fingerprinted once, compiled on demand, re-validated by
/// epoch on every execution.
///
/// ```text
/// let prepared = PreparedPlan::new(plan);          // fingerprint once
/// prepared.execute(&idb, &views)?;                 // miss: compile + run
/// prepared.execute(&idb, &views)?;                 // hit: run only
/// /* mutate a relation the plan reads … rebuild idb/views … */
/// prepared.execute(&idb2, &views2)?;               // fresh epochs: recompile
/// ```
///
/// The handle is immutable and `Sync`; clone it freely or share it across
/// threads — all compiled state lives in the (shared) [`PipelineCache`].
#[derive(Debug, Clone)]
pub struct PreparedPlan {
    plan: QueryPlan,
    fingerprint: PlanFingerprint,
    /// Base relations reachable through the plan's fetch constraints
    /// (sorted, deduplicated) — the relations whose epochs gate re-use.
    base_relations: Vec<String>,
    /// Views the plan reads (sorted).
    views: Vec<String>,
    cache: Arc<PipelineCache>,
}

impl PreparedPlan {
    /// Prepare `plan` against the [global](PipelineCache::global) cache.
    pub fn new(plan: QueryPlan) -> Self {
        PreparedPlan::with_cache(plan, Arc::clone(PipelineCache::global()))
    }

    /// Prepare `plan` against a caller-owned cache (isolated counters; used
    /// by the tests and by embedders that want per-tenant budgets).
    pub fn with_cache(plan: QueryPlan, cache: Arc<PipelineCache>) -> Self {
        let fingerprint = fingerprint(&plan);
        let mut base_relations: Vec<String> = plan
            .fetches()
            .iter()
            .filter_map(|n| match n {
                PlanNode::Fetch { constraint, .. } => Some(constraint.relation().to_string()),
                _ => None,
            })
            .collect();
        base_relations.sort_unstable();
        base_relations.dedup();
        let mut views = plan.view_names();
        views.sort_unstable();
        PreparedPlan {
            plan,
            fingerprint,
            base_relations,
            views,
            cache,
        }
    }

    /// The prepared plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The plan's canonical structural fingerprint.
    pub fn fingerprint(&self) -> PlanFingerprint {
        self.fingerprint
    }

    /// The cache this handle compiles into.
    pub fn cache(&self) -> &PipelineCache {
        &self.cache
    }

    /// The pipeline this plan would execute with right now — from the cache
    /// when the epoch vector still matches, freshly compiled (and registered)
    /// otherwise.  Exposed for introspection ([`Pipeline::describe`]); the
    /// execution path uses it internally.
    pub fn pipeline(
        &self,
        idb: &IndexedDatabase,
        views: &MaterializedViews,
        options: &ExecOptions,
    ) -> Result<Arc<Pipeline>> {
        match EpochVector::capture(&self.base_relations, &self.views, idb, views) {
            Some(epochs) => self.cache.get_or_compile(
                CacheKey {
                    fingerprint: self.fingerprint,
                    // Guard limits are runtime-only: strip them so the same
                    // plan under different deadlines shares one pipeline.
                    options: options.cache_key(),
                    epochs,
                },
                || Pipeline::compile(&self.plan, idb, views),
            ),
            // An unresolvable view or relation: compile uncached so the
            // error surfaces exactly as it would without preparation.
            None => Pipeline::compile(&self.plan, idb, views).map(Arc::new),
        }
    }

    /// Execute serially (the prepared counterpart of [`crate::execute`]).
    pub fn execute(&self, idb: &IndexedDatabase, views: &MaterializedViews) -> Result<ExecOutput> {
        self.execute_with(idb, views, &ExecOptions::serial())
    }

    /// Execute under explicit [`ExecOptions`] (the prepared counterpart of
    /// [`crate::execute_with`]).  Re-validates the epoch vector, compiles on
    /// miss, and runs the pipeline; output is bit-identical (tuples and
    /// stats) to a fresh compile-and-execute.
    pub fn execute_with(
        &self,
        idb: &IndexedDatabase,
        views: &MaterializedViews,
        options: &ExecOptions,
    ) -> Result<ExecOutput> {
        self.pipeline(idb, views, options)?.execute(idb, options)
    }

    /// [`PreparedPlan::execute_with`] under an externally constructed
    /// [`Guard`](crate::guard::Guard) — the entry point for callers that
    /// share a cancellation token or engine-lifetime
    /// [`GuardMetrics`](crate::guard::GuardMetrics) across executions.
    pub fn execute_guarded(
        &self,
        idb: &IndexedDatabase,
        views: &MaterializedViews,
        options: &ExecOptions,
        guard: &crate::guard::Guard,
    ) -> Result<ExecOutput> {
        self.pipeline(idb, views, options)?
            .execute_guarded(idb, options, guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Plan;
    use crate::error::PlanError;
    use bqr_data::{tuple, AccessConstraint, Database, DatabaseSchema, Value};
    use bqr_query::parser::parse_cq;
    use bqr_query::ViewSet;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[("r", &["a", "b"]), ("s", &["b", "c"])]).unwrap()
    }

    fn constraint() -> AccessConstraint {
        AccessConstraint::new("r", &["a"], &["b"], 8).unwrap()
    }

    fn instance(extra: i64) -> (IndexedDatabase, MaterializedViews) {
        let mut db = Database::empty(schema());
        for i in 0..6i64 {
            db.insert("r", tuple![i % 3, i]).unwrap();
            db.insert("s", tuple![i, 10 + i]).unwrap();
        }
        if extra >= 0 {
            // A fresh r-tuple whose b-value joins with s (b ∈ 0..6), so the
            // mutation is visible in the answer, not just in the epochs.
            db.insert("r", tuple![0, 4 + extra % 2]).unwrap();
        }
        let mut views = ViewSet::empty();
        views
            .add_cq("S", parse_cq("S(x, y) :- s(x, y)").unwrap())
            .unwrap();
        let cache = views.materialize(&db).unwrap();
        let idb =
            IndexedDatabase::build(db, bqr_data::AccessSchema::new(vec![constraint()])).unwrap();
        (idb, cache)
    }

    fn plan() -> QueryPlan {
        Plan::constant(vec![Value::int(0)])
            .fetch(constraint(), vec![0])
            .join_eq(Plan::view("S", 2), &[(1, 0)])
            .project(vec![1, 3])
            .build()
            .unwrap()
    }

    #[test]
    fn warm_execution_skips_recompilation() {
        let cache = Arc::new(PipelineCache::new(8));
        let prepared = PreparedPlan::with_cache(plan(), Arc::clone(&cache));
        let (idb, views) = instance(-1);
        let fresh = crate::execute(&prepared.plan().clone(), &idb, &views).unwrap();
        let first = prepared.execute(&idb, &views).unwrap();
        let second = prepared.execute(&idb, &views).unwrap();
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 1, "{stats:?}");
        assert_eq!(stats.lookups, 2, "{stats:?}");
        assert_eq!(cache.len(), 1);
        // A structurally equal but separately constructed handle shares the
        // cached pipeline (fingerprints, not identities).
        let twin = PreparedPlan::with_cache(plan(), Arc::clone(&cache));
        assert_eq!(twin.fingerprint(), prepared.fingerprint());
        assert_eq!(twin.execute(&idb, &views).unwrap(), fresh);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn epoch_change_recompiles_and_invalidates() {
        let cache = Arc::new(PipelineCache::new(8));
        let prepared = PreparedPlan::with_cache(plan(), Arc::clone(&cache));
        let (idb, views) = instance(-1);
        let before = prepared.execute(&idb, &views).unwrap();

        // A mutated base relation: fresh epochs, fresh answer.
        let (idb2, views2) = instance(7);
        let after = prepared.execute(&idb2, &views2).unwrap();
        assert_ne!(before.tuples, after.tuples, "the extra tuple must show");
        assert_eq!(
            after,
            crate::execute(&prepared.plan().clone(), &idb2, &views2).unwrap()
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.invalidations, 1, "the stale entry was swept");
        assert_eq!(cache.len(), 1);

        // The old instance still executes correctly (its entry was swept, so
        // this is a recompile — never a stale answer).
        assert_eq!(prepared.execute(&idb, &views).unwrap(), before);
    }

    /// Two *coexisting* instance versions served from one cache: the newer
    /// version's insert sweeps its predecessor once (that is the update
    /// semantics), but re-preparing the older version does not sweep the
    /// newer one — after one recompile each, both stay resident and warm,
    /// with no thrashing.
    #[test]
    fn coexisting_versions_stay_warm() {
        let cache = Arc::new(PipelineCache::new(8));
        let prepared = PreparedPlan::with_cache(plan(), Arc::clone(&cache));
        let (idb1, views1) = instance(-1);
        let (idb2, views2) = instance(7); // built later: strictly newer epochs
        let a = prepared.execute(&idb1, &views1).unwrap();
        let b = prepared.execute(&idb2, &views2).unwrap();
        assert_eq!(cache.stats().invalidations, 1, "v2 superseded v1");
        // v1 is still being served elsewhere: one recompile brings it back,
        // and it must NOT sweep v2 (older epochs never supersede newer).
        assert_eq!(prepared.execute(&idb1, &views1).unwrap(), a);
        let misses = cache.stats().misses;
        assert_eq!(misses, 3);
        for _ in 0..3 {
            assert_eq!(prepared.execute(&idb1, &views1).unwrap(), a);
            assert_eq!(prepared.execute(&idb2, &views2).unwrap(), b);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, misses, "both versions warm, no thrash");
        assert_eq!(stats.invalidations, 1, "no further sweeps");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn options_are_part_of_the_key() {
        let cache = Arc::new(PipelineCache::new(8));
        let prepared = PreparedPlan::with_cache(plan(), Arc::clone(&cache));
        let (idb, views) = instance(-1);
        let serial = prepared
            .execute_with(&idb, &views, &ExecOptions::serial())
            .unwrap();
        let parallel = prepared
            .execute_with(&idb, &views, &ExecOptions::parallel(4))
            .unwrap();
        assert_eq!(serial, parallel, "options never change the output");
        assert_eq!(cache.stats().misses, 2, "distinct keys per options");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let cache = Arc::new(PipelineCache::new(2));
        let (idb, views) = instance(-1);
        let plans: Vec<PreparedPlan> = (0..3i64)
            .map(|i| {
                PreparedPlan::with_cache(
                    Plan::view("S", 2).select_eq_const(0, i).build().unwrap(),
                    Arc::clone(&cache),
                )
            })
            .collect();
        for p in &plans {
            p.execute(&idb, &views).unwrap();
        }
        assert_eq!(cache.len(), 2, "capacity bound holds");
        assert_eq!(cache.stats().evictions, 1);
        // The evicted (least recently used) entry was plan 0: executing it
        // again misses; plan 2 still hits.
        let misses = cache.stats().misses;
        plans[2].execute(&idb, &views).unwrap();
        assert_eq!(cache.stats().misses, misses, "plan 2 was resident");
        plans[0].execute(&idb, &views).unwrap();
        assert_eq!(cache.stats().misses, misses + 1, "plan 0 was evicted");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 2);
    }

    #[test]
    fn unresolvable_names_error_like_an_unprepared_compile() {
        let cache = Arc::new(PipelineCache::new(8));
        let (idb, views) = instance(-1);
        let ghost = PreparedPlan::with_cache(
            Plan::view("NoSuchView", 1).build().unwrap(),
            Arc::clone(&cache),
        );
        assert!(matches!(
            ghost.execute(&idb, &views),
            Err(PlanError::UnknownView(_))
        ));
        assert!(cache.is_empty(), "errors are never cached");
        let foreign = AccessConstraint::new("s", &["b"], &["c"], 4).unwrap();
        let bad = PreparedPlan::with_cache(
            Plan::constant(vec![Value::int(1)])
                .fetch(foreign, vec![0])
                .build()
                .unwrap(),
            Arc::clone(&cache),
        );
        assert!(matches!(
            bad.execute(&idb, &views),
            Err(PlanError::ConstraintNotInSchema(_))
        ));
        assert!(cache.is_empty());
    }

    #[test]
    fn global_cache_is_shared() {
        let a = PreparedPlan::new(plan());
        let b = PreparedPlan::new(plan());
        assert!(Arc::ptr_eq(&a.cache, &b.cache));
        let (idb, views) = instance(-1);
        let hits = a.cache().stats().hits;
        a.execute(&idb, &views).unwrap();
        b.execute(&idb, &views).unwrap();
        assert!(b.cache().stats().hits > hits, "handles share entries");
    }
}
