//! # bqr-plan — bounded query plans
//!
//! Query plans are the operational side of bounded rewriting (Section 2 of
//! the paper): a plan `ξ(V, R)` is a tree whose leaves are constants and
//! cached views, whose only access to the base data is the `fetch(X ∈ S, R,
//! Y)` operator backed by an access constraint, and whose internal nodes are
//! the relational operators `π, σ, ×, ∪, \, ρ`.
//!
//! * [`PlanNode`] / [`QueryPlan`] — the tree representation, size measure,
//!   Fig.-1-style pretty printing and the CQ/UCQ/∃FO+/FO plan classification;
//! * [`exec`] — executing a plan over an [`IndexedDatabase`] plus
//!   materialised views, with [`FetchStats`] accounting of `|D_ξ|`: plans are
//!   compiled to a flat operator [`Pipeline`] over interned ids whose hot
//!   operators run as vectorised batch kernels (selection vectors, batched
//!   index probes, hash joins for the σ-over-× pattern), optionally spread
//!   over morsel-driven worker threads via [`ExecOptions`]; the original
//!   tree-walking interpreter is retained as [`exec::reference`] for
//!   differential testing;
//! * [`fingerprint`] — canonical structural [`PlanFingerprint`]s, the plan
//!   half of the prepared-execution cache key;
//! * [`prepared`] — the prepared-statement layer: a process-wide
//!   [`PipelineCache`] keyed by `(fingerprint, options, epoch vector)` and
//!   the [`PreparedPlan`] handle that re-validates epochs per execution and
//!   recompiles only on invalidation;
//! * [`to_query`] — the query `Q_ξ` expressed by a plan (unfolding into the
//!   calculus), used by the equivalence checks of `bqr-core`;
//! * [`conform`] — conformance to an access schema: every fetch is justified
//!   by a constraint and driven by a bounded input (Lemma 3.8);
//! * [`guard`] — runtime guardrails: cooperative deadlines, cancellation
//!   tokens, intermediate-row (memory) budgets and fetched-tuple caps
//!   checked inside the hot operator loops, surfacing as typed
//!   [`ExecError`]s, with panic containment across shard workers.

// The serving path must degrade with typed errors, never unwind: unwrap is
// flagged crate-wide (tests opt back in locally).
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod builder;
pub mod conform;
pub mod error;
pub mod exec;
pub mod fingerprint;
pub mod guard;
mod kernel;
mod morsel;
pub mod node;
pub mod prepared;
pub mod to_query;

pub use conform::{check_conformance, Conformance};
pub use error::{ExecError, PlanError};
pub use exec::{execute, execute_with, ExecOptions, ExecOutput, Pipeline};
pub use fingerprint::{fingerprint as plan_fingerprint, PlanFingerprint};
pub use guard::{panic_message, CancellationToken, Guard, GuardLimits, GuardMetrics, GuardStats};
pub use node::{PlanLanguage, PlanNode, QueryPlan, SelectCondition};
pub use prepared::{CacheStats, EpochVector, PipelineCache, PreparedPlan};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PlanError>;
