//! The serving front: admission control, read coalescing, write batching.

use crate::error::{ServerError, ServerResult};
use crate::executor::Executor;
use crate::slot::{ready, slot, Pending, Promise};
use crate::stats::{Metrics, ServerStats};
use bqr_data::{faults, Database};
use bqr_engine::{Engine, IntoQuery};
use bqr_plan::{ExecOptions, ExecOutput};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Tuning knobs for a [`Server`].  The defaults suit the test and bench
/// workloads; production embedders size them from their own SLOs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Semaphore-style cap on requests (reads and writes) admitted and not
    /// yet fulfilled.  Beyond it, submission fails with
    /// [`ServerError::Overloaded`].
    pub max_concurrent: usize,
    /// Cap on the summed *cost class* of admitted reads.  A statement's
    /// cost class is its fetch bound `|D_ξ|` — the paper's data-independent
    /// bound on how many tuples the plan can touch — so this budget caps
    /// worst-case outstanding I/O, not request count.
    pub max_outstanding_cost: usize,
    /// How long a batch leader waits for same-statement stragglers before
    /// flushing.  Zero flushes immediately (coalescing then only catches
    /// requests that queued while a flush was already in flight).
    pub batch_window: Duration,
    /// Worker threads in the hand-rolled executor pool.
    pub workers: usize,
    /// Back-off hint attached to [`ServerError::Overloaded`].
    pub retry_after_ms: u64,
    /// Execution options (and through them the PR 6 guard limits) applied
    /// to every admitted read: an admitted query still trips deadlines and
    /// row/fetch budgets cooperatively.
    pub options: ExecOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_concurrent: 1024,
            max_outstanding_cost: 1 << 20,
            batch_window: Duration::from_micros(200),
            workers: 4,
            retry_after_ms: 1,
            options: ExecOptions::serial(),
        }
    }
}

/// A served answer: the engine's exact [`ExecOutput`] — tuples *and*
/// [`FetchStats`](bqr_data::FetchStats), bit-identical to an unbatched
/// [`Session`](bqr_engine::Session) execution of the same statement on the
/// same version — plus how many requests shared the flush that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The answer tuples and I/O accounting.
    pub output: ExecOutput,
    /// Number of requests served by the same coalesced execution (≥ 1).
    pub coalesced: usize,
}

struct ReadRequest {
    promise: Promise<Response>,
    cost: usize,
    start: Instant,
}

struct ReadQueue {
    name: Arc<str>,
    pending: Mutex<Vec<ReadRequest>>,
}

type WriteOp = Box<dyn FnOnce(&mut Database) -> bqr_data::Result<()> + Send + 'static>;

struct WriteRequest {
    op: WriteOp,
    promise: Promise<()>,
    start: Instant,
}

struct Inner {
    engine: Arc<Engine>,
    config: ServerConfig,
    executor: Executor,
    /// Per-statement coalescing queues, created on first submission.
    reads: Mutex<HashMap<Arc<str>, Arc<ReadQueue>>>,
    /// Per-statement admission cost classes (the plan's fetch bound).
    costs: Mutex<HashMap<String, usize>>,
    writes: Mutex<Vec<WriteRequest>>,
    in_flight: AtomicUsize,
    outstanding_cost: AtomicUsize,
    draining: AtomicBool,
    metrics: Metrics,
}

/// An async, batched serving front over one [`Engine`].
///
/// The server multiplexes any number of logical client sessions over the
/// engine's epoch-pinned snapshot machinery: reads for the same prepared
/// statement arriving within [`ServerConfig::batch_window`] are coalesced
/// into **one** pipeline execution (whose fetch operators already dedup
/// probe keys and drive [`InternedAccessIndex::probe_batch`]
/// (bqr_data::InternedAccessIndex::probe_batch) in one vectorised pass), and
/// every coalesced request receives that execution's exact tuples and
/// `FetchStats`.  Writes are coalesced into one
/// [`Engine::mutate_batch`] publish.  Admission control rejects over-budget
/// traffic with a typed [`ServerError::Overloaded`] before any work queues.
///
/// Entry points are dual sync/async: [`Server::execute`]/[`Server::mutate`]
/// block, [`Server::submit`]/[`Server::submit_mutate`] return a
/// [`Pending`] future servable by the built-in pool or any foreign
/// executor.
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Wrap `engine` with the default [`ServerConfig`].
    pub fn new(engine: impl Into<Arc<Engine>>) -> Self {
        Server::with_config(engine, ServerConfig::default())
    }

    /// Wrap `engine` with an explicit configuration.
    pub fn with_config(engine: impl Into<Arc<Engine>>, config: ServerConfig) -> Self {
        let inner = Arc::new(Inner {
            engine: engine.into(),
            executor: Executor::new(config.workers),
            config,
            reads: Mutex::new(HashMap::new()),
            costs: Mutex::new(HashMap::new()),
            writes: Mutex::new(Vec::new()),
            in_flight: AtomicUsize::new(0),
            outstanding_cost: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            metrics: Metrics::default(),
        });
        Server { inner }
    }

    /// The wrapped engine (for direct sessions, statistics, attachment).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Current serving statistics (counters + latency percentiles).
    pub fn stats(&self) -> ServerStats {
        self.inner.metrics.snapshot()
    }

    /// Analyse and prepare `query` under `name` on the engine, and register
    /// its admission cost class (the plan's fetch bound `|D_ξ|`).  Returns
    /// the cost class.
    pub fn prepare<Q: IntoQuery>(&self, name: &str, query: Q) -> ServerResult<usize> {
        let analysis = self.inner.engine.analyze(query)?;
        self.inner.engine.prepare_from(name, &analysis)?;
        let cost = analysis.fetch_bound().unwrap_or(1).max(1);
        self.inner
            .costs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), cost);
        Ok(cost)
    }

    /// Register an admission cost class for a statement already prepared on
    /// the engine (re-deriving its fetch bound from its query).  Returns
    /// the cost class.  Statements submitted without prior registration are
    /// registered lazily on first use.
    pub fn register(&self, name: &str) -> ServerResult<usize> {
        let statement = self
            .inner
            .engine
            .statement(name)
            .map_err(|_| ServerError::UnknownStatement(name.to_string()))?;
        let analysis = self.inner.engine.analyze(statement.query().clone())?;
        let cost = analysis.fetch_bound().unwrap_or(1).max(1);
        self.inner
            .costs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), cost);
        Ok(cost)
    }

    /// The registered admission cost class of `name`, if any.
    pub fn cost_class(&self, name: &str) -> Option<usize> {
        self.inner
            .costs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .copied()
    }

    /// Submit a read of prepared statement `name` (async entry).  Admission
    /// happens now — an overloaded or draining server yields an
    /// already-fulfilled typed error — and the answer arrives through the
    /// returned [`Pending`].
    pub fn submit(&self, name: &str) -> Pending<Response> {
        let inner = &self.inner;
        if inner.draining.load(Ordering::Acquire) {
            return ready(Err(ServerError::ShuttingDown));
        }
        match accept_gate() {
            Ok(()) => {}
            Err(e) => {
                inner.metrics.shed.fetch_add(1, Ordering::Relaxed);
                inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                return ready(Err(e));
            }
        }
        let cost = match self.cost_class(name) {
            Some(cost) => cost,
            None => match self.register(name) {
                Ok(cost) => cost,
                Err(e) => return ready(Err(e)),
            },
        };
        if let Err(e) = inner.admit(cost) {
            return ready(Err(e));
        }
        let (promise, pending) = slot();
        let queue = inner.read_queue(name);
        let leader = {
            let mut pending_reads = queue.pending.lock().unwrap_or_else(PoisonError::into_inner);
            pending_reads.push(ReadRequest {
                promise,
                cost,
                start: Instant::now(),
            });
            pending_reads.len() == 1
        };
        if leader {
            let inner = Arc::clone(&self.inner);
            let queue_for_task = Arc::clone(&queue);
            self.inner.executor.spawn(async move {
                flush_reads(&inner, &queue_for_task);
            });
        }
        pending
    }

    /// Execute prepared statement `name` (sync entry): submit and block.
    pub fn execute(&self, name: &str) -> ServerResult<Response> {
        self.submit(name).wait()
    }

    /// Submit a mutation closure (async entry).  The closure is applied —
    /// together with every other write arriving within the batch window —
    /// in a single [`Engine::mutate_batch`] version publish; its slot in
    /// the batch is isolated (an erroring or panicking neighbour cannot
    /// fail it) and its effect is visible to every read admitted after the
    /// returned [`Pending`] resolves.
    pub fn submit_mutate<F>(&self, op: F) -> Pending<()>
    where
        F: FnOnce(&mut Database) -> bqr_data::Result<()> + Send + 'static,
    {
        let inner = &self.inner;
        if inner.draining.load(Ordering::Acquire) {
            return ready(Err(ServerError::ShuttingDown));
        }
        match accept_gate() {
            Ok(()) => {}
            Err(e) => {
                inner.metrics.shed.fetch_add(1, Ordering::Relaxed);
                inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                return ready(Err(e));
            }
        }
        if let Err(e) = inner.admit(0) {
            return ready(Err(e));
        }
        let (promise, pending) = slot();
        let leader = {
            let mut writes = inner.writes.lock().unwrap_or_else(PoisonError::into_inner);
            writes.push(WriteRequest {
                op: Box::new(op),
                promise,
                start: Instant::now(),
            });
            writes.len() == 1
        };
        if leader {
            let inner = Arc::clone(&self.inner);
            self.inner.executor.spawn(async move {
                flush_writes(&inner);
            });
        }
        pending
    }

    /// Apply a mutation closure (sync entry): submit and block.
    pub fn mutate<F>(&self, op: F) -> ServerResult<()>
    where
        F: FnOnce(&mut Database) -> bqr_data::Result<()> + Send + 'static,
    {
        self.submit_mutate(op).wait()
    }

    /// Block until every admitted request has been fulfilled.
    pub fn drain(&self) {
        while self.inner.in_flight.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Refuse new work, finish in-flight flushes, then fail anything
        // still queued with a typed error — never leave a waiter hanging.
        self.inner.draining.store(true, Ordering::Release);
        self.inner.executor.shutdown();
        let queues: Vec<Arc<ReadQueue>> = self
            .inner
            .reads
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .cloned()
            .collect();
        for queue in queues {
            let orphans =
                std::mem::take(&mut *queue.pending.lock().unwrap_or_else(PoisonError::into_inner));
            for req in orphans {
                self.inner.release(req.cost);
                req.promise.fulfil(Err(ServerError::ShuttingDown));
            }
        }
        let writes = std::mem::take(
            &mut *self
                .inner
                .writes
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for req in writes {
            self.inner.release(0);
            req.promise.fulfil(Err(ServerError::ShuttingDown));
        }
    }
}

/// The `SERVER_ACCEPT` failpoint, panic-contained: an injected fault sheds
/// the submission with a typed error before anything queues.
fn accept_gate() -> ServerResult<()> {
    match catch_unwind(AssertUnwindSafe(|| {
        faults::check(faults::sites::SERVER_ACCEPT)
    })) {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(e.into()),
        Err(_) => Err(ServerError::Internal(
            "panic injected at server.accept".to_string(),
        )),
    }
}

impl Inner {
    /// Admission control: a request slot plus `cost` units of fetch budget,
    /// both released on fulfilment.  Exact under concurrency (fetch-add
    /// then check): the caps are never exceeded by admitted requests.
    fn admit(&self, cost: usize) -> ServerResult<()> {
        let slots = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if slots >= self.config.max_concurrent {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServerError::Overloaded {
                retry_after_ms: self.config.retry_after_ms,
            });
        }
        let used = self.outstanding_cost.fetch_add(cost, Ordering::AcqRel);
        if used + cost > self.config.max_outstanding_cost {
            self.outstanding_cost.fetch_sub(cost, Ordering::AcqRel);
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServerError::Overloaded {
                retry_after_ms: self.config.retry_after_ms,
            });
        }
        self.metrics.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn release(&self, cost: usize) {
        self.outstanding_cost.fetch_sub(cost, Ordering::AcqRel);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    fn read_queue(&self, name: &str) -> Arc<ReadQueue> {
        let mut reads = self.reads.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(queue) = reads.get(name) {
            return Arc::clone(queue);
        }
        let name: Arc<str> = Arc::from(name);
        let queue = Arc::new(ReadQueue {
            name: Arc::clone(&name),
            pending: Mutex::new(Vec::new()),
        });
        reads.insert(name, Arc::clone(&queue));
        queue
    }

    fn finish_read(&self, req: ReadRequest, result: ServerResult<Response>) {
        self.release(req.cost);
        self.metrics.completed.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .record_latency(req.start.elapsed().as_micros() as u64);
        req.promise.fulfil(result);
    }

    fn finish_write(&self, promise: Promise<()>, start: Instant, result: ServerResult<()>) {
        self.release(0);
        self.metrics.completed.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .record_latency(start.elapsed().as_micros() as u64);
        promise.fulfil(result);
    }
}

/// Flush one read batch: wait out the window, drain the queue, execute the
/// statement **once**, and hand every coalesced request the same exact
/// `ExecOutput`.  The execution is deterministic (prepared statements are
/// parameterless and the session pins one version), so each request's
/// tuples and `FetchStats` are bit-identical to what its own unbatched
/// `Session` execution on that version would produce — the differential
/// stress test holds the server to exactly that.
fn flush_reads(inner: &Inner, queue: &ReadQueue) {
    if !inner.config.batch_window.is_zero() {
        std::thread::sleep(inner.config.batch_window);
    }
    let batch = std::mem::take(&mut *queue.pending.lock().unwrap_or_else(PoisonError::into_inner));
    if batch.is_empty() {
        return;
    }
    inner.metrics.read_batches.fetch_add(1, Ordering::Relaxed);
    if batch.len() > 1 {
        inner
            .metrics
            .coalesced_reads
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
    }
    match catch_unwind(AssertUnwindSafe(|| {
        faults::check(faults::sites::BATCH_FLUSH)
    })) {
        Ok(Ok(())) => {
            let coalesced = batch.len();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                inner
                    .engine
                    .session()
                    .execute_with(&queue.name, &inner.config.options)
            }));
            match outcome {
                Ok(Ok(output)) => {
                    for req in batch {
                        inner.finish_read(
                            req,
                            Ok(Response {
                                output: output.clone(),
                                coalesced,
                            }),
                        );
                    }
                }
                Ok(Err(e)) => {
                    for req in batch {
                        inner.finish_read(req, Err(ServerError::Engine(e.clone())));
                    }
                }
                Err(_) => {
                    for req in batch {
                        inner.finish_read(
                            req,
                            Err(ServerError::Internal(
                                "panic while serving a read batch".to_string(),
                            )),
                        );
                    }
                }
            }
        }
        // Injected flush fault: degrade the batch to serialised per-request
        // execution.  Every request is still answered (exactly once) by its
        // own full-fidelity session execution.
        Ok(Err(_)) => {
            for req in batch {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    inner
                        .engine
                        .session()
                        .execute_with(&queue.name, &inner.config.options)
                }));
                let result = match outcome {
                    Ok(Ok(output)) => Ok(Response {
                        output,
                        coalesced: 1,
                    }),
                    Ok(Err(e)) => Err(ServerError::Engine(e)),
                    Err(_) => Err(ServerError::Internal(
                        "panic while serving a serialised read".to_string(),
                    )),
                };
                inner.finish_read(req, result);
            }
        }
        // Injected flush panic: shed the whole batch with typed errors.
        Err(_) => {
            inner
                .metrics
                .shed
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            for req in batch {
                inner.finish_read(
                    req,
                    Err(ServerError::Internal(
                        "panic injected at server.batch.flush".to_string(),
                    )),
                );
            }
        }
    }
}

/// Flush one write batch through [`Engine::mutate_batch`]: one delta-tracked
/// version publish for the whole burst, per-closure isolation inside it.
fn flush_writes(inner: &Inner) {
    if !inner.config.batch_window.is_zero() {
        std::thread::sleep(inner.config.batch_window);
    }
    let batch = std::mem::take(&mut *inner.writes.lock().unwrap_or_else(PoisonError::into_inner));
    if batch.is_empty() {
        return;
    }
    inner.metrics.write_batches.fetch_add(1, Ordering::Relaxed);
    match catch_unwind(AssertUnwindSafe(|| {
        faults::check(faults::sites::BATCH_FLUSH)
    })) {
        Ok(Ok(())) => {
            let mut ops = Vec::with_capacity(batch.len());
            let mut waiters = Vec::with_capacity(batch.len());
            for req in batch {
                ops.push(req.op);
                waiters.push((req.promise, req.start));
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| inner.engine.mutate_batch(ops)));
            match outcome {
                Ok(Ok(results)) => {
                    debug_assert_eq!(results.len(), waiters.len());
                    for ((promise, start), result) in waiters.into_iter().zip(results) {
                        let result = match result {
                            Ok(()) => {
                                inner.metrics.writes.fetch_add(1, Ordering::Relaxed);
                                Ok(())
                            }
                            Err(e) => Err(ServerError::Engine(e)),
                        };
                        inner.finish_write(promise, start, result);
                    }
                }
                Ok(Err(e)) => {
                    // Version construction failed: nothing was published,
                    // every write in the batch reports the same typed error.
                    for (promise, start) in waiters {
                        inner.finish_write(promise, start, Err(ServerError::Engine(e.clone())));
                    }
                }
                Err(_) => {
                    for (promise, start) in waiters {
                        inner.finish_write(
                            promise,
                            start,
                            Err(ServerError::Internal(
                                "panic while publishing a write batch".to_string(),
                            )),
                        );
                    }
                }
            }
        }
        // Injected flush fault: serialise — each closure becomes its own
        // `Engine::mutate`, applied exactly once, in arrival order.
        Ok(Err(_)) => {
            for req in batch {
                let WriteRequest { op, promise, start } = req;
                let outcome = catch_unwind(AssertUnwindSafe(|| inner.engine.mutate(op)));
                let result = match outcome {
                    Ok(Ok(())) => {
                        inner.metrics.writes.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    }
                    Ok(Err(e)) => Err(ServerError::Engine(e)),
                    Err(_) => Err(ServerError::Internal(
                        "panic while applying a serialised write".to_string(),
                    )),
                };
                inner.finish_write(promise, start, result);
            }
        }
        // Injected flush panic: shed the batch with typed errors; nothing
        // was applied (the engine never saw the closures).
        Err(_) => {
            inner
                .metrics
                .shed
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            for req in batch {
                inner.finish_write(
                    req.promise,
                    req.start,
                    Err(ServerError::Internal(
                        "panic injected at server.batch.flush".to_string(),
                    )),
                );
            }
        }
    }
}
