//! Serving-side counters and the latency reservoir behind
//! [`Server::stats`](crate::Server::stats).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Keep the most recent `LATENCY_CAP` request latencies (a ring, so a
/// long-running server reports recent behaviour, not its cold start).
const LATENCY_CAP: usize = 1 << 16;

#[derive(Default)]
pub(crate) struct Metrics {
    pub(crate) admitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) read_batches: AtomicU64,
    pub(crate) coalesced_reads: AtomicU64,
    pub(crate) writes: AtomicU64,
    pub(crate) write_batches: AtomicU64,
    pub(crate) shed: AtomicU64,
    latencies: Mutex<Ring>,
}

#[derive(Default)]
struct Ring {
    samples: Vec<u64>,
    next: usize,
}

impl Metrics {
    pub(crate) fn record_latency(&self, micros: u64) {
        let mut ring = self
            .latencies
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if ring.samples.len() < LATENCY_CAP {
            ring.samples.push(micros);
        } else {
            let at = ring.next % LATENCY_CAP;
            ring.samples[at] = micros;
        }
        ring.next = (ring.next + 1) % LATENCY_CAP;
    }

    pub(crate) fn snapshot(&self) -> ServerStats {
        let mut samples = self
            .latencies
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .samples
            .clone();
        samples.sort_unstable();
        ServerStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            read_batches: self.read_batches.load(Ordering::Relaxed),
            coalesced_reads: self.coalesced_reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_batches: self.write_batches.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            p50_us: percentile(&samples, 50),
            p99_us: percentile(&samples, 99),
            max_us: samples.last().copied().unwrap_or(0),
        }
    }
}

/// Nearest-rank percentile over sorted samples; 0 when empty.
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * pct).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// A point-in-time snapshot of a server's counters and latency profile.
/// Latencies cover completed requests (reads and writes), measured from
/// admission to fulfilment, over the most recent window of up to 65 536
/// requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests accepted past admission control.
    pub admitted: u64,
    /// Requests rejected with [`crate::ServerError::Overloaded`].
    pub rejected: u64,
    /// Requests fulfilled (answer or typed error delivered).
    pub completed: u64,
    /// Read batches flushed (each serves ≥ 1 coalesced request).
    pub read_batches: u64,
    /// Read requests that shared a flush with at least one other request.
    pub coalesced_reads: u64,
    /// Write closures applied (batched or serialised).
    pub writes: u64,
    /// Write batches published.
    pub write_batches: u64,
    /// Requests shed by an injected `SERVER_ACCEPT`/`BATCH_FLUSH` fault
    /// (always with a typed error, never silently).
    pub shed: u64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Worst observed request latency, microseconds.
    pub max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
    }

    #[test]
    fn ring_keeps_recent_samples() {
        let m = Metrics::default();
        for i in 0..(LATENCY_CAP + 10) {
            m.record_latency(i as u64);
        }
        let snap = m.snapshot();
        assert_eq!(snap.max_us, (LATENCY_CAP + 9) as u64);
        // The ring overwrote the ten oldest samples.
        assert!(snap.p50_us >= 5);
    }
}
