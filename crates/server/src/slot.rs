//! One-shot completion slots: the waker half of the hand-rolled reactor.
//!
//! A [`Slot`] is a single-producer/single-consumer rendezvous for one value.
//! The producer side ([`Promise`]) is held by the server's batch flushers;
//! the consumer side ([`Pending`]) is what a caller gets back from
//! [`crate::Server::submit`] and friends, and it is *dual-entry*: it is a
//! [`Future`] (for async callers, with a parked [`Waker`] stored in the
//! slot) and it has a blocking [`Pending::wait`] (for sync callers, parked
//! on a condvar).  Both entries observe the same fulfilment.
//!
//! Dropping a [`Promise`] unfulfilled — only reachable through a serving
//! bug or a teardown race — *abandons* the slot, which the consumer
//! observes as [`ServerError::Internal`] rather than a hang: the
//! never-drop-a-request contract is enforced structurally here, not by
//! convention in every flusher.

use crate::error::{ServerError, ServerResult};
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::task::{Context, Poll, Waker};

enum State<T> {
    /// Not fulfilled yet; holds the waker of the last async poller.
    Waiting(Option<Waker>),
    /// Fulfilled, value not yet consumed.
    Done(Option<ServerResult<T>>),
    /// The producer dropped without fulfilling.
    Abandoned,
}

struct Slot<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

impl<T> Slot<T> {
    fn fulfil(&self, value: ServerResult<T>) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let waker = match &mut *state {
            State::Waiting(w) => w.take(),
            // Double-fulfil is unreachable (Promise consumes itself); keep
            // the first value if it ever happens.
            _ => return,
        };
        *state = State::Done(Some(value));
        drop(state);
        self.cv.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
    }

    fn abandon(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let State::Waiting(w) = &mut *state {
            let waker = w.take();
            *state = State::Abandoned;
            drop(state);
            self.cv.notify_all();
            if let Some(w) = waker {
                w.wake();
            }
        }
    }
}

/// The producer half of a slot.  Fulfil it exactly once with
/// [`Promise::fulfil`]; dropping it unfulfilled abandons the slot (the
/// consumer gets a typed [`ServerError::Internal`], never a hang).
pub(crate) struct Promise<T> {
    slot: Arc<Slot<T>>,
}

impl<T> Promise<T> {
    pub(crate) fn fulfil(self, value: ServerResult<T>) {
        self.slot.fulfil(value);
        // `Drop` sees the slot already fulfilled and does nothing.
    }
}

impl<T> Drop for Promise<T> {
    fn drop(&mut self) {
        self.slot.abandon();
    }
}

/// The consumer half: a pending response with dual sync/async entry points.
///
/// * **Async**: `Pending<T>` is a `Future<Output = ServerResult<T>>`; poll
///   it from any executor (the waker is parked in the slot and woken on
///   fulfilment).
/// * **Sync**: [`Pending::wait`] blocks the calling thread on a condvar
///   until the response arrives.
#[must_use = "a pending response does nothing until waited on or polled"]
pub struct Pending<T> {
    slot: Arc<Slot<T>>,
}

/// Create a connected promise/pending pair.
pub(crate) fn slot<T>() -> (Promise<T>, Pending<T>) {
    let slot = Arc::new(Slot {
        state: Mutex::new(State::Waiting(None)),
        cv: Condvar::new(),
    });
    (
        Promise {
            slot: Arc::clone(&slot),
        },
        Pending { slot },
    )
}

/// A pre-fulfilled pending (used for admission-time rejections: the typed
/// error travels the same channel as a served answer).
pub(crate) fn ready<T>(value: ServerResult<T>) -> Pending<T> {
    let (promise, pending) = slot();
    promise.fulfil(value);
    pending
}

fn abandoned() -> ServerError {
    ServerError::Internal("response slot abandoned by the server".to_string())
}

impl<T> Pending<T> {
    /// Block the calling thread until the response arrives.
    pub fn wait(self) -> ServerResult<T> {
        let mut state = self
            .slot
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            match &mut *state {
                State::Done(value) => return value.take().unwrap_or_else(|| Err(abandoned())),
                State::Abandoned => return Err(abandoned()),
                State::Waiting(_) => {
                    state = self
                        .slot
                        .cv
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
}

impl<T> Future for Pending<T> {
    type Output = ServerResult<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self
            .slot
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match &mut *state {
            State::Done(value) => Poll::Ready(value.take().unwrap_or_else(|| Err(abandoned()))),
            State::Abandoned => Poll::Ready(Err(abandoned())),
            State::Waiting(waker) => {
                *waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}
