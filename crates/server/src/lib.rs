//! `bqr-server`: an async, batched serving front over one
//! [`Engine`](bqr_engine::Engine).
//!
//! The paper's promise — boundedly evaluable queries cost `O(|D_ξ|)`,
//! independent of `|D|` — only pays off operationally if the system can
//! serve heavy concurrent traffic at that bounded cost.  This crate is the
//! serving layer that cashes the cheque:
//!
//! * **Admission control** ([`ServerConfig::max_concurrent`],
//!   [`ServerConfig::max_outstanding_cost`]): a semaphore-style concurrency
//!   cap plus per-statement *cost classes* derived from the plan's fetch
//!   bound `|D_ξ|` (via `Analysis::fetch_bound`).  Over-budget submissions
//!   fail fast with a typed [`ServerError::Overloaded`] carrying a
//!   retry-after hint — never a wrong or partial answer.  Admitted reads
//!   still run under the engine's guard limits
//!   ([`ServerConfig::options`]), so deadlines and row/fetch budgets trip
//!   cooperatively inside the pipeline.
//! * **Read coalescing**: requests for the same prepared statement within
//!   [`ServerConfig::batch_window`] share **one** pipeline execution —
//!   whose fetch operators dedup probe keys and drive
//!   `InternedAccessIndex::probe_batch` in one vectorised pass — and every
//!   request receives that execution's exact tuples and
//!   [`FetchStats`](bqr_data::FetchStats), bit-identical to an unbatched
//!   [`Session`](bqr_engine::Session) execution on the same version.
//! * **Write batching**: mutation closures arriving within the window are
//!   applied through [`Engine::mutate_batch`](bqr_engine::Engine::mutate_batch)
//!   in a single delta-tracked version publish, amortising the
//!   copy-on-write fork, index/snapshot patching and view maintenance over
//!   the burst, with per-closure isolation inside the batch.
//! * **Dual sync/async entry**: [`Server::execute`]/[`Server::mutate`]
//!   block; [`Server::submit`]/[`Server::submit_mutate`] return a
//!   [`Pending`] that is a plain `Future`, driven by the crate's
//!   hand-rolled executor (task queue + waker slots + worker pool — the
//!   container is offline, so no tokio) or any foreign runtime.
//!
//! Failure injection: the serving front exposes two failpoint sites
//! (`bqr_data::faults::sites::{SERVER_ACCEPT, BATCH_FLUSH}`).  An injected
//! fault sheds the submission or degrades a batch to serialised execution,
//! but a request is never dropped, duplicated, or handed another request's
//! answer — the umbrella chaos suite pins this down.

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod error;
mod executor;
mod server;
mod slot;
mod stats;

pub use error::{ServerError, ServerResult};
pub use server::{Response, Server, ServerConfig};
pub use slot::Pending;
pub use stats::ServerStats;

#[cfg(test)]
mod tests {
    use super::*;
    use bqr_data::tuple;
    use bqr_engine::Engine;
    use bqr_workload::movies;
    use std::time::Duration;

    const Q_XI: &str = "Q(mid) :- movie(mid, ym, 'Universal', '2014'), V1(mid), rating(mid, 5)";

    fn movie_server(config: ServerConfig) -> Server {
        let engine = Engine::builder()
            .setting(movies::setting(100, 40))
            .cache_capacity(16)
            .build()
            .unwrap();
        engine
            .attach(movies::generate(movies::MovieScale::default()))
            .unwrap();
        Server::with_config(engine, config)
    }

    fn tight_config() -> ServerConfig {
        ServerConfig {
            batch_window: Duration::from_micros(50),
            workers: 2,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn serves_prepared_statements_bit_identically_to_sessions() {
        let server = movie_server(tight_config());
        let cost = server.prepare("fig1", Q_XI).unwrap();
        assert!(cost >= 1, "fetch-bound cost class");
        assert_eq!(server.cost_class("fig1"), Some(cost));

        let direct = server.engine().session().execute("fig1").unwrap();
        let served = server.execute("fig1").unwrap();
        assert_eq!(served.output, direct, "tuples AND FetchStats");
        assert!(served.coalesced >= 1);

        // Async entry: same slot machinery, polled to completion here via
        // the blocking wait of a second submission.
        let pending = server.submit("fig1");
        assert_eq!(pending.wait().unwrap().output, direct);

        server.drain();
        let stats = server.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.rejected, 0);
        assert!(stats.read_batches >= 1);
        assert!(stats.p50_us <= stats.p99_us && stats.p99_us <= stats.max_us);
    }

    #[test]
    fn statements_registered_lazily_and_unknown_names_are_typed() {
        let server = movie_server(tight_config());
        server.engine().prepare("fig1", Q_XI).unwrap();
        // Not registered on the server yet: first submission registers it.
        assert_eq!(server.cost_class("fig1"), None);
        assert!(server.execute("fig1").is_ok());
        assert!(server.cost_class("fig1").is_some());

        match server.execute("no_such_statement") {
            Err(ServerError::UnknownStatement(name)) => assert_eq!(name, "no_such_statement"),
            other => panic!("expected UnknownStatement, got {other:?}"),
        }
    }

    #[test]
    fn overload_is_a_typed_rejection_with_retry_after() {
        let config = ServerConfig {
            // Any read's cost class exceeds a zero budget: every read is
            // rejected, deterministically.
            max_outstanding_cost: 0,
            retry_after_ms: 7,
            ..tight_config()
        };
        let server = movie_server(config);
        server.prepare("fig1", Q_XI).unwrap();
        match server.execute("fig1") {
            Err(ServerError::Overloaded { retry_after_ms }) => assert_eq!(retry_after_ms, 7),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.admitted, 0);
        // Writes don't consume fetch budget; they still go through.
        server
            .mutate(|db| db.insert("rating", tuple![999_999, 5]).map(drop))
            .unwrap();
    }

    #[test]
    fn writes_batch_and_publish() {
        let server = movie_server(tight_config());
        server.prepare("fig1", Q_XI).unwrap();
        let before = server.engine().database().size();
        let pendings: Vec<_> = (0..8)
            .map(|i| {
                server.submit_mutate(move |db| {
                    db.insert("rating", tuple![2_000_000 + i, 1]).map(drop)
                })
            })
            .collect();
        for p in pendings {
            p.wait().unwrap();
        }
        assert_eq!(server.engine().database().size(), before + 8);
        server.drain();
        let stats = server.stats();
        assert_eq!(stats.writes, 8);
        assert!(stats.write_batches >= 1);
    }

    #[test]
    fn dropping_the_server_fails_queued_work_with_typed_errors() {
        let server = movie_server(ServerConfig {
            // A long window so queued requests are still pending at drop.
            batch_window: Duration::from_millis(300),
            workers: 1,
            ..ServerConfig::default()
        });
        server.prepare("fig1", Q_XI).unwrap();
        let golden = server.engine().session().execute("fig1").unwrap();
        let pending = server.submit("fig1");
        drop(server);
        // Teardown either lets the in-flight flush finish (a full-fidelity
        // answer) or fails the queued request with a typed error — it never
        // hangs the waiter or hands back a partial answer.
        match pending.wait() {
            Ok(response) => assert_eq!(response.output, golden),
            Err(ServerError::ShuttingDown) | Err(ServerError::Internal(_)) => {}
            Err(other) => panic!("expected a typed teardown error, got {other:?}"),
        }
    }
}
