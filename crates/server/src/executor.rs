//! A hand-rolled, dependency-free task executor: a shared run queue, a
//! fixed worker pool, and `Arc`-task wakers (`std::task::Wake`).
//!
//! The container this repo builds in is offline, so there is no tokio; the
//! serving front needs only a small fraction of what a general-purpose
//! runtime provides — spawn a `Future`, poll it on a pool, re-enqueue it
//! when its waker fires.  That is exactly what this module implements, in
//! the same spirit as the vendored `rand`/`proptest`/`criterion` shims:
//! the real interface, the minimal implementation.
//!
//! Scheduling is level-triggered and lock-serialised per task: a task's
//! future lives in a `Mutex<Option<…>>`, wakes push the task onto the run
//! queue, and whichever worker dequeues it takes the future out under the
//! lock, polls it, and puts it back if still pending.  A wake that lands
//! *during* a poll simply re-enqueues the task; the next dequeue blocks on
//! the task lock until the in-flight poll finishes, so wakeups are never
//! lost and a future is never polled concurrently.  Worker panics are
//! contained per poll: the panicking task is dropped (its promises abandon
//! into typed errors, see [`crate::slot`]) and the worker keeps serving.

use std::collections::VecDeque;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::JoinHandle;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

struct Task {
    /// `Some` while the task still has work; taken out for the duration of
    /// each poll, `None` forever once the future completes or panics.
    future: Mutex<Option<BoxFuture>>,
    /// Weak so a parked waker held by some foreign future cannot keep the
    /// whole pool alive after shutdown.
    queue: Weak<RunQueue>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if let Some(queue) = self.queue.upgrade() {
            queue.push(self);
        }
    }
}

struct RunQueue {
    ready: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl RunQueue {
    fn push(&self, task: Arc<Task>) {
        self.ready
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(task);
        self.available.notify_one();
    }

    /// Block until a task is ready or shutdown is signalled.
    fn pop(&self) -> Option<Arc<Task>> {
        let mut ready = self.ready.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(task) = ready.pop_front() {
                return Some(task);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            ready = self
                .available
                .wait(ready)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The worker pool.  Dropping it (or calling [`Executor::shutdown`]) stops
/// the workers after their in-flight polls; queued-but-unpolled tasks are
/// dropped, which abandons their promises into typed errors.
pub(crate) struct Executor {
    queue: Arc<RunQueue>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Executor {
    pub(crate) fn new(workers: usize) -> Self {
        let queue = Arc::new(RunQueue {
            ready: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("bqr-server-worker-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawning a serving worker thread")
            })
            .collect();
        Executor {
            queue,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueue a future for execution on the pool.
    pub(crate) fn spawn<F>(&self, future: F)
    where
        F: Future<Output = ()> + Send + 'static,
    {
        if self.queue.shutdown.load(Ordering::Acquire) {
            // Dropping the future here abandons its promises → typed
            // errors, not hangs, for anything submitted during teardown.
            return;
        }
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(future))),
            queue: Arc::downgrade(&self.queue),
        });
        self.queue.push(task);
    }

    /// Stop accepting work, wake every worker, and join the pool.
    pub(crate) fn shutdown(&self) {
        self.queue.shutdown.store(true, Ordering::Release);
        self.queue.available.notify_all();
        let handles =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            // A worker that panicked already detached; nothing to propagate.
            let _ = handle.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(queue: &Arc<RunQueue>) {
    while let Some(task) = queue.pop() {
        // Take the future out under the task lock.  A concurrent wake may
        // re-enqueue the task; whoever dequeues it next blocks here until
        // this poll completes — that is what makes wakeups race-free.
        let mut slot = task.future.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(mut future) = slot.take() else {
            // Already completed (duplicate wakeup): nothing to do.
            continue;
        };
        let waker = Waker::from(Arc::clone(&task));
        let mut cx = Context::from_waker(&waker);
        match catch_unwind(AssertUnwindSafe(|| future.as_mut().poll(&mut cx))) {
            Ok(Poll::Pending) => {
                *slot = Some(future);
            }
            // Completed, or panicked: drop the future either way.  On a
            // panic, any promise it still held abandons its slot, so every
            // waiter gets a typed error and the worker keeps serving.
            Ok(Poll::Ready(())) | Err(_) => {}
        }
    }
}
