//! The serving front's error type.  Every way a request can fail surfaces
//! here as a *typed* value delivered through the request's [`crate::Pending`]
//! — never as a wrong or partial answer, and never by silently dropping the
//! request.

use std::fmt;

/// Why a request submitted to a [`crate::Server`] did not produce an answer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// Admission control rejected the request: the concurrency limit or the
    /// outstanding fetch-cost budget is exhausted.  The caller should back
    /// off for `retry_after_ms` and resubmit; nothing was queued.
    Overloaded {
        /// Suggested back-off before resubmitting, in milliseconds.
        retry_after_ms: u64,
    },
    /// The server is draining or shut down; no new work is accepted and
    /// queued work is failed with this error rather than dropped.
    ShuttingDown,
    /// The statement name is not prepared on the underlying engine.
    UnknownStatement(String),
    /// The engine refused or failed the request with its own typed error
    /// (analysis, execution, guard trip, injected fault, …).
    Engine(bqr_engine::Error),
    /// A serving-side invariant failure (e.g. a contained panic in a batch
    /// flusher).  The request was *not* applied/served; resubmitting is
    /// safe for reads and for idempotent writes.
    Internal(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms}ms")
            }
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
            ServerError::UnknownStatement(name) => {
                write!(f, "unknown prepared statement `{name}`")
            }
            ServerError::Engine(e) => write!(f, "engine error: {e}"),
            ServerError::Internal(msg) => write!(f, "internal serving error: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bqr_engine::Error> for ServerError {
    fn from(e: bqr_engine::Error) -> Self {
        ServerError::Engine(e)
    }
}

impl From<bqr_data::DataError> for ServerError {
    fn from(e: bqr_data::DataError) -> Self {
        ServerError::Engine(bqr_engine::Error::from(e))
    }
}

/// Result alias for serving operations.
pub type ServerResult<T> = std::result::Result<T, ServerError>;
