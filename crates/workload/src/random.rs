//! Random conjunctive-query workloads (experiment E7) and random instances.
//!
//! The paper cites statistics of the form "under a couple of hundred access
//! constraints, 60–77 % of randomly generated queries are boundedly
//! evaluable".  [`generate_queries`] produces random *acyclic* CQs over an
//! arbitrary schema by growing a join tree: it starts from a random atom,
//! then repeatedly joins a new atom on a variable of the query built so far,
//! and finally binds a random subset of attribute positions to constants.
//! The constant-binding probability controls how often the access-schema
//! indices become applicable, i.e. how large the boundedly-rewritable
//! fraction is.
//!
//! [`generate_cyclic_queries`] is the adversarial counterpart used by the
//! join-planner differential tests: it produces *cyclic* CQs — variable
//! k-cycles (triangles for `k = 3`) threaded through the first two attribute
//! positions of randomly chosen relations, optionally decorated with
//! self-join atoms and constants — precisely the shapes whose atom-at-a-time
//! plans degenerate and whose generic-join plans must still agree with the
//! reference engine.  [`generate_database`] produces random instances of a
//! schema so query/instance pairs can be drawn from the same seed space.

use bqr_data::{Database, DatabaseSchema, Tuple, Value};
use bqr_query::{Atom, ConjunctiveQuery, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the random query generator.
#[derive(Debug, Clone)]
pub struct RandomQueryConfig {
    /// Number of atoms per query.
    pub atoms: usize,
    /// Probability that an attribute position is bound to a constant.
    pub constant_probability: f64,
    /// Pool of constants to draw from.
    pub constants: Vec<Value>,
    /// Number of head variables (capped by the number of variables present).
    pub head_variables: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomQueryConfig {
    fn default() -> Self {
        RandomQueryConfig {
            atoms: 3,
            constant_probability: 0.3,
            constants: (0..20).map(Value::int).collect(),
            head_variables: 1,
            seed: 1,
        }
    }
}

/// Generate `count` random acyclic conjunctive queries over `schema`.
pub fn generate_queries(
    schema: &DatabaseSchema,
    config: &RandomQueryConfig,
    count: usize,
) -> Vec<ConjunctiveQuery> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let relations: Vec<_> = schema.relations().cloned().collect();
    assert!(
        !relations.is_empty(),
        "the schema must have at least one relation"
    );
    (0..count)
        .map(|_| generate_one(&relations, config, &mut rng))
        .collect()
}

fn generate_one(
    relations: &[bqr_data::RelationSchema],
    config: &RandomQueryConfig,
    rng: &mut StdRng,
) -> ConjunctiveQuery {
    let mut atoms: Vec<Atom> = Vec::with_capacity(config.atoms);
    let mut var_counter = 0usize;
    let fresh = |var_counter: &mut usize| {
        let v = format!("x{var_counter}");
        *var_counter += 1;
        v
    };
    let mut all_vars: Vec<String> = Vec::new();

    for i in 0..config.atoms {
        let rel = &relations[rng.gen_range(0..relations.len())];
        let mut args = Vec::with_capacity(rel.arity());
        // Join the new atom on one existing variable (keeps the query acyclic
        // and connected); the joining position is chosen uniformly.
        let join_position = if i > 0 && !all_vars.is_empty() {
            Some(rng.gen_range(0..rel.arity().max(1)))
        } else {
            None
        };
        for pos in 0..rel.arity() {
            if Some(pos) == join_position {
                let existing = all_vars[rng.gen_range(0..all_vars.len())].clone();
                args.push(Term::var(existing));
            } else if rng.gen_bool(config.constant_probability) && !config.constants.is_empty() {
                let c = config.constants[rng.gen_range(0..config.constants.len())].clone();
                args.push(Term::Const(c));
            } else {
                let v = fresh(&mut var_counter);
                all_vars.push(v.clone());
                args.push(Term::var(v));
            }
        }
        atoms.push(Atom::new(rel.name(), args));
    }

    // Head: a random subset of the variables.
    let mut head = Vec::new();
    let mut candidates = all_vars.clone();
    for _ in 0..config.head_variables.min(candidates.len()) {
        let idx = rng.gen_range(0..candidates.len());
        head.push(Term::var(candidates.swap_remove(idx)));
    }
    ConjunctiveQuery::new(head, atoms).expect("generated queries are safe by construction")
}

/// Parameters of the cyclic query generator.
#[derive(Debug, Clone)]
pub struct CyclicQueryConfig {
    /// Length of the variable cycle (3 = triangle).  Must be ≥ 3 to make the
    /// hypergraph cyclic.
    pub cycle_len: usize,
    /// Number of additional atoms joined onto cycle variables (self-joins
    /// and decorations); these may introduce constants.
    pub extra_atoms: usize,
    /// Probability that a non-cycle position is bound to a constant.
    pub constant_probability: f64,
    /// Pool of constants to draw from.
    pub constants: Vec<Value>,
    /// Number of head variables (capped by the number of variables present).
    pub head_variables: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CyclicQueryConfig {
    fn default() -> Self {
        CyclicQueryConfig {
            cycle_len: 3,
            extra_atoms: 1,
            constant_probability: 0.2,
            constants: (0..20).map(Value::int).collect(),
            head_variables: 1,
            seed: 1,
        }
    }
}

/// Generate `count` random *cyclic* conjunctive queries over `schema`.
///
/// Every query contains a variable cycle `x_0 → x_1 → ... → x_{k-1} → x_0`
/// threaded through the first two positions of relations with arity ≥ 2
/// (the schema must contain at least one such relation).  Extra atoms
/// self-join on cycle variables and may bind positions to constants, so the
/// generated pool also covers self-joins-with-constants.
pub fn generate_cyclic_queries(
    schema: &DatabaseSchema,
    config: &CyclicQueryConfig,
    count: usize,
) -> Vec<ConjunctiveQuery> {
    assert!(config.cycle_len >= 3, "a cycle needs at least 3 atoms");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let binary: Vec<_> = schema
        .relations()
        .filter(|r| r.arity() >= 2)
        .cloned()
        .collect();
    assert!(
        !binary.is_empty(),
        "cyclic queries need a relation of arity ≥ 2"
    );
    let all: Vec<_> = schema.relations().cloned().collect();
    (0..count)
        .map(|_| generate_one_cyclic(&binary, &all, config, &mut rng))
        .collect()
}

fn generate_one_cyclic(
    binary: &[bqr_data::RelationSchema],
    all: &[bqr_data::RelationSchema],
    config: &CyclicQueryConfig,
    rng: &mut StdRng,
) -> ConjunctiveQuery {
    let k = config.cycle_len;
    let mut atoms: Vec<Atom> = Vec::with_capacity(k + config.extra_atoms);
    let mut var_counter = k;
    let cycle_vars: Vec<String> = (0..k).map(|i| format!("x{i}")).collect();

    // The cycle: rel_i(x_i, x_{i+1 mod k}, ...) with the tail positions
    // filled by fresh variables or constants.
    for i in 0..k {
        let rel = &binary[rng.gen_range(0..binary.len())];
        let mut args = vec![
            Term::var(cycle_vars[i].clone()),
            Term::var(cycle_vars[(i + 1) % k].clone()),
        ];
        for _ in 2..rel.arity() {
            args.push(filler(config, rng, &mut var_counter));
        }
        atoms.push(Atom::new(rel.name(), args));
    }

    // Extra atoms: join on one or two cycle variables (possibly the same —
    // a repeated variable within the atom), constants elsewhere.
    for _ in 0..config.extra_atoms {
        let rel = &all[rng.gen_range(0..all.len())];
        let mut args = Vec::with_capacity(rel.arity());
        for pos in 0..rel.arity() {
            if pos < 2 && rel.arity() >= 2 && rng.gen_bool(0.7) {
                let v = cycle_vars[rng.gen_range(0..k)].clone();
                args.push(Term::var(v));
            } else {
                args.push(filler(config, rng, &mut var_counter));
            }
        }
        atoms.push(Atom::new(rel.name(), args));
    }

    let mut head = Vec::new();
    let mut candidates = cycle_vars.clone();
    for _ in 0..config.head_variables.min(candidates.len()) {
        let idx = rng.gen_range(0..candidates.len());
        head.push(Term::var(candidates.swap_remove(idx)));
    }
    ConjunctiveQuery::new(head, atoms).expect("generated queries are safe by construction")
}

fn filler(config: &CyclicQueryConfig, rng: &mut StdRng, var_counter: &mut usize) -> Term {
    if rng.gen_bool(config.constant_probability) && !config.constants.is_empty() {
        Term::Const(config.constants[rng.gen_range(0..config.constants.len())].clone())
    } else {
        let v = format!("x{var_counter}");
        *var_counter += 1;
        Term::var(v)
    }
}

/// Parameters of the random instance generator.
#[derive(Debug, Clone)]
pub struct RandomDatabaseConfig {
    /// Tuples inserted per relation (set semantics may deduplicate some).
    pub tuples_per_relation: usize,
    /// Values are drawn uniformly from `0..domain_size`.
    pub domain_size: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomDatabaseConfig {
    fn default() -> Self {
        RandomDatabaseConfig {
            tuples_per_relation: 30,
            domain_size: 8,
            seed: 1,
        }
    }
}

/// Generate a random instance of `schema`: integer tuples drawn uniformly
/// from a small domain, so joins and cycles actually connect.
pub fn generate_database(schema: &DatabaseSchema, config: &RandomDatabaseConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::empty(schema.clone());
    let names: Vec<String> = schema.relations().map(|r| r.name().to_string()).collect();
    for name in names {
        let arity = schema.relation(&name).expect("listed relation").arity();
        for _ in 0..config.tuples_per_relation {
            let tuple: Tuple = (0..arity)
                .map(|_| Value::int(rng.gen_range(0..config.domain_size.max(1))))
                .collect();
            db.insert(&name, tuple).expect("arity is correct");
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdr;
    use bqr_query::acyclic::is_acyclic;

    #[test]
    fn generated_queries_are_valid_and_acyclic() {
        let schema = cdr::schema();
        let config = RandomQueryConfig {
            atoms: 4,
            head_variables: 2,
            seed: 99,
            ..RandomQueryConfig::default()
        };
        let queries = generate_queries(&schema, &config, 50);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert_eq!(q.atoms().len(), 4);
            assert!(q.arity() <= 2);
            assert!(
                is_acyclic(q),
                "join-tree construction keeps queries acyclic: {q}"
            );
            assert!(q.validate(&schema, &Default::default()).is_ok());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let schema = cdr::schema();
        let config = RandomQueryConfig::default();
        let a = generate_queries(&schema, &config, 10);
        let b = generate_queries(&schema, &config, 10);
        assert_eq!(a, b);
        let c = generate_queries(
            &schema,
            &RandomQueryConfig {
                seed: 2,
                ..RandomQueryConfig::default()
            },
            10,
        );
        assert_ne!(a, c);
    }

    #[test]
    fn cyclic_queries_are_cyclic_valid_and_deterministic() {
        let schema = cdr::schema();
        for cycle_len in [3usize, 4, 5] {
            let config = CyclicQueryConfig {
                cycle_len,
                extra_atoms: 2,
                seed: 7,
                ..CyclicQueryConfig::default()
            };
            let queries = generate_cyclic_queries(&schema, &config, 25);
            assert_eq!(queries.len(), 25);
            for q in &queries {
                assert!(
                    !is_acyclic(q),
                    "a {cycle_len}-cycle must be cyclic (GYO residue non-empty): {q}"
                );
                assert_eq!(q.atoms().len(), cycle_len + 2);
                assert!(q.validate(&schema, &Default::default()).is_ok());
            }
            let again = generate_cyclic_queries(&schema, &config, 25);
            assert_eq!(queries, again, "same seed, same queries");
        }
    }

    #[test]
    fn random_databases_respect_schema_and_seed() {
        let schema = cdr::schema();
        let config = RandomDatabaseConfig {
            tuples_per_relation: 20,
            domain_size: 5,
            seed: 11,
        };
        let db = generate_database(&schema, &config);
        for rel in schema.relations() {
            let instance = db.relation(rel.name()).unwrap();
            assert!(instance.len() <= 20, "set semantics may deduplicate");
            assert!(!instance.is_empty());
        }
        let again = generate_database(&schema, &config);
        assert_eq!(db.size(), again.size(), "same seed, same instance");
        let other = generate_database(&schema, &RandomDatabaseConfig { seed: 12, ..config });
        assert_ne!(
            db.relation("calls").unwrap(),
            other.relation("calls").unwrap(),
            "different seed, different tuples"
        );
    }

    #[test]
    fn constant_probability_zero_gives_constant_free_queries() {
        let schema = cdr::schema();
        let config = RandomQueryConfig {
            constant_probability: 0.0,
            ..RandomQueryConfig::default()
        };
        for q in generate_queries(&schema, &config, 20) {
            assert!(q.constants().is_empty(), "{q}");
        }
    }
}
