//! Random acyclic conjunctive-query workloads (experiment E7).
//!
//! The paper cites statistics of the form "under a couple of hundred access
//! constraints, 60–77 % of randomly generated queries are boundedly
//! evaluable".  This generator produces random *acyclic* CQs over an
//! arbitrary schema by growing a join tree: it starts from a random atom,
//! then repeatedly joins a new atom on a variable of the query built so far,
//! and finally binds a random subset of attribute positions to constants.
//! The constant-binding probability controls how often the access-schema
//! indices become applicable, i.e. how large the boundedly-rewritable
//! fraction is.

use bqr_data::{DatabaseSchema, Value};
use bqr_query::{Atom, ConjunctiveQuery, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the random query generator.
#[derive(Debug, Clone)]
pub struct RandomQueryConfig {
    /// Number of atoms per query.
    pub atoms: usize,
    /// Probability that an attribute position is bound to a constant.
    pub constant_probability: f64,
    /// Pool of constants to draw from.
    pub constants: Vec<Value>,
    /// Number of head variables (capped by the number of variables present).
    pub head_variables: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomQueryConfig {
    fn default() -> Self {
        RandomQueryConfig {
            atoms: 3,
            constant_probability: 0.3,
            constants: (0..20).map(Value::int).collect(),
            head_variables: 1,
            seed: 1,
        }
    }
}

/// Generate `count` random acyclic conjunctive queries over `schema`.
pub fn generate_queries(
    schema: &DatabaseSchema,
    config: &RandomQueryConfig,
    count: usize,
) -> Vec<ConjunctiveQuery> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let relations: Vec<_> = schema.relations().cloned().collect();
    assert!(
        !relations.is_empty(),
        "the schema must have at least one relation"
    );
    (0..count)
        .map(|_| generate_one(&relations, config, &mut rng))
        .collect()
}

fn generate_one(
    relations: &[bqr_data::RelationSchema],
    config: &RandomQueryConfig,
    rng: &mut StdRng,
) -> ConjunctiveQuery {
    let mut atoms: Vec<Atom> = Vec::with_capacity(config.atoms);
    let mut var_counter = 0usize;
    let fresh = |var_counter: &mut usize| {
        let v = format!("x{var_counter}");
        *var_counter += 1;
        v
    };
    let mut all_vars: Vec<String> = Vec::new();

    for i in 0..config.atoms {
        let rel = &relations[rng.gen_range(0..relations.len())];
        let mut args = Vec::with_capacity(rel.arity());
        // Join the new atom on one existing variable (keeps the query acyclic
        // and connected); the joining position is chosen uniformly.
        let join_position = if i > 0 && !all_vars.is_empty() {
            Some(rng.gen_range(0..rel.arity().max(1)))
        } else {
            None
        };
        for pos in 0..rel.arity() {
            if Some(pos) == join_position {
                let existing = all_vars[rng.gen_range(0..all_vars.len())].clone();
                args.push(Term::var(existing));
            } else if rng.gen_bool(config.constant_probability) && !config.constants.is_empty() {
                let c = config.constants[rng.gen_range(0..config.constants.len())].clone();
                args.push(Term::Const(c));
            } else {
                let v = fresh(&mut var_counter);
                all_vars.push(v.clone());
                args.push(Term::var(v));
            }
        }
        atoms.push(Atom::new(rel.name(), args));
    }

    // Head: a random subset of the variables.
    let mut head = Vec::new();
    let mut candidates = all_vars.clone();
    for _ in 0..config.head_variables.min(candidates.len()) {
        let idx = rng.gen_range(0..candidates.len());
        head.push(Term::var(candidates.swap_remove(idx)));
    }
    ConjunctiveQuery::new(head, atoms).expect("generated queries are safe by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdr;
    use bqr_query::acyclic::is_acyclic;

    #[test]
    fn generated_queries_are_valid_and_acyclic() {
        let schema = cdr::schema();
        let config = RandomQueryConfig {
            atoms: 4,
            head_variables: 2,
            seed: 99,
            ..RandomQueryConfig::default()
        };
        let queries = generate_queries(&schema, &config, 50);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert_eq!(q.atoms().len(), 4);
            assert!(q.arity() <= 2);
            assert!(
                is_acyclic(q),
                "join-tree construction keeps queries acyclic: {q}"
            );
            assert!(q.validate(&schema, &Default::default()).is_ok());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let schema = cdr::schema();
        let config = RandomQueryConfig::default();
        let a = generate_queries(&schema, &config, 10);
        let b = generate_queries(&schema, &config, 10);
        assert_eq!(a, b);
        let c = generate_queries(
            &schema,
            &RandomQueryConfig {
                seed: 2,
                ..RandomQueryConfig::default()
            },
            10,
        );
        assert_ne!(a, c);
    }

    #[test]
    fn constant_probability_zero_gives_constant_free_queries() {
        let schema = cdr::schema();
        let config = RandomQueryConfig {
            constant_probability: 0.0,
            ..RandomQueryConfig::default()
        };
        for q in generate_queries(&schema, &config, 20) {
            assert!(q.constants().is_empty(), "{q}");
        }
    }
}
