//! Discovering access constraints from data.
//!
//! Access schemas are obtained in practice by profiling sample instances:
//! for candidate attribute pairs `(X, Y)` of each relation one measures the
//! largest number of distinct `Y`-values per `X`-value and keeps the pairs
//! whose maximum stays under a threshold (those are worth an index).  This is
//! the procedure the paper alludes to when it says constraints "are
//! discovered from sample instances"; it also mirrors how the companion
//! experimental papers obtained their "couple of hundred constraints".

use bqr_data::{AccessConstraint, AccessSchema, Database, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// Options for constraint discovery.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryOptions {
    /// Only keep constraints whose bound `N` is at most this threshold.
    pub max_bound: usize,
    /// Enumerate `X` sets of at most this many attributes (1 or 2 in
    /// practice; larger key sets rarely pay for their index).
    pub max_key_size: usize,
}

impl Default for DiscoveryOptions {
    fn default() -> Self {
        DiscoveryOptions {
            max_bound: 100,
            max_key_size: 2,
        }
    }
}

/// Mine access constraints `R(X → Y, N)` from an instance: for every relation
/// `R`, every candidate key `X` (up to `max_key_size` attributes) and every
/// single non-key attribute `Y`, measure `N = max_ā |D_{R:Y}(X = ā)|` and keep
/// the constraint when `N ≤ max_bound`.
pub fn discover_constraints(db: &Database, options: &DiscoveryOptions) -> AccessSchema {
    let mut constraints = Vec::new();
    for rel in db.relations() {
        if rel.is_empty() {
            continue;
        }
        let attrs: Vec<String> = rel.schema().attributes().map(str::to_string).collect();
        for key in attribute_subsets(&attrs, options.max_key_size) {
            let key_refs: Vec<&str> = key.iter().map(String::as_str).collect();
            let key_positions = rel
                .schema()
                .positions(&key_refs)
                .expect("attributes come from the schema");
            for y in &attrs {
                if key.contains(y) {
                    continue;
                }
                let y_pos = rel.schema().position(y).expect("attribute of the relation");
                let mut groups: BTreeMap<Tuple, BTreeSet<bqr_data::Value>> = BTreeMap::new();
                for t in rel.iter() {
                    groups
                        .entry(t.project(&key_positions))
                        .or_default()
                        .insert(t[y_pos].clone());
                }
                let n = groups.values().map(BTreeSet::len).max().unwrap_or(0);
                if n > 0 && n <= options.max_bound {
                    constraints.push(
                        AccessConstraint::new(rel.name(), &key_refs, &[y.as_str()], n)
                            .expect("mined constraints are well formed"),
                    );
                }
            }
        }
    }
    AccessSchema::new(constraints)
}

/// All non-empty subsets of `attrs` of size at most `max_size` (in a
/// deterministic order).
fn attribute_subsets(attrs: &[String], max_size: usize) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let n = attrs.len();
    for attr in attrs {
        out.push(vec![attr.clone()]);
    }
    if max_size >= 2 {
        for i in 0..n {
            for j in (i + 1)..n {
                out.push(vec![attrs[i].clone(), attrs[j].clone()]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdr;

    #[test]
    fn discovered_constraints_hold_on_the_instance() {
        let scale = cdr::CdrScale {
            customers: 100,
            days: 4,
            max_calls_per_day: 3,
            max_attach_per_day: 2,
            towers: 10,
            seed: 9,
        };
        let db = cdr::generate(scale);
        let mined = discover_constraints(&db, &DiscoveryOptions::default());
        assert!(!mined.is_empty());
        // Every mined constraint is satisfied by the instance it came from.
        assert!(mined.satisfied_by(&db).unwrap());
        // The customer key must be among them (cid determines plan with N=1).
        assert!(mined.constraints().any(|c| {
            c.relation() == "customer" && c.x() == ["cid"] && c.y() == ["plan"] && c.n() == 1
        }));
        // The per-day call bound is rediscovered with N ≤ the generator's cap.
        assert!(mined.constraints().any(|c| {
            c.relation() == "calls"
                && c.x() == ["caller", "day"]
                && c.y() == ["callee"]
                && c.n() <= 3
        }));
    }

    #[test]
    fn threshold_filters_out_weak_constraints() {
        let scale = cdr::CdrScale {
            customers: 80,
            days: 3,
            max_calls_per_day: 3,
            max_attach_per_day: 2,
            towers: 10,
            seed: 9,
        };
        let db = cdr::generate(scale);
        let strict = discover_constraints(
            &db,
            &DiscoveryOptions {
                max_bound: 1,
                max_key_size: 1,
            },
        );
        let generous = discover_constraints(&db, &DiscoveryOptions::default());
        assert!(strict.len() < generous.len());
        assert!(strict.constraints().all(|c| c.n() == 1));
    }

    #[test]
    fn attribute_subsets_enumeration() {
        let attrs: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(attribute_subsets(&attrs, 1).len(), 3);
        assert_eq!(attribute_subsets(&attrs, 2).len(), 3 + 3);
    }
}
