//! The movie / Graph-Search setting of Example 1.1.

use bqr_core::problem::RewritingSetting;
use bqr_data::{tuple, AccessConstraint, AccessSchema, Database, DatabaseSchema};
use bqr_query::parser::parse_cq;
use bqr_query::{ConjunctiveQuery, ViewSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the movie-instance generator.
#[derive(Debug, Clone, Copy)]
pub struct MovieScale {
    /// Number of persons (and roughly of `like` tuples per person is 3).
    pub persons: usize,
    /// Number of movies.
    pub movies: usize,
    /// Bound `N_0` of φ1 = movie((studio, release) → mid, N_0).
    pub n0: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MovieScale {
    fn default() -> Self {
        MovieScale {
            persons: 1_000,
            movies: 500,
            n0: 100,
            seed: 7,
        }
    }
}

/// The schema `R_0`.
pub fn schema() -> DatabaseSchema {
    DatabaseSchema::with_relations(&[
        ("person", &["pid", "name", "affiliation"]),
        ("movie", &["mid", "mname", "studio", "release"]),
        ("rating", &["mid", "rank"]),
        ("like", &["pid", "id", "type"]),
    ])
    .expect("movie schema is well formed")
}

/// The access schema `A_0` with bound `n0`.
pub fn access_schema(n0: usize) -> AccessSchema {
    AccessSchema::new(vec![
        AccessConstraint::new("movie", &["studio", "release"], &["mid"], n0).unwrap(),
        AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap(),
    ])
}

/// The query `Q_0` of Example 1.1.
pub fn q0() -> ConjunctiveQuery {
    parse_cq(
        "Q(mid) :- person(xp, xn, 'NASA'), movie(mid, ym, 'Universal', '2014'), \
         like(xp, mid, 'movie'), rating(mid, 5)",
    )
    .expect("Q0 parses")
}

/// The rewriting `Q_ξ` of Example 2.3 (over the view `V1`).
pub fn q_xi() -> ConjunctiveQuery {
    parse_cq("Q(mid) :- movie(mid, ym, 'Universal', '2014'), V1(mid), rating(mid, 5)")
        .expect("Qξ parses")
}

/// The view set `{V1}` of Example 1.1.
pub fn views() -> ViewSet {
    let mut v = ViewSet::empty();
    v.add_cq(
        "V1",
        parse_cq(
            "V1(mid) :- person(xp, xn, 'NASA'), movie(mid, ym, z1, z2), like(xp, mid, 'movie')",
        )
        .unwrap(),
    )
    .unwrap();
    v
}

/// The full rewriting setting `(R_0, A_0, {V1}, M)`.
pub fn setting(n0: usize, bound_m: usize) -> RewritingSetting {
    RewritingSetting::new(schema(), access_schema(n0), views(), bound_m)
}

const STUDIOS: &[&str] = &["Universal", "WB", "Paramount", "MGM", "Sony", "Fox"];
const AFFILIATIONS: &[&str] = &["NASA", "ESA", "MIT", "CERN", "JPL"];

/// Generate an instance of `R_0` that satisfies `A_0(n0)`.
///
/// The number of Universal/2014 movies is capped at `n0` (so φ1 holds), every
/// movie has exactly one rating (so φ2 holds), and the `person` / `like`
/// relations grow linearly with `scale.persons` — the part of the data a
/// bounded plan never has to touch.
pub fn generate(scale: MovieScale) -> Database {
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let mut db = Database::empty(schema());

    // Movies: spread over studios and years so that each (studio, release)
    // group stays within n0.
    let years = ["2012", "2013", "2014", "2015"];
    let mut group_counts: std::collections::BTreeMap<(usize, usize), usize> =
        std::collections::BTreeMap::new();
    let mut mid = 0usize;
    while mid < scale.movies {
        let s = rng.gen_range(0..STUDIOS.len());
        let y = rng.gen_range(0..years.len());
        let count = group_counts.entry((s, y)).or_insert(0);
        if *count >= scale.n0 {
            continue;
        }
        *count += 1;
        db.insert(
            "movie",
            tuple![mid, format!("movie{mid}"), STUDIOS[s], years[y]],
        )
        .unwrap();
        let rank = rng.gen_range(1..=5i64);
        db.insert("rating", tuple![mid, rank]).unwrap();
        mid += 1;
    }

    // Persons and likes.
    for pid in 0..scale.persons {
        let aff = AFFILIATIONS[rng.gen_range(0..AFFILIATIONS.len())];
        db.insert("person", tuple![pid, format!("p{pid}"), aff])
            .unwrap();
        for _ in 0..3 {
            let liked = rng.gen_range(0..scale.movies.max(1));
            db.insert("like", tuple![pid, liked, "movie"]).unwrap();
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_instances_satisfy_a0() {
        for persons in [50usize, 500] {
            let scale = MovieScale {
                persons,
                movies: 200,
                n0: 40,
                seed: 11,
            };
            let db = generate(scale);
            assert!(access_schema(40).satisfied_by(&db).unwrap());
            assert_eq!(db.relation("person").unwrap().len(), persons);
            assert_eq!(db.relation("movie").unwrap().len(), 200);
            assert_eq!(db.relation("rating").unwrap().len(), 200);
            assert!(db.relation("like").unwrap().len() <= 3 * persons);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(MovieScale::default());
        let b = generate(MovieScale::default());
        assert_eq!(a, b);
        let c = generate(MovieScale {
            seed: 8,
            ..MovieScale::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn setting_is_well_formed() {
        let s = setting(100, 40);
        assert!(s.validate().is_ok());
        assert_eq!(s.views.len(), 1);
        assert_eq!(s.access.len(), 2);
        assert_eq!(q0().arity(), 1);
        assert_eq!(q_xi().arity(), 1);
    }
}
