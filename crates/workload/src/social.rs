//! The Facebook Graph-Search example from the paper's introduction:
//! *"find me all restaurants in NYC which I have not been to, but in which my
//! friends have dined in May 2015"*, under the cardinality constraints that a
//! person has at most `K` friends and dines at most once per day.

use bqr_core::problem::RewritingSetting;
use bqr_data::{tuple, AccessConstraint, AccessSchema, Database, DatabaseSchema};
use bqr_query::parser::parse_cq;
use bqr_query::{ConjunctiveQuery, ViewSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the social-graph generator.
#[derive(Debug, Clone, Copy)]
pub struct SocialScale {
    /// Number of persons.
    pub persons: usize,
    /// Number of restaurants.
    pub restaurants: usize,
    /// Maximum friends per person (the Facebook limit, 5000 in the paper).
    pub max_friends: usize,
    /// Number of days in the dining window.
    pub days: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SocialScale {
    fn default() -> Self {
        SocialScale {
            persons: 2_000,
            restaurants: 300,
            max_friends: 50,
            days: 31,
            seed: 13,
        }
    }
}

/// The social schema: persons, friendships, restaurants and dinings.
pub fn schema() -> DatabaseSchema {
    DatabaseSchema::with_relations(&[
        ("person", &["pid", "city"]),
        ("friend", &["pid", "fid"]),
        ("restaurant", &["rid", "city"]),
        ("dine", &["pid", "day", "rid"]),
    ])
    .expect("social schema is well formed")
}

/// The access schema: at most `max_friends` friends per person, at most one
/// dining per person and day, and restaurant/person city lookups by key.
pub fn access_schema(max_friends: usize) -> AccessSchema {
    AccessSchema::new(vec![
        AccessConstraint::new("friend", &["pid"], &["fid"], max_friends).unwrap(),
        AccessConstraint::new("dine", &["pid", "day"], &["rid"], 1).unwrap(),
        AccessConstraint::new("restaurant", &["rid"], &["city"], 1).unwrap(),
        AccessConstraint::new("person", &["pid"], &["city"], 1).unwrap(),
    ])
}

/// The Graph-Search query for a fixed user `p0` and a fixed day: restaurants
/// in NYC in which a friend of `p0` dined on that day.  (The "which I have
/// not been to" part needs negation; [`graph_search_query_with_negation`]
/// adds it.)
pub fn graph_search_query(pid: i64, day: i64) -> ConjunctiveQuery {
    parse_cq(&format!(
        "Q(rid) :- friend({pid}, f), dine(f, {day}, rid), restaurant(rid, 'NYC')"
    ))
    .expect("graph-search query parses")
}

/// The full Graph-Search query including the negation "which I have not been
/// to (on that day)", as an FO query.
pub fn graph_search_query_with_negation(pid: i64, day: i64) -> bqr_query::FoQuery {
    use bqr_query::{Atom, Fo, FoQuery, Term};
    let positive = graph_search_query(pid, day);
    let base = FoQuery::from_cq(&positive);
    let negated = Fo::not(Fo::Atom(Atom::new(
        "dine",
        vec![Term::cnst(pid), Term::cnst(day), Term::var("rid")],
    )));
    FoQuery::new(base.head().to_vec(), Fo::and(base.body().clone(), negated))
        .expect("head variables unchanged")
}

/// No views are needed for this workload: the constraints alone make the
/// query boundedly evaluable, which is the point of the introduction's
/// example.  An empty view set keeps the setting uniform with the others.
pub fn views() -> ViewSet {
    ViewSet::empty()
}

/// The rewriting setting for the graph-search workload.
pub fn setting(max_friends: usize, bound_m: usize) -> RewritingSetting {
    RewritingSetting::new(schema(), access_schema(max_friends), views(), bound_m)
}

/// Generate a social instance satisfying the access schema.
pub fn generate(scale: SocialScale) -> Database {
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let mut db = Database::empty(schema());
    let cities = ["NYC", "SF", "LA", "Boston"];

    for rid in 0..scale.restaurants {
        let city = cities[rng.gen_range(0..cities.len())];
        db.insert("restaurant", tuple![rid, city]).unwrap();
    }
    for pid in 0..scale.persons {
        let city = cities[rng.gen_range(0..cities.len())];
        db.insert("person", tuple![pid, city]).unwrap();
        // Friends: a random sample, capped by max_friends.
        let friends = rng.gen_range(0..=scale.max_friends.min(scale.persons.saturating_sub(1)));
        for _ in 0..friends {
            let fid = rng.gen_range(0..scale.persons);
            db.insert("friend", tuple![pid, fid]).unwrap();
        }
        // Dinings: at most one per day.
        for day in 0..scale.days {
            if rng.gen_bool(0.3) {
                let rid = rng.gen_range(0..scale.restaurants);
                db.insert("dine", tuple![pid, day, rid]).unwrap();
            }
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqr_core::topped::ToppedChecker;

    #[test]
    fn generated_instances_satisfy_the_constraints() {
        let scale = SocialScale {
            persons: 200,
            restaurants: 40,
            max_friends: 10,
            days: 10,
            seed: 3,
        };
        let db = generate(scale);
        assert!(access_schema(10).satisfied_by(&db).unwrap());
        assert_eq!(db.relation("person").unwrap().len(), 200);
    }

    #[test]
    fn graph_search_query_is_boundedly_evaluable() {
        // friend(p0 → f, K) then dine((f, day) → rid, 1) then
        // restaurant(rid → city, 1): the whole query is topped without views.
        let setting = setting(50, 200);
        let checker = ToppedChecker::new(&setting);
        let analysis = checker.analyze_cq(&graph_search_query(0, 15)).unwrap();
        assert!(analysis.topped, "{:?}", analysis.reason);
        // |Dξ| ≤ K (friends) + K·1 (dinings) + K·1 (restaurant lookups).
        assert!(analysis.fetch_bound.unwrap() <= 3 * 50);

        // The negated variant is also topped (the negation only filters).
        let analysis = checker
            .analyze(&graph_search_query_with_negation(0, 15))
            .unwrap();
        assert!(analysis.topped, "{:?}", analysis.reason);
    }
}
