//! A synthetic CDR (call-detail-record) workload.
//!
//! The paper reports that, on an industrial CDR dataset, bounded rewriting
//! using views improves more than 90 % of the customer's queries by 25× up
//! to 5 orders of magnitude.  The dataset is proprietary; this module builds
//! the closest public stand-in: a telecom schema with realistic cardinality
//! constraints (a customer has one plan, at most `N` calls per day, at most
//! `N'` cell-tower attachments per day, a tower sits in one region), a small
//! set of cached views, and a workload of parameterised query templates most
//! of which have bounded rewritings.

use bqr_core::problem::RewritingSetting;
use bqr_data::{tuple, AccessConstraint, AccessSchema, Database, DatabaseSchema};
use bqr_query::parser::parse_cq;
use bqr_query::{ConjunctiveQuery, ViewSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale parameters of the CDR generator.
#[derive(Debug, Clone, Copy)]
pub struct CdrScale {
    /// Number of customers.
    pub customers: usize,
    /// Number of days of traffic.
    pub days: usize,
    /// Maximum calls per customer per day (the constraint bound).
    pub max_calls_per_day: usize,
    /// Maximum tower attachments per customer per day.
    pub max_attach_per_day: usize,
    /// Number of cell towers.
    pub towers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CdrScale {
    fn default() -> Self {
        CdrScale {
            customers: 2_000,
            days: 14,
            max_calls_per_day: 10,
            max_attach_per_day: 5,
            towers: 100,
            seed: 42,
        }
    }
}

/// The CDR schema.
pub fn schema() -> DatabaseSchema {
    DatabaseSchema::with_relations(&[
        ("customer", &["cid", "name", "plan", "region"]),
        ("calls", &["caller", "day", "callee", "duration"]),
        ("attach", &["cid", "day", "tower"]),
        ("tower", &["tid", "region", "capacity"]),
    ])
    .expect("CDR schema is well formed")
}

/// The access schema mined from the generator's guarantees.
pub fn access_schema(scale: &CdrScale) -> AccessSchema {
    AccessSchema::new(vec![
        // A customer id is a key.
        AccessConstraint::new("customer", &["cid"], &["name", "plan", "region"], 1).unwrap(),
        // At most `max_calls_per_day` calls per caller and day.
        AccessConstraint::new(
            "calls",
            &["caller", "day"],
            &["callee", "duration"],
            scale.max_calls_per_day,
        )
        .unwrap(),
        // At most `max_attach_per_day` tower attachments per customer and day.
        AccessConstraint::new(
            "attach",
            &["cid", "day"],
            &["tower"],
            scale.max_attach_per_day,
        )
        .unwrap(),
        // A tower id is a key.
        AccessConstraint::new("tower", &["tid"], &["region", "capacity"], 1).unwrap(),
    ])
}

/// The cached views: the customers on the `premium` plan (assumed small and
/// annotated as such by the operator) and the towers of the `north` region.
pub fn views() -> ViewSet {
    let mut v = ViewSet::empty();
    v.add_cq(
        "V_premium",
        parse_cq("V(cid) :- customer(cid, n, 'premium', r)").unwrap(),
    )
    .unwrap();
    v.add_cq(
        "V_north_towers",
        parse_cq("V(tid) :- tower(tid, 'north', c)").unwrap(),
    )
    .unwrap();
    v
}

/// The per-view output bounds an operator would declare (the premium segment
/// and the number of towers in one region are both small and known).
pub fn view_bounds() -> Vec<(&'static str, usize)> {
    vec![("V_premium", 200), ("V_north_towers", 40)]
}

/// The rewriting setting for the CDR workload.
pub fn setting(scale: &CdrScale, bound_m: usize) -> RewritingSetting {
    RewritingSetting::new(schema(), access_schema(scale), views(), bound_m)
}

/// One query of the workload, with a short label for reports.
#[derive(Debug, Clone)]
pub struct CdrQuery {
    /// Short name used in experiment tables.
    pub name: &'static str,
    /// The query itself.
    pub query: ConjunctiveQuery,
    /// Whether the workload designer expects a bounded rewriting to exist
    /// (used to sanity-check the experiment, not fed to the algorithms).
    pub expected_bounded: bool,
}

/// The query workload: parameterised families instantiated for a given
/// customer id and day.  Nine of the ten templates have bounded rewritings
/// (matching the paper's ">90 % of the workload improves" claim); the last
/// one asks for all callers of a callee, which no constraint or view bounds.
pub fn workload(cid: i64, day: i64) -> Vec<CdrQuery> {
    let q = |name: &'static str, text: String, expected_bounded: bool| CdrQuery {
        name,
        query: parse_cq(&text).expect("workload query parses"),
        expected_bounded,
    };
    vec![
        q(
            "callees_of_day",
            format!("Q(callee) :- calls({cid}, {day}, callee, dur)"),
            true,
        ),
        q(
            "callee_regions",
            format!(
                "Q(callee, region) :- calls({cid}, {day}, callee, dur), \
                 customer(callee, n, p, region)"
            ),
            true,
        ),
        q(
            "towers_visited",
            format!("Q(t) :- attach({cid}, {day}, t)"),
            true,
        ),
        q(
            "regions_visited",
            format!("Q(r) :- attach({cid}, {day}, t), tower(t, r, c)"),
            true,
        ),
        q(
            "call_partners_plans",
            format!(
                "Q(callee, plan) :- calls({cid}, {day}, callee, dur), \
                 customer(callee, n, plan, r)"
            ),
            true,
        ),
        q(
            "premium_callees",
            format!("Q(callee) :- calls({cid}, {day}, callee, dur), V_premium(callee)"),
            true,
        ),
        q(
            "premium_callee_towers",
            format!(
                "Q(callee, t) :- calls({cid}, {day}, callee, dur), V_premium(callee), \
                 attach(callee, {day}, t)"
            ),
            true,
        ),
        q(
            "north_tower_visits",
            format!("Q(t) :- attach({cid}, {day}, t), V_north_towers(t)"),
            true,
        ),
        q(
            "second_hop_callees",
            format!("Q(c2) :- calls({cid}, {day}, c1, d1), calls(c1, {day}, c2, d2)"),
            true,
        ),
        q(
            "who_called_me",
            format!("Q(caller) :- calls(caller, {day}, {cid}, dur)"),
            false,
        ),
    ]
}

/// Generate a CDR instance satisfying the access schema.
pub fn generate(scale: CdrScale) -> Database {
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let mut db = Database::empty(schema());
    let regions = ["north", "south", "east", "west"];
    let plans = ["basic", "standard", "premium"];

    for tid in 0..scale.towers {
        let region = regions[rng.gen_range(0..regions.len())];
        db.insert("tower", tuple![tid, region, rng.gen_range(10..1000i64)])
            .unwrap();
    }
    for cid in 0..scale.customers {
        // Keep the premium segment small so that the view-bound annotation of
        // `view_bounds()` is honest.
        let plan = if cid % 37 == 0 {
            "premium"
        } else {
            plans[rng.gen_range(0..2usize)]
        };
        let region = regions[rng.gen_range(0..regions.len())];
        db.insert("customer", tuple![cid, format!("c{cid}"), plan, region])
            .unwrap();
        for day in 0..scale.days {
            let calls = rng.gen_range(0..=scale.max_calls_per_day);
            for _ in 0..calls {
                let callee = rng.gen_range(0..scale.customers);
                let duration = rng.gen_range(1..3600i64);
                db.insert("calls", tuple![cid, day, callee, duration])
                    .unwrap();
            }
            let attaches = rng.gen_range(0..=scale.max_attach_per_day);
            for _ in 0..attaches {
                let t = rng.gen_range(0..scale.towers);
                db.insert("attach", tuple![cid, day, t]).unwrap();
            }
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqr_core::size_bounded::BoundedOutputOracle;
    use bqr_core::topped::ToppedChecker;

    fn small_scale() -> CdrScale {
        CdrScale {
            customers: 200,
            days: 5,
            max_calls_per_day: 4,
            max_attach_per_day: 3,
            towers: 20,
            seed: 5,
        }
    }

    #[test]
    fn generated_instances_satisfy_the_access_schema() {
        let scale = small_scale();
        let db = generate(scale);
        assert!(access_schema(&scale).satisfied_by(&db).unwrap());
        assert_eq!(db.relation("customer").unwrap().len(), 200);
        assert!(!db.relation("calls").unwrap().is_empty());
    }

    #[test]
    fn workload_matches_expected_boundedness() {
        let scale = small_scale();
        let setting = setting(&scale, 80);
        let mut oracle = BoundedOutputOracle::new(
            setting.schema.clone(),
            setting.access.clone(),
            setting.budget,
        );
        for (name, bound) in view_bounds() {
            oracle.annotate_view(name, bound);
        }
        let checker = ToppedChecker::with_oracle(&setting, oracle);
        let queries = workload(17, 2);
        assert_eq!(queries.len(), 10);
        let mut bounded = 0usize;
        for q in &queries {
            let analysis = checker.analyze_cq(&q.query).unwrap();
            assert_eq!(
                analysis.topped, q.expected_bounded,
                "{}: {:?}",
                q.name, analysis.reason
            );
            if analysis.topped {
                bounded += 1;
            }
        }
        assert_eq!(bounded, 9, "nine of the ten templates are rewritable");
    }

    #[test]
    fn views_materialize_small_extents() {
        let scale = small_scale();
        let db = generate(scale);
        let cache = views().materialize(&db).unwrap();
        let premium = cache.extent("V_premium").unwrap().len();
        assert!(
            premium > 0 && premium <= 200,
            "premium segment stays small: {premium}"
        );
        assert!(cache.extent("V_north_towers").unwrap().len() <= 40);
    }
}
