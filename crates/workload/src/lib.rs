//! # bqr-workload — data and query generators for the experiments
//!
//! The paper's quantitative claims are made on proprietary data (Facebook's
//! social graph, an industrial CDR dataset).  This crate provides the
//! synthetic substitutes described in DESIGN.md §2:
//!
//! * [`movies`] — the movie / Graph-Search setting of Example 1.1 (schema
//!   `R_0`, access schema `A_0`, query `Q_0`, view `V_1`), with a scalable
//!   instance generator;
//! * [`social`] — the Facebook Graph-Search example from the introduction
//!   (friends ≤ K, one dining per day), used for experiment E5;
//! * [`cdr`] — a call-detail-record schema, constraint set, view set and a
//!   parameterised query workload, used for experiment E6;
//! * [`random`] — a random acyclic-CQ workload generator, used for E7;
//! * [`discover`] — mining access constraints (`N` bounds) from data.
//!
//! Every generator is deterministic given its seed.

pub mod cdr;
pub mod discover;
pub mod movies;
pub mod random;
pub mod social;

pub use discover::discover_constraints;
