//! Error type for query construction and static analysis.

use bqr_data::DataError;
use std::error::Error;
use std::fmt;

/// Errors produced by query construction, parsing and the static analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An underlying data-layer error (unknown relation, arity mismatch, ...).
    Data(DataError),
    /// An atom's arity does not match the relation schema it refers to.
    AtomArity {
        relation: String,
        expected: usize,
        actual: usize,
    },
    /// The query refers to a relation (or view) not present in the schema.
    UnknownRelation(String),
    /// A head term uses a variable that never occurs in the body (unsafe).
    UnsafeHeadVariable(String),
    /// The disjuncts of a union query do not share the same head arity.
    MismatchedUnionArity { expected: usize, actual: usize },
    /// An exploration budget was exhausted before the analysis could finish.
    BudgetExceeded(&'static str),
    /// The analysis requested is not defined for this query language
    /// fragment (e.g. converting a query with negation to a UCQ).
    UnsupportedFragment(String),
    /// A parse error, with a human-readable explanation.
    Parse(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Data(e) => write!(f, "{e}"),
            QueryError::AtomArity {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "atom over `{relation}` has {actual} arguments but the relation has arity {expected}"
            ),
            QueryError::UnknownRelation(r) => write!(f, "unknown relation or view `{r}`"),
            QueryError::UnsafeHeadVariable(v) => {
                write!(f, "head variable `{v}` does not occur in the query body")
            }
            QueryError::MismatchedUnionArity { expected, actual } => write!(
                f,
                "union disjunct has head arity {actual}, expected {expected}"
            ),
            QueryError::BudgetExceeded(what) => {
                write!(f, "analysis budget exceeded while {what}")
            }
            QueryError::UnsupportedFragment(msg) => write!(f, "unsupported query fragment: {msg}"),
            QueryError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl Error for QueryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QueryError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for QueryError {
    fn from(e: DataError) -> Self {
        QueryError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(QueryError::UnknownRelation("r".into())
            .to_string()
            .contains("r"));
        assert!(QueryError::UnsafeHeadVariable("x".into())
            .to_string()
            .contains("x"));
        assert!(QueryError::BudgetExceeded("enumerating element queries")
            .to_string()
            .contains("element"));
        assert!(QueryError::Parse("oops".into())
            .to_string()
            .contains("oops"));
        assert!(QueryError::MismatchedUnionArity {
            expected: 2,
            actual: 3
        }
        .to_string()
        .contains("3"));
        assert!(QueryError::AtomArity {
            relation: "movie".into(),
            expected: 4,
            actual: 2
        }
        .to_string()
        .contains("movie"));
        assert!(QueryError::UnsupportedFragment("negation".into())
            .to_string()
            .contains("negation"));
    }

    #[test]
    fn wraps_data_errors_with_source() {
        let e: QueryError = DataError::UnknownRelation("x".into()).into();
        assert!(e.to_string().contains("x"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&QueryError::Parse("p".into())).is_none());
    }
}
