//! Homomorphism search: matching the atoms of a conjunctive query against a
//! collection of relations.
//!
//! This is the single engine behind CQ evaluation (enumerate all matches and
//! project the head), the Chandra–Merlin containment test (match into a
//! canonical instance) and the `A`-equivalence procedures.  The search is a
//! backtracking index-nested-loop join; this module implements it as a small
//! *slot machine* compiled once per query:
//!
//! * **Variable slots** — a [`VarTable`] interns every variable name to a
//!   dense `u32` slot; the partial assignment is a flat `Vec<Option<Value>>`
//!   indexed by slot.  No string comparison or `BTreeMap` traffic happens
//!   inside the search.
//! * **Compiled atoms** — for each atom (in greedy join order) the positions
//!   bound at probe time are precompiled into a probe-key recipe, and the
//!   remaining positions into a short list of bind/check ops.  Positions
//!   covered by the probe key need no per-candidate re-checking: the hash
//!   index already groups tuples by exactly those values.
//! * **Cached indexes** — the per-atom hash indexes come from a
//!   [`bqr_data::IndexCache`], so a workload that repeatedly matches into the
//!   same relation (the dominant cost of repeated containment checks) builds
//!   each `(relation, access pattern)` index once instead of once per call.
//! * **Visitor-driven search** — [`HomSearch::run`] reports matches through a
//!   callback borrowing the slot array; nothing is materialised unless the
//!   caller asks for it.  `has_homomorphism` allocates no result vectors at
//!   all, and the inner candidate loop performs no heap allocation (`Value`
//!   clones are `Copy`-or-`Arc`) and no `String`-keyed map operations.
//!   [`Assignment`] maps are cloned only at match emission, for callers that
//!   need materialised name→value maps.
//!
//! The original `BTreeMap`-driven engine is retained verbatim in
//! [`reference`]: it is the oracle for the engine-equivalence property tests
//! and the baseline of the `hom` microbenchmarks.

use crate::atom::{Atom, Term};
use crate::error::QueryError;
use crate::Result;
use bqr_data::{IndexCache, Relation, RelationIndex, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::ControlFlow;
use std::rc::Rc;

/// A (partial) assignment of values to variable names — the materialised
/// form handed to callers that need maps; the engine itself works on slots.
pub type Assignment = BTreeMap<String, Value>;

/// How many results the caller wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchLimit {
    /// Stop after the first match (containment / satisfiability checks).
    First,
    /// Enumerate all matches, failing if more than the given number exist.
    AtMost(usize),
}

/// Interning of variable names to dense `u32` slots.
///
/// Queries have few variables, so lookup is a linear scan over a `Vec` —
/// cheaper in practice than hashing, and only used at compile time anyway.
#[derive(Debug, Default, Clone)]
pub struct VarTable {
    names: Vec<String>,
}

impl VarTable {
    fn intern(&mut self, name: &str) -> u32 {
        match self.names.iter().position(|n| n == name) {
            Some(i) => i as u32,
            None => {
                self.names.push(name.to_string());
                (self.names.len() - 1) as u32
            }
        }
    }

    /// The slot of `name`, if interned.
    pub fn slot(&self, name: &str) -> Option<u32> {
        self.names.iter().position(|n| n == name).map(|i| i as u32)
    }

    /// The name interned at `slot`.
    pub fn name(&self, slot: u32) -> &str {
        &self.names[slot as usize]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no variable is interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// One component of an atom's probe key.
#[derive(Debug)]
enum KeyPart {
    Const(Value),
    Slot(u32),
}

/// Per-position work left after the index probe: bind a fresh slot or check
/// a slot bound earlier *within the same atom* (every other position is part
/// of the probe key and therefore already guaranteed to match).
#[derive(Debug)]
enum PosOp {
    Bind { pos: usize, slot: u32 },
    CheckSlot { pos: usize, slot: u32 },
}

/// One atom compiled against the join order.
#[derive(Debug)]
struct CompiledAtom {
    key: Vec<KeyPart>,
    ops: Vec<PosOp>,
    /// Slots bound by this atom, for backtracking.
    bind_slots: Vec<u32>,
    index: Rc<RelationIndex>,
}

/// A view of one match during [`HomSearch::run`]: variable slots plus their
/// current values, alive only for the duration of the callback.
pub struct HomMatch<'a> {
    vars: &'a VarTable,
    slots: &'a [Option<Value>],
}

impl HomMatch<'_> {
    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.vars.slot(name).and_then(|s| self.value(s))
    }

    /// The value bound to `slot`, if any.
    pub fn value(&self, slot: u32) -> Option<&Value> {
        self.slots[slot as usize].as_ref()
    }

    /// The variable table of the search.
    pub fn vars(&self) -> &VarTable {
        self.vars
    }

    /// Materialise the match as a name→value map (this is the only point
    /// where the engine clones into an [`Assignment`]).
    pub fn to_assignment(&self) -> Assignment {
        let mut out = Assignment::new();
        for (i, v) in self.slots.iter().enumerate() {
            if let Some(v) = v {
                out.insert(self.vars.name(i as u32).to_string(), v.clone());
            }
        }
        out
    }
}

/// A homomorphism search compiled for one (atom list, relation set, initial
/// assignment) triple.  Compile once, [`run`](HomSearch::run) as often as
/// needed.
#[derive(Debug)]
pub struct HomSearch {
    vars: VarTable,
    atoms: Vec<CompiledAtom>,
    /// Slot values fixed by the initial assignment.
    initial: Vec<(u32, Value)>,
}

impl HomSearch {
    /// Compile the search.  Validates relation names and arities (the same
    /// errors the old engine reported) and builds or fetches the per-atom
    /// hash indexes through `cache`.
    pub fn compile(
        atoms: &[Atom],
        relations: &BTreeMap<String, &Relation>,
        initial: &Assignment,
        cache: &IndexCache,
    ) -> Result<Self> {
        for atom in atoms {
            let rel = relations
                .get(atom.relation())
                .ok_or_else(|| QueryError::UnknownRelation(atom.relation().to_string()))?;
            if rel.schema().arity() != atom.arity() {
                return Err(QueryError::AtomArity {
                    relation: atom.relation().to_string(),
                    expected: rel.schema().arity(),
                    actual: atom.arity(),
                });
            }
        }

        let order = order_atoms(atoms, initial);
        let mut vars = VarTable::default();
        let mut initial_slots = Vec::with_capacity(initial.len());
        for (name, value) in initial {
            initial_slots.push((vars.intern(name), value.clone()));
        }

        // `bound[slot]` = the slot has a value by the time the current atom
        // is reached (initially bound, or bound by an earlier atom).
        let mut bound: Vec<bool> = vec![true; initial_slots.len()];
        let mut compiled = Vec::with_capacity(order.len());
        let mut key_positions: Vec<usize> = Vec::new();
        for &atom_idx in &order {
            let atom = &atoms[atom_idx];
            key_positions.clear();
            let mut key = Vec::new();
            let mut ops = Vec::new();
            let mut bind_slots: Vec<u32> = Vec::new();
            for (pos, term) in atom.args().iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        key_positions.push(pos);
                        key.push(KeyPart::Const(c.clone()));
                    }
                    Term::Var(v) => {
                        let slot = vars.intern(v);
                        if bound.len() <= slot as usize {
                            bound.push(false);
                        }
                        if bound[slot as usize] {
                            key_positions.push(pos);
                            key.push(KeyPart::Slot(slot));
                        } else if bind_slots.contains(&slot) {
                            // Repeated occurrence within this atom: the first
                            // occurrence binds, later ones compare.
                            ops.push(PosOp::CheckSlot { pos, slot });
                        } else {
                            bind_slots.push(slot);
                            ops.push(PosOp::Bind { pos, slot });
                        }
                    }
                }
            }
            for &slot in &bind_slots {
                bound[slot as usize] = true;
            }
            let index = cache.index_for(relations[atom.relation()], &key_positions);
            compiled.push(CompiledAtom {
                key,
                ops,
                bind_slots,
                index,
            });
        }
        Ok(HomSearch {
            vars,
            atoms: compiled,
            initial: initial_slots,
        })
    }

    /// The variable table (name ↔ slot mapping) of the compiled search.
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// Run the search, invoking `visit` once per homomorphism.  Returning
    /// `ControlFlow::Break(())` from the callback stops the enumeration.
    pub fn run(&self, mut visit: impl FnMut(HomMatch<'_>) -> ControlFlow<()>) -> Result<()> {
        self.try_run(|m| Ok(visit(m))).map(|_| ())
    }

    /// Like [`run`](HomSearch::run), but the callback may fail; the error
    /// aborts the search and is propagated.
    pub fn try_run(
        &self,
        mut visit: impl FnMut(HomMatch<'_>) -> Result<ControlFlow<()>>,
    ) -> Result<ControlFlow<()>> {
        let mut slots: Vec<Option<Value>> = vec![None; self.vars.len()];
        for (slot, value) in &self.initial {
            slots[*slot as usize] = Some(value.clone());
        }
        let mut key_buf: Vec<Value> = Vec::new();
        self.search(0, &mut slots, &mut key_buf, &mut visit)
    }

    fn search(
        &self,
        depth: usize,
        slots: &mut Vec<Option<Value>>,
        key_buf: &mut Vec<Value>,
        visit: &mut dyn FnMut(HomMatch<'_>) -> Result<ControlFlow<()>>,
    ) -> Result<ControlFlow<()>> {
        if depth == self.atoms.len() {
            return visit(HomMatch {
                vars: &self.vars,
                slots,
            });
        }
        let atom = &self.atoms[depth];

        // Build the probe key into the shared scratch buffer (its capacity
        // is reused across the whole search); the buffer is free for reuse
        // by deeper levels as soon as the probe below returns.
        key_buf.clear();
        for part in &atom.key {
            key_buf.push(match part {
                KeyPart::Const(c) => c.clone(),
                KeyPart::Slot(s) => slots[*s as usize]
                    .clone()
                    .expect("probe-key slots are bound by construction"),
            });
        }

        'candidates: for &ti in atom.index.probe(key_buf) {
            let tuple = atom.index.tuple(ti);
            for op in &atom.ops {
                match op {
                    PosOp::Bind { pos, slot } => {
                        slots[*slot as usize] = Some(tuple[*pos].clone());
                    }
                    PosOp::CheckSlot { pos, slot } => {
                        if slots[*slot as usize].as_ref() != Some(&tuple[*pos]) {
                            for &s in &atom.bind_slots {
                                slots[s as usize] = None;
                            }
                            continue 'candidates;
                        }
                    }
                }
            }
            let flow = self.search(depth + 1, slots, key_buf, visit)?;
            for &s in &atom.bind_slots {
                slots[s as usize] = None;
            }
            if flow == ControlFlow::Break(()) {
                return Ok(ControlFlow::Break(()));
            }
        }
        Ok(ControlFlow::Continue(()))
    }
}

/// Enumerate homomorphisms from `atoms` into the relations provided by
/// `relations` (one entry per distinct relation name used by the atoms),
/// starting from an initial partial assignment.
///
/// Returns the list of total assignments restricted to the variables of the
/// atoms (plus whatever the initial assignment already bound).  Builds its
/// indexes into a transient cache; use [`enumerate_homomorphisms_cached`]
/// when making repeated calls against the same relations.
pub fn enumerate_homomorphisms(
    atoms: &[Atom],
    relations: &BTreeMap<String, &Relation>,
    initial: &Assignment,
    limit: MatchLimit,
) -> Result<Vec<Assignment>> {
    enumerate_homomorphisms_cached(atoms, relations, initial, limit, &IndexCache::new())
}

/// [`enumerate_homomorphisms`] with caller-provided index caching.
pub fn enumerate_homomorphisms_cached(
    atoms: &[Atom],
    relations: &BTreeMap<String, &Relation>,
    initial: &Assignment,
    limit: MatchLimit,
    cache: &IndexCache,
) -> Result<Vec<Assignment>> {
    let search = HomSearch::compile(atoms, relations, initial, cache)?;
    let mut results = Vec::new();
    let _ = search.try_run(|m| {
        results.push(m.to_assignment());
        match limit {
            MatchLimit::First => Ok(ControlFlow::Break(())),
            MatchLimit::AtMost(max) => {
                if results.len() > max {
                    Err(QueryError::BudgetExceeded("enumerating homomorphisms"))
                } else {
                    Ok(ControlFlow::Continue(()))
                }
            }
        }
    })?;
    Ok(results)
}

/// Convenience wrapper: is there at least one homomorphism?
pub fn has_homomorphism(
    atoms: &[Atom],
    relations: &BTreeMap<String, &Relation>,
    initial: &Assignment,
) -> Result<bool> {
    has_homomorphism_cached(atoms, relations, initial, &IndexCache::new())
}

/// [`has_homomorphism`] with caller-provided index caching.  Materialises
/// nothing: the visitor short-circuits on the first match.
pub fn has_homomorphism_cached(
    atoms: &[Atom],
    relations: &BTreeMap<String, &Relation>,
    initial: &Assignment,
    cache: &IndexCache,
) -> Result<bool> {
    let search = HomSearch::compile(atoms, relations, initial, cache)?;
    let mut found = false;
    search.run(|_| {
        found = true;
        ControlFlow::Break(())
    })?;
    Ok(found)
}

/// Greedy join order: repeatedly pick the atom with the most bound positions
/// (constants, already-selected variables, initially bound variables), using
/// the smaller relation arity as a tie-break proxy.
fn order_atoms(atoms: &[Atom], initial: &Assignment) -> Vec<usize> {
    let mut remaining: BTreeSet<usize> = (0..atoms.len()).collect();
    let mut bound: BTreeSet<String> = initial.keys().cloned().collect();
    let mut order = Vec::with_capacity(atoms.len());
    while !remaining.is_empty() {
        let best = *remaining
            .iter()
            .max_by_key(|&&i| {
                let atom = &atoms[i];
                let bound_positions = atom
                    .args()
                    .iter()
                    .filter(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound.contains(v),
                    })
                    .count();
                // Prefer more bound positions, then fewer free variables.
                (bound_positions * 100).saturating_sub(atom.variables().len())
            })
            .expect("remaining is non-empty");
        remaining.remove(&best);
        for v in atoms[best].variables() {
            bound.insert(v);
        }
        order.push(best);
    }
    order
}

/// The pre-refactor `BTreeMap`-driven engine, kept as the oracle for the
/// engine-equivalence property tests and as the baseline of the `hom`
/// microbenchmarks.  Semantics are identical to the slot engine; performance
/// is not: it allocates a fresh probe key per node, clones the whole map per
/// match, and rebuilds its hash indexes on every call.
pub mod reference {
    use super::{order_atoms, Assignment, MatchLimit};
    use crate::atom::{Atom, Term};
    use crate::error::QueryError;
    use crate::Result;
    use bqr_data::{Relation, Tuple, Value};
    use std::collections::{BTreeMap, BTreeSet, HashMap};

    /// Enumerate homomorphisms with the naive engine.
    pub fn enumerate_homomorphisms(
        atoms: &[Atom],
        relations: &BTreeMap<String, &Relation>,
        initial: &Assignment,
        limit: MatchLimit,
    ) -> Result<Vec<Assignment>> {
        for atom in atoms {
            let rel = relations
                .get(atom.relation())
                .ok_or_else(|| QueryError::UnknownRelation(atom.relation().to_string()))?;
            if rel.schema().arity() != atom.arity() {
                return Err(QueryError::AtomArity {
                    relation: atom.relation().to_string(),
                    expected: rel.schema().arity(),
                    actual: atom.arity(),
                });
            }
        }

        let order = order_atoms(atoms, initial);
        let mut results = Vec::new();
        let mut assignment = initial.clone();
        let mut indices: Vec<AtomIndex<'_>> = Vec::with_capacity(order.len());

        let mut bound: BTreeSet<String> = initial.keys().cloned().collect();
        for &atom_idx in &order {
            let atom = &atoms[atom_idx];
            let rel = relations[atom.relation()];
            let index = AtomIndex::build(atom, rel, &bound);
            for v in atom.variables() {
                bound.insert(v);
            }
            indices.push(index);
        }

        search(
            &order,
            atoms,
            &indices,
            0,
            &mut assignment,
            &mut results,
            limit,
        )?;
        Ok(results)
    }

    /// Is there at least one homomorphism (naive engine)?
    pub fn has_homomorphism(
        atoms: &[Atom],
        relations: &BTreeMap<String, &Relation>,
        initial: &Assignment,
    ) -> Result<bool> {
        Ok(!enumerate_homomorphisms(atoms, relations, initial, MatchLimit::First)?.is_empty())
    }

    /// A hash index over one atom's relation, keyed on the positions that are
    /// bound when the atom is reached in the join order.  Rebuilt per call.
    struct AtomIndex<'a> {
        key_positions: Vec<usize>,
        map: HashMap<Vec<Value>, Vec<&'a Tuple>>,
    }

    impl<'a> AtomIndex<'a> {
        fn build(atom: &Atom, relation: &'a Relation, bound: &BTreeSet<String>) -> Self {
            let key_positions: Vec<usize> = atom
                .args()
                .iter()
                .enumerate()
                .filter(|(_, t)| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                })
                .map(|(i, _)| i)
                .collect();
            let mut map: HashMap<Vec<Value>, Vec<&'a Tuple>> = HashMap::new();
            for tuple in relation.iter() {
                let key: Vec<Value> = key_positions.iter().map(|&p| tuple[p].clone()).collect();
                map.entry(key).or_default().push(tuple);
            }
            AtomIndex { key_positions, map }
        }

        fn probe(&self, key: &[Value]) -> &[&'a Tuple] {
            self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        order: &[usize],
        atoms: &[Atom],
        indices: &[AtomIndex<'_>],
        depth: usize,
        assignment: &mut Assignment,
        results: &mut Vec<Assignment>,
        limit: MatchLimit,
    ) -> Result<()> {
        if depth == order.len() {
            results.push(assignment.clone());
            if let MatchLimit::AtMost(max) = limit {
                if results.len() > max {
                    return Err(QueryError::BudgetExceeded("enumerating homomorphisms"));
                }
            }
            return Ok(());
        }
        let atom = &atoms[order[depth]];
        let index = &indices[depth];

        let key: Vec<Value> = index
            .key_positions
            .iter()
            .map(|&p| match &atom.args()[p] {
                Term::Const(c) => c.clone(),
                Term::Var(v) => assignment
                    .get(v)
                    .cloned()
                    .expect("key positions only contain bound variables"),
            })
            .collect();

        'candidates: for tuple in index.probe(&key) {
            let mut newly_bound: Vec<String> = Vec::new();
            for (pos, term) in atom.args().iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        if &tuple[pos] != c {
                            undo(assignment, &newly_bound);
                            continue 'candidates;
                        }
                    }
                    Term::Var(v) => match assignment.get(v) {
                        Some(existing) => {
                            if existing != &tuple[pos] {
                                undo(assignment, &newly_bound);
                                continue 'candidates;
                            }
                        }
                        None => {
                            assignment.insert(v.clone(), tuple[pos].clone());
                            newly_bound.push(v.clone());
                        }
                    },
                }
            }
            search(order, atoms, indices, depth + 1, assignment, results, limit)?;
            undo(assignment, &newly_bound);
            if matches!(limit, MatchLimit::First) && !results.is_empty() {
                return Ok(());
            }
        }
        Ok(())
    }

    fn undo(assignment: &mut Assignment, newly_bound: &[String]) {
        for v in newly_bound {
            assignment.remove(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{movie_instance, va};
    use bqr_data::Value;

    fn relations(db: &bqr_data::Database) -> BTreeMap<String, &Relation> {
        db.relations().map(|r| (r.name().to_string(), r)).collect()
    }

    #[test]
    fn single_atom_enumeration() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![va("rating", &["m", "r"])];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(100))
                .unwrap();
        assert_eq!(matches.len(), 3);
        assert!(matches
            .iter()
            .all(|m| m.contains_key("m") && m.contains_key("r")));
    }

    #[test]
    fn constants_filter_candidates() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![Atom::new("rating", vec![Term::var("m"), Term::cnst(5)])];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(100))
                .unwrap();
        assert_eq!(matches.len(), 2, "movies 10 and 12 have rating 5");
    }

    #[test]
    fn join_across_atoms() {
        let db = movie_instance();
        let rels = relations(&db);
        // people from NASA together with the movies they like
        let atoms = vec![
            Atom::new(
                "person",
                vec![Term::var("p"), Term::var("n"), Term::cnst("NASA")],
            ),
            Atom::new(
                "like",
                vec![Term::var("p"), Term::var("m"), Term::cnst("movie")],
            ),
        ];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(100))
                .unwrap();
        assert_eq!(matches.len(), 2);
        let liked: BTreeSet<i64> = matches.iter().map(|m| m["m"].as_int().unwrap()).collect();
        assert_eq!(liked, [10i64, 12].into_iter().collect());
    }

    #[test]
    fn initial_assignment_restricts_matches() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![va("rating", &["m", "r"])];
        let mut initial = Assignment::new();
        initial.insert("m".to_string(), Value::int(10));
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &initial, MatchLimit::AtMost(100)).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0]["r"], Value::int(5));
        assert_eq!(matches[0]["m"], Value::int(10), "initial bindings survive");
    }

    #[test]
    fn repeated_variable_within_atom() {
        let db = movie_instance();
        let rels = relations(&db);
        // like(p, p, t): pid must equal the liked id — no such tuple exists.
        let atoms = vec![va("like", &["p", "p", "t"])];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(100))
                .unwrap();
        assert!(matches.is_empty());
    }

    #[test]
    fn first_limit_short_circuits() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![va("rating", &["m", "r"])];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::First).unwrap();
        assert_eq!(matches.len(), 1);
        assert!(has_homomorphism(&atoms, &rels, &Assignment::new()).unwrap());
    }

    #[test]
    fn at_most_limit_enforced() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![va("rating", &["m", "r"])];
        assert!(matches!(
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(1)),
            Err(QueryError::BudgetExceeded(_))
        ));
    }

    #[test]
    fn unknown_relation_and_arity_errors() {
        let db = movie_instance();
        let rels = relations(&db);
        assert!(enumerate_homomorphisms(
            &[va("nope", &["x"])],
            &rels,
            &Assignment::new(),
            MatchLimit::First
        )
        .is_err());
        assert!(enumerate_homomorphisms(
            &[va("rating", &["x"])],
            &rels,
            &Assignment::new(),
            MatchLimit::First
        )
        .is_err());
    }

    #[test]
    fn empty_atom_list_yields_trivial_match() {
        let db = movie_instance();
        let rels = relations(&db);
        let matches =
            enumerate_homomorphisms(&[], &rels, &Assignment::new(), MatchLimit::AtMost(10))
                .unwrap();
        assert_eq!(matches.len(), 1);
        assert!(matches[0].is_empty());
    }

    #[test]
    fn shared_cache_is_hit_on_repeated_runs() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![
            Atom::new(
                "person",
                vec![Term::var("p"), Term::var("n"), Term::cnst("NASA")],
            ),
            Atom::new(
                "like",
                vec![Term::var("p"), Term::var("m"), Term::cnst("movie")],
            ),
        ];
        let cache = IndexCache::new();
        let first = enumerate_homomorphisms_cached(
            &atoms,
            &rels,
            &Assignment::new(),
            MatchLimit::AtMost(100),
            &cache,
        )
        .unwrap();
        let misses_after_first = cache.misses();
        assert!(misses_after_first >= 2, "each atom builds one index");
        for _ in 0..5 {
            let again = enumerate_homomorphisms_cached(
                &atoms,
                &rels,
                &Assignment::new(),
                MatchLimit::AtMost(100),
                &cache,
            )
            .unwrap();
            assert_eq!(again, first);
        }
        assert_eq!(
            cache.misses(),
            misses_after_first,
            "repeat runs never rebuild"
        );
        assert!(cache.hits() >= 10);
    }

    #[test]
    fn visitor_run_short_circuits_without_materialising() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![va("rating", &["m", "r"])];
        let cache = IndexCache::new();
        let search = HomSearch::compile(&atoms, &rels, &Assignment::new(), &cache).unwrap();
        let mut seen = 0usize;
        search
            .run(|m| {
                assert!(m.get("m").is_some() && m.get("r").is_some());
                assert!(m.get("nope").is_none());
                seen += 1;
                if seen == 2 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .unwrap();
        assert_eq!(seen, 2, "break stops the enumeration early");
    }

    #[test]
    fn slot_engine_agrees_with_reference_on_fixture_queries() {
        let db = movie_instance();
        let rels = relations(&db);
        let cases: Vec<Vec<Atom>> = vec![
            vec![va("rating", &["m", "r"])],
            vec![va("like", &["p", "p", "t"])],
            vec![
                Atom::new(
                    "person",
                    vec![Term::var("p"), Term::var("n"), Term::cnst("NASA")],
                ),
                Atom::new(
                    "like",
                    vec![Term::var("p"), Term::var("m"), Term::cnst("movie")],
                ),
                va("rating", &["m", "r"]),
            ],
            vec![],
        ];
        for atoms in cases {
            let slot: BTreeSet<Assignment> = enumerate_homomorphisms(
                &atoms,
                &rels,
                &Assignment::new(),
                MatchLimit::AtMost(1000),
            )
            .unwrap()
            .into_iter()
            .collect();
            let naive: BTreeSet<Assignment> = reference::enumerate_homomorphisms(
                &atoms,
                &rels,
                &Assignment::new(),
                MatchLimit::AtMost(1000),
            )
            .unwrap()
            .into_iter()
            .collect();
            assert_eq!(slot, naive, "engines disagree on {atoms:?}");
        }
    }
}
