//! Homomorphism search: matching the atoms of a conjunctive query against a
//! collection of relations.
//!
//! This is the single engine behind CQ evaluation (enumerate all matches and
//! project the head), the Chandra–Merlin containment test (match into a
//! canonical instance) and the `A`-equivalence procedures.  The search is a
//! backtracking join: atoms are ordered greedily so that each atom shares as
//! many already-bound variables as possible with its predecessors, and for
//! every atom a hash index keyed on its bound positions is built once and
//! probed per candidate binding — i.e. an index-nested-loop join with
//! on-the-fly hash indices.

use crate::atom::{Atom, Term};
use crate::error::QueryError;
use crate::Result;
use bqr_data::{Relation, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A (partial) assignment of values to variable names.
pub type Assignment = BTreeMap<String, Value>;

/// How many results the caller wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchLimit {
    /// Stop after the first match (containment / satisfiability checks).
    First,
    /// Enumerate all matches, failing if more than the given number exist.
    AtMost(usize),
}

/// Enumerate homomorphisms from `atoms` into the relations provided by
/// `relations` (one entry per distinct relation name used by the atoms),
/// starting from an initial partial assignment.
///
/// Returns the list of total assignments restricted to the variables of the
/// atoms (plus whatever the initial assignment already bound).
pub fn enumerate_homomorphisms(
    atoms: &[Atom],
    relations: &BTreeMap<String, &Relation>,
    initial: &Assignment,
    limit: MatchLimit,
) -> Result<Vec<Assignment>> {
    for atom in atoms {
        let rel = relations
            .get(atom.relation())
            .ok_or_else(|| QueryError::UnknownRelation(atom.relation().to_string()))?;
        if rel.schema().arity() != atom.arity() {
            return Err(QueryError::AtomArity {
                relation: atom.relation().to_string(),
                expected: rel.schema().arity(),
                actual: atom.arity(),
            });
        }
    }

    let order = order_atoms(atoms, initial);
    let mut results = Vec::new();
    let mut assignment = initial.clone();
    let mut indices: Vec<AtomIndex<'_>> = Vec::with_capacity(order.len());

    // Pre-compute, for each atom in join order, which of its positions are
    // bound by the time it is processed (either initially bound variables,
    // constants, repeated variables within the atom, or variables bound by
    // earlier atoms), then build a hash index on those positions.
    let mut bound: BTreeSet<String> = initial.keys().cloned().collect();
    for &atom_idx in &order {
        let atom = &atoms[atom_idx];
        let rel = relations[atom.relation()];
        let index = AtomIndex::build(atom, rel, &bound);
        for v in atom.variables() {
            bound.insert(v);
        }
        indices.push(index);
    }

    search(&order, atoms, &indices, 0, &mut assignment, &mut results, limit)?;
    Ok(results)
}

/// Convenience wrapper: is there at least one homomorphism?
pub fn has_homomorphism(
    atoms: &[Atom],
    relations: &BTreeMap<String, &Relation>,
    initial: &Assignment,
) -> Result<bool> {
    Ok(!enumerate_homomorphisms(atoms, relations, initial, MatchLimit::First)?.is_empty())
}

/// Greedy join order: repeatedly pick the atom with the most bound positions
/// (constants, already-selected variables, initially bound variables), using
/// the smaller relation arity as a tie-break proxy.
fn order_atoms(atoms: &[Atom], initial: &Assignment) -> Vec<usize> {
    let mut remaining: BTreeSet<usize> = (0..atoms.len()).collect();
    let mut bound: BTreeSet<String> = initial.keys().cloned().collect();
    let mut order = Vec::with_capacity(atoms.len());
    while !remaining.is_empty() {
        let best = *remaining
            .iter()
            .max_by_key(|&&i| {
                let atom = &atoms[i];
                let bound_positions = atom
                    .args()
                    .iter()
                    .filter(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound.contains(v),
                    })
                    .count();
                // Prefer more bound positions, then fewer free variables.
                (bound_positions * 100).saturating_sub(atom.variables().len())
            })
            .expect("remaining is non-empty");
        remaining.remove(&best);
        for v in atoms[best].variables() {
            bound.insert(v);
        }
        order.push(best);
    }
    order
}

/// A hash index over one atom's relation, keyed on the positions that are
/// bound when the atom is reached in the join order.
struct AtomIndex<'a> {
    /// Positions of the atom that are bound at probe time.
    key_positions: Vec<usize>,
    /// Hash index from key values to tuples.
    map: HashMap<Vec<Value>, Vec<&'a Tuple>>,
}

impl<'a> AtomIndex<'a> {
    fn build(atom: &Atom, relation: &'a Relation, bound: &BTreeSet<String>) -> Self {
        let key_positions: Vec<usize> = atom
            .args()
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(v),
            })
            .map(|(i, _)| i)
            .collect();
        let mut map: HashMap<Vec<Value>, Vec<&'a Tuple>> = HashMap::new();
        for tuple in relation.iter() {
            let key: Vec<Value> = key_positions.iter().map(|&p| tuple[p].clone()).collect();
            map.entry(key).or_default().push(tuple);
        }
        AtomIndex { key_positions, map }
    }

    fn probe(&self, key: &[Value]) -> &[&'a Tuple] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[allow(clippy::too_many_arguments)]
fn search(
    order: &[usize],
    atoms: &[Atom],
    indices: &[AtomIndex<'_>],
    depth: usize,
    assignment: &mut Assignment,
    results: &mut Vec<Assignment>,
    limit: MatchLimit,
) -> Result<()> {
    if depth == order.len() {
        results.push(assignment.clone());
        if let MatchLimit::AtMost(max) = limit {
            if results.len() > max {
                return Err(QueryError::BudgetExceeded("enumerating homomorphisms"));
            }
        }
        return Ok(());
    }
    let atom = &atoms[order[depth]];
    let index = &indices[depth];

    // Build the probe key from the current assignment.
    let key: Vec<Value> = index
        .key_positions
        .iter()
        .map(|&p| match &atom.args()[p] {
            Term::Const(c) => c.clone(),
            Term::Var(v) => assignment
                .get(v)
                .cloned()
                .expect("key positions only contain bound variables"),
        })
        .collect();

    'candidates: for tuple in index.probe(&key) {
        // Try to extend the assignment with this tuple.
        let mut newly_bound: Vec<String> = Vec::new();
        for (pos, term) in atom.args().iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if &tuple[pos] != c {
                        undo(assignment, &newly_bound);
                        continue 'candidates;
                    }
                }
                Term::Var(v) => match assignment.get(v) {
                    Some(existing) => {
                        if existing != &tuple[pos] {
                            undo(assignment, &newly_bound);
                            continue 'candidates;
                        }
                    }
                    None => {
                        assignment.insert(v.clone(), tuple[pos].clone());
                        newly_bound.push(v.clone());
                    }
                },
            }
        }
        search(order, atoms, indices, depth + 1, assignment, results, limit)?;
        undo(assignment, &newly_bound);
        if matches!(limit, MatchLimit::First) && !results.is_empty() {
            return Ok(());
        }
    }
    Ok(())
}

fn undo(assignment: &mut Assignment, newly_bound: &[String]) {
    for v in newly_bound {
        assignment.remove(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{movie_instance, va};
    use bqr_data::Value;

    fn relations(db: &bqr_data::Database) -> BTreeMap<String, &Relation> {
        db.relations().map(|r| (r.name().to_string(), r)).collect()
    }

    #[test]
    fn single_atom_enumeration() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![va("rating", &["m", "r"])];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(100))
                .unwrap();
        assert_eq!(matches.len(), 3);
        assert!(matches.iter().all(|m| m.contains_key("m") && m.contains_key("r")));
    }

    #[test]
    fn constants_filter_candidates() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![Atom::new(
            "rating",
            vec![Term::var("m"), Term::cnst(5)],
        )];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(100))
                .unwrap();
        assert_eq!(matches.len(), 2, "movies 10 and 12 have rating 5");
    }

    #[test]
    fn join_across_atoms() {
        let db = movie_instance();
        let rels = relations(&db);
        // people from NASA together with the movies they like
        let atoms = vec![
            Atom::new("person", vec![Term::var("p"), Term::var("n"), Term::cnst("NASA")]),
            Atom::new("like", vec![Term::var("p"), Term::var("m"), Term::cnst("movie")]),
        ];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(100))
                .unwrap();
        assert_eq!(matches.len(), 2);
        let liked: BTreeSet<i64> = matches
            .iter()
            .map(|m| m["m"].as_int().unwrap())
            .collect();
        assert_eq!(liked, [10i64, 12].into_iter().collect());
    }

    #[test]
    fn initial_assignment_restricts_matches() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![va("rating", &["m", "r"])];
        let mut initial = Assignment::new();
        initial.insert("m".to_string(), Value::int(10));
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &initial, MatchLimit::AtMost(100)).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0]["r"], Value::int(5));
    }

    #[test]
    fn repeated_variable_within_atom() {
        let db = movie_instance();
        let rels = relations(&db);
        // like(p, p, t): pid must equal the liked id — no such tuple exists.
        let atoms = vec![va("like", &["p", "p", "t"])];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(100))
                .unwrap();
        assert!(matches.is_empty());
    }

    #[test]
    fn first_limit_short_circuits() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![va("rating", &["m", "r"])];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::First).unwrap();
        assert_eq!(matches.len(), 1);
        assert!(has_homomorphism(&atoms, &rels, &Assignment::new()).unwrap());
    }

    #[test]
    fn at_most_limit_enforced() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![va("rating", &["m", "r"])];
        assert!(matches!(
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(1)),
            Err(QueryError::BudgetExceeded(_))
        ));
    }

    #[test]
    fn unknown_relation_and_arity_errors() {
        let db = movie_instance();
        let rels = relations(&db);
        assert!(enumerate_homomorphisms(
            &[va("nope", &["x"])],
            &rels,
            &Assignment::new(),
            MatchLimit::First
        )
        .is_err());
        assert!(enumerate_homomorphisms(
            &[va("rating", &["x"])],
            &rels,
            &Assignment::new(),
            MatchLimit::First
        )
        .is_err());
    }

    #[test]
    fn empty_atom_list_yields_trivial_match() {
        let db = movie_instance();
        let rels = relations(&db);
        let matches =
            enumerate_homomorphisms(&[], &rels, &Assignment::new(), MatchLimit::AtMost(10))
                .unwrap();
        assert_eq!(matches.len(), 1);
        assert!(matches[0].is_empty());
    }
}
