//! Homomorphism search: matching the atoms of a conjunctive query against a
//! collection of relations.
//!
//! This is the single engine behind CQ evaluation (enumerate all matches and
//! project the head), the Chandra–Merlin containment test (match into a
//! canonical instance) and the `A`-equivalence procedures.  The module
//! compiles each query into a small *slot machine* chosen by the cost-based
//! planner in [`crate::planner`]:
//!
//! * **Variable slots** — a [`VarTable`] interns every variable name to a
//!   dense `u32` slot; the partial assignment is a flat `Vec<Option<ValueId>>`
//!   indexed by slot.  No string comparison or `BTreeMap` traffic happens
//!   inside the search.
//! * **Interned values** — relations are executed over per-epoch
//!   [`bqr_data::InternedSnapshot`]s: every [`Value`] is interned to a dense
//!   [`ValueId`] once at snapshot-build time, so the inner loop compares and
//!   hashes plain `u32`s.  Snapshots (and their [`bqr_data::RelationStats`])
//!   are shared process-wide across [`IndexCache`] instances.
//! * **Planned execution** — the planner picks between two compiled shapes.
//!   For acyclic probe structure, a greedy *cost-based atom order* (estimated
//!   probe fan-out `|R| / Π d_p` from the snapshot statistics, bushy in
//!   effect because disconnected cheap atoms may be interleaved); for cyclic
//!   structure (triangles, k-cycles — detected by the GYO reduction over
//!   free slots), a *generic join*: variables are eliminated one at a time
//!   and each candidate value must survive an intersection across every atom
//!   containing the variable, which is worst-case optimal where any atom
//!   order degenerates.  See [`crate::planner`] for the cost model and the
//!   exact trigger conditions; [`JoinStrategy::Heuristic`] keeps the PR 1
//!   "most bound positions first" order as the benchmark baseline.
//! * **Cached indexes** — the per-access-pattern hash indexes come from a
//!   [`bqr_data::IndexCache`], so a workload that repeatedly matches into
//!   the same relation (the dominant cost of repeated containment checks)
//!   builds each `(relation, access pattern)` index once instead of once per
//!   call.
//! * **Visitor-driven search** — [`HomSearch::run`] reports matches through a
//!   callback borrowing the slot array; nothing is materialised unless the
//!   caller asks for it.  `has_homomorphism` allocates no result vectors at
//!   all, and the atom-order candidate loop performs no heap allocation and
//!   no `String`-keyed map operations.  [`Assignment`] maps are cloned only
//!   at match emission, for callers that need materialised name→value maps.
//!
//! The original `BTreeMap`-driven engine is retained verbatim in
//! [`reference`]: it is the oracle for the engine-equivalence property tests
//! and the baseline of the `hom` microbenchmarks.

use crate::atom::{Atom, Term};
use crate::error::QueryError;
use crate::planner::{self, AtomShape, JoinStrategy, PlannedExecution, PlannerConfig, TermShape};
use crate::Result;
use bqr_data::{IndexCache, InternedIndex, Relation, Value, ValueId};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::ControlFlow;
use std::rc::Rc;

/// A (partial) assignment of values to variable names — the materialised
/// form handed to callers that need maps; the engine itself works on slots.
pub type Assignment = BTreeMap<String, Value>;

/// How many results the caller wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchLimit {
    /// Stop after the first match (containment / satisfiability checks).
    First,
    /// Enumerate all matches, failing if more than the given number exist.
    AtMost(usize),
}

/// Interning of variable names to dense `u32` slots.
///
/// Queries have few variables, so lookup is a linear scan over a `Vec` —
/// cheaper in practice than hashing, and only used at compile time anyway.
#[derive(Debug, Default, Clone)]
pub struct VarTable {
    names: Vec<String>,
}

impl VarTable {
    fn intern(&mut self, name: &str) -> u32 {
        match self.names.iter().position(|n| n == name) {
            Some(i) => i as u32,
            None => {
                self.names.push(name.to_string());
                (self.names.len() - 1) as u32
            }
        }
    }

    /// The slot of `name`, if interned.
    pub fn slot(&self, name: &str) -> Option<u32> {
        self.names.iter().position(|n| n == name).map(|i| i as u32)
    }

    /// The name interned at `slot`.
    pub fn name(&self, slot: u32) -> &str {
        &self.names[slot as usize]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no variable is interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// One component of a probe-key recipe, evaluated against the slot array.
#[derive(Debug)]
enum KeyPart {
    Const(ValueId),
    Slot(u32),
}

/// One component of a generic-join membership key: like [`KeyPart`], plus
/// the candidate value currently being tested.
#[derive(Debug)]
enum CheckPart {
    Const(ValueId),
    Slot(u32),
    Candidate,
}

/// Per-position work left after an index probe: bind a fresh slot or check
/// a slot bound earlier *within the same atom* (every other position is part
/// of the probe key and therefore already guaranteed to match).
#[derive(Debug)]
enum PosOp {
    Bind { pos: usize, slot: u32 },
    CheckSlot { pos: usize, slot: u32 },
}

/// One atom compiled against an atom order.
#[derive(Debug)]
struct CompiledAtom {
    key: Vec<KeyPart>,
    ops: Vec<PosOp>,
    /// Slots bound by this atom, for backtracking.
    bind_slots: Vec<u32>,
    index: Rc<InternedIndex>,
}

/// One atom's access paths at one generic-join level (one per atom that
/// contains the level's variable).
#[derive(Debug)]
struct GjAtomAccess {
    /// Index keyed on the context positions (constants, initially bound
    /// variables, variables eliminated earlier): enumerates matching rows.
    enum_index: Rc<InternedIndex>,
    enum_key: Vec<KeyPart>,
    /// First position of the level's variable in the atom: where candidate
    /// values are projected from.
    value_pos: usize,
    /// Index keyed on context positions *plus every position of the level's
    /// variable*: a non-empty probe certifies the atom admits the candidate.
    check_index: Rc<InternedIndex>,
    check_key: Vec<CheckPart>,
    /// The variable occurs more than once in the atom, so even the
    /// enumerating atom must re-check its own candidates.
    self_check: bool,
}

/// One variable-elimination level of a generic join.
#[derive(Debug)]
struct GjLevel {
    slot: u32,
    atoms: Vec<GjAtomAccess>,
}

/// An atom with no free variables: a single existence probe run before the
/// variable elimination starts.
#[derive(Debug)]
struct GjFilter {
    index: Rc<InternedIndex>,
    key: Vec<KeyPart>,
}

/// Generic-join execution plan.
#[derive(Debug)]
struct GjPlan {
    levels: Vec<GjLevel>,
    filters: Vec<GjFilter>,
}

/// The compiled execution shape.
#[derive(Debug)]
enum Exec {
    AtomOrder(Vec<CompiledAtom>),
    GenericJoin(GjPlan),
    /// Compilation proved the search empty: some query constant has never
    /// been interned, so it occurs in no snapshot and no probe can match.
    Unsat,
}

/// Reusable scratch space for one generic-join run: the shared probe-key
/// buffer plus one candidate buffer per elimination level, so the search
/// tree performs no per-node heap allocation (matching the atom-order path).
struct GjScratch {
    key_buf: Vec<ValueId>,
    candidates: Vec<Vec<ValueId>>,
}

/// A human-inspectable summary of the plan the engine compiled — used by the
/// determinism tests and the benchmark labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanSummary {
    /// Atoms probed in this order (indexes into the input atom list).
    AtomOrder(Vec<usize>),
    /// Generic join eliminating these variables, in order.
    GenericJoin(Vec<String>),
}

/// A view of one match during [`HomSearch::run`]: variable slots plus their
/// current values, alive only for the duration of the callback.
pub struct HomMatch<'a> {
    vars: &'a VarTable,
    slots: &'a [Option<ValueId>],
}

impl HomMatch<'_> {
    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.vars.slot(name).and_then(|s| self.value(s))
    }

    /// The value bound to `slot`, if any (resolved out of the value pool).
    pub fn value(&self, slot: u32) -> Option<Value> {
        self.slots[slot as usize].map(ValueId::value)
    }

    /// The interned id bound to `slot`, if any.
    pub fn id(&self, slot: u32) -> Option<ValueId> {
        self.slots[slot as usize]
    }

    /// The variable table of the search.
    pub fn vars(&self) -> &VarTable {
        self.vars
    }

    /// Materialise the match as a name→value map (this is the only point
    /// where the engine clones into an [`Assignment`]).
    pub fn to_assignment(&self) -> Assignment {
        let mut out = Assignment::new();
        for (i, v) in self.slots.iter().enumerate() {
            if let Some(v) = v {
                out.insert(self.vars.name(i as u32).to_string(), v.value());
            }
        }
        out
    }
}

/// A homomorphism search compiled for one (atom list, relation set, initial
/// assignment) triple.  Compile once, [`run`](HomSearch::run) as often as
/// needed.
#[derive(Debug)]
pub struct HomSearch {
    vars: VarTable,
    exec: Exec,
    /// Slot values fixed by the initial assignment.
    initial: Vec<(u32, ValueId)>,
    summary: PlanSummary,
}

impl HomSearch {
    /// Compile the search with the default (auto) planner configuration.
    /// Validates relation names and arities (the same errors the old engine
    /// reported) and builds or fetches the per-atom hash indexes through
    /// `cache`.
    pub fn compile(
        atoms: &[Atom],
        relations: &BTreeMap<String, &Relation>,
        initial: &Assignment,
        cache: &IndexCache,
    ) -> Result<Self> {
        HomSearch::compile_with(atoms, relations, initial, cache, &PlannerConfig::default())
    }

    /// [`compile`](HomSearch::compile) under an explicit planner
    /// configuration.
    pub fn compile_with(
        atoms: &[Atom],
        relations: &BTreeMap<String, &Relation>,
        initial: &Assignment,
        cache: &IndexCache,
        config: &PlannerConfig,
    ) -> Result<Self> {
        for atom in atoms {
            let rel = relations
                .get(atom.relation())
                .ok_or_else(|| QueryError::UnknownRelation(atom.relation().to_string()))?;
            if rel.schema().arity() != atom.arity() {
                return Err(QueryError::AtomArity {
                    relation: atom.relation().to_string(),
                    expected: rel.schema().arity(),
                    actual: atom.arity(),
                });
            }
        }

        // Slot numbering is declaration order (initial assignment first),
        // independent of the plan the planner picks.
        let mut vars = VarTable::default();
        let mut initial_slots = Vec::with_capacity(initial.len());
        for (name, value) in initial {
            initial_slots.push((vars.intern(name), ValueId::intern(value)));
        }
        let initial_len = initial_slots.len();

        let mut shapes: Vec<AtomShape> = Vec::with_capacity(atoms.len());
        for atom in atoms {
            let stats = cache.snapshot(relations[atom.relation()]).stats().clone();
            let terms = atom
                .args()
                .iter()
                .map(|t| match t {
                    Term::Const(_) => TermShape::Bound,
                    Term::Var(v) => {
                        let slot = vars.intern(v);
                        if (slot as usize) < initial_len {
                            TermShape::Bound
                        } else {
                            TermShape::Free(slot)
                        }
                    }
                })
                .collect();
            shapes.push(AtomShape { terms, stats });
        }

        let planned = match config.strategy {
            JoinStrategy::Heuristic => PlannedExecution::AtomOrder(order_atoms(atoms, initial)),
            _ => planner::plan(&shapes, vars.len(), config),
        };

        let (exec, summary) = match planned {
            PlannedExecution::AtomOrder(order) => {
                let exec = match compile_atom_order(
                    atoms,
                    relations,
                    cache,
                    &mut vars,
                    initial_len,
                    &order,
                ) {
                    Some(compiled) => Exec::AtomOrder(compiled),
                    None => Exec::Unsat,
                };
                (exec, PlanSummary::AtomOrder(order))
            }
            PlannedExecution::GenericJoin(var_order) => {
                let exec = match compile_generic_join(
                    atoms,
                    relations,
                    cache,
                    &vars,
                    initial_len,
                    &var_order,
                ) {
                    Some(plan) => Exec::GenericJoin(plan),
                    None => Exec::Unsat,
                };
                let names = var_order
                    .iter()
                    .map(|&s| vars.name(s).to_string())
                    .collect();
                (exec, PlanSummary::GenericJoin(names))
            }
        };
        Ok(HomSearch {
            vars,
            exec,
            initial: initial_slots,
            summary,
        })
    }

    /// The variable table (name ↔ slot mapping) of the compiled search.
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// What the planner compiled (for tests and benchmark labels).
    pub fn plan_summary(&self) -> &PlanSummary {
        &self.summary
    }

    /// Run the search, invoking `visit` once per homomorphism.  Returning
    /// `ControlFlow::Break(())` from the callback stops the enumeration.
    pub fn run(&self, mut visit: impl FnMut(HomMatch<'_>) -> ControlFlow<()>) -> Result<()> {
        self.try_run(|m| Ok(visit(m))).map(|_| ())
    }

    /// Like [`run`](HomSearch::run), but the callback may fail; the error
    /// aborts the search and is propagated.
    pub fn try_run(
        &self,
        mut visit: impl FnMut(HomMatch<'_>) -> Result<ControlFlow<()>>,
    ) -> Result<ControlFlow<()>> {
        let mut slots: Vec<Option<ValueId>> = vec![None; self.vars.len()];
        for (slot, value) in &self.initial {
            slots[*slot as usize] = Some(*value);
        }
        match &self.exec {
            Exec::AtomOrder(atoms) => {
                let mut key_buf: Vec<ValueId> = Vec::new();
                self.atom_search(atoms, 0, &mut slots, &mut key_buf, &mut |m| visit(m))
            }
            Exec::GenericJoin(plan) => {
                let mut scratch = GjScratch {
                    key_buf: Vec::new(),
                    candidates: vec![Vec::new(); plan.levels.len()],
                };
                for filter in &plan.filters {
                    build_key(&filter.key, &slots, &mut scratch.key_buf);
                    if filter.index.probe(&scratch.key_buf).is_empty() {
                        return Ok(ControlFlow::Continue(()));
                    }
                }
                self.gj_search(plan, 0, &mut slots, &mut scratch, &mut |m| visit(m))
            }
            Exec::Unsat => Ok(ControlFlow::Continue(())),
        }
    }

    fn atom_search(
        &self,
        atoms: &[CompiledAtom],
        depth: usize,
        slots: &mut Vec<Option<ValueId>>,
        key_buf: &mut Vec<ValueId>,
        visit: &mut dyn FnMut(HomMatch<'_>) -> Result<ControlFlow<()>>,
    ) -> Result<ControlFlow<()>> {
        if depth == atoms.len() {
            return visit(HomMatch {
                vars: &self.vars,
                slots,
            });
        }
        let atom = &atoms[depth];

        // Build the probe key into the shared scratch buffer (its capacity
        // is reused across the whole search); the buffer is free for reuse
        // by deeper levels as soon as the probe below returns.
        build_key(&atom.key, slots, key_buf);

        'candidates: for &ti in atom.index.probe(key_buf) {
            let row = atom.index.row(ti);
            for op in &atom.ops {
                match op {
                    PosOp::Bind { pos, slot } => {
                        slots[*slot as usize] = Some(row[*pos]);
                    }
                    PosOp::CheckSlot { pos, slot } => {
                        if slots[*slot as usize] != Some(row[*pos]) {
                            for &s in &atom.bind_slots {
                                slots[s as usize] = None;
                            }
                            continue 'candidates;
                        }
                    }
                }
            }
            let flow = self.atom_search(atoms, depth + 1, slots, key_buf, visit)?;
            for &s in &atom.bind_slots {
                slots[s as usize] = None;
            }
            if flow == ControlFlow::Break(()) {
                return Ok(ControlFlow::Break(()));
            }
        }
        Ok(ControlFlow::Continue(()))
    }

    fn gj_search(
        &self,
        plan: &GjPlan,
        level: usize,
        slots: &mut Vec<Option<ValueId>>,
        scratch: &mut GjScratch,
        visit: &mut dyn FnMut(HomMatch<'_>) -> Result<ControlFlow<()>>,
    ) -> Result<ControlFlow<()>> {
        if level == plan.levels.len() {
            return visit(HomMatch {
                vars: &self.vars,
                slots,
            });
        }
        let lv = &plan.levels[level];

        // Enumerate candidates from the atom with the fewest context
        // matches (classic generic join: smallest set drives the
        // intersection).
        let mut best = 0usize;
        let mut best_len = usize::MAX;
        for (i, a) in lv.atoms.iter().enumerate() {
            build_key(&a.enum_key, slots, &mut scratch.key_buf);
            let n = a.enum_index.probe(&scratch.key_buf).len();
            if n < best_len {
                best_len = n;
                best = i;
                if n == 0 {
                    return Ok(ControlFlow::Continue(()));
                }
            }
        }
        let driver = &lv.atoms[best];
        build_key(&driver.enum_key, slots, &mut scratch.key_buf);
        // This level's candidate buffer is taken out of the scratch for the
        // duration of the loop (deeper levels use their own buffers) and put
        // back before returning, so the whole search reuses one allocation
        // per level.
        let mut candidates = std::mem::take(&mut scratch.candidates[level]);
        candidates.clear();
        candidates.extend(
            driver
                .enum_index
                .probe(&scratch.key_buf)
                .iter()
                .map(|&r| driver.enum_index.row(r)[driver.value_pos]),
        );
        candidates.sort_unstable();
        candidates.dedup();

        let mut flow = ControlFlow::Continue(());
        'candidate: for &c in &candidates {
            for (i, a) in lv.atoms.iter().enumerate() {
                if i == best && !a.self_check {
                    continue;
                }
                build_check_key(&a.check_key, slots, c, &mut scratch.key_buf);
                if a.check_index.probe(&scratch.key_buf).is_empty() {
                    continue 'candidate;
                }
            }
            slots[lv.slot as usize] = Some(c);
            let deeper = self.gj_search(plan, level + 1, slots, scratch, visit);
            slots[lv.slot as usize] = None;
            match deeper {
                Ok(ControlFlow::Continue(())) => {}
                Ok(ControlFlow::Break(())) => {
                    flow = ControlFlow::Break(());
                    break;
                }
                Err(e) => {
                    scratch.candidates[level] = candidates;
                    return Err(e);
                }
            }
        }
        scratch.candidates[level] = candidates;
        Ok(flow)
    }
}

fn build_key(recipe: &[KeyPart], slots: &[Option<ValueId>], out: &mut Vec<ValueId>) {
    out.clear();
    for part in recipe {
        out.push(match part {
            KeyPart::Const(c) => *c,
            KeyPart::Slot(s) => {
                slots[*s as usize].expect("probe-key slots are bound by construction")
            }
        });
    }
}

fn build_check_key(
    recipe: &[CheckPart],
    slots: &[Option<ValueId>],
    candidate: ValueId,
    out: &mut Vec<ValueId>,
) {
    out.clear();
    for part in recipe {
        out.push(match part {
            CheckPart::Const(c) => *c,
            CheckPart::Slot(s) => {
                slots[*s as usize].expect("check-key slots are bound by construction")
            }
            CheckPart::Candidate => candidate,
        });
    }
}

/// Compile atoms for atom-at-a-time execution in the given order.
fn compile_atom_order(
    atoms: &[Atom],
    relations: &BTreeMap<String, &Relation>,
    cache: &IndexCache,
    vars: &mut VarTable,
    initial_len: usize,
    order: &[usize],
) -> Option<Vec<CompiledAtom>> {
    // `bound[slot]` = the slot has a value by the time the current atom
    // is reached (initially bound, or bound by an earlier atom).
    let mut bound: Vec<bool> = vec![false; vars.len()];
    for b in bound.iter_mut().take(initial_len) {
        *b = true;
    }
    let mut compiled = Vec::with_capacity(order.len());
    let mut key_positions: Vec<usize> = Vec::new();
    for &atom_idx in order {
        let atom = &atoms[atom_idx];
        key_positions.clear();
        let mut key = Vec::new();
        let mut ops = Vec::new();
        let mut bind_slots: Vec<u32> = Vec::new();
        for (pos, term) in atom.args().iter().enumerate() {
            match term {
                Term::Const(c) => {
                    // Every snapshot of this query's relations is already
                    // built (and interned) by `compile_with`, so a constant
                    // the pool has never seen occurs in no probed relation:
                    // the search is unsatisfiable and needs no pool entry.
                    key_positions.push(pos);
                    key.push(KeyPart::Const(ValueId::lookup(c)?));
                }
                Term::Var(v) => {
                    let slot = vars.intern(v);
                    if bound.len() <= slot as usize {
                        bound.push(false);
                    }
                    if bound[slot as usize] {
                        key_positions.push(pos);
                        key.push(KeyPart::Slot(slot));
                    } else if bind_slots.contains(&slot) {
                        // Repeated occurrence within this atom: the first
                        // occurrence binds, later ones compare.
                        ops.push(PosOp::CheckSlot { pos, slot });
                    } else {
                        bind_slots.push(slot);
                        ops.push(PosOp::Bind { pos, slot });
                    }
                }
            }
        }
        for &slot in &bind_slots {
            bound[slot as usize] = true;
        }
        let index = cache.interned_index_for(relations[atom.relation()], &key_positions);
        compiled.push(CompiledAtom {
            key,
            ops,
            bind_slots,
            index,
        });
    }
    Some(compiled)
}

/// Compile atoms for generic-join execution under the given variable order.
fn compile_generic_join(
    atoms: &[Atom],
    relations: &BTreeMap<String, &Relation>,
    cache: &IndexCache,
    vars: &VarTable,
    initial_len: usize,
    var_order: &[u32],
) -> Option<GjPlan> {
    // Elimination level of each slot (`None` for initially bound slots).
    let level_of = |slot: u32| -> Option<usize> { var_order.iter().position(|&s| s == slot) };
    let is_free = |slot: u32| (slot as usize) >= initial_len;

    let mut levels: Vec<GjLevel> = var_order
        .iter()
        .map(|&slot| GjLevel {
            slot,
            atoms: Vec::new(),
        })
        .collect();
    let mut filters: Vec<GjFilter> = Vec::new();

    for atom in atoms {
        let rel = relations[atom.relation()];
        // Slot of each position, if it is a free variable.
        let pos_slot: Vec<Option<u32>> = atom
            .args()
            .iter()
            .map(|t| match t {
                Term::Const(_) => None,
                Term::Var(v) => {
                    let slot = vars.slot(v).expect("all atom variables are interned");
                    is_free(slot).then_some(slot)
                }
            })
            .collect();
        let free_levels: BTreeSet<usize> = pos_slot
            .iter()
            .flatten()
            .map(|&s| level_of(s).expect("free slots appear in the variable order"))
            .collect();

        // A constant the pool has never seen occurs in no snapshot (all of
        // this query's snapshots are interned by now): unsatisfiable.
        let base_part = |pos: usize| -> Option<KeyPart> {
            match &atom.args()[pos] {
                Term::Const(c) => Some(KeyPart::Const(ValueId::lookup(c)?)),
                Term::Var(v) => Some(KeyPart::Slot(vars.slot(v).expect("interned"))),
            }
        };

        if free_levels.is_empty() {
            // No free variables: one existence probe over all positions.
            let all: Vec<usize> = (0..atom.arity()).collect();
            filters.push(GjFilter {
                index: cache.interned_index_for(rel, &all),
                key: all.iter().map(|&p| base_part(p)).collect::<Option<_>>()?,
            });
            continue;
        }

        for &level in &free_levels {
            let v_slot = var_order[level];
            // Context: constants, initially bound variables, and free
            // variables eliminated at an earlier level.
            let context: Vec<usize> = (0..atom.arity())
                .filter(|&p| match pos_slot[p] {
                    None => true,
                    Some(s) => level_of(s).expect("free slot has a level") < level,
                })
                .collect();
            let v_positions: Vec<usize> = (0..atom.arity())
                .filter(|&p| pos_slot[p] == Some(v_slot))
                .collect();
            let mut check_positions: Vec<usize> =
                context.iter().chain(v_positions.iter()).copied().collect();
            check_positions.sort_unstable();
            let check_key = check_positions
                .iter()
                .map(|&p| {
                    if v_positions.contains(&p) {
                        Some(CheckPart::Candidate)
                    } else {
                        match base_part(p)? {
                            KeyPart::Const(c) => Some(CheckPart::Const(c)),
                            KeyPart::Slot(s) => Some(CheckPart::Slot(s)),
                        }
                    }
                })
                .collect::<Option<_>>()?;
            levels[level].atoms.push(GjAtomAccess {
                enum_index: cache.interned_index_for(rel, &context),
                enum_key: context
                    .iter()
                    .map(|&p| base_part(p))
                    .collect::<Option<_>>()?,
                value_pos: v_positions[0],
                check_index: cache.interned_index_for(rel, &check_positions),
                check_key,
                self_check: v_positions.len() > 1,
            });
        }
    }
    Some(GjPlan { levels, filters })
}
/// Enumerate homomorphisms from `atoms` into the relations provided by
/// `relations` (one entry per distinct relation name used by the atoms),
/// starting from an initial partial assignment.
///
/// Returns the list of total assignments restricted to the variables of the
/// atoms (plus whatever the initial assignment already bound).  Builds its
/// indexes into a transient cache; use [`enumerate_homomorphisms_cached`]
/// when making repeated calls against the same relations.
pub fn enumerate_homomorphisms(
    atoms: &[Atom],
    relations: &BTreeMap<String, &Relation>,
    initial: &Assignment,
    limit: MatchLimit,
) -> Result<Vec<Assignment>> {
    enumerate_homomorphisms_cached(atoms, relations, initial, limit, &IndexCache::new())
}

/// [`enumerate_homomorphisms`] with caller-provided index caching.
pub fn enumerate_homomorphisms_cached(
    atoms: &[Atom],
    relations: &BTreeMap<String, &Relation>,
    initial: &Assignment,
    limit: MatchLimit,
    cache: &IndexCache,
) -> Result<Vec<Assignment>> {
    let search = HomSearch::compile(atoms, relations, initial, cache)?;
    let mut results = Vec::new();
    let _ = search.try_run(|m| {
        results.push(m.to_assignment());
        match limit {
            MatchLimit::First => Ok(ControlFlow::Break(())),
            MatchLimit::AtMost(max) => {
                if results.len() > max {
                    Err(QueryError::BudgetExceeded("enumerating homomorphisms"))
                } else {
                    Ok(ControlFlow::Continue(()))
                }
            }
        }
    })?;
    Ok(results)
}

/// Convenience wrapper: is there at least one homomorphism?
pub fn has_homomorphism(
    atoms: &[Atom],
    relations: &BTreeMap<String, &Relation>,
    initial: &Assignment,
) -> Result<bool> {
    has_homomorphism_cached(atoms, relations, initial, &IndexCache::new())
}

/// [`has_homomorphism`] with caller-provided index caching.  Materialises
/// nothing: the visitor short-circuits on the first match.
pub fn has_homomorphism_cached(
    atoms: &[Atom],
    relations: &BTreeMap<String, &Relation>,
    initial: &Assignment,
    cache: &IndexCache,
) -> Result<bool> {
    let search = HomSearch::compile(atoms, relations, initial, cache)?;
    let mut found = false;
    search.run(|_| {
        found = true;
        ControlFlow::Break(())
    })?;
    Ok(found)
}

/// Greedy join order: repeatedly pick the atom with the most bound positions
/// (constants, already-selected variables, initially bound variables), using
/// the smaller relation arity as a tie-break proxy.
fn order_atoms(atoms: &[Atom], initial: &Assignment) -> Vec<usize> {
    let mut remaining: BTreeSet<usize> = (0..atoms.len()).collect();
    let mut bound: BTreeSet<String> = initial.keys().cloned().collect();
    let mut order = Vec::with_capacity(atoms.len());
    while !remaining.is_empty() {
        let best = *remaining
            .iter()
            .max_by_key(|&&i| {
                let atom = &atoms[i];
                let bound_positions = atom
                    .args()
                    .iter()
                    .filter(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound.contains(v),
                    })
                    .count();
                // Prefer more bound positions, then fewer free variables.
                (bound_positions * 100).saturating_sub(atom.variables().len())
            })
            .expect("remaining is non-empty");
        remaining.remove(&best);
        for v in atoms[best].variables() {
            bound.insert(v);
        }
        order.push(best);
    }
    order
}

/// The pre-refactor `BTreeMap`-driven engine, kept as the oracle for the
/// engine-equivalence property tests and as the baseline of the `hom`
/// microbenchmarks.  Semantics are identical to the slot engine; performance
/// is not: it allocates a fresh probe key per node, clones the whole map per
/// match, and rebuilds its hash indexes on every call.
pub mod reference {
    use super::{order_atoms, Assignment, MatchLimit};
    use crate::atom::{Atom, Term};
    use crate::error::QueryError;
    use crate::Result;
    use bqr_data::{Relation, Tuple, Value};
    use std::collections::{BTreeMap, BTreeSet, HashMap};

    /// Enumerate homomorphisms with the naive engine.
    pub fn enumerate_homomorphisms(
        atoms: &[Atom],
        relations: &BTreeMap<String, &Relation>,
        initial: &Assignment,
        limit: MatchLimit,
    ) -> Result<Vec<Assignment>> {
        for atom in atoms {
            let rel = relations
                .get(atom.relation())
                .ok_or_else(|| QueryError::UnknownRelation(atom.relation().to_string()))?;
            if rel.schema().arity() != atom.arity() {
                return Err(QueryError::AtomArity {
                    relation: atom.relation().to_string(),
                    expected: rel.schema().arity(),
                    actual: atom.arity(),
                });
            }
        }

        let order = order_atoms(atoms, initial);
        let mut results = Vec::new();
        let mut assignment = initial.clone();
        let mut indices: Vec<AtomIndex<'_>> = Vec::with_capacity(order.len());

        let mut bound: BTreeSet<String> = initial.keys().cloned().collect();
        for &atom_idx in &order {
            let atom = &atoms[atom_idx];
            let rel = relations[atom.relation()];
            let index = AtomIndex::build(atom, rel, &bound);
            for v in atom.variables() {
                bound.insert(v);
            }
            indices.push(index);
        }

        search(
            &order,
            atoms,
            &indices,
            0,
            &mut assignment,
            &mut results,
            limit,
        )?;
        Ok(results)
    }

    /// Is there at least one homomorphism (naive engine)?
    pub fn has_homomorphism(
        atoms: &[Atom],
        relations: &BTreeMap<String, &Relation>,
        initial: &Assignment,
    ) -> Result<bool> {
        Ok(!enumerate_homomorphisms(atoms, relations, initial, MatchLimit::First)?.is_empty())
    }

    /// A hash index over one atom's relation, keyed on the positions that are
    /// bound when the atom is reached in the join order.  Rebuilt per call.
    struct AtomIndex<'a> {
        key_positions: Vec<usize>,
        map: HashMap<Vec<Value>, Vec<&'a Tuple>>,
    }

    impl<'a> AtomIndex<'a> {
        fn build(atom: &Atom, relation: &'a Relation, bound: &BTreeSet<String>) -> Self {
            let key_positions: Vec<usize> = atom
                .args()
                .iter()
                .enumerate()
                .filter(|(_, t)| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                })
                .map(|(i, _)| i)
                .collect();
            let mut map: HashMap<Vec<Value>, Vec<&'a Tuple>> = HashMap::new();
            for tuple in relation.iter() {
                let key: Vec<Value> = key_positions.iter().map(|&p| tuple[p].clone()).collect();
                map.entry(key).or_default().push(tuple);
            }
            AtomIndex { key_positions, map }
        }

        fn probe(&self, key: &[Value]) -> &[&'a Tuple] {
            self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        order: &[usize],
        atoms: &[Atom],
        indices: &[AtomIndex<'_>],
        depth: usize,
        assignment: &mut Assignment,
        results: &mut Vec<Assignment>,
        limit: MatchLimit,
    ) -> Result<()> {
        if depth == order.len() {
            results.push(assignment.clone());
            if let MatchLimit::AtMost(max) = limit {
                if results.len() > max {
                    return Err(QueryError::BudgetExceeded("enumerating homomorphisms"));
                }
            }
            return Ok(());
        }
        let atom = &atoms[order[depth]];
        let index = &indices[depth];

        let key: Vec<Value> = index
            .key_positions
            .iter()
            .map(|&p| match &atom.args()[p] {
                Term::Const(c) => c.clone(),
                Term::Var(v) => assignment
                    .get(v)
                    .cloned()
                    .expect("key positions only contain bound variables"),
            })
            .collect();

        'candidates: for tuple in index.probe(&key) {
            let mut newly_bound: Vec<String> = Vec::new();
            for (pos, term) in atom.args().iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        if &tuple[pos] != c {
                            undo(assignment, &newly_bound);
                            continue 'candidates;
                        }
                    }
                    Term::Var(v) => match assignment.get(v) {
                        Some(existing) => {
                            if existing != &tuple[pos] {
                                undo(assignment, &newly_bound);
                                continue 'candidates;
                            }
                        }
                        None => {
                            assignment.insert(v.clone(), tuple[pos].clone());
                            newly_bound.push(v.clone());
                        }
                    },
                }
            }
            search(order, atoms, indices, depth + 1, assignment, results, limit)?;
            undo(assignment, &newly_bound);
            if matches!(limit, MatchLimit::First) && !results.is_empty() {
                return Ok(());
            }
        }
        Ok(())
    }

    fn undo(assignment: &mut Assignment, newly_bound: &[String]) {
        for v in newly_bound {
            assignment.remove(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{movie_instance, va};
    use bqr_data::Value;

    fn relations(db: &bqr_data::Database) -> BTreeMap<String, &Relation> {
        db.relations().map(|r| (r.name().to_string(), r)).collect()
    }

    #[test]
    fn single_atom_enumeration() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![va("rating", &["m", "r"])];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(100))
                .unwrap();
        assert_eq!(matches.len(), 3);
        assert!(matches
            .iter()
            .all(|m| m.contains_key("m") && m.contains_key("r")));
    }

    #[test]
    fn constants_filter_candidates() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![Atom::new("rating", vec![Term::var("m"), Term::cnst(5)])];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(100))
                .unwrap();
        assert_eq!(matches.len(), 2, "movies 10 and 12 have rating 5");
    }

    #[test]
    fn join_across_atoms() {
        let db = movie_instance();
        let rels = relations(&db);
        // people from NASA together with the movies they like
        let atoms = vec![
            Atom::new(
                "person",
                vec![Term::var("p"), Term::var("n"), Term::cnst("NASA")],
            ),
            Atom::new(
                "like",
                vec![Term::var("p"), Term::var("m"), Term::cnst("movie")],
            ),
        ];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(100))
                .unwrap();
        assert_eq!(matches.len(), 2);
        let liked: BTreeSet<i64> = matches.iter().map(|m| m["m"].as_int().unwrap()).collect();
        assert_eq!(liked, [10i64, 12].into_iter().collect());
    }

    #[test]
    fn initial_assignment_restricts_matches() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![va("rating", &["m", "r"])];
        let mut initial = Assignment::new();
        initial.insert("m".to_string(), Value::int(10));
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &initial, MatchLimit::AtMost(100)).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0]["r"], Value::int(5));
        assert_eq!(matches[0]["m"], Value::int(10), "initial bindings survive");
    }

    #[test]
    fn repeated_variable_within_atom() {
        let db = movie_instance();
        let rels = relations(&db);
        // like(p, p, t): pid must equal the liked id — no such tuple exists.
        let atoms = vec![va("like", &["p", "p", "t"])];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(100))
                .unwrap();
        assert!(matches.is_empty());
    }

    #[test]
    fn first_limit_short_circuits() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![va("rating", &["m", "r"])];
        let matches =
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::First).unwrap();
        assert_eq!(matches.len(), 1);
        assert!(has_homomorphism(&atoms, &rels, &Assignment::new()).unwrap());
    }

    #[test]
    fn at_most_limit_enforced() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![va("rating", &["m", "r"])];
        assert!(matches!(
            enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), MatchLimit::AtMost(1)),
            Err(QueryError::BudgetExceeded(_))
        ));
    }

    #[test]
    fn unknown_relation_and_arity_errors() {
        let db = movie_instance();
        let rels = relations(&db);
        assert!(enumerate_homomorphisms(
            &[va("nope", &["x"])],
            &rels,
            &Assignment::new(),
            MatchLimit::First
        )
        .is_err());
        assert!(enumerate_homomorphisms(
            &[va("rating", &["x"])],
            &rels,
            &Assignment::new(),
            MatchLimit::First
        )
        .is_err());
    }

    #[test]
    fn empty_atom_list_yields_trivial_match() {
        let db = movie_instance();
        let rels = relations(&db);
        let matches =
            enumerate_homomorphisms(&[], &rels, &Assignment::new(), MatchLimit::AtMost(10))
                .unwrap();
        assert_eq!(matches.len(), 1);
        assert!(matches[0].is_empty());
    }

    #[test]
    fn shared_cache_is_hit_on_repeated_runs() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![
            Atom::new(
                "person",
                vec![Term::var("p"), Term::var("n"), Term::cnst("NASA")],
            ),
            Atom::new(
                "like",
                vec![Term::var("p"), Term::var("m"), Term::cnst("movie")],
            ),
        ];
        let cache = IndexCache::new();
        let first = enumerate_homomorphisms_cached(
            &atoms,
            &rels,
            &Assignment::new(),
            MatchLimit::AtMost(100),
            &cache,
        )
        .unwrap();
        let misses_after_first = cache.misses();
        assert!(misses_after_first >= 2, "each atom builds one index");
        for _ in 0..5 {
            let again = enumerate_homomorphisms_cached(
                &atoms,
                &rels,
                &Assignment::new(),
                MatchLimit::AtMost(100),
                &cache,
            )
            .unwrap();
            assert_eq!(again, first);
        }
        assert_eq!(
            cache.misses(),
            misses_after_first,
            "repeat runs never rebuild"
        );
        assert!(cache.hits() >= 10);
    }

    #[test]
    fn visitor_run_short_circuits_without_materialising() {
        let db = movie_instance();
        let rels = relations(&db);
        let atoms = vec![va("rating", &["m", "r"])];
        let cache = IndexCache::new();
        let search = HomSearch::compile(&atoms, &rels, &Assignment::new(), &cache).unwrap();
        let mut seen = 0usize;
        search
            .run(|m| {
                assert!(m.get("m").is_some() && m.get("r").is_some());
                assert!(m.get("nope").is_none());
                seen += 1;
                if seen == 2 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .unwrap();
        assert_eq!(seen, 2, "break stops the enumeration early");
    }

    fn graph_db() -> bqr_data::Database {
        let schema = bqr_data::DatabaseSchema::with_relations(&[("e", &["s", "d"])]).unwrap();
        let mut db = bqr_data::Database::empty(schema);
        for (a, b) in [
            (0, 1),
            (1, 2),
            (2, 0),
            (0, 3),
            (3, 4),
            (4, 0),
            (1, 3),
            (3, 1),
            (2, 2),
            (5, 5),
        ] {
            db.insert("e", bqr_data::tuple![a, b]).unwrap();
        }
        db
    }

    fn both_engines(
        atoms: &[Atom],
        rels: &BTreeMap<String, &Relation>,
        initial: &Assignment,
    ) -> (BTreeSet<Assignment>, BTreeSet<Assignment>) {
        let slot = enumerate_homomorphisms(atoms, rels, initial, MatchLimit::AtMost(10_000))
            .unwrap()
            .into_iter()
            .collect();
        let naive =
            reference::enumerate_homomorphisms(atoms, rels, initial, MatchLimit::AtMost(10_000))
                .unwrap()
                .into_iter()
                .collect();
        (slot, naive)
    }

    #[test]
    fn cyclic_queries_use_generic_join_and_agree_with_reference() {
        let db = graph_db();
        let rels = relations(&db);
        let triangle = vec![
            va("e", &["x", "y"]),
            va("e", &["y", "z"]),
            va("e", &["z", "x"]),
        ];
        let cache = IndexCache::new();
        let search = HomSearch::compile(&triangle, &rels, &Assignment::new(), &cache).unwrap();
        assert!(
            matches!(search.plan_summary(), PlanSummary::GenericJoin(_)),
            "triangles are cyclic: {:?}",
            search.plan_summary()
        );
        let (slot, naive) = both_engines(&triangle, &rels, &Assignment::new());
        assert!(!slot.is_empty(), "the graph contains triangles");
        assert_eq!(slot, naive);

        // 4-cycle, with and without an initial binding.
        let square = vec![
            va("e", &["a", "b"]),
            va("e", &["b", "c"]),
            va("e", &["c", "d"]),
            va("e", &["d", "a"]),
        ];
        let (slot, naive) = both_engines(&square, &rels, &Assignment::new());
        assert_eq!(slot, naive);
        let mut initial = Assignment::new();
        initial.insert("a".to_string(), Value::int(0));
        let (slot, naive) = both_engines(&square, &rels, &initial);
        assert_eq!(slot, naive);
    }

    #[test]
    fn generic_join_handles_repeated_variables_and_constant_atoms() {
        let db = graph_db();
        let rels = relations(&db);
        // Triangle plus a self-loop atom on one of its variables (repeated
        // variable within an atom) plus an all-constant existence check.
        let atoms = vec![
            va("e", &["x", "y"]),
            va("e", &["y", "z"]),
            va("e", &["z", "x"]),
            va("e", &["z", "z"]),
            Atom::new("e", vec![Term::cnst(0), Term::cnst(1)]),
        ];
        let (slot, naive) = both_engines(&atoms, &rels, &Assignment::new());
        assert_eq!(slot, naive);
        let zs: BTreeSet<Value> = slot.iter().map(|m| m["z"].clone()).collect();
        assert_eq!(
            zs,
            [Value::int(2), Value::int(5)].into_iter().collect(),
            "nodes 2 and 5 are the self-looped triangle corners"
        );

        // The all-constant filter can also be unsatisfiable.
        let atoms = vec![
            va("e", &["x", "y"]),
            va("e", &["y", "z"]),
            va("e", &["z", "x"]),
            Atom::new("e", vec![Term::cnst(7), Term::cnst(7)]),
        ];
        let (slot, naive) = both_engines(&atoms, &rels, &Assignment::new());
        assert!(slot.is_empty());
        assert_eq!(slot, naive);
    }

    #[test]
    fn never_interned_constants_compile_to_an_unsatisfiable_search() {
        let db = graph_db();
        let rels = relations(&db);
        // A constant value no snapshot (or other code path) has ever
        // interned: compilation proves emptiness without running a search,
        // and without minting a pool id for the constant.
        let ghost = Value::str("hom-test-never-interned-constant-3b1f");
        for strategy in [JoinStrategy::CostBased, JoinStrategy::GenericJoin] {
            let atoms = vec![
                va("e", &["x", "y"]),
                va("e", &["y", "z"]),
                va("e", &["z", "x"]),
                Atom::new("e", vec![Term::var("x"), Term::Const(ghost.clone())]),
            ];
            let cache = IndexCache::new();
            let search = HomSearch::compile_with(
                &atoms,
                &rels,
                &Assignment::new(),
                &cache,
                &PlannerConfig::with_strategy(strategy),
            )
            .unwrap();
            let mut n = 0usize;
            search
                .run(|_| {
                    n += 1;
                    ControlFlow::Continue(())
                })
                .unwrap();
            assert_eq!(n, 0, "{strategy:?}");
        }
        assert_eq!(
            bqr_data::ValueId::lookup(&ghost),
            None,
            "compilation must not mint ids for unmatched constants"
        );
    }

    #[test]
    fn planner_config_overrides_the_strategy() {
        let db = graph_db();
        let rels = relations(&db);
        let triangle = vec![
            va("e", &["x", "y"]),
            va("e", &["y", "z"]),
            va("e", &["z", "x"]),
        ];
        let cache = IndexCache::new();
        for (strategy, expect_gj) in [
            (JoinStrategy::CostBased, false),
            (JoinStrategy::Heuristic, false),
            (JoinStrategy::GenericJoin, true),
            (JoinStrategy::Auto, true),
        ] {
            let search = HomSearch::compile_with(
                &triangle,
                &rels,
                &Assignment::new(),
                &cache,
                &PlannerConfig::with_strategy(strategy),
            )
            .unwrap();
            assert_eq!(
                matches!(search.plan_summary(), PlanSummary::GenericJoin(_)),
                expect_gj,
                "{strategy:?}"
            );
            // Every strategy enumerates the same matches.
            let mut n = 0usize;
            search
                .run(|_| {
                    n += 1;
                    ControlFlow::Continue(())
                })
                .unwrap();
            assert_eq!(
                n, 8,
                "two 3-cycles (3 rotations each) plus two self-loop triangles"
            );
        }
    }

    #[test]
    fn compiled_plans_are_deterministic() {
        let db = graph_db();
        let rels = relations(&db);
        let atoms = vec![
            va("e", &["x", "y"]),
            va("e", &["y", "z"]),
            va("e", &["z", "x"]),
        ];
        let cache = IndexCache::new();
        let first = HomSearch::compile(&atoms, &rels, &Assignment::new(), &cache)
            .unwrap()
            .plan_summary()
            .clone();
        for _ in 0..5 {
            let again = HomSearch::compile(&atoms, &rels, &Assignment::new(), &cache)
                .unwrap()
                .plan_summary()
                .clone();
            assert_eq!(again, first, "same query, same stats, same plan");
        }
    }

    #[test]
    fn slot_engine_agrees_with_reference_on_fixture_queries() {
        let db = movie_instance();
        let rels = relations(&db);
        let cases: Vec<Vec<Atom>> = vec![
            vec![va("rating", &["m", "r"])],
            vec![va("like", &["p", "p", "t"])],
            vec![
                Atom::new(
                    "person",
                    vec![Term::var("p"), Term::var("n"), Term::cnst("NASA")],
                ),
                Atom::new(
                    "like",
                    vec![Term::var("p"), Term::var("m"), Term::cnst("movie")],
                ),
                va("rating", &["m", "r"]),
            ],
            vec![],
        ];
        for atoms in cases {
            let slot: BTreeSet<Assignment> = enumerate_homomorphisms(
                &atoms,
                &rels,
                &Assignment::new(),
                MatchLimit::AtMost(1000),
            )
            .unwrap()
            .into_iter()
            .collect();
            let naive: BTreeSet<Assignment> = reference::enumerate_homomorphisms(
                &atoms,
                &rels,
                &Assignment::new(),
                MatchLimit::AtMost(1000),
            )
            .unwrap()
            .into_iter()
            .collect();
            assert_eq!(slot, naive, "engines disagree on {atoms:?}");
        }
    }
}
