//! A small datalog-style text syntax for conjunctive queries, used by
//! examples, tests and the benchmark harness.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! rule      := head ":-" body
//! head      := IDENT "(" terms? ")"
//! body      := literal ("," literal)* | "true"
//! literal   := IDENT "(" terms ")" | term "=" term
//! term      := IDENT            (a variable)
//!            | NUMBER           (an integer constant)
//!            | 'text' | "text"  (a string constant)
//!            | #t | #f          (a boolean constant)
//! ```
//!
//! Example: `Q(mid) :- movie(mid, y, 'Universal', '2014'), rating(mid, 5)`.
//! A UCQ is written as several rules separated by `;` or newlines; all rules
//! must have the same head arity.

use crate::atom::{Atom, Term};
use crate::cq::ConjunctiveQuery;
use crate::error::QueryError;
use crate::fo::resolve_equalities;
use crate::ucq::UnionQuery;
use crate::Result;
use bqr_data::Value;

/// Parse a single conjunctive-query rule.
pub fn parse_cq(input: &str) -> Result<ConjunctiveQuery> {
    let mut p = Parser::new(input);
    let cq = p.rule()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(cq)
}

/// Parse a union of conjunctive queries: one rule per line (or separated by
/// `;`), all with the same head arity.
pub fn parse_ucq(input: &str) -> Result<UnionQuery> {
    let mut disjuncts = Vec::new();
    for part in input.split([';', '\n']) {
        let trimmed = part.trim();
        if trimmed.is_empty() {
            continue;
        }
        disjuncts.push(parse_cq(trimmed)?);
    }
    UnionQuery::new(disjuncts)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn error(&self, msg: &str) -> QueryError {
        QueryError::Parse(format!("{msg} at byte {} of {:?}", self.pos, self.input))
    }

    fn rest(&self) -> &str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<()> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{token}`")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let rest = self.rest();
        let mut len = 0;
        for (i, c) in rest.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || c == '_'
            };
            if ok {
                len = i + c.len_utf8();
            } else {
                break;
            }
        }
        if len == 0 {
            return Err(self.error("expected an identifier"));
        }
        let name = rest[..len].to_string();
        self.pos += len;
        Ok(name)
    }

    fn term(&mut self) -> Result<Term> {
        self.skip_ws();
        let rest = self.rest();
        let first = rest
            .chars()
            .next()
            .ok_or_else(|| self.error("expected a term"))?;
        match first {
            '\'' | '"' => {
                let quote = first;
                let inner = &rest[1..];
                let end = inner
                    .find(quote)
                    .ok_or_else(|| self.error("unterminated string literal"))?;
                let text = inner[..end].to_string();
                self.pos += 1 + end + 1;
                Ok(Term::cnst(text))
            }
            '#' => {
                if rest.starts_with("#t") {
                    self.pos += 2;
                    Ok(Term::cnst(true))
                } else if rest.starts_with("#f") {
                    self.pos += 2;
                    Ok(Term::cnst(false))
                } else {
                    Err(self.error("expected `#t` or `#f`"))
                }
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut len = if c == '-' { 1 } else { 0 };
                for (i, ch) in rest.char_indices().skip(len) {
                    if ch.is_ascii_digit() {
                        len = i + 1;
                    } else {
                        break;
                    }
                }
                let text = &rest[..len];
                let value: i64 = text
                    .parse()
                    .map_err(|_| self.error("invalid integer literal"))?;
                self.pos += len;
                Ok(Term::Const(Value::Int(value)))
            }
            _ => Ok(Term::Var(self.ident()?)),
        }
    }

    fn term_list(&mut self) -> Result<Vec<Term>> {
        let mut terms = Vec::new();
        self.skip_ws();
        if self.rest().starts_with(')') {
            return Ok(terms);
        }
        loop {
            terms.push(self.term()?);
            if !self.eat(",") {
                break;
            }
        }
        Ok(terms)
    }

    fn rule(&mut self) -> Result<ConjunctiveQuery> {
        // head
        let _name = self.ident()?;
        self.expect("(")?;
        let head = self.term_list()?;
        self.expect(")")?;
        self.expect(":-")?;

        // body
        let mut atoms = Vec::new();
        let mut eqs = Vec::new();
        self.skip_ws();
        if self.eat("true") {
            // empty body
        } else {
            loop {
                self.literal(&mut atoms, &mut eqs)?;
                if !self.eat(",") {
                    break;
                }
            }
        }
        resolve_equalities(head, atoms, eqs)?.ok_or_else(|| {
            QueryError::Parse("the rule equates two distinct constants and is always empty".into())
        })
    }

    fn literal(&mut self, atoms: &mut Vec<Atom>, eqs: &mut Vec<(Term, Term)>) -> Result<()> {
        // Either `name(terms)` or `term = term`.
        let start = self.pos;
        self.skip_ws();
        let looks_like_atom = {
            // An atom starts with an identifier immediately followed by `(`.
            let mut probe = Parser {
                input: self.input,
                pos: self.pos,
            };
            probe.ident().is_ok() && {
                probe.skip_ws();
                probe.rest().starts_with('(')
            }
        };
        if looks_like_atom {
            let name = self.ident()?;
            self.expect("(")?;
            let terms = self.term_list()?;
            self.expect(")")?;
            atoms.push(Atom::new(name, terms));
            Ok(())
        } else {
            self.pos = start;
            let left = self.term()?;
            self.expect("=")?;
            let right = self.term()?;
            eqs.push((left, right));
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::q0;
    use bqr_data::Value;

    #[test]
    fn parses_example_1_1_query() {
        let q = parse_cq(
            "Q(mid) :- person(xp, xp2, 'NASA'), movie(mid, ym, 'Universal', '2014'), \
             like(xp, mid, 'movie'), rating(mid, 5)",
        )
        .unwrap();
        assert_eq!(q.canonical_form(), q0().canonical_form());
    }

    #[test]
    fn parses_constants_of_all_kinds() {
        let q = parse_cq("Q(x) :- r(x, -7, \"two words\", #t, #f)").unwrap();
        let args = q.atoms()[0].args();
        assert_eq!(args[1], Term::cnst(-7));
        assert_eq!(args[2], Term::cnst("two words"));
        assert_eq!(args[3], Term::Const(Value::Bool(true)));
        assert_eq!(args[4], Term::Const(Value::Bool(false)));
    }

    #[test]
    fn parses_equalities_by_substitution() {
        let q = parse_cq("Q(x) :- r(x, y), y = 3, x = y").unwrap();
        assert_eq!(q.head()[0], Term::cnst(3));
        assert_eq!(q.atoms()[0].args(), &[Term::cnst(3), Term::cnst(3)]);
    }

    #[test]
    fn contradictory_equalities_rejected() {
        assert!(matches!(
            parse_cq("Q() :- r(x), x = 1, x = 2"),
            Err(QueryError::Parse(_))
        ));
    }

    #[test]
    fn boolean_and_empty_body_queries() {
        let q = parse_cq("Q() :- rating(m, 5)").unwrap();
        assert!(q.is_boolean());
        let q = parse_cq("Q() :- true").unwrap();
        assert!(q.is_boolean());
        assert!(q.atoms().is_empty());
    }

    #[test]
    fn unsafe_head_rejected() {
        assert!(parse_cq("Q(z) :- r(x, y)").is_err());
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse_cq("Q(x)").is_err());
        assert!(parse_cq("Q(x) :- r(x").is_err());
        assert!(parse_cq("Q(x) :- r(x) extra").is_err());
        assert!(parse_cq("Q(x) :- r('unterminated)").is_err());
        assert!(parse_cq("(x) :- r(x)").is_err());
        assert!(parse_cq("Q(x) :- r(#x)").is_err());
    }

    #[test]
    fn parses_ucq_with_semicolons_and_newlines() {
        let u = parse_ucq("Q(m) :- rating(m, 5);\n Q(m) :- rating(m, 3)\n\n Q(m) :- rating(m, 1)")
            .unwrap();
        assert_eq!(u.len(), 3);
        assert_eq!(u.arity(), 1);
        assert!(parse_ucq("Q(m) :- rating(m, 5); Q(m, n) :- rating(m, n)").is_err());
        assert!(parse_ucq("").is_err());
    }

    #[test]
    fn whitespace_is_insignificant() {
        let a = parse_cq("Q( x )   :-   r ( x , y ) , s(y)").unwrap();
        let b = parse_cq("Q(x):-r(x,y),s(y)").unwrap();
        assert_eq!(a.canonical_form(), b.canonical_form());
    }
}
