//! Acyclicity of conjunctive queries (the class ACQ of Section 4).
//!
//! A CQ is *acyclic* when its hypergraph — one vertex per variable, one
//! hyperedge per relation atom — has hypertree-width 1, which is equivalent
//! to the GYO reduction eliminating every vertex and edge.  The GYO reduction
//! repeatedly (i) removes vertices that occur in at most one hyperedge and
//! (ii) removes hyperedges contained in another hyperedge.

use crate::cq::ConjunctiveQuery;
use std::collections::BTreeSet;

/// The hypergraph of a conjunctive query.
#[derive(Debug, Clone)]
pub struct Hypergraph {
    /// One edge per atom: the set of variables occurring in it.
    pub edges: Vec<BTreeSet<String>>,
}

impl Hypergraph {
    /// Build the hypergraph of a query.
    pub fn of(cq: &ConjunctiveQuery) -> Self {
        Hypergraph {
            edges: cq.atoms().iter().map(|a| a.variables()).collect(),
        }
    }

    /// All vertices (variables).
    pub fn vertices(&self) -> BTreeSet<String> {
        self.edges.iter().flatten().cloned().collect()
    }

    /// Run the GYO reduction; returns the remaining (non-empty) edges.
    pub fn gyo_residue(&self) -> Vec<BTreeSet<String>> {
        gyo_residue_of(self.edges.iter().filter(|e| !e.is_empty()).cloned())
    }
}

/// The GYO reduction over arbitrary (`Ord`) vertex types.  The query
/// hypergraph uses variable names; the join planner in [`crate::hom`] runs
/// the same reduction over interned `u32` slots to detect cyclic probe
/// structure after initially-bound variables have been stripped.
pub fn gyo_residue_of<T: Ord + Clone>(
    edges: impl IntoIterator<Item = BTreeSet<T>>,
) -> Vec<BTreeSet<T>> {
    let mut edges: Vec<BTreeSet<T>> = edges.into_iter().filter(|e| !e.is_empty()).collect();
    loop {
        let mut changed = false;

        // Rule 1: remove vertices occurring in at most one edge.
        let mut counts: std::collections::BTreeMap<&T, usize> = std::collections::BTreeMap::new();
        for e in &edges {
            for v in e {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let isolated: BTreeSet<T> = counts
            .into_iter()
            .filter(|(_, c)| *c <= 1)
            .map(|(v, _)| v.clone())
            .collect();
        if !isolated.is_empty() {
            for e in &mut edges {
                let before = e.len();
                e.retain(|v| !isolated.contains(v));
                if e.len() != before {
                    changed = true;
                }
            }
        }
        edges.retain(|e| !e.is_empty());

        // Rule 2: remove edges contained in another edge.
        let mut keep: Vec<bool> = vec![true; edges.len()];
        for i in 0..edges.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..edges.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if edges[i].is_subset(&edges[j]) && (edges[i] != edges[j] || i > j) {
                    keep[i] = false;
                    changed = true;
                    break;
                }
            }
        }
        let filtered: Vec<BTreeSet<T>> = edges
            .into_iter()
            .zip(&keep)
            .filter(|(_, k)| **k)
            .map(|(e, _)| e)
            .collect();
        edges = filtered;

        if !changed {
            break;
        }
    }
    edges
}

/// Is the query acyclic (an ACQ)?
pub fn is_acyclic(cq: &ConjunctiveQuery) -> bool {
    Hypergraph::of(cq).gyo_residue().len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Term};
    use crate::testutil::{q0, va};

    fn boolean(atoms: Vec<Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(atoms).unwrap()
    }

    #[test]
    fn q0_is_acyclic() {
        assert!(is_acyclic(&q0()));
    }

    #[test]
    fn single_atom_and_empty_queries_are_acyclic() {
        assert!(is_acyclic(&boolean(vec![])));
        assert!(is_acyclic(&boolean(vec![va("r", &["x", "y", "z"])])));
        // All-constant atoms contribute empty edges and are trivially acyclic.
        assert!(is_acyclic(&boolean(vec![Atom::new(
            "r",
            vec![Term::cnst(1), Term::cnst(2)]
        )])));
    }

    #[test]
    fn path_is_acyclic_triangle_is_not() {
        let path = boolean(vec![
            va("e", &["x", "y"]),
            va("e", &["y", "z"]),
            va("e", &["z", "w"]),
        ]);
        assert!(is_acyclic(&path));

        let triangle = boolean(vec![
            va("e", &["x", "y"]),
            va("e", &["y", "z"]),
            va("e", &["z", "x"]),
        ]);
        assert!(!is_acyclic(&triangle));
    }

    #[test]
    fn star_join_is_acyclic() {
        let star = boolean(vec![
            va("r", &["c", "a"]),
            va("s", &["c", "b"]),
            va("t", &["c", "d"]),
        ]);
        assert!(is_acyclic(&star));
    }

    #[test]
    fn cycle_of_length_four_is_cyclic_but_with_chord_edgecase() {
        let square = boolean(vec![
            va("e", &["a", "b"]),
            va("e", &["b", "c"]),
            va("e", &["c", "d"]),
            va("e", &["d", "a"]),
        ]);
        assert!(!is_acyclic(&square));

        // Adding a big atom covering the whole cycle makes it acyclic
        // (every edge is contained in the big one).
        let covered = boolean(vec![
            va("e", &["a", "b"]),
            va("e", &["b", "c"]),
            va("e", &["c", "d"]),
            va("e", &["d", "a"]),
            va("big", &["a", "b", "c", "d"]),
        ]);
        assert!(is_acyclic(&covered));
    }

    #[test]
    fn duplicate_edges_do_not_confuse_reduction() {
        let q = boolean(vec![va("e", &["x", "y"]), va("e", &["x", "y"])]);
        assert!(is_acyclic(&q));
    }

    #[test]
    fn generic_residue_agrees_on_slot_edges() {
        // Triangle over u32 slots: cyclic.
        let triangle: Vec<BTreeSet<u32>> = vec![
            [0u32, 1].into_iter().collect(),
            [1u32, 2].into_iter().collect(),
            [2u32, 0].into_iter().collect(),
        ];
        assert!(gyo_residue_of(triangle).len() > 1);
        // Path: acyclic.
        let path: Vec<BTreeSet<u32>> = vec![
            [0u32, 1].into_iter().collect(),
            [1u32, 2].into_iter().collect(),
        ];
        assert!(gyo_residue_of(path).len() <= 1);
    }

    #[test]
    fn hypergraph_accessors() {
        let q = boolean(vec![va("e", &["x", "y"]), va("f", &["y", "z"])]);
        let h = Hypergraph::of(&q);
        assert_eq!(h.edges.len(), 2);
        assert_eq!(h.vertices().len(), 3);
        assert!(h.gyo_residue().len() <= 1);
    }
}
