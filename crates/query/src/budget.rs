//! Exploration budgets for the worst-case-exponential analyses.
//!
//! Several procedures in this crate (element-query enumeration,
//! `∃FO+` → UCQ expansion, homomorphism search, the exact VBRP search in
//! `bqr-core`) are worst-case exponential — the paper's lower bounds
//! (Σᵖ₃-completeness, coNP-hardness) say this is unavoidable.  Instead of
//! letting a pathological input spin forever, every such entry point takes a
//! [`Budget`] and fails fast with [`QueryError::BudgetExceeded`] once it is
//! exhausted.  The effective-syntax path (`bqr-core::topped`) never needs
//! these budgets; that asymmetry is precisely the paper's point.

use crate::error::QueryError;

/// Limits for the exponential analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of element queries materialised for one CQ.
    pub max_element_queries: usize,
    /// Maximum number of partition states explored while repairing a tableau
    /// towards an `A`-satisfying one.
    pub max_partitions: usize,
    /// Maximum number of CQ disjuncts produced when expanding an `∃FO+`
    /// query into a UCQ.
    pub max_disjuncts: usize,
    /// Maximum number of homomorphisms enumerated per containment /
    /// evaluation call on canonical instances.
    pub max_homomorphisms: usize,
    /// Maximum number of candidate plans enumerated by the exact VBRP search.
    pub max_candidate_plans: usize,
}

impl Budget {
    /// A budget ample enough for every construction appearing in the paper's
    /// examples and for the synthetic workloads of the benchmarks.
    pub fn generous() -> Self {
        Budget {
            max_element_queries: 20_000,
            max_partitions: 200_000,
            max_disjuncts: 4_096,
            max_homomorphisms: 1_000_000,
            max_candidate_plans: 2_000_000,
        }
    }

    /// A small budget for unit tests of the budget mechanism itself.
    pub fn tiny() -> Self {
        Budget {
            max_element_queries: 4,
            max_partitions: 8,
            max_disjuncts: 2,
            max_homomorphisms: 16,
            max_candidate_plans: 16,
        }
    }

    /// Helper: check a counter against a limit, producing the standard error.
    pub fn check(count: usize, limit: usize, what: &'static str) -> Result<(), QueryError> {
        if count > limit {
            Err(QueryError::BudgetExceeded(what))
        } else {
            Ok(())
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::generous()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_generous() {
        assert_eq!(Budget::default(), Budget::generous());
        assert!(Budget::generous().max_element_queries > Budget::tiny().max_element_queries);
    }

    #[test]
    fn check_helper() {
        assert!(Budget::check(3, 5, "x").is_ok());
        assert!(Budget::check(5, 5, "x").is_ok());
        assert!(matches!(
            Budget::check(6, 5, "testing"),
            Err(QueryError::BudgetExceeded("testing"))
        ));
    }
}
