//! Covered variables `cov(Q, A)` (Section 3.1 of the paper).
//!
//! For a CQ `Q` whose tableau satisfies `A`, a variable is *covered* when its
//! possible valuations are bounded by the cardinality constraints: starting
//! from the empty set, a variable `y` enters `cov(Q, A)` when some atom
//! `R(x̄, ȳ, z̄)` and constraint `R(X → Y, N)` place `y` in the `Y` positions
//! while every non-constant variable in the `X` positions is already covered.
//! Lemma 3.6 shows that `Q(v̄)` has bounded output iff every non-constant
//! head variable is covered.

use crate::atom::Term;
use crate::cq::ConjunctiveQuery;
use crate::Result;
use bqr_data::{AccessSchema, DatabaseSchema};
use std::collections::{BTreeMap, BTreeSet};

/// The result of the covered-variable fixpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// The covered (non-constant) variables.
    pub covered: BTreeSet<String>,
    /// A per-variable upper bound on the number of distinct values it can
    /// take on instances satisfying `A` (a product of constraint bounds along
    /// one derivation; an over-approximation, useful for plan-cost
    /// estimates).
    pub bounds: BTreeMap<String, usize>,
}

impl Coverage {
    /// Is a variable covered?
    pub fn contains(&self, var: &str) -> bool {
        self.covered.contains(var)
    }
}

/// Compute `cov(Q, A)` by the paper's fixpoint.
///
/// The computation itself does not require the tableau of `Q` to satisfy `A`
/// (it is purely syntactic); the *bounded-output characterisation* built on
/// it does, which is enforced by the callers in
/// [`crate::bounded_output`].
pub fn covered_variables(
    cq: &ConjunctiveQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
) -> Result<Coverage> {
    let mut covered: BTreeSet<String> = BTreeSet::new();
    let mut bounds: BTreeMap<String, usize> = BTreeMap::new();

    loop {
        let mut changed = false;
        for constraint in access.constraints() {
            let rel_schema = match schema.relation(constraint.relation()) {
                Some(r) => r,
                None => continue,
            };
            let x_pos = rel_schema.positions(constraint.x())?;
            let y_pos = rel_schema.positions(constraint.y())?;
            for atom in cq.atoms().iter().filter(|a| {
                a.relation() == constraint.relation() && a.arity() == rel_schema.arity()
            }) {
                // All non-constant variables in the X positions must already
                // be covered.
                let mut key_bound: usize = 1;
                let all_x_covered = x_pos.iter().all(|&p| match &atom.args()[p] {
                    Term::Const(_) => true,
                    Term::Var(v) => {
                        if covered.contains(v) {
                            key_bound = key_bound.saturating_mul(*bounds.get(v).unwrap_or(&1));
                            true
                        } else {
                            false
                        }
                    }
                });
                if !all_x_covered {
                    continue;
                }
                let value_bound = key_bound.saturating_mul(constraint.n());
                for &p in &y_pos {
                    if let Term::Var(v) = &atom.args()[p] {
                        if covered.insert(v.clone()) {
                            bounds.insert(v.clone(), value_bound);
                            changed = true;
                        } else if let Some(existing) = bounds.get_mut(v) {
                            if value_bound < *existing {
                                *existing = value_bound;
                                // A tighter bound may tighten downstream
                                // bounds, but coverage membership is already
                                // final; we accept the slightly looser
                                // downstream bounds rather than iterate to a
                                // numeric fixpoint.
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(Coverage { covered, bounds })
}

/// Lemma 3.6: does a CQ *whose tableau satisfies `A`* have bounded output?
/// (All non-constant head variables must be covered.)
pub fn satisfying_cq_has_bounded_output(
    cq: &ConjunctiveQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
) -> Result<bool> {
    let coverage = covered_variables(cq, access, schema)?;
    Ok(cq
        .head()
        .iter()
        .all(|t| matches!(t, Term::Const(_)) || coverage.contains(t.as_var().unwrap_or_default())))
}

/// An upper bound on `|Q(D)|` over instances `D |= A`, when the query (whose
/// tableau satisfies `A`) has bounded output: the product of the per-variable
/// bounds of its head variables.
pub fn output_bound(
    cq: &ConjunctiveQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
) -> Result<Option<usize>> {
    let coverage = covered_variables(cq, access, schema)?;
    let mut bound: usize = 1;
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for t in cq.head() {
        match t {
            Term::Const(_) => {}
            Term::Var(v) => {
                if !coverage.contains(v) {
                    return Ok(None);
                }
                // Repeated head variables do not multiply the bound.
                if seen.insert(v) {
                    bound = bound.saturating_mul(*coverage.bounds.get(v).unwrap_or(&1));
                }
            }
        }
    }
    Ok(Some(bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::testutil::{movie_access, movie_schema, q0, va};
    use bqr_data::AccessConstraint;

    #[test]
    fn q0_head_is_covered_via_movie_constraint() {
        // movie((studio, release) → mid, N0): studio and release are constants
        // in Q0, so `mid` is covered with bound N0.
        let access = movie_access(100);
        let cov = covered_variables(&q0(), &access, &movie_schema()).unwrap();
        assert!(cov.contains("mid"));
        assert_eq!(cov.bounds.get("mid"), Some(&100));
        // xp (the person) is not covered: no constraint reaches person/like.
        assert!(!cov.contains("xp"));
        assert!(satisfying_cq_has_bounded_output(&q0(), &access, &movie_schema()).unwrap());
        assert_eq!(
            output_bound(&q0(), &access, &movie_schema()).unwrap(),
            Some(100)
        );
    }

    #[test]
    fn chained_coverage_multiplies_bounds() {
        // Q(r) :- movie(m, n, "U", "2014"), rating(m, r)
        // mid covered with bound N0, then rank covered with bound N0 * 1.
        let q = ConjunctiveQuery::new(
            vec![Term::var("r")],
            vec![
                Atom::new(
                    "movie",
                    vec![
                        Term::var("m"),
                        Term::var("n"),
                        Term::cnst("U"),
                        Term::cnst("2014"),
                    ],
                ),
                va("rating", &["m", "r"]),
            ],
        )
        .unwrap();
        let access = movie_access(50);
        let cov = covered_variables(&q, &access, &movie_schema()).unwrap();
        assert!(cov.contains("m"));
        assert!(cov.contains("r"));
        assert_eq!(cov.bounds.get("r"), Some(&50));
        assert_eq!(
            output_bound(&q, &access, &movie_schema()).unwrap(),
            Some(50)
        );
    }

    #[test]
    fn uncovered_head_variable_means_unbounded() {
        // Q(p) :- person(p, n, "NASA") — no constraint on person.
        let q = ConjunctiveQuery::new(
            vec![Term::var("p")],
            vec![Atom::new(
                "person",
                vec![Term::var("p"), Term::var("n"), Term::cnst("NASA")],
            )],
        )
        .unwrap();
        let access = movie_access(10);
        assert!(!satisfying_cq_has_bounded_output(&q, &access, &movie_schema()).unwrap());
        assert_eq!(output_bound(&q, &access, &movie_schema()).unwrap(), None);
    }

    #[test]
    fn constant_head_terms_are_always_bounded() {
        let q = ConjunctiveQuery::new(vec![Term::cnst("fixed")], vec![va("rating", &["m", "r"])])
            .unwrap();
        let access = movie_access(10);
        assert!(satisfying_cq_has_bounded_output(&q, &access, &movie_schema()).unwrap());
        assert_eq!(output_bound(&q, &access, &movie_schema()).unwrap(), Some(1));
    }

    #[test]
    fn boolean_queries_are_trivially_bounded() {
        let q = q0().with_head(vec![]).unwrap();
        let access = movie_access(10);
        assert!(satisfying_cq_has_bounded_output(&q, &access, &movie_schema()).unwrap());
        assert_eq!(output_bound(&q, &access, &movie_schema()).unwrap(), Some(1));
    }

    #[test]
    fn example_3_5_covered_variable() {
        // Schema R(X, Y), access R(X → Y, 2); element query Q2 of the paper's
        // running example: the only non-constant variable x is covered
        // because the X-position of its atom holds a constant.
        let schema = DatabaseSchema::with_relations(&[("r", &["x", "y"])]).unwrap();
        let access =
            bqr_data::AccessSchema::new(vec![
                AccessConstraint::new("r", &["x"], &["y"], 2).unwrap()
            ]);
        // Q2(x) :- r(k, 1), r(k, 2), r(2, x)   (x2 = x3 = 2 after equalities)
        let q = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![
                Atom::new("r", vec![Term::cnst("k"), Term::cnst(1)]),
                Atom::new("r", vec![Term::cnst("k"), Term::cnst(2)]),
                Atom::new("r", vec![Term::cnst(2), Term::var("x")]),
            ],
        )
        .unwrap();
        let cov = covered_variables(&q, &access, &schema).unwrap();
        assert!(cov.contains("x"));
        assert_eq!(cov.bounds.get("x"), Some(&2));
    }

    #[test]
    fn coverage_ignores_unknown_relations_gracefully() {
        // A constraint on a relation the query never mentions changes nothing.
        let access = bqr_data::AccessSchema::new(vec![AccessConstraint::new(
            "rating",
            &["mid"],
            &["rank"],
            1,
        )
        .unwrap()]);
        let q = ConjunctiveQuery::new(vec![Term::var("p")], vec![va("person", &["p", "n", "a"])])
            .unwrap();
        let cov = covered_variables(&q, &access, &movie_schema()).unwrap();
        assert!(cov.covered.is_empty());
    }
}
