//! Tableaux / canonical instances of conjunctive queries.
//!
//! The tableau representation `(T_Q, ū)` of a CQ `Q(x̄)` is the instance
//! obtained by reading every relation atom as a tuple and treating variables
//! as fresh constants ("frozen" variables), together with the summary row
//! `ū` obtained from the head.  Canonical instances are the work-horse of
//! the Chandra–Merlin containment test, of the `T_Q |= A` checks behind
//! element queries, and of the counterexample constructions in the paper's
//! proofs (Lemma 3.6).

use crate::atom::Term;
use crate::cq::ConjunctiveQuery;
use crate::Result;
use bqr_data::{Database, DatabaseSchema, Tuple, Value};
use std::collections::BTreeMap;

/// Prefix used for frozen variable values.  A control character keeps frozen
/// values from colliding with any constant a realistic query would mention.
const FROZEN_PREFIX: &str = "\u{1}var:";

/// Freeze a variable name into a [`Value`].
pub fn freeze_var(name: &str) -> Value {
    Value::str(format!("{FROZEN_PREFIX}{name}"))
}

/// If `value` is a frozen variable, return its name.
pub fn frozen_var_name(value: &Value) -> Option<&str> {
    value.as_str().and_then(|s| s.strip_prefix(FROZEN_PREFIX))
}

/// The canonical instance of a CQ together with its summary (frozen head).
#[derive(Debug, Clone)]
pub struct CanonicalInstance {
    /// The tableau `T_Q` as a database instance (variables frozen).
    pub database: Database,
    /// The frozen value of every variable of the query.
    pub assignment: BTreeMap<String, Value>,
    /// The summary row `ū`: the head terms under the freezing assignment.
    pub summary: Tuple,
}

/// Build the canonical instance of `cq` over `schema`.
///
/// Every atom must reference a base relation of `schema` (unfold views
/// first); arities are validated.
pub fn canonical_instance(
    cq: &ConjunctiveQuery,
    schema: &DatabaseSchema,
) -> Result<CanonicalInstance> {
    cq.validate(schema, &BTreeMap::new())?;
    let mut database = Database::empty(schema.clone());
    let mut assignment = BTreeMap::new();
    for var in cq.variables() {
        assignment.insert(var.clone(), freeze_var(&var));
    }
    let term_value = |t: &Term, assignment: &BTreeMap<String, Value>| match t {
        Term::Var(v) => assignment[v].clone(),
        Term::Const(c) => c.clone(),
    };
    for atom in cq.atoms() {
        let tuple: Tuple = atom
            .args()
            .iter()
            .map(|t| term_value(t, &assignment))
            .collect();
        database.insert(atom.relation(), tuple)?;
    }
    let summary: Tuple = cq
        .head()
        .iter()
        .map(|t| term_value(t, &assignment))
        .collect();
    Ok(CanonicalInstance {
        database,
        assignment,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{movie_schema, q0};

    #[test]
    fn freeze_round_trip() {
        let v = freeze_var("mid");
        assert_eq!(frozen_var_name(&v), Some("mid"));
        assert_eq!(frozen_var_name(&Value::str("mid")), None);
        assert_eq!(frozen_var_name(&Value::int(3)), None);
        assert_ne!(freeze_var("x"), freeze_var("y"));
    }

    #[test]
    fn canonical_instance_of_q0() {
        let canon = canonical_instance(&q0(), &movie_schema()).unwrap();
        // One tuple per atom.
        assert_eq!(canon.database.size(), 4);
        // The summary is the frozen head variable.
        assert_eq!(canon.summary.arity(), 1);
        assert_eq!(frozen_var_name(&canon.summary[0]), Some("mid"));
        // Constants stay as themselves in the tableau.
        let movie = canon.database.relation("movie").unwrap();
        let row = movie.iter().next().unwrap();
        assert_eq!(row[2], Value::str("Universal"));
        assert_eq!(row[3], Value::str("2014"));
        assert_eq!(frozen_var_name(&row[0]), Some("mid"));
        // Every variable of the query is frozen.
        assert_eq!(canon.assignment.len(), q0().variables().len());
    }

    #[test]
    fn canonical_instance_requires_base_relations() {
        let q = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![crate::atom::Atom::new("V1", vec![Term::var("x")])],
        )
        .unwrap();
        assert!(canonical_instance(&q, &movie_schema()).is_err());
    }

    #[test]
    fn boolean_query_has_unit_summary() {
        let q = ConjunctiveQuery::boolean(vec![crate::atom::Atom::new(
            "rating",
            vec![Term::var("m"), Term::cnst(5)],
        )])
        .unwrap();
        let canon = canonical_instance(&q, &movie_schema()).unwrap();
        assert!(canon.summary.is_unit());
        assert_eq!(canon.database.size(), 1);
    }

    #[test]
    fn shared_variables_produce_shared_frozen_values() {
        let canon = canonical_instance(&q0(), &movie_schema()).unwrap();
        let like = canon.database.relation("like").unwrap();
        let rating = canon.database.relation("rating").unwrap();
        let like_row = like.iter().next().unwrap();
        let rating_row = rating.iter().next().unwrap();
        // `mid` is shared between like(.., mid, ..) and rating(mid, ..).
        assert_eq!(like_row[1], rating_row[0]);
    }
}
