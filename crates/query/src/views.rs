//! Views: named, `L`-definable queries whose extents are cached.
//!
//! A [`ViewSet`] `V` plays the role of the paper's set of views: each view is
//! a query over the base schema (in CQ, UCQ or FO), and bounded plans may read
//! the cached extent `V(D)` without incurring base-data I/O.
//! [`MaterializedViews`] holds those extents for one instance `D`.

use crate::cq::ConjunctiveQuery;
use crate::error::QueryError;
use crate::fo::{FoQuery, QueryLanguage};
use crate::ucq::UnionQuery;
use crate::Result;
use bqr_data::{Database, DatabaseSchema, Relation, RelationSchema, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The definition of one view.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewDefinition {
    /// A conjunctive-query view.
    Cq(ConjunctiveQuery),
    /// A union-of-conjunctive-queries view.
    Ucq(UnionQuery),
    /// A first-order view.
    Fo(FoQuery),
}

impl ViewDefinition {
    /// Output arity of the view.
    pub fn arity(&self) -> usize {
        match self {
            ViewDefinition::Cq(q) => q.arity(),
            ViewDefinition::Ucq(q) => q.arity(),
            ViewDefinition::Fo(q) => q.arity(),
        }
    }

    /// The language the view is defined in.
    pub fn language(&self) -> QueryLanguage {
        match self {
            ViewDefinition::Cq(_) => QueryLanguage::Cq,
            ViewDefinition::Ucq(_) => QueryLanguage::Ucq,
            ViewDefinition::Fo(q) => q.language(),
        }
    }

    /// Base relations mentioned by the definition.
    pub fn relation_names(&self) -> BTreeSet<String> {
        match self {
            ViewDefinition::Cq(q) => q.relation_names(),
            ViewDefinition::Ucq(q) => q.relation_names(),
            ViewDefinition::Fo(q) => q.body().relation_names(),
        }
    }

    /// The definition as a CQ, if it is one.
    pub fn as_cq(&self) -> Option<&ConjunctiveQuery> {
        match self {
            ViewDefinition::Cq(q) => Some(q),
            _ => None,
        }
    }
}

/// A set of named views over one database schema.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ViewSet {
    views: BTreeMap<String, ViewDefinition>,
}

impl ViewSet {
    /// The empty view set (`V = ∅`).
    pub fn empty() -> Self {
        ViewSet::default()
    }

    /// Add a CQ view.
    pub fn add_cq(&mut self, name: impl Into<String>, def: ConjunctiveQuery) -> Result<()> {
        self.add(name, ViewDefinition::Cq(def))
    }

    /// Add a UCQ view.
    pub fn add_ucq(&mut self, name: impl Into<String>, def: UnionQuery) -> Result<()> {
        self.add(name, ViewDefinition::Ucq(def))
    }

    /// Add an FO view.
    pub fn add_fo(&mut self, name: impl Into<String>, def: FoQuery) -> Result<()> {
        self.add(name, ViewDefinition::Fo(def))
    }

    /// Add a view of any definition kind.
    pub fn add(&mut self, name: impl Into<String>, def: ViewDefinition) -> Result<()> {
        let name = name.into();
        if self.views.contains_key(&name) {
            return Err(QueryError::UnsupportedFragment(format!(
                "view `{name}` is defined twice"
            )));
        }
        self.views.insert(name, def);
        Ok(())
    }

    /// Look up a view definition.
    pub fn get(&self, name: &str) -> Option<&ViewDefinition> {
        self.views.get(name)
    }

    /// True if `name` is a view in this set.
    pub fn contains(&self, name: &str) -> bool {
        self.views.contains_key(name)
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True if there are no views.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// View names in deterministic order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.views.keys().map(String::as_str)
    }

    /// Iterate over `(name, definition)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ViewDefinition)> {
        self.views.iter().map(|(n, d)| (n.as_str(), d))
    }

    /// Map of view name → arity, as needed by query validation.
    pub fn arities(&self) -> BTreeMap<String, usize> {
        self.views
            .iter()
            .map(|(n, d)| (n.clone(), d.arity()))
            .collect()
    }

    /// The largest language any view is defined in (`CQ ⊆ UCQ ⊆ ∃FO+ ⊆ FO`).
    pub fn language(&self) -> QueryLanguage {
        self.views
            .values()
            .map(ViewDefinition::language)
            .max()
            .unwrap_or(QueryLanguage::Cq)
    }

    /// Materialise every view over `db` using the naive evaluator.  UCQ
    /// views are evaluated one CQ disjunct at a time and the per-disjunct
    /// extents are kept alongside the union — the starting point the
    /// semi-naive maintenance in [`crate::maintain`] resumes from, so that a
    /// later mutation touching only some disjuncts re-derives only those.
    pub fn materialize(&self, db: &Database) -> Result<MaterializedViews> {
        let mut out = MaterializedViews::empty();
        for (name, def) in &self.views {
            let attrs: Vec<String> = (0..def.arity()).map(|i| format!("c{i}")).collect();
            let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            let schema = RelationSchema::new(name.clone(), &attr_refs)?;
            match def {
                ViewDefinition::Ucq(q) => {
                    let mut parts = Vec::with_capacity(q.disjuncts().len());
                    let mut union: BTreeSet<Tuple> = BTreeSet::new();
                    for cq in q.disjuncts() {
                        let tuples = crate::eval::eval_cq(cq, db, None)?;
                        union.extend(tuples.iter().cloned());
                        parts.push(Relation::from_tuples(schema.clone(), tuples)?);
                    }
                    out.insert_with_disjuncts(
                        name.clone(),
                        Relation::from_tuples(schema, union)?,
                        parts,
                    );
                }
                _ => {
                    let tuples: Vec<Tuple> = match def {
                        ViewDefinition::Cq(q) => crate::eval::eval_cq(q, db, None)?,
                        ViewDefinition::Ucq(_) => unreachable!("handled above"),
                        ViewDefinition::Fo(q) => crate::eval::eval_fo(q, db, None)?,
                    };
                    out.insert(name.clone(), Relation::from_tuples(schema, tuples)?);
                }
            }
        }
        Ok(out)
    }

    /// Unfold every view atom of `cq` by splicing in the (CQ) view
    /// definitions, renaming their existential variables apart.  Fails if a
    /// referenced view is not CQ-definable (use the FO unfolding instead).
    pub fn unfold_cq(&self, cq: &ConjunctiveQuery) -> Result<ConjunctiveQuery> {
        use crate::atom::Term;
        let mut atoms = Vec::new();
        let mut fresh = 0usize;
        // Bindings `caller variable = view-head constant` accumulated across
        // all unfoldings; applied to the whole query at the end so that every
        // occurrence of the variable (head, earlier and later atoms) agrees.
        let mut const_bindings: BTreeMap<String, Term> = BTreeMap::new();
        for atom in cq.atoms() {
            match self.views.get(atom.relation()) {
                None => atoms.push(atom.clone()),
                Some(ViewDefinition::Cq(def)) => {
                    if def.arity() != atom.arity() {
                        return Err(QueryError::AtomArity {
                            relation: atom.relation().to_string(),
                            expected: def.arity(),
                            actual: atom.arity(),
                        });
                    }
                    let def = def.rename_apart(&format!("__v{fresh}"));
                    fresh += 1;
                    // Map the view's head terms to the atom's argument terms.
                    let mut map = BTreeMap::new();
                    for (head_term, arg) in def.head().iter().zip(atom.args()) {
                        match head_term {
                            Term::Var(v) => {
                                map.insert(v.clone(), arg.clone());
                            }
                            Term::Const(c) => match arg {
                                Term::Var(av) => match const_bindings.get(av) {
                                    Some(Term::Const(prev)) if prev != c => {
                                        return Err(QueryError::UnsupportedFragment(
                                            "view unfolding equates two distinct constants"
                                                .to_string(),
                                        ))
                                    }
                                    _ => {
                                        const_bindings.insert(av.clone(), Term::Const(c.clone()));
                                    }
                                },
                                Term::Const(ac) if ac == c => {}
                                Term::Const(_) => {
                                    return Err(QueryError::UnsupportedFragment(
                                        "view unfolding equates two distinct constants".to_string(),
                                    ))
                                }
                            },
                        }
                    }
                    let body = def.substitute(&map);
                    atoms.extend(body.atoms().iter().cloned());
                }
                Some(_) => {
                    return Err(QueryError::UnsupportedFragment(format!(
                        "view `{}` is not CQ-definable; CQ unfolding is not possible",
                        atom.relation()
                    )))
                }
            }
        }
        let unfolded = ConjunctiveQuery::new(cq.head().to_vec(), atoms)?;
        if const_bindings.is_empty() {
            Ok(unfolded)
        } else {
            Ok(unfolded.substitute(&const_bindings))
        }
    }

    /// Validate every view definition against the base schema (views may not
    /// reference other views).
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<()> {
        for (name, def) in &self.views {
            for rel in def.relation_names() {
                if self.views.contains_key(&rel) {
                    return Err(QueryError::UnsupportedFragment(format!(
                        "view `{name}` references view `{rel}`; views must be defined over base relations"
                    )));
                }
                if schema.relation(&rel).is_none() {
                    return Err(QueryError::UnknownRelation(rel));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for ViewSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, def) in &self.views {
            match def {
                ViewDefinition::Cq(q) => writeln!(f, "{name} := {q}")?,
                ViewDefinition::Ucq(q) => writeln!(f, "{name} := {q}")?,
                ViewDefinition::Fo(q) => writeln!(f, "{name} := {q}")?,
            }
        }
        Ok(())
    }
}

/// Materialised view extents for one database instance.
///
/// For UCQ views the cache additionally tracks one extent per CQ disjunct
/// (in definition order): the union extent is what plans read, while the
/// disjunct extents carry the derivation state semi-naive maintenance needs
/// to keep a mutation `O(|Δ|)` — an untouched disjunct's extent is shared
/// by `Arc` into the next version, and a tuple removed from one disjunct
/// survives in the union as long as another disjunct still derives it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaterializedViews {
    extents: BTreeMap<String, Relation>,
    /// Per-disjunct extents of UCQ views, keyed by view name.
    disjunct_extents: BTreeMap<String, Vec<Relation>>,
}

impl MaterializedViews {
    /// An empty cache (no views).
    pub fn empty() -> Self {
        MaterializedViews::default()
    }

    /// The extent of one view.
    pub fn extent(&self, name: &str) -> Option<&Relation> {
        self.extents.get(name)
    }

    /// The per-disjunct extents of a UCQ view, in disjunct order.  `None`
    /// for non-UCQ views (or extents inserted without disjunct tracking).
    pub fn disjuncts(&self, name: &str) -> Option<&[Relation]> {
        self.disjunct_extents.get(name).map(Vec::as_slice)
    }

    /// Total number of cached tuples (`Σ |V(D)|`, union extents only).
    pub fn total_tuples(&self) -> usize {
        self.extents.values().map(Relation::len).sum()
    }

    /// Names of materialised views.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.extents.keys().map(String::as_str)
    }

    /// Insert or replace an extent directly (used by tests and by incremental
    /// maintenance experiments).  Clears any disjunct tracking under `name`.
    pub fn insert(&mut self, name: impl Into<String>, relation: Relation) {
        let name = name.into();
        self.disjunct_extents.remove(&name);
        self.extents.insert(name, relation);
    }

    /// Insert or replace a UCQ extent together with its per-disjunct
    /// extents (whose union must equal `relation`'s contents).
    pub fn insert_with_disjuncts(
        &mut self,
        name: impl Into<String>,
        relation: Relation,
        disjuncts: Vec<Relation>,
    ) {
        let name = name.into();
        self.disjunct_extents.insert(name.clone(), disjuncts);
        self.extents.insert(name, relation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{movie_instance, movie_schema, q0, v1};
    use bqr_data::tuple;

    #[test]
    fn view_set_basic_operations() {
        let mut views = ViewSet::empty();
        assert!(views.is_empty());
        views.add_cq("V1", v1()).unwrap();
        assert!(views.contains("V1"));
        assert!(!views.contains("V2"));
        assert_eq!(views.len(), 1);
        assert_eq!(views.get("V1").unwrap().arity(), 1);
        assert_eq!(views.arities().get("V1"), Some(&1));
        assert_eq!(views.language(), QueryLanguage::Cq);
        assert!(views.add_cq("V1", v1()).is_err(), "duplicate view rejected");
        assert!(views.to_string().contains("V1 := "));
        assert_eq!(views.names().collect::<Vec<_>>(), vec!["V1"]);
    }

    #[test]
    fn validate_checks_base_relations_only() {
        let mut views = ViewSet::empty();
        views.add_cq("V1", v1()).unwrap();
        assert!(views.validate(&movie_schema()).is_ok());

        // A view over an unknown relation is rejected.
        let mut bad = ViewSet::empty();
        bad.add_cq(
            "V",
            ConjunctiveQuery::new(
                vec![crate::atom::Term::var("x")],
                vec![crate::atom::Atom::new(
                    "nope",
                    vec![crate::atom::Term::var("x")],
                )],
            )
            .unwrap(),
        )
        .unwrap();
        assert!(bad.validate(&movie_schema()).is_err());

        // A view over another view is rejected.
        let mut nested = ViewSet::empty();
        nested.add_cq("V1", v1()).unwrap();
        nested
            .add_cq(
                "V2",
                ConjunctiveQuery::new(
                    vec![crate::atom::Term::var("x")],
                    vec![crate::atom::Atom::new(
                        "V1",
                        vec![crate::atom::Term::var("x")],
                    )],
                )
                .unwrap(),
            )
            .unwrap();
        assert!(nested.validate(&movie_schema()).is_err());
    }

    #[test]
    fn materialize_v1_over_example_instance() {
        let mut views = ViewSet::empty();
        views.add_cq("V1", v1()).unwrap();
        let db = movie_instance();
        let cache = views.materialize(&db).unwrap();
        let ext = cache.extent("V1").unwrap();
        // NASA people (1, 2) like movies 10 and 12; both exist in `movie`.
        assert!(ext.contains(&tuple![10]));
        assert!(ext.contains(&tuple![12]));
        assert_eq!(ext.len(), 2);
        assert_eq!(cache.total_tuples(), 2);
        assert_eq!(cache.names().collect::<Vec<_>>(), vec!["V1"]);
        assert!(cache.extent("V9").is_none());
    }

    #[test]
    fn unfold_cq_splices_view_bodies() {
        let mut views = ViewSet::empty();
        views.add_cq("V1", v1()).unwrap();
        // Q_ξ of Example 2.3: movie(mid, ym, "Universal", "2014") ∧ V1(mid) ∧ rating(mid, 5).
        let q = ConjunctiveQuery::new(
            vec![crate::atom::Term::var("mid")],
            vec![
                crate::atom::Atom::new(
                    "movie",
                    vec![
                        crate::atom::Term::var("mid"),
                        crate::atom::Term::var("ym"),
                        crate::atom::Term::cnst("Universal"),
                        crate::atom::Term::cnst("2014"),
                    ],
                ),
                crate::atom::Atom::new("V1", vec![crate::atom::Term::var("mid")]),
                crate::atom::Atom::new(
                    "rating",
                    vec![crate::atom::Term::var("mid"), crate::atom::Term::cnst(5)],
                ),
            ],
        )
        .unwrap();
        let unfolded = views.unfold_cq(&q).unwrap();
        // The unfolded query mentions only base relations.
        assert!(!unfolded.relation_names().contains("V1"));
        assert!(unfolded.relation_names().contains("person"));
        assert_eq!(unfolded.atoms().len(), 2 + v1().atoms().len());
        // And it shares the original's answer variable.
        assert_eq!(unfolded.head(), q.head());
        // Sanity: the unfolded query is equivalent to Q0 (same atoms modulo
        // the duplicated `movie` atom); checked properly in containment tests.
        assert!(unfolded.relation_names().contains("movie"));
        let _ = q0();
    }

    #[test]
    fn unfold_missing_view_is_identity() {
        let views = ViewSet::empty();
        let q = q0();
        assert_eq!(views.unfold_cq(&q).unwrap(), q);
    }

    #[test]
    fn unfold_rejects_non_cq_views() {
        let mut views = ViewSet::empty();
        views.add_ucq("U", UnionQuery::single(v1())).unwrap();
        let q = ConjunctiveQuery::new(
            vec![crate::atom::Term::var("x")],
            vec![crate::atom::Atom::new(
                "U",
                vec![crate::atom::Term::var("x")],
            )],
        )
        .unwrap();
        assert!(views.unfold_cq(&q).is_err());
    }

    #[test]
    fn materialized_views_insert() {
        let mut cache = MaterializedViews::empty();
        assert_eq!(cache.total_tuples(), 0);
        let schema = RelationSchema::new("V", &["c0"]).unwrap();
        let rel = Relation::from_tuples(schema, vec![tuple![1], tuple![2]]).unwrap();
        cache.insert("V", rel);
        assert_eq!(cache.total_tuples(), 2);
        assert!(cache.extent("V").is_some());
    }
}
