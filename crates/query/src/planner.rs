//! Cost-based join planning for the slot-based homomorphism engine.
//!
//! The engine in [`crate::hom`] executes a compiled search; this module
//! decides *what* to compile.  Two execution shapes exist:
//!
//! * **Atom-at-a-time** — the classic index-nested-loop backtracking search:
//!   atoms are probed in a fixed order, each probe keyed on the positions
//!   bound so far.  The order is everything; this module picks it either
//!   with the PR 1 heuristic ("most bound positions first",
//!   [`JoinStrategy::Heuristic`]) or with the selectivity cost model below
//!   ([`JoinStrategy::CostBased`]).
//! * **Variable-at-a-time generic join** ([`JoinStrategy::GenericJoin`]) —
//!   the worst-case-optimal strategy: variables are eliminated one at a
//!   time, and at each step the candidate values are the *intersection* of
//!   what every atom containing the variable allows.  On cyclic queries
//!   (triangles, k-cycles) this avoids the quadratic intermediate results
//!   every atom-at-a-time order is forced to enumerate.
//!
//! # Cost model
//!
//! Per-snapshot statistics ([`RelationStats`]) provide `|R|` and the number
//! of distinct values `d_p` at each attribute position.  The estimated
//! fan-out of probing atom `R(t̄)` when the positions `B ⊆ pos(t̄)` are bound
//! is the textbook uniformity-and-independence estimate
//!
//! ```text
//! est(R | B) = |R| / Π_{p ∈ B} d_p
//! ```
//!
//! [`JoinStrategy::CostBased`] greedily appends the remaining atom with the
//! smallest `est` given the variables bound so far (ties: fewer free
//! variables, then declaration index — the plan is a pure function of the
//! query and the statistics, never of hash-map iteration order).  Because
//! the greedy step is free to pick a cheap atom *disconnected* from what has
//! been joined so far, the resulting order is bushy in effect: independent
//! subjoins are interleaved by cost rather than forced into one left-deep
//! chain rooted at the first atom.
//!
//! # When generic join kicks in
//!
//! [`JoinStrategy::Auto`] (the default everywhere) runs the GYO reduction
//! over the hypergraph of *free* variables — initially-bound variables and
//! constants are stripped first, since a bound position prunes like a
//! constant.  If the residue is non-empty (the query is cyclic) and at least
//! three atoms participate, the plan is a generic join over a greedy
//! variable order (smallest estimated candidate set first, preferring
//! variables connected to those already eliminated); otherwise it is a
//! cost-based atom order.  Acyclic queries keep the atom-at-a-time engine:
//! with a tree-shaped join structure a good atom order is already optimal,
//! and per-level intersection bookkeeping would only add overhead.

use crate::acyclic::gyo_residue_of;
use bqr_data::RelationStats;
use std::collections::BTreeSet;

/// Which join-planning strategy the engine should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Cost-based atom order for acyclic structure, generic join for cyclic
    /// structure.  The default.
    #[default]
    Auto,
    /// The PR 1 ordering heuristic: most bound positions first, smaller
    /// variable count as tie-break.  Retained as the benchmark baseline.
    Heuristic,
    /// Greedy atom order by estimated probe fan-out (see the module docs).
    CostBased,
    /// Variable-at-a-time worst-case-optimal join, regardless of shape.
    GenericJoin,
}

/// Planner configuration, threaded through [`crate::eval::Evaluator`],
/// [`crate::containment::ContainmentChecker`] and the `bqr-core` decision
/// procedures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlannerConfig {
    /// The strategy to plan with.
    pub strategy: JoinStrategy,
}

impl PlannerConfig {
    /// Configuration using the given strategy.
    pub fn with_strategy(strategy: JoinStrategy) -> Self {
        PlannerConfig { strategy }
    }
}

/// One position of an atom, as the planner sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TermShape {
    /// A constant, or a variable bound by the initial assignment: prunes at
    /// probe time.
    Bound,
    /// A free variable, identified by its slot.
    Free(u32),
}

/// The planner's view of one atom: its term shapes plus the statistics of
/// the snapshot it will probe.
#[derive(Debug, Clone)]
pub(crate) struct AtomShape {
    pub terms: Vec<TermShape>,
    pub stats: RelationStats,
}

impl AtomShape {
    fn free_slots(&self) -> BTreeSet<u32> {
        self.terms
            .iter()
            .filter_map(|t| match t {
                TermShape::Free(s) => Some(*s),
                TermShape::Bound => None,
            })
            .collect()
    }

    /// Positions bound given the set of bound slots.
    fn bound_positions(&self, bound: &[bool]) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                TermShape::Bound => true,
                TermShape::Free(s) => bound[*s as usize],
            })
            .map(|(p, _)| p)
            .collect()
    }
}

/// The execution shape chosen for a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PlannedExecution {
    /// Probe atoms in this order (indexes into the original atom list).
    AtomOrder(Vec<usize>),
    /// Generic join, eliminating free slots in this order.
    GenericJoin(Vec<u32>),
}

/// Is the hypergraph of free slots cyclic (non-empty GYO residue)?
pub(crate) fn is_cyclic(atoms: &[AtomShape]) -> bool {
    gyo_residue_of(atoms.iter().map(AtomShape::free_slots)).len() > 1
}

/// Plan the execution of `atoms` under `config`.  `slot_count` is the total
/// number of interned slots (free and initially bound).
pub(crate) fn plan(
    atoms: &[AtomShape],
    slot_count: usize,
    config: &PlannerConfig,
) -> PlannedExecution {
    match config.strategy {
        JoinStrategy::CostBased | JoinStrategy::Heuristic => {
            // `Heuristic` order is computed by the caller (it needs the
            // original atom terms); reaching here means cost-based.
            PlannedExecution::AtomOrder(cost_based_order(atoms, slot_count))
        }
        JoinStrategy::GenericJoin => PlannedExecution::GenericJoin(variable_order(atoms)),
        JoinStrategy::Auto => {
            if atoms.len() >= 3 && is_cyclic(atoms) {
                PlannedExecution::GenericJoin(variable_order(atoms))
            } else {
                PlannedExecution::AtomOrder(cost_based_order(atoms, slot_count))
            }
        }
    }
}

/// Greedy cost-based atom order: repeatedly append the atom with the
/// smallest estimated probe fan-out given the slots bound so far.
pub(crate) fn cost_based_order(atoms: &[AtomShape], slot_count: usize) -> Vec<usize> {
    let mut bound = vec![false; slot_count];
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    let mut order = Vec::with_capacity(atoms.len());
    while !remaining.is_empty() {
        let mut best_at = 0usize;
        let mut best_key = (f64::INFINITY, usize::MAX);
        for (i, &atom_idx) in remaining.iter().enumerate() {
            let atom = &atoms[atom_idx];
            let est = atom.stats.estimated_matches(&atom.bound_positions(&bound));
            let free = atom
                .terms
                .iter()
                .filter(|t| matches!(t, TermShape::Free(s) if !bound[*s as usize]))
                .count();
            // Ties broken by fewer unbound positions, then declaration
            // index (remaining is kept in ascending index order).
            let key = (est, free);
            if key.0 < best_key.0 || (key.0 == best_key.0 && key.1 < best_key.1) {
                best_key = key;
                best_at = i;
            }
        }
        let atom_idx = remaining.remove(best_at);
        for slot in atoms[atom_idx].free_slots() {
            bound[slot as usize] = true;
        }
        order.push(atom_idx);
    }
    order
}

/// Greedy, degree-aware variable-elimination order for generic join.
///
/// Generic join's per-level intersections only *prune* when the variable
/// being eliminated has **two or more bound neighbours** — atoms in which it
/// co-occurs with already-eliminated variables.  The PR 2 order grew the
/// frontier connectedly ("smallest candidate set among neighbours"), which
/// walks even cycles like C4 as a chain: every level but the last has one
/// bound neighbour, so nothing prunes and the 4-cycle gained almost nothing
/// over a good atom order (the gap recorded in ROADMAP).
///
/// The degree-aware rule fixes exactly that:
///
/// 1. if some remaining variable has ≥ 2 bound atoms, eliminate the one with
///    the most (its candidates are intersections of several index probes —
///    maximal pruning); ties by smaller candidate estimate, then slot;
/// 2. otherwise **seed by degree**: eliminate the variable covering the most
///    atoms untouched by any chosen variable (its *residual* degree), ties
///    again by estimate then slot.  Deliberately *not* connectivity-greedy:
///    on C4 this picks the two opposite corners first, after which both
///    remaining variables have two bound neighbours and every candidate is
///    intersected from both sides.
///
/// The order is a pure function of the query shape and the snapshot
/// statistics — never of hash-map iteration order.
pub(crate) fn variable_order(atoms: &[AtomShape]) -> Vec<u32> {
    let all: BTreeSet<u32> = atoms.iter().flat_map(|a| a.free_slots()).collect();
    let mut chosen: Vec<u32> = Vec::with_capacity(all.len());
    let mut chosen_set: BTreeSet<u32> = BTreeSet::new();
    while chosen.len() < all.len() {
        let remaining: Vec<u32> = all
            .iter()
            .filter(|s| !chosen_set.contains(s))
            .copied()
            .collect();
        // Atoms containing `v` that also contain a chosen variable (bound
        // neighbours), and atoms containing `v` untouched by any chosen
        // variable (residual degree).
        let bound_atoms = |v: u32| {
            atoms
                .iter()
                .filter(|a| {
                    let free = a.free_slots();
                    free.contains(&v) && free.iter().any(|s| chosen_set.contains(s))
                })
                .count()
        };
        let residual_degree = |v: u32| {
            atoms
                .iter()
                .filter(|a| {
                    let free = a.free_slots();
                    free.contains(&v) && !free.iter().any(|s| chosen_set.contains(s))
                })
                .count()
        };
        let pick = |pool: &[u32], score: &dyn Fn(u32) -> usize| {
            pool.iter()
                .copied()
                .min_by(|&a, &b| {
                    score(b)
                        .cmp(&score(a)) // larger score first
                        .then_with(|| {
                            candidate_estimate(atoms, a)
                                .partial_cmp(&candidate_estimate(atoms, b))
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .then(a.cmp(&b))
                })
                .expect("pool is non-empty while variables remain")
        };
        let intersecting: Vec<u32> = remaining
            .iter()
            .copied()
            .filter(|&v| bound_atoms(v) >= 2)
            .collect();
        let best = if intersecting.is_empty() {
            pick(&remaining, &residual_degree)
        } else {
            pick(&intersecting, &bound_atoms)
        };
        chosen.push(best);
        chosen_set.insert(best);
    }
    chosen
}

fn candidate_estimate(atoms: &[AtomShape], slot: u32) -> f64 {
    let mut best = f64::INFINITY;
    for atom in atoms {
        for (pos, term) in atom.terms.iter().enumerate() {
            if *term == TermShape::Free(slot) {
                best = best.min(atom.stats.distinct(pos) as f64);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqr_data::intern::ValueId;
    use bqr_data::Value;

    /// Build stats for a synthetic snapshot: `rows` tuples where position
    /// `p` cycles through `distinct[p]` values.
    fn stats(rows: usize, distinct: &[usize]) -> RelationStats {
        let arity = distinct.len();
        let mut data = Vec::with_capacity(rows * arity);
        for r in 0..rows {
            for (p, &d) in distinct.iter().enumerate() {
                let v = Value::str(format!("planner-test-{p}-{}", r % d.max(1)));
                data.push(ValueId::intern(&v));
            }
        }
        RelationStats::of_rows(rows, arity, &data)
    }

    fn free(slots: &[u32], stats_: RelationStats) -> AtomShape {
        AtomShape {
            terms: slots.iter().map(|&s| TermShape::Free(s)).collect(),
            stats: stats_,
        }
    }

    #[test]
    fn cost_based_order_starts_with_the_most_selective_atom() {
        // Atom 0: huge relation, nothing bound.  Atom 1: tiny relation.
        // Atom 2: huge but keyed tightly once slot 1 is bound.
        let atoms = vec![
            free(&[0, 1], stats(10_000, &[100, 100])),
            free(&[1], stats(4, &[4])),
            free(&[1, 2], stats(10_000, &[10_000, 10])),
        ];
        let order = cost_based_order(&atoms, 3);
        assert_eq!(order[0], 1, "tiny atom first");
        assert_eq!(
            order[1], 2,
            "slot 1 now bound: the keyed probe (est 1) beats the 100-row fan-out"
        );
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn plans_are_deterministic() {
        let atoms = vec![
            free(&[0, 1], stats(50, &[10, 10])),
            free(&[1, 2], stats(50, &[10, 10])),
            free(&[2, 0], stats(50, &[10, 10])),
        ];
        let a = plan(&atoms, 3, &PlannerConfig::default());
        for _ in 0..10 {
            assert_eq!(plan(&atoms, 3, &PlannerConfig::default()), a);
        }
    }

    #[test]
    fn auto_picks_generic_join_only_for_cyclic_structure() {
        let triangle = vec![
            free(&[0, 1], stats(10, &[5, 5])),
            free(&[1, 2], stats(10, &[5, 5])),
            free(&[2, 0], stats(10, &[5, 5])),
        ];
        assert!(is_cyclic(&triangle));
        assert!(matches!(
            plan(&triangle, 3, &PlannerConfig::default()),
            PlannedExecution::GenericJoin(_)
        ));

        let path = vec![
            free(&[0, 1], stats(10, &[5, 5])),
            free(&[1, 2], stats(10, &[5, 5])),
            free(&[2, 3], stats(10, &[5, 5])),
        ];
        assert!(!is_cyclic(&path));
        assert!(matches!(
            plan(&path, 4, &PlannerConfig::default()),
            PlannedExecution::AtomOrder(_)
        ));

        // Binding a variable of the cycle breaks it: a triangle with slot 0
        // initially bound is a path between 1 and 2.
        let bound_triangle = vec![
            AtomShape {
                terms: vec![TermShape::Bound, TermShape::Free(1)],
                stats: stats(10, &[5, 5]),
            },
            free(&[1, 2], stats(10, &[5, 5])),
            AtomShape {
                terms: vec![TermShape::Free(2), TermShape::Bound],
                stats: stats(10, &[5, 5]),
            },
        ];
        assert!(!is_cyclic(&bound_triangle));
    }

    #[test]
    fn generic_join_variable_order_covers_every_free_slot() {
        let atoms = vec![
            free(&[0, 1], stats(100, &[50, 2])),
            free(&[1, 2], stats(100, &[2, 50])),
            free(&[2, 0], stats(100, &[50, 50])),
        ];
        let order = variable_order(&atoms);
        let as_set: BTreeSet<u32> = order.iter().copied().collect();
        assert_eq!(as_set, [0u32, 1, 2].into_iter().collect());
        assert_eq!(order[0], 1, "slot 1 has the smallest candidate estimate");
    }

    #[test]
    fn degree_aware_order_picks_opposite_corners_of_even_cycles() {
        // C4: 0–1–2–3–0, uniform statistics.  The degree-aware rule seeds
        // with slot 0, then jumps to the opposite corner (slot 2, the only
        // remaining variable with residual degree 2) so that both remaining
        // corners are eliminated with two bound neighbours each — the
        // configuration where generic join's intersections actually prune.
        let c4 = vec![
            free(&[0, 1], stats(40, &[10, 10])),
            free(&[1, 2], stats(40, &[10, 10])),
            free(&[2, 3], stats(40, &[10, 10])),
            free(&[3, 0], stats(40, &[10, 10])),
        ];
        let order = variable_order(&c4);
        assert_eq!(order[..2], [0, 2], "opposite corners first: {order:?}");
        for late in &order[2..] {
            let bound: usize = c4
                .iter()
                .filter(|a| {
                    let free = a.free_slots();
                    free.contains(late) && free.iter().any(|s| order[..2].contains(s))
                })
                .count();
            assert_eq!(bound, 2, "slot {late} eliminates with 2 bound atoms");
        }

        // C6 also alternates corners before filling in.
        let c6: Vec<AtomShape> = (0..6u32)
            .map(|i| free(&[i, (i + 1) % 6], stats(60, &[10, 10])))
            .collect();
        let order = variable_order(&c6);
        let as_set: BTreeSet<u32> = order.iter().copied().collect();
        assert_eq!(as_set.len(), 6);
        assert!(
            !c6.iter()
                .any(|a| a.free_slots() == order[..2].iter().copied().collect::<BTreeSet<_>>()),
            "the first two picks never share an atom: {order:?}"
        );
    }

    #[test]
    fn explicit_strategies_override_auto() {
        let triangle = vec![
            free(&[0, 1], stats(10, &[5, 5])),
            free(&[1, 2], stats(10, &[5, 5])),
            free(&[2, 0], stats(10, &[5, 5])),
        ];
        assert!(matches!(
            plan(
                &triangle,
                3,
                &PlannerConfig::with_strategy(JoinStrategy::CostBased)
            ),
            PlannedExecution::AtomOrder(_)
        ));
        let path = vec![
            free(&[0, 1], stats(10, &[5, 5])),
            free(&[1, 2], stats(10, &[5, 5])),
        ];
        assert!(matches!(
            plan(
                &path,
                3,
                &PlannerConfig::with_strategy(JoinStrategy::GenericJoin)
            ),
            PlannedExecution::GenericJoin(_)
        ));
    }
}
