//! Unions of conjunctive queries (UCQ, a.k.a. SPCU queries).

use crate::cq::ConjunctiveQuery;
use crate::error::QueryError;
use crate::Result;
use std::collections::BTreeSet;
use std::fmt;

/// A union of conjunctive queries `Q(x̄) = Q_1(x̄) ∪ ... ∪ Q_k(x̄)`.
///
/// All disjuncts must share the same head arity; there must be at least one
/// disjunct.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UnionQuery {
    disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Create a union query from its disjuncts.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Result<Self> {
        let first = disjuncts
            .first()
            .ok_or_else(|| QueryError::UnsupportedFragment("empty union query".to_string()))?;
        let arity = first.arity();
        for d in &disjuncts {
            if d.arity() != arity {
                return Err(QueryError::MismatchedUnionArity {
                    expected: arity,
                    actual: d.arity(),
                });
            }
        }
        Ok(UnionQuery { disjuncts })
    }

    /// A union with a single disjunct (a plain CQ).
    pub fn single(cq: ConjunctiveQuery) -> Self {
        UnionQuery {
            disjuncts: vec![cq],
        }
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.disjuncts[0].arity()
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// Always false: a union query has at least one disjunct.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total size (sum of disjunct sizes).
    pub fn size(&self) -> usize {
        self.disjuncts.iter().map(ConjunctiveQuery::size).sum()
    }

    /// Relation / view names mentioned anywhere in the query.
    pub fn relation_names(&self) -> BTreeSet<String> {
        self.disjuncts
            .iter()
            .flat_map(|d| d.relation_names())
            .collect()
    }

    /// All constants mentioned anywhere in the query.
    pub fn constants(&self) -> BTreeSet<bqr_data::Value> {
        self.disjuncts.iter().flat_map(|d| d.constants()).collect()
    }

    /// True if this union is really just one conjunctive query.
    pub fn as_single_cq(&self) -> Option<&ConjunctiveQuery> {
        if self.disjuncts.len() == 1 {
            Some(&self.disjuncts[0])
        } else {
            None
        }
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, "  UNION  ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl From<ConjunctiveQuery> for UnionQuery {
    fn from(cq: ConjunctiveQuery) -> Self {
        UnionQuery::single(cq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Term};

    fn cq(rel: &str, arity: usize) -> ConjunctiveQuery {
        let vars: Vec<Term> = (0..arity).map(|i| Term::var(format!("x{i}"))).collect();
        ConjunctiveQuery::new(vars.clone(), vec![Atom::new(rel, vars)]).unwrap()
    }

    #[test]
    fn construction_checks_arity() {
        assert!(UnionQuery::new(vec![]).is_err());
        assert!(UnionQuery::new(vec![cq("r", 2), cq("s", 2)]).is_ok());
        assert!(matches!(
            UnionQuery::new(vec![cq("r", 2), cq("s", 3)]),
            Err(QueryError::MismatchedUnionArity {
                expected: 2,
                actual: 3
            })
        ));
    }

    #[test]
    fn accessors() {
        let u = UnionQuery::new(vec![cq("r", 2), cq("s", 2)]).unwrap();
        assert_eq!(u.arity(), 2);
        assert_eq!(u.len(), 2);
        assert!(!u.is_empty());
        assert_eq!(u.size(), cq("r", 2).size() * 2);
        assert_eq!(u.relation_names().len(), 2);
        assert!(u.as_single_cq().is_none());
        assert!(u.constants().is_empty());

        let single: UnionQuery = cq("r", 1).into();
        assert!(single.as_single_cq().is_some());
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn display_joins_with_union() {
        let u = UnionQuery::new(vec![cq("r", 1), cq("s", 1)]).unwrap();
        let s = u.to_string();
        assert!(s.contains("UNION"));
        assert!(s.contains("r(x0)"));
        assert!(s.contains("s(x0)"));
    }
}
