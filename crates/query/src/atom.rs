//! Terms and relation atoms.

use crate::error::QueryError;
use crate::Result;
use bqr_data::{DatabaseSchema, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A term: either a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable, identified by name.
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Construct a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// Construct a constant term.
    pub fn cnst(value: impl Into<Value>) -> Self {
        Term::Const(value.into())
    }

    /// True if this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant value, if this is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(v) => Some(v),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

/// A relation atom `R(t_1, ..., t_k)`.
///
/// The `relation` name may refer either to a base relation of the database
/// schema or to a view; which one it is can only be decided against a
/// [`ViewSet`](crate::views::ViewSet) and a [`DatabaseSchema`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    relation: String,
    args: Vec<Term>,
}

impl Atom {
    /// Create an atom.
    pub fn new(relation: impl Into<String>, args: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            args,
        }
    }

    /// The relation (or view) name.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The argument terms.
    pub fn args(&self) -> &[Term] {
        &self.args
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The set of variable names occurring in the atom.
    pub fn variables(&self) -> BTreeSet<String> {
        self.args
            .iter()
            .filter_map(|t| t.as_var().map(str::to_string))
            .collect()
    }

    /// True if the atom contains no constants.
    pub fn is_constant_free(&self) -> bool {
        self.args.iter().all(Term::is_var)
    }

    /// Validate the atom against a database schema: the relation must exist
    /// with matching arity.  Views must be validated separately against the
    /// view set.
    pub fn validate_against_schema(&self, schema: &DatabaseSchema) -> Result<()> {
        let rel = schema
            .relation(&self.relation)
            .ok_or_else(|| QueryError::UnknownRelation(self.relation.clone()))?;
        if rel.arity() != self.arity() {
            return Err(QueryError::AtomArity {
                relation: self.relation.clone(),
                expected: rel.arity(),
                actual: self.arity(),
            });
        }
        Ok(())
    }

    /// Apply a variable substitution, returning a new atom.
    pub fn substitute(&self, map: &std::collections::BTreeMap<String, Term>) -> Atom {
        Atom {
            relation: self.relation.clone(),
            args: self
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| t.clone()),
                    Term::Const(_) => t.clone(),
                })
                .collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Shorthand for building an atom: `atom!("movie"; var "x", const "Universal")`.
/// Examples and tests mostly use the text [`parser`](crate::parser) instead.
#[macro_export]
macro_rules! qatom {
    ($rel:expr; $($args:expr),* $(,)?) => {
        $crate::Atom::new($rel, vec![$($args),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn term_helpers() {
        let v = Term::var("x");
        let c = Term::cnst(5);
        assert!(v.is_var());
        assert!(!c.is_var());
        assert_eq!(v.as_var(), Some("x"));
        assert_eq!(c.as_var(), None);
        assert_eq!(c.as_const(), Some(&Value::int(5)));
        assert_eq!(v.as_const(), None);
        assert_eq!(v.to_string(), "x");
        assert_eq!(c.to_string(), "5");
        assert_eq!(Term::from(Value::str("a")), Term::cnst("a"));
    }

    #[test]
    fn atom_accessors_and_display() {
        let a = Atom::new(
            "movie",
            vec![
                Term::var("mid"),
                Term::var("n"),
                Term::cnst("Universal"),
                Term::cnst("2014"),
            ],
        );
        assert_eq!(a.relation(), "movie");
        assert_eq!(a.arity(), 4);
        assert!(!a.is_constant_free());
        assert_eq!(
            a.variables().into_iter().collect::<Vec<_>>(),
            vec!["mid".to_string(), "n".to_string()]
        );
        assert_eq!(a.to_string(), "movie(mid, n, \"Universal\", \"2014\")");
    }

    #[test]
    fn validation_against_schema() {
        let schema = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])]).unwrap();
        let good = Atom::new("rating", vec![Term::var("m"), Term::cnst(5)]);
        assert!(good.validate_against_schema(&schema).is_ok());
        let wrong_arity = Atom::new("rating", vec![Term::var("m")]);
        assert!(matches!(
            wrong_arity.validate_against_schema(&schema),
            Err(QueryError::AtomArity { .. })
        ));
        let unknown = Atom::new("person", vec![Term::var("p")]);
        assert!(matches!(
            unknown.validate_against_schema(&schema),
            Err(QueryError::UnknownRelation(_))
        ));
    }

    #[test]
    fn substitution_replaces_only_mapped_vars() {
        let a = Atom::new("r", vec![Term::var("x"), Term::var("y"), Term::cnst(1)]);
        let mut map = BTreeMap::new();
        map.insert("x".to_string(), Term::cnst("v"));
        let b = a.substitute(&map);
        assert_eq!(
            b,
            Atom::new("r", vec![Term::cnst("v"), Term::var("y"), Term::cnst(1)])
        );
    }
}
