//! The FD-chase: chasing a conjunctive query's tableau with the functional
//! dependencies (`N = 1` constraints) of an access schema.
//!
//! Corollary 4.4 and Proposition 4.5 of the paper rely on the classical chase
//! [Aho–Sagiv–Ullman]: for each constraint `R(X → Y, 1)` and each pair of
//! atoms over `R` that agree on `X`, unify their `Y` components.  The result
//! `Q_A` is unique up to homomorphism, is `A`-equivalent to `Q`, and its
//! tableau satisfies (the FD part of) `A`.

use crate::atom::Term;
use crate::cq::ConjunctiveQuery;
use crate::Result;
use bqr_data::{AccessSchema, DatabaseSchema};
use std::collections::BTreeMap;

/// Result of chasing a query with functional dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseResult {
    /// The chased, `A`-equivalent query.
    Chased(ConjunctiveQuery),
    /// The chase tried to equate two distinct constants: the query is
    /// unsatisfiable on instances satisfying the FDs.
    Inconsistent,
}

impl ChaseResult {
    /// The chased query, if consistent.
    pub fn query(&self) -> Option<&ConjunctiveQuery> {
        match self {
            ChaseResult::Chased(q) => Some(q),
            ChaseResult::Inconsistent => None,
        }
    }
}

/// A small union-find over terms where constants act as (incompatible)
/// class anchors.
#[derive(Debug, Default)]
pub(crate) struct TermUnion {
    parent: BTreeMap<Term, Term>,
}

impl TermUnion {
    pub(crate) fn find(&mut self, t: &Term) -> Term {
        let p = self.parent.get(t).cloned();
        match p {
            None => {
                self.parent.insert(t.clone(), t.clone());
                t.clone()
            }
            Some(p) if &p == t => p,
            Some(p) => {
                let root = self.find(&p);
                self.parent.insert(t.clone(), root.clone());
                root
            }
        }
    }

    /// Union two classes.  Returns `false` if the union would identify two
    /// distinct constants.  Constants win over variables as representatives.
    pub(crate) fn union(&mut self, a: &Term, b: &Term) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return true;
        }
        match (&ra, &rb) {
            (Term::Const(ca), Term::Const(cb)) => ca == cb,
            (Term::Const(_), Term::Var(_)) => {
                self.parent.insert(rb, ra);
                true
            }
            _ => {
                // Variable root `ra` points to `rb` (which may be a constant
                // or a variable).
                self.parent.insert(ra, rb);
                true
            }
        }
    }

    /// The substitution induced on a set of variables.
    pub(crate) fn substitution(
        &mut self,
        vars: impl IntoIterator<Item = String>,
    ) -> BTreeMap<String, Term> {
        vars.into_iter()
            .map(|v| {
                let rep = self.find(&Term::Var(v.clone()));
                (v, rep)
            })
            .collect()
    }
}

/// Chase `cq` with the FD-shaped constraints (`N = 1`) of `access`.
///
/// Constraints with `N > 1` are ignored (they induce no equalities); the
/// caller decides whether that is acceptable (Corollary 4.4 and
/// Proposition 4.5 assume `A` consists of FDs only).
pub fn chase_fds(
    cq: &ConjunctiveQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
) -> Result<ChaseResult> {
    let fds: Vec<_> = access.constraints().filter(|c| c.is_fd()).collect();
    let mut current = cq.clone();
    if fds.is_empty() {
        return Ok(ChaseResult::Chased(current));
    }

    loop {
        let mut uf = TermUnion::default();
        let mut changed = false;
        let mut inconsistent = false;

        for fd in &fds {
            let rel_schema = match schema.relation(fd.relation()) {
                Some(r) => r,
                None => continue,
            };
            let x_pos = rel_schema.positions(fd.x())?;
            let y_pos = rel_schema.positions(fd.y())?;
            let atoms: Vec<_> = current
                .atoms()
                .iter()
                .filter(|a| a.relation() == fd.relation() && a.arity() == rel_schema.arity())
                .collect();
            for i in 0..atoms.len() {
                for j in (i + 1)..atoms.len() {
                    let a = atoms[i];
                    let b = atoms[j];
                    let keys_equal = x_pos.iter().all(|&p| {
                        let ta = uf.find(&a.args()[p]);
                        let tb = uf.find(&b.args()[p]);
                        ta == tb
                    });
                    if !keys_equal {
                        continue;
                    }
                    for &p in &y_pos {
                        let ta = uf.find(&a.args()[p]);
                        let tb = uf.find(&b.args()[p]);
                        if ta != tb {
                            if !uf.union(&a.args()[p], &b.args()[p]) {
                                inconsistent = true;
                            }
                            changed = true;
                        }
                    }
                }
            }
        }

        if inconsistent {
            return Ok(ChaseResult::Inconsistent);
        }
        if !changed {
            return Ok(ChaseResult::Chased(current));
        }
        let map = uf.substitution(current.variables());
        current = current.substitute(&map);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::testutil::va;
    use bqr_data::AccessConstraint;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[("r", &["a", "b", "c"]), ("s", &["a", "b"])]).unwrap()
    }

    fn fd(rel: &str, x: &[&str], y: &[&str]) -> AccessConstraint {
        AccessConstraint::fd(rel, x, y).unwrap()
    }

    #[test]
    fn chase_unifies_dependent_variables() {
        // r(x, y1, z1), r(x, y2, z2) with r(a → b,1): y1 and y2 unify.
        let q = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![va("r", &["x", "y1", "z1"]), va("r", &["x", "y2", "z2"])],
        )
        .unwrap();
        let access = AccessSchema::new(vec![fd("r", &["a"], &["b"])]);
        let result = chase_fds(&q, &access, &schema()).unwrap();
        let chased = result.query().unwrap();
        let vars = chased.variables();
        // After the chase, only one of y1/y2 remains.
        assert_eq!(
            vars.iter().filter(|v| v.starts_with('y')).count(),
            1,
            "y1 and y2 must be unified: {chased}"
        );
        // z1 and z2 remain distinct (not covered by the FD).
        assert_eq!(vars.iter().filter(|v| v.starts_with('z')).count(), 2);
    }

    #[test]
    fn chase_propagates_transitively() {
        // s(x, y), s(x, z), s(y, u), s(z, w) with s(a → b, 1):
        // y = z, and then u = w.
        let q = ConjunctiveQuery::boolean(vec![
            va("s", &["x", "y"]),
            va("s", &["x", "z"]),
            va("s", &["y", "u"]),
            va("s", &["z", "w"]),
        ])
        .unwrap();
        let access = AccessSchema::new(vec![fd("s", &["a"], &["b"])]);
        let result = chase_fds(&q, &access, &schema()).unwrap();
        let chased = result.query().unwrap();
        // Variables collapse from 5 to 3 (x, y=z, u=w).
        assert_eq!(chased.variables().len(), 3, "{chased}");
    }

    #[test]
    fn chase_binds_variables_to_constants() {
        let q = ConjunctiveQuery::new(
            vec![Term::var("y")],
            vec![
                Atom::new("s", vec![Term::cnst(1), Term::var("y")]),
                Atom::new("s", vec![Term::cnst(1), Term::cnst(42)]),
            ],
        )
        .unwrap();
        let access = AccessSchema::new(vec![fd("s", &["a"], &["b"])]);
        let result = chase_fds(&q, &access, &schema()).unwrap();
        let chased = result.query().unwrap();
        assert_eq!(chased.head()[0], Term::cnst(42));
    }

    #[test]
    fn chase_detects_inconsistency() {
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("s", vec![Term::var("x"), Term::cnst(1)]),
            Atom::new("s", vec![Term::var("x"), Term::cnst(2)]),
        ])
        .unwrap();
        let access = AccessSchema::new(vec![fd("s", &["a"], &["b"])]);
        assert_eq!(
            chase_fds(&q, &access, &schema()).unwrap(),
            ChaseResult::Inconsistent
        );
        assert!(chase_fds(&q, &access, &schema()).unwrap().query().is_none());
    }

    #[test]
    fn non_fd_constraints_are_ignored() {
        let q =
            ConjunctiveQuery::boolean(vec![va("s", &["x", "y"]), va("s", &["x", "z"])]).unwrap();
        let access =
            AccessSchema::new(vec![AccessConstraint::new("s", &["a"], &["b"], 3).unwrap()]);
        let result = chase_fds(&q, &access, &schema()).unwrap();
        assert_eq!(result.query().unwrap(), &q, "N>1 constraints force nothing");
    }

    #[test]
    fn empty_access_schema_is_identity() {
        let q = ConjunctiveQuery::boolean(vec![va("s", &["x", "y"])]).unwrap();
        let result = chase_fds(&q, &AccessSchema::empty(), &schema()).unwrap();
        assert_eq!(result.query().unwrap(), &q);
    }

    #[test]
    fn composite_key_fd() {
        // r((a,b) → c, 1): atoms agreeing on both a and b unify on c.
        let q = ConjunctiveQuery::boolean(vec![
            va("r", &["x", "y", "u"]),
            va("r", &["x", "y", "w"]),
            va("r", &["x", "z", "t"]),
        ])
        .unwrap();
        let access = AccessSchema::new(vec![fd("r", &["a", "b"], &["c"])]);
        let chased = chase_fds(&q, &access, &schema()).unwrap();
        let chased = chased.query().unwrap();
        let vars = chased.variables();
        assert!(vars.len() == 5, "u/w unify, t survives: {chased}");
    }
}
