//! Classical query containment (no access schema).
//!
//! * CQ ⊆ CQ is decided by the Chandra–Merlin criterion: `Q1 ⊆ Q2` iff there
//!   is a homomorphism from `Q2` into the canonical instance of `Q1` mapping
//!   the head of `Q2` onto the summary of `Q1`.
//! * CQ ⊆ UCQ and UCQ ⊆ UCQ reduce to the CQ case disjunct by disjunct
//!   (Sagiv–Yannakakis).
//!
//! `A`-relative containment (`Q1 ⊑_A Q2`) lives in [`crate::aequiv`] and is
//! built on element queries plus the tests in this module.

use crate::atom::Term;
use crate::canonical::canonical_instance;
use crate::cq::ConjunctiveQuery;
use crate::error::QueryError;
use crate::hom::{has_homomorphism, Assignment};
use crate::ucq::UnionQuery;
use crate::Result;
use bqr_data::{DatabaseSchema, Relation};
use std::collections::BTreeMap;

/// Decide `q1 ⊆ q2` (over all instances of `schema`).
///
/// Both queries must be over base relations only (unfold views first) and
/// have the same arity.
pub fn cq_contained_in(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    schema: &DatabaseSchema,
) -> Result<bool> {
    if q1.arity() != q2.arity() {
        return Err(QueryError::MismatchedUnionArity {
            expected: q1.arity(),
            actual: q2.arity(),
        });
    }
    let canon = canonical_instance(q1, schema)?;
    cq_maps_onto(q2, &canon.database, &canon.summary)
}

/// Decide whether `q` has a homomorphism into `db` that sends its head onto
/// `target` (used with canonical instances).
fn cq_maps_onto(
    q: &ConjunctiveQuery,
    db: &bqr_data::Database,
    target: &bqr_data::Tuple,
) -> Result<bool> {
    // Seed the assignment with the head: head variables must map to the
    // target values; head constants must equal them.
    let mut initial = Assignment::new();
    for (i, term) in q.head().iter().enumerate() {
        let want = &target[i];
        match term {
            Term::Const(c) => {
                if c != want {
                    return Ok(false);
                }
            }
            Term::Var(v) => match initial.get(v) {
                Some(existing) if existing != want => return Ok(false),
                _ => {
                    initial.insert(v.clone(), want.clone());
                }
            },
        }
    }
    let relations: BTreeMap<String, &Relation> = q
        .relation_names()
        .into_iter()
        .map(|name| {
            db.relation(&name)
                .map(|r| (name.clone(), r))
                .ok_or(QueryError::UnknownRelation(name))
        })
        .collect::<Result<_>>()?;
    has_homomorphism(q.atoms(), &relations, &initial)
}

/// Decide `q1 ⊆ u2` for a CQ `q1` and a UCQ `u2`: some disjunct of `u2` must
/// map onto the canonical instance of `q1`.
pub fn cq_contained_in_ucq(
    q1: &ConjunctiveQuery,
    u2: &UnionQuery,
    schema: &DatabaseSchema,
) -> Result<bool> {
    if q1.arity() != u2.arity() {
        return Err(QueryError::MismatchedUnionArity {
            expected: q1.arity(),
            actual: u2.arity(),
        });
    }
    let canon = canonical_instance(q1, schema)?;
    for d in u2.disjuncts() {
        if cq_maps_onto(d, &canon.database, &canon.summary)? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Decide `u1 ⊆ u2` for UCQs (disjunct-wise, by Sagiv–Yannakakis).
pub fn ucq_contained_in(
    u1: &UnionQuery,
    u2: &UnionQuery,
    schema: &DatabaseSchema,
) -> Result<bool> {
    for d in u1.disjuncts() {
        if !cq_contained_in_ucq(d, u2, schema)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Decide classical CQ equivalence `q1 ≡ q2`.
pub fn cq_equivalent(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    schema: &DatabaseSchema,
) -> Result<bool> {
    Ok(cq_contained_in(q1, q2, schema)? && cq_contained_in(q2, q1, schema)?)
}

/// Decide classical UCQ equivalence `u1 ≡ u2`.
pub fn ucq_equivalent(
    u1: &UnionQuery,
    u2: &UnionQuery,
    schema: &DatabaseSchema,
) -> Result<bool> {
    Ok(ucq_contained_in(u1, u2, schema)? && ucq_contained_in(u2, u1, schema)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::testutil::{movie_schema, q0, v1};
    use crate::views::ViewSet;
    use bqr_data::DatabaseSchema;

    fn path_schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[("e", &["src", "dst"])]).unwrap()
    }

    fn path(len: usize) -> ConjunctiveQuery {
        // Q(x0, xlen) :- e(x0, x1), e(x1, x2), ..., e(x{len-1}, xlen)
        let atoms = (0..len)
            .map(|i| {
                Atom::new(
                    "e",
                    vec![Term::var(format!("x{i}")), Term::var(format!("x{}", i + 1))],
                )
            })
            .collect();
        ConjunctiveQuery::new(
            vec![Term::var("x0"), Term::var(format!("x{len}"))],
            atoms,
        )
        .unwrap()
    }

    #[test]
    fn longer_path_contained_in_shorter_boolean() {
        let schema = path_schema();
        // Boolean versions: ∃ path of length 2 ⊆ ∃ path of length 1.
        let p1 = path(1).with_head(vec![]).unwrap();
        let p2 = path(2).with_head(vec![]).unwrap();
        assert!(cq_contained_in(&p2, &p1, &schema).unwrap());
        assert!(!cq_contained_in(&p1, &p2, &schema).unwrap());
        assert!(!cq_equivalent(&p1, &p2, &schema).unwrap());
    }

    #[test]
    fn identical_up_to_renaming_is_equivalent() {
        let schema = path_schema();
        let a = path(2);
        let b = a.rename_apart("_z");
        assert!(cq_equivalent(&a, &b, &schema).unwrap());
    }

    #[test]
    fn redundant_atom_is_absorbed() {
        let schema = path_schema();
        // Q1(x,y) :- e(x,y), e(x,z)   ≡   Q2(x,y) :- e(x,y)
        let q1 = ConjunctiveQuery::new(
            vec![Term::var("x"), Term::var("y")],
            vec![
                Atom::new("e", vec![Term::var("x"), Term::var("y")]),
                Atom::new("e", vec![Term::var("x"), Term::var("z")]),
            ],
        )
        .unwrap();
        let q2 = ConjunctiveQuery::new(
            vec![Term::var("x"), Term::var("y")],
            vec![Atom::new("e", vec![Term::var("x"), Term::var("y")])],
        )
        .unwrap();
        assert!(cq_equivalent(&q1, &q2, &schema).unwrap());
    }

    #[test]
    fn constants_matter_for_containment() {
        let schema = path_schema();
        let general = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("e", vec![Term::var("x"), Term::var("y")])],
        )
        .unwrap();
        let specific = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("e", vec![Term::var("x"), Term::cnst(1)])],
        )
        .unwrap();
        assert!(cq_contained_in(&specific, &general, &schema).unwrap());
        assert!(!cq_contained_in(&general, &specific, &schema).unwrap());
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let schema = path_schema();
        assert!(cq_contained_in(&path(1), &path(1).with_head(vec![]).unwrap(), &schema).is_err());
    }

    #[test]
    fn q0_contained_in_unfolded_rewriting() {
        // Q0 ⊆ unfold(Qξ) and unfold(Qξ) ⊆ Q0 does NOT hold in general
        // (the rewriting is only A-equivalent), but Q0 ⊆ unfold(Qξ) fails too
        // because Qξ drops the join on `person`... let us check the actual
        // relationship: unfold(Qξ) has all atoms of Q0 except that the movie
        // atom appears twice with different variables; hence unfold(Qξ) ⊆ Q0
        // *and* Q0 ⊆ unfold(Qξ) — they are classically equivalent in this
        // particular example because the second movie atom is unconstrained.
        let schema = movie_schema();
        let mut views = ViewSet::empty();
        views.add_cq("V1", v1()).unwrap();
        let q_xi = ConjunctiveQuery::new(
            vec![Term::var("mid")],
            vec![
                Atom::new(
                    "movie",
                    vec![Term::var("mid"), Term::var("ym"), Term::cnst("Universal"), Term::cnst("2014")],
                ),
                Atom::new("V1", vec![Term::var("mid")]),
                Atom::new("rating", vec![Term::var("mid"), Term::cnst(5)]),
            ],
        )
        .unwrap();
        let unfolded = views.unfold_cq(&q_xi).unwrap();
        assert!(cq_contained_in(&unfolded, &q0(), &schema).unwrap());
        assert!(cq_contained_in(&q0(), &unfolded, &schema).unwrap());
    }

    #[test]
    fn ucq_containment_disjunctwise() {
        let schema = path_schema();
        let q_const1 = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("e", vec![Term::var("x"), Term::cnst(1)])],
        )
        .unwrap();
        let q_const2 = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("e", vec![Term::var("x"), Term::cnst(2)])],
        )
        .unwrap();
        let general = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("e", vec![Term::var("x"), Term::var("y")])],
        )
        .unwrap();
        let union = UnionQuery::new(vec![q_const1.clone(), q_const2.clone()]).unwrap();
        let general_u = UnionQuery::single(general);
        // {e(x,1)} ∪ {e(x,2)} ⊆ {e(x,y)} but not conversely.
        assert!(ucq_contained_in(&union, &general_u, &schema).unwrap());
        assert!(!ucq_contained_in(&general_u, &union, &schema).unwrap());
        assert!(cq_contained_in_ucq(&q_const1, &union, &schema).unwrap());
        assert!(!ucq_equivalent(&union, &general_u, &schema).unwrap());
        assert!(ucq_equivalent(&union, &union, &schema).unwrap());
    }
}
