//! Classical query containment (no access schema).
//!
//! * CQ ⊆ CQ is decided by the Chandra–Merlin criterion: `Q1 ⊆ Q2` iff there
//!   is a homomorphism from `Q2` into the canonical instance of `Q1` mapping
//!   the head of `Q2` onto the summary of `Q1`.
//! * CQ ⊆ UCQ and UCQ ⊆ UCQ reduce to the CQ case disjunct by disjunct
//!   (Sagiv–Yannakakis).
//!
//! `A`-relative containment (`Q1 ⊑_A Q2`) lives in [`crate::aequiv`] and is
//! built on element queries plus the tests in this module.
//!
//! Repeated checks should go through a [`ContainmentChecker`], which
//! memoises canonical instances per query and relation indexes per
//! (canonical relation, access pattern) — see the slot engine in
//! [`crate::hom`].

use crate::atom::Term;
use crate::canonical::{canonical_instance, CanonicalInstance};
use crate::cq::ConjunctiveQuery;
use crate::error::QueryError;
use crate::hom::{Assignment, HomSearch};
use crate::planner::PlannerConfig;
use crate::ucq::UnionQuery;
use crate::Result;
use bqr_data::{DatabaseSchema, IndexCache, Relation};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// A containment oracle for one schema, with three layers of memoisation:
///
/// * **canonical instances** — the tableau `(T_Q, ū)` of every left-hand
///   query is built once and reused across checks;
/// * **relation indexes** — the hash indexes probed by the homomorphism
///   search come from a shared [`IndexCache`], keyed by relation epoch, so
///   repeatedly matching into the same canonical instance (the dominant
///   cost of the `A`-equivalence procedures) never rebuilds an index; and
/// * **compiled searches** — the slot machine ([`HomSearch`]) for a
///   `(q1, q2)` pair is compiled once; re-checking the pair only re-runs
///   the backtracking search.  `None` records a head/summary mismatch, for
///   which no search is needed at all.
///
/// The free functions below keep the historical one-shot signatures; create
/// a checker explicitly whenever more than one containment test runs against
/// the same queries or schema.
/// Memo table of compiled searches, keyed `q1 → q2 → search`; `None`
/// records a head/summary mismatch that needs no search at all.  Nested so
/// lookups probe with borrowed queries — cloning happens only on insert.
type SearchMemo = HashMap<ConjunctiveQuery, HashMap<ConjunctiveQuery, Option<Rc<HomSearch>>>>;

pub struct ContainmentChecker<'s> {
    schema: &'s DatabaseSchema,
    cache: IndexCache,
    planner: PlannerConfig,
    canonicals: RefCell<HashMap<ConjunctiveQuery, Rc<CanonicalInstance>>>,
    searches: RefCell<SearchMemo>,
}

/// Process-wide count of checkers ever constructed.  Constructing a checker
/// is cheap, but *using a fresh one per phase* throws away the canonical
/// instances and compiled searches the previous phase memoised — the
/// decision procedures in `bqr-core` are required to construct at most one
/// per top-level call, and their tests pin that with this counter.
static CONSTRUCTED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl<'s> ContainmentChecker<'s> {
    /// A checker with empty caches and the default (auto) join planner.
    pub fn new(schema: &'s DatabaseSchema) -> Self {
        ContainmentChecker::with_planner(schema, PlannerConfig::default())
    }

    /// A checker whose homomorphism searches are planned under `planner`.
    pub fn with_planner(schema: &'s DatabaseSchema, planner: PlannerConfig) -> Self {
        CONSTRUCTED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        ContainmentChecker {
            schema,
            cache: IndexCache::new(),
            planner,
            canonicals: RefCell::new(HashMap::new()),
            searches: RefCell::new(HashMap::new()),
        }
    }

    /// How many checkers this process has constructed so far (both
    /// [`ContainmentChecker::new`] and [`ContainmentChecker::with_planner`]).
    /// Diff two readings around a call to count its constructions.
    pub fn constructed_count() -> u64 {
        CONSTRUCTED.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The shared relation-index cache (e.g. for hit/miss statistics).
    pub fn cache(&self) -> &IndexCache {
        &self.cache
    }

    /// The schema the checker decides containment over.
    pub fn schema(&self) -> &'s DatabaseSchema {
        self.schema
    }

    /// Soft bound on each memo map; exceeding it clears the map.  The memos
    /// are pure caches, so clearing is always sound — it only bounds memory
    /// when a long-running search (e.g. the exact VBRP enumeration) streams
    /// thousands of distinct query pairs through one checker.  Clearing
    /// `searches` also releases the `Rc<RelationIndex>` snapshots the
    /// compiled machines pin, which the [`IndexCache`]'s own bound cannot
    /// free on its own.
    const MAX_MEMO_ENTRIES: usize = 4096;

    /// The memoised canonical instance of `q`.
    fn canonical(&self, q: &ConjunctiveQuery) -> Result<Rc<CanonicalInstance>> {
        if let Some(c) = self.canonicals.borrow().get(q) {
            return Ok(Rc::clone(c));
        }
        let built = Rc::new(canonical_instance(q, self.schema)?);
        let mut canonicals = self.canonicals.borrow_mut();
        if canonicals.len() >= Self::MAX_MEMO_ENTRIES {
            canonicals.clear();
        }
        canonicals.insert(q.clone(), Rc::clone(&built));
        Ok(built)
    }

    /// Decide `q1 ⊆ q2` (over all instances of the schema).
    pub fn cq_contained_in(&self, q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> Result<bool> {
        if q1.arity() != q2.arity() {
            return Err(QueryError::MismatchedUnionArity {
                expected: q1.arity(),
                actual: q2.arity(),
            });
        }
        let canon = self.canonical(q1)?;
        self.cq_maps_onto(q1, q2, &canon)
    }

    /// Decide `q1 ⊆ u2`: some disjunct of `u2` must map onto the canonical
    /// instance of `q1`.
    pub fn cq_contained_in_ucq(&self, q1: &ConjunctiveQuery, u2: &UnionQuery) -> Result<bool> {
        if q1.arity() != u2.arity() {
            return Err(QueryError::MismatchedUnionArity {
                expected: q1.arity(),
                actual: u2.arity(),
            });
        }
        let canon = self.canonical(q1)?;
        for d in u2.disjuncts() {
            if self.cq_maps_onto(q1, d, &canon)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Decide `u1 ⊆ u2` (disjunct-wise, by Sagiv–Yannakakis).
    pub fn ucq_contained_in(&self, u1: &UnionQuery, u2: &UnionQuery) -> Result<bool> {
        for d in u1.disjuncts() {
            if !self.cq_contained_in_ucq(d, u2)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Decide classical CQ equivalence `q1 ≡ q2`.
    pub fn cq_equivalent(&self, q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> Result<bool> {
        Ok(self.cq_contained_in(q1, q2)? && self.cq_contained_in(q2, q1)?)
    }

    /// Decide classical UCQ equivalence `u1 ≡ u2`.
    pub fn ucq_equivalent(&self, u1: &UnionQuery, u2: &UnionQuery) -> Result<bool> {
        Ok(self.ucq_contained_in(u1, u2)? && self.ucq_contained_in(u2, u1)?)
    }

    /// Decide whether `q` has a homomorphism into the canonical instance of
    /// `q1` that sends its head onto the summary.  The compiled slot machine
    /// for the `(q1, q)` pair is memoised, so repeats only re-run the search.
    fn cq_maps_onto(
        &self,
        q1: &ConjunctiveQuery,
        q: &ConjunctiveQuery,
        canon: &CanonicalInstance,
    ) -> Result<bool> {
        let memoised = self
            .searches
            .borrow()
            .get(q1)
            .and_then(|per_q1| per_q1.get(q))
            .cloned();
        let search = match memoised {
            Some(Some(s)) => s,
            Some(None) => return Ok(false),
            None => {
                let compiled = self.compile_maps_onto(q, canon)?;
                let mut searches = self.searches.borrow_mut();
                if searches.len() >= Self::MAX_MEMO_ENTRIES {
                    searches.clear();
                }
                searches
                    .entry(q1.clone())
                    .or_default()
                    .insert(q.clone(), compiled.clone());
                match compiled {
                    Some(s) => s,
                    None => return Ok(false),
                }
            }
        };
        let mut found = false;
        search.run(|_| {
            found = true;
            std::ops::ControlFlow::Break(())
        })?;
        Ok(found)
    }

    /// Compile the slot machine matching `q` into `canon`; `None` when the
    /// head cannot map onto the summary (constant mismatch or a head
    /// variable forced onto two distinct values).
    fn compile_maps_onto(
        &self,
        q: &ConjunctiveQuery,
        canon: &CanonicalInstance,
    ) -> Result<Option<Rc<HomSearch>>> {
        let db = &canon.database;
        let target = &canon.summary;
        // Seed the assignment with the head: head variables must map to the
        // target values; head constants must equal them.
        let mut initial = Assignment::new();
        for (i, term) in q.head().iter().enumerate() {
            let want = &target[i];
            match term {
                Term::Const(c) => {
                    if c != want {
                        return Ok(None);
                    }
                }
                Term::Var(v) => match initial.get(v) {
                    Some(existing) if existing != want => return Ok(None),
                    _ => {
                        initial.insert(v.clone(), want.clone());
                    }
                },
            }
        }
        let relations: BTreeMap<String, &Relation> = q
            .relation_names()
            .into_iter()
            .map(|name| {
                db.relation(&name)
                    .map(|r| (name.clone(), r))
                    .ok_or(QueryError::UnknownRelation(name))
            })
            .collect::<Result<_>>()?;
        Ok(Some(Rc::new(HomSearch::compile_with(
            q.atoms(),
            &relations,
            &initial,
            &self.cache,
            &self.planner,
        )?)))
    }
}

/// Decide `q1 ⊆ q2` (over all instances of `schema`).
///
/// Both queries must be over base relations only (unfold views first) and
/// have the same arity.  One-shot; see [`ContainmentChecker`] for repeated
/// checks.
pub fn cq_contained_in(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    schema: &DatabaseSchema,
) -> Result<bool> {
    ContainmentChecker::new(schema).cq_contained_in(q1, q2)
}

/// Decide `q1 ⊆ u2` for a CQ `q1` and a UCQ `u2`: some disjunct of `u2` must
/// map onto the canonical instance of `q1`.
pub fn cq_contained_in_ucq(
    q1: &ConjunctiveQuery,
    u2: &UnionQuery,
    schema: &DatabaseSchema,
) -> Result<bool> {
    ContainmentChecker::new(schema).cq_contained_in_ucq(q1, u2)
}

/// Decide `u1 ⊆ u2` for UCQs (disjunct-wise, by Sagiv–Yannakakis).
pub fn ucq_contained_in(u1: &UnionQuery, u2: &UnionQuery, schema: &DatabaseSchema) -> Result<bool> {
    ContainmentChecker::new(schema).ucq_contained_in(u1, u2)
}

/// Decide classical CQ equivalence `q1 ≡ q2`.
pub fn cq_equivalent(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    schema: &DatabaseSchema,
) -> Result<bool> {
    ContainmentChecker::new(schema).cq_equivalent(q1, q2)
}

/// Decide classical UCQ equivalence `u1 ≡ u2`.
pub fn ucq_equivalent(u1: &UnionQuery, u2: &UnionQuery, schema: &DatabaseSchema) -> Result<bool> {
    ContainmentChecker::new(schema).ucq_equivalent(u1, u2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::testutil::{movie_schema, q0, v1};
    use crate::views::ViewSet;
    use bqr_data::DatabaseSchema;

    fn path_schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[("e", &["src", "dst"])]).unwrap()
    }

    fn path(len: usize) -> ConjunctiveQuery {
        // Q(x0, xlen) :- e(x0, x1), e(x1, x2), ..., e(x{len-1}, xlen)
        let atoms = (0..len)
            .map(|i| {
                Atom::new(
                    "e",
                    vec![Term::var(format!("x{i}")), Term::var(format!("x{}", i + 1))],
                )
            })
            .collect();
        ConjunctiveQuery::new(vec![Term::var("x0"), Term::var(format!("x{len}"))], atoms).unwrap()
    }

    #[test]
    fn longer_path_contained_in_shorter_boolean() {
        let schema = path_schema();
        // Boolean versions: ∃ path of length 2 ⊆ ∃ path of length 1.
        let p1 = path(1).with_head(vec![]).unwrap();
        let p2 = path(2).with_head(vec![]).unwrap();
        assert!(cq_contained_in(&p2, &p1, &schema).unwrap());
        assert!(!cq_contained_in(&p1, &p2, &schema).unwrap());
        assert!(!cq_equivalent(&p1, &p2, &schema).unwrap());
    }

    #[test]
    fn identical_up_to_renaming_is_equivalent() {
        let schema = path_schema();
        let a = path(2);
        let b = a.rename_apart("_z");
        assert!(cq_equivalent(&a, &b, &schema).unwrap());
    }

    #[test]
    fn redundant_atom_is_absorbed() {
        let schema = path_schema();
        // Q1(x,y) :- e(x,y), e(x,z)   ≡   Q2(x,y) :- e(x,y)
        let q1 = ConjunctiveQuery::new(
            vec![Term::var("x"), Term::var("y")],
            vec![
                Atom::new("e", vec![Term::var("x"), Term::var("y")]),
                Atom::new("e", vec![Term::var("x"), Term::var("z")]),
            ],
        )
        .unwrap();
        let q2 = ConjunctiveQuery::new(
            vec![Term::var("x"), Term::var("y")],
            vec![Atom::new("e", vec![Term::var("x"), Term::var("y")])],
        )
        .unwrap();
        assert!(cq_equivalent(&q1, &q2, &schema).unwrap());
    }

    #[test]
    fn constants_matter_for_containment() {
        let schema = path_schema();
        let general = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("e", vec![Term::var("x"), Term::var("y")])],
        )
        .unwrap();
        let specific = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("e", vec![Term::var("x"), Term::cnst(1)])],
        )
        .unwrap();
        assert!(cq_contained_in(&specific, &general, &schema).unwrap());
        assert!(!cq_contained_in(&general, &specific, &schema).unwrap());
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let schema = path_schema();
        assert!(cq_contained_in(&path(1), &path(1).with_head(vec![]).unwrap(), &schema).is_err());
    }

    #[test]
    fn q0_contained_in_unfolded_rewriting() {
        // Q0 ⊆ unfold(Qξ) and unfold(Qξ) ⊆ Q0 does NOT hold in general
        // (the rewriting is only A-equivalent), but Q0 ⊆ unfold(Qξ) fails too
        // because Qξ drops the join on `person`... let us check the actual
        // relationship: unfold(Qξ) has all atoms of Q0 except that the movie
        // atom appears twice with different variables; hence unfold(Qξ) ⊆ Q0
        // *and* Q0 ⊆ unfold(Qξ) — they are classically equivalent in this
        // particular example because the second movie atom is unconstrained.
        let schema = movie_schema();
        let mut views = ViewSet::empty();
        views.add_cq("V1", v1()).unwrap();
        let q_xi = ConjunctiveQuery::new(
            vec![Term::var("mid")],
            vec![
                Atom::new(
                    "movie",
                    vec![
                        Term::var("mid"),
                        Term::var("ym"),
                        Term::cnst("Universal"),
                        Term::cnst("2014"),
                    ],
                ),
                Atom::new("V1", vec![Term::var("mid")]),
                Atom::new("rating", vec![Term::var("mid"), Term::cnst(5)]),
            ],
        )
        .unwrap();
        let unfolded = views.unfold_cq(&q_xi).unwrap();
        assert!(cq_contained_in(&unfolded, &q0(), &schema).unwrap());
        assert!(cq_contained_in(&q0(), &unfolded, &schema).unwrap());
    }

    #[test]
    fn checker_memoises_canonical_instances_and_indexes() {
        let schema = path_schema();
        let checker = ContainmentChecker::new(&schema);
        let p1 = path(1).with_head(vec![]).unwrap();
        let p2 = path(2).with_head(vec![]).unwrap();
        for _ in 0..10 {
            assert!(checker.cq_contained_in(&p2, &p1).unwrap());
            assert!(!checker.cq_contained_in(&p1, &p2).unwrap());
        }
        // Two canonical instances and two compiled searches, built on the
        // first round; every further round only re-runs the slot machines,
        // touching neither the canonical store nor the index cache.
        assert_eq!(checker.canonicals.borrow().len(), 2);
        assert_eq!(checker.searches.borrow().len(), 2);
        let misses_after_ten_rounds = checker.cache().misses();
        assert!(checker.cq_contained_in(&p2, &p1).unwrap());
        assert_eq!(checker.cache().misses(), misses_after_ten_rounds);
    }

    #[test]
    fn ucq_containment_disjunctwise() {
        let schema = path_schema();
        let q_const1 = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("e", vec![Term::var("x"), Term::cnst(1)])],
        )
        .unwrap();
        let q_const2 = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("e", vec![Term::var("x"), Term::cnst(2)])],
        )
        .unwrap();
        let general = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("e", vec![Term::var("x"), Term::var("y")])],
        )
        .unwrap();
        let union = UnionQuery::new(vec![q_const1.clone(), q_const2.clone()]).unwrap();
        let general_u = UnionQuery::single(general);
        // {e(x,1)} ∪ {e(x,2)} ⊆ {e(x,y)} but not conversely.
        assert!(ucq_contained_in(&union, &general_u, &schema).unwrap());
        assert!(!ucq_contained_in(&general_u, &union, &schema).unwrap());
        assert!(cq_contained_in_ucq(&q_const1, &union, &schema).unwrap());
        assert!(!ucq_equivalent(&union, &general_u, &schema).unwrap());
        assert!(ucq_equivalent(&union, &union, &schema).unwrap());
    }
}
