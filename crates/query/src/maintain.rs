//! Delta-driven (semi-naive) maintenance of materialised view extents.
//!
//! Given the extents materialised over the previous instance and the exact
//! per-relation write delta of a mutation ([`DeltaLog`]), [`maintain`]
//! produces the extents of the new instance without re-evaluating views
//! whose input relations did not change — and for CQ views it re-derives
//! only the tuples that have at least one *delta-atom binding*, i.e. a
//! derivation using a changed base tuple:
//!
//! * **Insertions** — for every inserted tuple `t` and every atom of the
//!   view body over `t`'s relation, unify the atom with `t` and evaluate
//!   the resulting *residual query* over the new instance.  Everything it
//!   derives is `ΔV⁺`; nothing else can be new, because any derivation of a
//!   genuinely new view tuple must use at least one inserted base tuple.
//! * **Deletions** — the DRed over-delete/re-derive split: binding removed
//!   tuples the same way *over the old instance* yields the candidate set
//!   (every extent tuple that had a derivation through a removed base
//!   tuple); each candidate still in the extent is then re-checked for an
//!   alternative derivation over the new instance with a boolean residual
//!   query capped at one answer, and deleted only when none exists.
//!
//! UCQ views are maintained one CQ disjunct at a time against the
//! per-disjunct extents tracked in [`MaterializedViews`]: a disjunct whose
//! atoms mention no touched relation is carried over as a clone (same
//! contents, same storage — no evaluation at all), touched disjuncts run
//! the semi-naive CQ maintenance above, and the union extent is then
//! patched from the per-disjunct changes — an insert joins the union
//! outright, a removal leaves it only when no other disjunct still derives
//! the tuple.
//!
//! Views whose definitions are genuinely non-CQ/UCQ (FO), or that read a
//! relation whose delta was lost ([`bqr_data::RelationChange::Unknown`]),
//! fall back to full re-materialisation *of that view only* — and even then
//! the previous extent relation (with its epoch) is reused whenever the
//! recomputed contents come out identical, so epoch-keyed pipeline caches
//! upstream are invalidated only by genuine content changes.
//!
//! Untouched extents are returned as clones of the previous ones: same
//! contents, same epoch, shared storage.

use crate::atom::{Atom, Term};
use crate::cq::ConjunctiveQuery;
use crate::error::QueryError;
use crate::eval::Evaluator;
use crate::views::{MaterializedViews, ViewDefinition, ViewSet};
use crate::Result;
use bqr_data::delta::DeltaLog;
use bqr_data::{Database, Relation, RelationSchema, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// Maintain every extent of `views` across one mutation: `previous` are the
/// extents over `old_db`, and `new_db = old_db + delta`.  The result is
/// bit-identical (contents *and*, for unchanged extents, epochs) to what
/// `views.materialize(new_db)` would produce content-wise, at `O(|Δ|)` cost
/// for exact deltas over CQ views.
pub fn maintain(
    views: &ViewSet,
    previous: &MaterializedViews,
    old_db: &Database,
    new_db: &Database,
    delta: &DeltaLog,
) -> Result<MaterializedViews> {
    bqr_data::faults::check(bqr_data::faults::sites::VIEW_MAINTAIN)?;
    let mut out = MaterializedViews::empty();
    for (name, def) in views.iter() {
        let touched = def.relation_names().iter().any(|r| delta.touches(r));
        let exact = def
            .relation_names()
            .iter()
            .all(|r| !delta.touches(r) || delta.exact(r).is_some());
        match (def, previous.extent(name)) {
            // Delta-relevance pre-check, shared by every definition kind:
            // a view reading only untouched relations keeps its extent
            // object (and disjunct extents) without any evaluation.
            (_, Some(prev)) if !touched => match previous.disjuncts(name) {
                Some(parts) => out.insert_with_disjuncts(name, prev.clone(), parts.to_vec()),
                None => out.insert(name, prev.clone()),
            },
            (ViewDefinition::Cq(cq), Some(prev)) if exact => {
                out.insert(
                    name,
                    maintain_cq_tracked(cq, prev, old_db, new_db, delta)?.extent,
                );
            }
            (ViewDefinition::Ucq(ucq), Some(prev)) if exact => {
                let (extent, parts) =
                    maintain_ucq(ucq, prev, previous.disjuncts(name), old_db, new_db, delta)?;
                out.insert_with_disjuncts(name, extent, parts);
            }
            // Lost (wholesale-replacement) delta, or no previous extent to
            // start from: re-evaluate this one view per disjunct, so exact
            // deltas can resume per-disjunct maintenance afterwards.
            (ViewDefinition::Ucq(ucq), prev) => {
                let (extent, parts) =
                    rematerialize_ucq(name, ucq, new_db, prev, previous.disjuncts(name))?;
                out.insert_with_disjuncts(name, extent, parts);
            }
            // Genuinely non-CQ FO view, a CQ view over a lost delta, or no
            // previous extent: re-evaluate from scratch, reusing the
            // previous extent relation when the contents are unchanged.
            (_, prev) => out.insert(name, rematerialize(name, def, new_db, prev)?),
        }
    }
    Ok(out)
}

/// The outcome of one semi-naive CQ maintenance: the new extent plus the
/// tuples that genuinely left and joined it — the per-disjunct change feed
/// UCQ union maintenance consumes.
struct CqChange {
    extent: Relation,
    removed: Vec<Tuple>,
    inserted: Vec<Tuple>,
}

/// Exact semi-naive maintenance of one CQ view extent.
fn maintain_cq_tracked(
    cq: &ConjunctiveQuery,
    prev: &Relation,
    old_db: &Database,
    new_db: &Database,
    delta: &DeltaLog,
) -> Result<CqChange> {
    // Clones share storage and epoch; a net no-op maintenance returns the
    // extent with its epoch intact.
    let mut extent = prev.clone();
    let mut removed = Vec::new();
    let mut inserted = Vec::new();
    let residual = Evaluator::new();

    // DRed phase 1+2: over-delete candidates (derivations through a removed
    // tuple, found over the OLD instance), then re-derive over the new one.
    let mut candidates: BTreeSet<Tuple> = BTreeSet::new();
    for atom in cq.atoms() {
        if let Some(d) = delta.exact(atom.relation()) {
            for t in &d.removed {
                if let Some(binding) = bind_atom(atom, t) {
                    candidates.extend(residual.eval_cq(&cq.substitute(&binding), old_db, None)?);
                }
            }
        }
    }
    let probe = Evaluator::new().with_max_results(1);
    for candidate in &candidates {
        if extent.contains(candidate) && !derivable(&probe, cq, candidate, new_db)? {
            extent.remove(candidate)?;
            removed.push(candidate.clone());
        }
    }

    // Insertion phase: every genuinely new view tuple has a derivation
    // through at least one inserted base tuple, so evaluating each residual
    // query over the new instance covers exactly `ΔV⁺`.
    for atom in cq.atoms() {
        if let Some(d) = delta.exact(atom.relation()) {
            for t in &d.inserted {
                if let Some(binding) = bind_atom(atom, t) {
                    for answer in residual.eval_cq(&cq.substitute(&binding), new_db, None)? {
                        if extent.insert(answer.clone())? {
                            inserted.push(answer);
                        }
                    }
                }
            }
        }
    }
    Ok(CqChange {
        extent,
        removed,
        inserted,
    })
}

/// Exact per-disjunct maintenance of one UCQ view: untouched disjuncts are
/// carried over without evaluation, touched ones run the semi-naive CQ
/// maintenance, and the union extent is patched from the disjunct changes —
/// `O(|ΔV| · #disjuncts)` rather than a re-evaluation of the whole union.
fn maintain_ucq(
    ucq: &crate::ucq::UnionQuery,
    prev: &Relation,
    prev_disjuncts: Option<&[Relation]>,
    old_db: &Database,
    new_db: &Database,
    delta: &DeltaLog,
) -> Result<(Relation, Vec<Relation>)> {
    let disjuncts = ucq.disjuncts();
    let Some(prev_parts) = prev_disjuncts.filter(|p| p.len() == disjuncts.len()) else {
        // No per-disjunct state to resume from (extent inserted without
        // tracking): rebuild it, reusing unchanged relations.
        return rematerialize_ucq(prev.name(), ucq, new_db, Some(prev), None);
    };
    let mut parts = Vec::with_capacity(disjuncts.len());
    let mut changes: Vec<(Vec<Tuple>, Vec<Tuple>)> = Vec::new();
    for (cq, prev_part) in disjuncts.iter().zip(prev_parts) {
        // Per-disjunct delta-relevance pre-check: a disjunct over untouched
        // relations keeps its extent (shared storage, no eval).
        if !cq.relation_names().iter().any(|r| delta.touches(r)) {
            parts.push(prev_part.clone());
            continue;
        }
        let change = maintain_cq_tracked(cq, prev_part, old_db, new_db, delta)?;
        parts.push(change.extent);
        changes.push((change.removed, change.inserted));
    }
    // Union maintenance.  Inserts first (a tuple already derived elsewhere
    // is a no-op), then removals guarded by a cross-disjunct derivability
    // check — a tuple one disjunct lost survives while any other disjunct
    // still derives it.  Content-unchanged unions perform no operation at
    // all, so the previous extent's epoch is preserved.
    let mut extent = prev.clone();
    for (_, inserted) in &changes {
        for t in inserted {
            extent.insert(t.clone())?;
        }
    }
    for (removed, _) in &changes {
        for t in removed {
            if parts.iter().all(|p| !p.contains(t)) {
                extent.remove(t)?;
            }
        }
    }
    Ok((extent, parts))
}

/// Evaluate a UCQ view from scratch, one disjunct at a time, reusing the
/// previous union extent — and any previous disjunct extents — whose
/// contents come out unchanged, so their epochs (and shared storage)
/// survive the rebuild.
fn rematerialize_ucq(
    name: &str,
    ucq: &crate::ucq::UnionQuery,
    db: &Database,
    prev: Option<&Relation>,
    prev_disjuncts: Option<&[Relation]>,
) -> Result<(Relation, Vec<Relation>)> {
    let attrs: Vec<String> = (0..ucq.arity()).map(|i| format!("c{i}")).collect();
    let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
    let schema = RelationSchema::new(name, &attr_refs)?;
    let mut parts = Vec::with_capacity(ucq.disjuncts().len());
    let mut union: BTreeSet<Tuple> = BTreeSet::new();
    for (i, cq) in ucq.disjuncts().iter().enumerate() {
        let tuples = crate::eval::eval_cq(cq, db, None)?;
        union.extend(tuples.iter().cloned());
        let part = match prev_disjuncts.and_then(|p| p.get(i)) {
            Some(prev_part)
                if prev_part.len() == tuples.len()
                    && tuples.iter().all(|t| prev_part.contains(t)) =>
            {
                prev_part.clone()
            }
            _ => Relation::from_tuples(schema.clone(), tuples)?,
        };
        parts.push(part);
    }
    let extent = match prev {
        Some(prev) if prev.len() == union.len() && union.iter().all(|t| prev.contains(t)) => {
            prev.clone()
        }
        _ => Relation::from_tuples(schema, union)?,
    };
    Ok((extent, parts))
}

/// Unify `atom` with the concrete tuple `t`: constants must match, repeated
/// variables must agree, and every variable maps to the corresponding
/// constant.  `None` means `t` cannot participate in this atom position.
fn bind_atom(atom: &Atom, t: &Tuple) -> Option<BTreeMap<String, Term>> {
    let mut binding: BTreeMap<String, Term> = BTreeMap::new();
    for (term, value) in atom.args().iter().zip(t.iter()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => match binding.get(v) {
                Some(Term::Const(prev)) if prev != value => return None,
                _ => {
                    binding.insert(v.clone(), Term::cnst(value.clone()));
                }
            },
        }
    }
    Some(binding)
}

/// Does `candidate` still have a derivation under `cq` over `db`?  The
/// fully bound head turns the view body into a boolean residual query; the
/// evaluator is capped at one answer, so a budget overflow ("more than one
/// homomorphism") is itself proof of derivability.
fn derivable(
    probe: &Evaluator,
    cq: &ConjunctiveQuery,
    candidate: &Tuple,
    db: &Database,
) -> Result<bool> {
    let mut binding: BTreeMap<String, Term> = BTreeMap::new();
    for (term, value) in cq.head().iter().zip(candidate.iter()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return Ok(false);
                }
            }
            Term::Var(v) => match binding.get(v) {
                Some(Term::Const(prev)) if prev != value => return Ok(false),
                _ => {
                    binding.insert(v.clone(), Term::cnst(value.clone()));
                }
            },
        }
    }
    match probe.eval_cq(&cq.substitute(&binding), db, None) {
        Ok(answers) => Ok(!answers.is_empty()),
        Err(QueryError::BudgetExceeded(_)) => Ok(true),
        Err(e) => Err(e),
    }
}

/// Evaluate `def` from scratch over `db`.  When `prev` is given and the
/// recomputed contents are identical, the previous extent relation is
/// returned instead — preserving its epoch so downstream epoch-keyed caches
/// stay warm.
fn rematerialize(
    name: &str,
    def: &ViewDefinition,
    db: &Database,
    prev: Option<&Relation>,
) -> Result<Relation> {
    let tuples: Vec<Tuple> = match def {
        ViewDefinition::Cq(q) => crate::eval::eval_cq(q, db, None)?,
        ViewDefinition::Ucq(q) => crate::eval::eval_ucq(q, db, None)?,
        ViewDefinition::Fo(q) => crate::eval::eval_fo(q, db, None)?,
    };
    if let Some(prev) = prev {
        if prev.len() == tuples.len() && tuples.iter().all(|t| prev.contains(t)) {
            return Ok(prev.clone());
        }
    }
    let attrs: Vec<String> = (0..def.arity()).map(|i| format!("c{i}")).collect();
    let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
    let schema = RelationSchema::new(name, &attr_refs)?;
    Ok(Relation::from_tuples(schema, tuples)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_cq, parse_ucq};
    use bqr_data::{tuple, DatabaseSchema};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[
            ("person", &["pid", "name", "affiliation"]),
            ("movie", &["mid", "mname", "studio", "release"]),
            ("rating", &["mid", "rank"]),
            ("like", &["pid", "id", "type"]),
        ])
        .unwrap()
    }

    fn views() -> ViewSet {
        let mut v = ViewSet::empty();
        v.add_cq(
            "V1",
            parse_cq(
                "V1(mid) :- person(xp, xn, 'NASA'), movie(mid, ym, z1, z2), like(xp, mid, 'movie')",
            )
            .unwrap(),
        )
        .unwrap();
        v.add_cq("VR", parse_cq("VR(m, r) :- rating(m, r)").unwrap())
            .unwrap();
        v.add_ucq(
            "VU",
            parse_ucq("VU(m) :- rating(m, 5); VU(m) :- rating(m, 4)").unwrap(),
        )
        .unwrap();
        v
    }

    fn instance() -> Database {
        let mut db = Database::empty(schema());
        db.insert("person", tuple![1, "Ann", "NASA"]).unwrap();
        db.insert("person", tuple![2, "Bob", "ESA"]).unwrap();
        db.insert("movie", tuple![10, "Lucy", "Universal", "2014"])
            .unwrap();
        db.insert("movie", tuple![12, "Her", "WB", "2013"]).unwrap();
        db.insert("rating", tuple![10, 5]).unwrap();
        db.insert("rating", tuple![12, 4]).unwrap();
        db.insert("like", tuple![1, 10, "movie"]).unwrap();
        db.insert("like", tuple![2, 12, "movie"]).unwrap();
        db
    }

    /// Apply `mutate` with delta tracking and return (old, new, log).
    fn mutated(
        mutate: impl FnOnce(&mut Database) -> bqr_data::Result<()>,
    ) -> (Database, Database, DeltaLog) {
        let old = instance();
        let mut new = old.clone();
        new.begin_delta_tracking();
        mutate(&mut new).unwrap();
        let log = new.take_delta(&old);
        (old, new, log)
    }

    fn check_against_full(old: &Database, new: &Database, log: &DeltaLog) {
        let views = views();
        let previous = views.materialize(old).unwrap();
        let maintained = maintain(&views, &previous, old, new, log).unwrap();
        let reference = views.materialize(new).unwrap();
        for name in views.names() {
            assert_eq!(
                maintained.extent(name).unwrap(),
                reference.extent(name).unwrap(),
                "extent `{name}` diverged"
            );
        }
    }

    #[test]
    fn insertions_extend_extents_semi_naively() {
        let (old, new, log) = mutated(|db| {
            db.insert("movie", tuple![13, "Ouija", "Universal", "2014"])?;
            db.insert("like", tuple![1, 13, "movie"])?;
            db.insert("rating", tuple![13, 5])?;
            Ok(())
        });
        check_against_full(&old, &new, &log);
    }

    #[test]
    fn deletions_overdelete_then_rederive() {
        // Removing Ann's like kills V1's only derivation of movie 10;
        // removing rating (12, 4) shrinks VR and VU.
        let (old, new, log) = mutated(|db| {
            db.remove("like", &tuple![1, 10, "movie"])?;
            db.remove("rating", &tuple![12, 4])?;
            Ok(())
        });
        check_against_full(&old, &new, &log);
    }

    #[test]
    fn surviving_alternative_derivations_are_kept() {
        // Two NASA fans like movie 10; dropping one leaves a derivation.
        let old = {
            let mut db = instance();
            db.insert("person", tuple![3, "Cat", "NASA"]).unwrap();
            db.insert("like", tuple![3, 10, "movie"]).unwrap();
            db
        };
        let mut new = old.clone();
        new.begin_delta_tracking();
        new.remove("like", &tuple![1, 10, "movie"]).unwrap();
        let log = new.take_delta(&old);

        let views = views();
        let previous = views.materialize(&old).unwrap();
        let maintained = maintain(&views, &previous, &old, &new, &log).unwrap();
        assert!(maintained.extent("V1").unwrap().contains(&tuple![10]));
        assert_eq!(
            maintained.extent("V1").unwrap(),
            views.materialize(&new).unwrap().extent("V1").unwrap()
        );
    }

    #[test]
    fn untouched_views_keep_their_extent_epochs() {
        let (old, new, log) = mutated(|db| db.insert("rating", tuple![12, 5]).map(drop));
        let views = views();
        let previous = views.materialize(&old).unwrap();
        let maintained = maintain(&views, &previous, &old, &new, &log).unwrap();
        // V1 reads person/movie/like only: same extent object, same epoch.
        assert_eq!(
            maintained.extent("V1").unwrap().epoch(),
            previous.extent("V1").unwrap().epoch()
        );
        // VR and VU read rating and genuinely changed: fresh epochs.
        assert_ne!(
            maintained.extent("VR").unwrap().epoch(),
            previous.extent("VR").unwrap().epoch()
        );
        check_against_full(&old, &new, &log);
    }

    #[test]
    fn touched_but_unchanged_extents_keep_their_epochs_too() {
        // rating (12, 3) changes VR but neither VU (rank ∉ {4, 5}) nor V1.
        let (old, new, log) = mutated(|db| db.insert("rating", tuple![12, 3]).map(drop));
        let views = views();
        let previous = views.materialize(&old).unwrap();
        let maintained = maintain(&views, &previous, &old, &new, &log).unwrap();
        assert_ne!(
            maintained.extent("VR").unwrap().epoch(),
            previous.extent("VR").unwrap().epoch()
        );
        assert_eq!(
            maintained.extent("VU").unwrap().epoch(),
            previous.extent("VU").unwrap().epoch(),
            "UCQ fallback must reuse the previous extent when contents are unchanged"
        );
        check_against_full(&old, &new, &log);
    }

    #[test]
    fn unknown_deltas_fall_back_to_per_view_rematerialisation() {
        let old = instance();
        let mut new = old.clone();
        new.begin_delta_tracking();
        let schema = old.relation("rating").unwrap().schema().clone();
        *new.relation_mut("rating").unwrap() =
            Relation::from_tuples(schema, vec![tuple![10, 5], tuple![12, 5]]).unwrap();
        let log = new.take_delta(&old);
        assert!(log.is_unknown("rating"));
        check_against_full(&old, &new, &log);
    }

    #[test]
    fn repeated_variables_and_constants_bind_exactly() {
        let mut v = ViewSet::empty();
        v.add_cq("VS", parse_cq("VS(m) :- rating(m, m)").unwrap())
            .unwrap();
        let sch = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])]).unwrap();
        let mut old = Database::empty(sch);
        old.insert("rating", tuple![5, 5]).unwrap();
        old.insert("rating", tuple![1, 2]).unwrap();
        let mut new = old.clone();
        new.begin_delta_tracking();
        new.insert("rating", tuple![7, 7]).unwrap();
        new.insert("rating", tuple![8, 9]).unwrap();
        new.remove("rating", &tuple![5, 5]).unwrap();
        let log = new.take_delta(&old);
        let previous = v.materialize(&old).unwrap();
        let maintained = maintain(&v, &previous, &old, &new, &log).unwrap();
        assert_eq!(
            maintained.extent("VS").unwrap(),
            v.materialize(&new).unwrap().extent("VS").unwrap()
        );
        assert!(maintained.extent("VS").unwrap().contains(&tuple![7]));
        assert!(!maintained.extent("VS").unwrap().contains(&tuple![5]));
    }
}
