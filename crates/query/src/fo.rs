//! First-order queries (FO, the full relational calculus) and the language
//! classification used throughout the paper.
//!
//! The AST follows the paper's grammar: atomic formulas are relation atoms
//! `R(x̄)` and equality atoms `x = y` / `x = c`; formulas are closed under
//! `∧`, `∨`, `¬`, `∃` and `∀`.  The sub-languages are
//!
//! * **CQ** — no `∨`, `¬`, `∀`;
//! * **UCQ** — a disjunction of CQs;
//! * **∃FO+** — no `¬`, `∀`;
//! * **FO** — everything.

use crate::atom::{Atom, Term};
use crate::budget::Budget;
use crate::cq::ConjunctiveQuery;
use crate::error::QueryError;
use crate::ucq::UnionQuery;
use crate::Result;
use bqr_data::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The query languages studied in the paper, ordered by expressiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryLanguage {
    /// Conjunctive queries (SPC).
    Cq,
    /// Unions of conjunctive queries (SPCU).
    Ucq,
    /// Positive existential FO (select-project-join-union).
    PosFo,
    /// Full first-order logic (relational algebra).
    Fo,
}

impl fmt::Display for QueryLanguage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryLanguage::Cq => write!(f, "CQ"),
            QueryLanguage::Ucq => write!(f, "UCQ"),
            QueryLanguage::PosFo => write!(f, "∃FO+"),
            QueryLanguage::Fo => write!(f, "FO"),
        }
    }
}

impl QueryLanguage {
    /// True if `self` is a (syntactic) sub-language of `other`.
    pub fn is_sublanguage_of(self, other: QueryLanguage) -> bool {
        self <= other
    }
}

/// A first-order formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Fo {
    /// A relation (or view) atom.
    Atom(Atom),
    /// An equality atom `t1 = t2`.
    Eq(Term, Term),
    /// Conjunction.
    And(Box<Fo>, Box<Fo>),
    /// Disjunction.
    Or(Box<Fo>, Box<Fo>),
    /// Negation.
    Not(Box<Fo>),
    /// Existential quantification over a block of variables.
    Exists(Vec<String>, Box<Fo>),
    /// Universal quantification over a block of variables.
    Forall(Vec<String>, Box<Fo>),
}

impl Fo {
    /// Conjunction helper.
    pub fn and(a: Fo, b: Fo) -> Fo {
        Fo::And(Box::new(a), Box::new(b))
    }

    /// Disjunction helper.
    pub fn or(a: Fo, b: Fo) -> Fo {
        Fo::Or(Box::new(a), Box::new(b))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)] // constructor mirroring `Fo::and`/`Fo::or`, not a negation operator impl
    pub fn not(a: Fo) -> Fo {
        Fo::Not(Box::new(a))
    }

    /// Existential quantification helper (no-op on an empty variable block).
    pub fn exists(vars: Vec<String>, a: Fo) -> Fo {
        if vars.is_empty() {
            a
        } else {
            Fo::Exists(vars, Box::new(a))
        }
    }

    /// Universal quantification helper (no-op on an empty variable block).
    pub fn forall(vars: Vec<String>, a: Fo) -> Fo {
        if vars.is_empty() {
            a
        } else {
            Fo::Forall(vars, Box::new(a))
        }
    }

    /// Conjunction of a list of formulas; `true` is represented by an empty
    /// conjunction, which we encode as the always-true equality `0 = 0`.
    pub fn conjunction(mut formulas: Vec<Fo>) -> Fo {
        match formulas.len() {
            0 => Fo::Eq(Term::cnst(0), Term::cnst(0)),
            1 => formulas.pop().expect("len checked"),
            _ => {
                let mut iter = formulas.into_iter();
                let first = iter.next().expect("len checked");
                iter.fold(first, Fo::and)
            }
        }
    }

    /// Disjunction of a non-empty list of formulas.
    pub fn disjunction(mut formulas: Vec<Fo>) -> Result<Fo> {
        match formulas.len() {
            0 => Err(QueryError::UnsupportedFragment(
                "empty disjunction".to_string(),
            )),
            1 => Ok(formulas.pop().expect("len checked")),
            _ => {
                let mut iter = formulas.into_iter();
                let first = iter.next().expect("len checked");
                Ok(iter.fold(first, Fo::or))
            }
        }
    }

    /// The free variables of the formula.
    pub fn free_variables(&self) -> BTreeSet<String> {
        match self {
            Fo::Atom(a) => a.variables(),
            Fo::Eq(t1, t2) => [t1, t2]
                .iter()
                .filter_map(|t| t.as_var().map(str::to_string))
                .collect(),
            Fo::And(a, b) | Fo::Or(a, b) => {
                let mut s = a.free_variables();
                s.extend(b.free_variables());
                s
            }
            Fo::Not(a) => a.free_variables(),
            Fo::Exists(vars, a) | Fo::Forall(vars, a) => {
                let mut s = a.free_variables();
                for v in vars {
                    s.remove(v);
                }
                s
            }
        }
    }

    /// All variables (free or bound) occurring in the formula.
    pub fn all_variables(&self) -> BTreeSet<String> {
        match self {
            Fo::Atom(a) => a.variables(),
            Fo::Eq(t1, t2) => [t1, t2]
                .iter()
                .filter_map(|t| t.as_var().map(str::to_string))
                .collect(),
            Fo::And(a, b) | Fo::Or(a, b) => {
                let mut s = a.all_variables();
                s.extend(b.all_variables());
                s
            }
            Fo::Not(a) => a.all_variables(),
            Fo::Exists(vars, a) | Fo::Forall(vars, a) => {
                let mut s = a.all_variables();
                s.extend(vars.iter().cloned());
                s
            }
        }
    }

    /// Relation / view names mentioned in the formula.
    pub fn relation_names(&self) -> BTreeSet<String> {
        match self {
            Fo::Atom(a) => [a.relation().to_string()].into_iter().collect(),
            Fo::Eq(_, _) => BTreeSet::new(),
            Fo::And(a, b) | Fo::Or(a, b) => {
                let mut s = a.relation_names();
                s.extend(b.relation_names());
                s
            }
            Fo::Not(a) => a.relation_names(),
            Fo::Exists(_, a) | Fo::Forall(_, a) => a.relation_names(),
        }
    }

    /// Constants mentioned in the formula.
    pub fn constants(&self) -> BTreeSet<Value> {
        match self {
            Fo::Atom(a) => a
                .args()
                .iter()
                .filter_map(|t| t.as_const().cloned())
                .collect(),
            Fo::Eq(t1, t2) => [t1, t2]
                .iter()
                .filter_map(|t| t.as_const().cloned())
                .collect(),
            Fo::And(a, b) | Fo::Or(a, b) => {
                let mut s = a.constants();
                s.extend(b.constants());
                s
            }
            Fo::Not(a) => a.constants(),
            Fo::Exists(_, a) | Fo::Forall(_, a) => a.constants(),
        }
    }

    /// The number of connectives, quantifier blocks and atoms — the size
    /// measure `|Q|` used by the complexity statements.
    pub fn size(&self) -> usize {
        match self {
            Fo::Atom(_) | Fo::Eq(_, _) => 1,
            Fo::And(a, b) | Fo::Or(a, b) => 1 + a.size() + b.size(),
            Fo::Not(a) => 1 + a.size(),
            Fo::Exists(_, a) | Fo::Forall(_, a) => 1 + a.size(),
        }
    }

    /// True if the formula contains neither negation nor universal
    /// quantification (i.e. belongs to `∃FO+`).
    pub fn is_positive(&self) -> bool {
        match self {
            Fo::Atom(_) | Fo::Eq(_, _) => true,
            Fo::And(a, b) | Fo::Or(a, b) => a.is_positive() && b.is_positive(),
            Fo::Not(_) | Fo::Forall(_, _) => false,
            Fo::Exists(_, a) => a.is_positive(),
        }
    }

    /// True if the formula additionally contains no disjunction (i.e. is a
    /// conjunctive query body).
    pub fn is_conjunctive(&self) -> bool {
        match self {
            Fo::Atom(_) | Fo::Eq(_, _) => true,
            Fo::And(a, b) => a.is_conjunctive() && b.is_conjunctive(),
            Fo::Or(_, _) | Fo::Not(_) | Fo::Forall(_, _) => false,
            Fo::Exists(_, a) => a.is_conjunctive(),
        }
    }

    /// True if the formula is a disjunction of conjunctive formulas (the UCQ
    /// shape: `∪` at the top level only).
    pub fn is_union_of_conjunctive(&self) -> bool {
        match self {
            Fo::Or(a, b) => a.is_union_of_conjunctive() && b.is_union_of_conjunctive(),
            other => other.is_conjunctive(),
        }
    }

    /// The smallest of the paper's languages this formula syntactically
    /// belongs to.
    pub fn language(&self) -> QueryLanguage {
        if self.is_conjunctive() {
            QueryLanguage::Cq
        } else if self.is_union_of_conjunctive() {
            QueryLanguage::Ucq
        } else if self.is_positive() {
            QueryLanguage::PosFo
        } else {
            QueryLanguage::Fo
        }
    }

    /// Substitute free occurrences of variables according to `map`.
    ///
    /// The substitution is *not* capture-avoiding; callers must first rename
    /// bound variables apart (see [`Fo::rename_bound`]) when the replacement
    /// terms could clash with bound variables.
    pub fn substitute(&self, map: &BTreeMap<String, Term>) -> Fo {
        match self {
            Fo::Atom(a) => Fo::Atom(a.substitute(map)),
            Fo::Eq(t1, t2) => {
                let sub = |t: &Term| match t {
                    Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| t.clone()),
                    Term::Const(_) => t.clone(),
                };
                Fo::Eq(sub(t1), sub(t2))
            }
            Fo::And(a, b) => Fo::and(a.substitute(map), b.substitute(map)),
            Fo::Or(a, b) => Fo::or(a.substitute(map), b.substitute(map)),
            Fo::Not(a) => Fo::not(a.substitute(map)),
            Fo::Exists(vars, a) => {
                let mut inner = map.clone();
                for v in vars {
                    inner.remove(v);
                }
                Fo::Exists(vars.clone(), Box::new(a.substitute(&inner)))
            }
            Fo::Forall(vars, a) => {
                let mut inner = map.clone();
                for v in vars {
                    inner.remove(v);
                }
                Fo::Forall(vars.clone(), Box::new(a.substitute(&inner)))
            }
        }
    }

    /// Rename every bound variable to a fresh name (`__b0`, `__b1`, ...),
    /// making all quantifier blocks pairwise disjoint and disjoint from free
    /// variables.  Required before the UCQ expansion.
    pub fn rename_bound(&self) -> Fo {
        fn go(f: &Fo, counter: &mut usize, map: &BTreeMap<String, Term>) -> Fo {
            match f {
                Fo::Atom(a) => Fo::Atom(a.substitute(map)),
                Fo::Eq(t1, t2) => {
                    let sub = |t: &Term| match t {
                        Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| t.clone()),
                        Term::Const(_) => t.clone(),
                    };
                    Fo::Eq(sub(t1), sub(t2))
                }
                Fo::And(a, b) => Fo::and(go(a, counter, map), go(b, counter, map)),
                Fo::Or(a, b) => Fo::or(go(a, counter, map), go(b, counter, map)),
                Fo::Not(a) => Fo::not(go(a, counter, map)),
                Fo::Exists(vars, a) | Fo::Forall(vars, a) => {
                    let mut inner = map.clone();
                    let mut fresh = Vec::with_capacity(vars.len());
                    for v in vars {
                        let name = format!("__b{}", *counter);
                        *counter += 1;
                        inner.insert(v.clone(), Term::var(name.clone()));
                        fresh.push(name);
                    }
                    let body = go(a, counter, &inner);
                    match f {
                        Fo::Exists(_, _) => Fo::Exists(fresh, Box::new(body)),
                        _ => Fo::Forall(fresh, Box::new(body)),
                    }
                }
            }
        }
        let mut counter = 0usize;
        go(self, &mut counter, &BTreeMap::new())
    }
}

impl fmt::Display for Fo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fo::Atom(a) => write!(f, "{a}"),
            Fo::Eq(t1, t2) => write!(f, "{t1} = {t2}"),
            Fo::And(a, b) => write!(f, "({a} ∧ {b})"),
            Fo::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Fo::Not(a) => write!(f, "¬{a}"),
            Fo::Exists(vars, a) => write!(f, "∃{} {a}", vars.join(",")),
            Fo::Forall(vars, a) => write!(f, "∀{} {a}", vars.join(",")),
        }
    }
}

/// A first-order query `Q(x̄) = φ`: an output head over a formula body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoQuery {
    head: Vec<Term>,
    body: Fo,
}

impl FoQuery {
    /// Create an FO query; every head variable must occur free in the body.
    pub fn new(head: Vec<Term>, body: Fo) -> Result<Self> {
        let free = body.free_variables();
        for t in &head {
            if let Term::Var(v) = t {
                if !free.contains(v) {
                    return Err(QueryError::UnsafeHeadVariable(v.clone()));
                }
            }
        }
        Ok(FoQuery { head, body })
    }

    /// A Boolean FO query.
    pub fn boolean(body: Fo) -> Self {
        FoQuery {
            head: Vec::new(),
            body,
        }
    }

    /// Head terms.
    pub fn head(&self) -> &[Term] {
        &self.head
    }

    /// Body formula.
    pub fn body(&self) -> &Fo {
        &self.body
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Query size `|Q|`.
    pub fn size(&self) -> usize {
        self.body.size() + self.head.len()
    }

    /// Language classification of the body.
    pub fn language(&self) -> QueryLanguage {
        self.body.language()
    }

    /// Build an FO query from a conjunctive query.
    pub fn from_cq(cq: &ConjunctiveQuery) -> FoQuery {
        let body = Fo::exists(
            cq.existential_variables().into_iter().collect(),
            Fo::conjunction(cq.atoms().iter().cloned().map(Fo::Atom).collect()),
        );
        FoQuery {
            head: cq.head().to_vec(),
            body,
        }
    }

    /// Build an FO query from a union of conjunctive queries.
    pub fn from_ucq(ucq: &UnionQuery) -> Result<FoQuery> {
        // All disjuncts must expose the same head; rename each disjunct's head
        // to a common vector of fresh variables `u0.. u{k-1}` by adding
        // equalities where the head term is a constant or repeated variable.
        let arity = ucq.arity();
        let head_vars: Vec<String> = (0..arity).map(|i| format!("__u{i}")).collect();
        let mut bodies = Vec::new();
        for d in ucq.disjuncts() {
            let d = d.rename_apart("__d");
            let mut eqs = Vec::new();
            for (i, t) in d.head().iter().enumerate() {
                eqs.push(Fo::Eq(Term::var(head_vars[i].clone()), t.clone()));
            }
            let mut parts: Vec<Fo> = d.atoms().iter().cloned().map(Fo::Atom).collect();
            parts.extend(eqs);
            let existential: Vec<String> = d.variables().into_iter().collect();
            bodies.push(Fo::exists(existential, Fo::conjunction(parts)));
        }
        let body = Fo::disjunction(bodies)?;
        FoQuery::new(head_vars.into_iter().map(Term::var).collect(), body)
    }

    /// Convert to a conjunctive query, if the body is conjunctive.
    pub fn to_cq(&self) -> Result<ConjunctiveQuery> {
        if !self.body.is_conjunctive() {
            return Err(QueryError::UnsupportedFragment(
                "query body is not conjunctive".to_string(),
            ));
        }
        let renamed = self.body.rename_bound();
        let mut atoms = Vec::new();
        let mut eqs = Vec::new();
        collect_conjuncts(&renamed, &mut atoms, &mut eqs)?;
        resolve_equalities(self.head.clone(), atoms, eqs)?.ok_or_else(|| {
            QueryError::UnsupportedFragment(
                "query equates two distinct constants and is trivially empty".to_string(),
            )
        })
    }

    /// Expand into a union of conjunctive queries (possible exactly for the
    /// `∃FO+` fragment; may be exponentially larger, hence the budget).
    ///
    /// Disjuncts that equate two distinct constants are dropped (they are
    /// unsatisfiable); if *all* disjuncts are dropped the query is
    /// unsatisfiable and `Ok(None)` is returned.
    pub fn to_ucq(&self, budget: &Budget) -> Result<Option<UnionQuery>> {
        if !self.body.is_positive() {
            return Err(QueryError::UnsupportedFragment(
                "only ∃FO+ queries can be expanded into a UCQ".to_string(),
            ));
        }
        let renamed = self.body.rename_bound();
        let bundles = expand_positive(&renamed, budget)?;
        let mut disjuncts = Vec::new();
        for (atoms, eqs) in bundles {
            if let Some(cq) = resolve_equalities(self.head.clone(), atoms, eqs)? {
                disjuncts.push(cq);
            }
        }
        if disjuncts.is_empty() {
            return Ok(None);
        }
        Ok(Some(UnionQuery::new(disjuncts)?))
    }
}

impl fmt::Display for FoQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q(")?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") = {}", self.body)
    }
}

/// Collect the atoms and equalities of a conjunctive formula.
fn collect_conjuncts(f: &Fo, atoms: &mut Vec<Atom>, eqs: &mut Vec<(Term, Term)>) -> Result<()> {
    match f {
        Fo::Atom(a) => {
            atoms.push(a.clone());
            Ok(())
        }
        Fo::Eq(t1, t2) => {
            eqs.push((t1.clone(), t2.clone()));
            Ok(())
        }
        Fo::And(a, b) => {
            collect_conjuncts(a, atoms, eqs)?;
            collect_conjuncts(b, atoms, eqs)
        }
        Fo::Exists(_, a) => collect_conjuncts(a, atoms, eqs),
        other => Err(QueryError::UnsupportedFragment(format!(
            "non-conjunctive construct in conjunctive context: {other}"
        ))),
    }
}

/// Expand a positive formula into `(atoms, equalities)` bundles, one per
/// disjunct of the equivalent UCQ.
/// One positive disjunct during `∃FO+` → UCQ expansion: its atoms plus the
/// pending equality conditions.
type PositiveDisjunct = (Vec<Atom>, Vec<(Term, Term)>);

fn expand_positive(f: &Fo, budget: &Budget) -> Result<Vec<PositiveDisjunct>> {
    let out = match f {
        Fo::Atom(a) => vec![(vec![a.clone()], Vec::new())],
        Fo::Eq(t1, t2) => vec![(Vec::new(), vec![(t1.clone(), t2.clone())])],
        Fo::And(a, b) => {
            let left = expand_positive(a, budget)?;
            let right = expand_positive(b, budget)?;
            let mut out = Vec::with_capacity(left.len() * right.len());
            for (la, le) in &left {
                for (ra, re) in &right {
                    let mut atoms = la.clone();
                    atoms.extend(ra.iter().cloned());
                    let mut eqs = le.clone();
                    eqs.extend(re.iter().cloned());
                    out.push((atoms, eqs));
                    Budget::check(out.len(), budget.max_disjuncts, "expanding ∃FO+ into UCQ")?;
                }
            }
            out
        }
        Fo::Or(a, b) => {
            let mut out = expand_positive(a, budget)?;
            out.extend(expand_positive(b, budget)?);
            Budget::check(out.len(), budget.max_disjuncts, "expanding ∃FO+ into UCQ")?;
            out
        }
        Fo::Exists(_, a) => expand_positive(a, budget)?,
        Fo::Not(_) | Fo::Forall(_, _) => {
            return Err(QueryError::UnsupportedFragment(
                "negation / universal quantification in positive expansion".to_string(),
            ))
        }
    };
    Ok(out)
}

/// Resolve equality atoms by substitution, producing a [`ConjunctiveQuery`].
///
/// Returns `Ok(None)` when the equalities force two distinct constants to be
/// equal (the disjunct is unsatisfiable).
pub(crate) fn resolve_equalities(
    head: Vec<Term>,
    atoms: Vec<Atom>,
    eqs: Vec<(Term, Term)>,
) -> Result<Option<ConjunctiveQuery>> {
    // Union-find over variable names; each class optionally carries a constant.
    let mut parent: BTreeMap<String, String> = BTreeMap::new();
    let mut constant: BTreeMap<String, Value> = BTreeMap::new();

    fn find(parent: &mut BTreeMap<String, String>, v: &str) -> String {
        let p = parent.get(v).cloned();
        match p {
            None => {
                parent.insert(v.to_string(), v.to_string());
                v.to_string()
            }
            Some(p) if p == v => p,
            Some(p) => {
                let root = find(parent, &p);
                parent.insert(v.to_string(), root.clone());
                root
            }
        }
    }

    let mut ok = true;
    for (t1, t2) in &eqs {
        match (t1, t2) {
            (Term::Const(c1), Term::Const(c2)) => {
                if c1 != c2 {
                    ok = false;
                }
            }
            (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                let root = find(&mut parent, v);
                match constant.get(&root) {
                    Some(existing) if existing != c => ok = false,
                    _ => {
                        constant.insert(root, c.clone());
                    }
                }
            }
            (Term::Var(v1), Term::Var(v2)) => {
                let r1 = find(&mut parent, v1);
                let r2 = find(&mut parent, v2);
                if r1 != r2 {
                    // Merge r2 into r1, reconciling constants.
                    match (constant.get(&r1).cloned(), constant.get(&r2).cloned()) {
                        (Some(c1), Some(c2)) if c1 != c2 => ok = false,
                        (None, Some(c2)) => {
                            constant.insert(r1.clone(), c2);
                        }
                        _ => {}
                    }
                    parent.insert(r2, r1);
                }
            }
        }
    }
    if !ok {
        return Ok(None);
    }

    // Build the substitution: each variable maps to its class constant if one
    // exists, otherwise to the class representative variable.
    let vars: Vec<String> = parent.keys().cloned().collect();
    let mut map: BTreeMap<String, Term> = BTreeMap::new();
    for v in vars {
        let root = find(&mut parent, &v);
        let target = match constant.get(&root) {
            Some(c) => Term::Const(c.clone()),
            None => Term::Var(root.clone()),
        };
        map.insert(v, target);
    }

    let new_atoms: Vec<Atom> = atoms.iter().map(|a| a.substitute(&map)).collect();
    let new_head: Vec<Term> = head
        .iter()
        .map(|t| match t {
            Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| t.clone()),
            Term::Const(_) => t.clone(),
        })
        .collect();
    Ok(Some(ConjunctiveQuery::new(new_head, new_atoms)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(rel: &str, vars: &[&str]) -> Fo {
        Fo::Atom(Atom::new(rel, vars.iter().map(|v| Term::var(*v)).collect()))
    }

    #[test]
    fn language_classification() {
        let cq_body = Fo::exists(
            vec!["y".into()],
            Fo::and(atom("r", &["x", "y"]), atom("s", &["y"])),
        );
        assert_eq!(cq_body.language(), QueryLanguage::Cq);

        let ucq_body = Fo::or(cq_body.clone(), atom("t", &["x"]));
        assert_eq!(ucq_body.language(), QueryLanguage::Ucq);

        // ∨ nested below ∧ is ∃FO+ but not (syntactically) UCQ.
        let pos_body = Fo::and(
            Fo::or(atom("r", &["x", "y"]), atom("s", &["x"])),
            atom("t", &["x"]),
        );
        assert_eq!(pos_body.language(), QueryLanguage::PosFo);

        let fo_body = Fo::and(atom("r", &["x", "y"]), Fo::not(atom("s", &["x"])));
        assert_eq!(fo_body.language(), QueryLanguage::Fo);
        let forall_body = Fo::forall(vec!["x".into()], atom("r", &["x", "y"]));
        assert_eq!(forall_body.language(), QueryLanguage::Fo);

        assert!(QueryLanguage::Cq.is_sublanguage_of(QueryLanguage::Fo));
        assert!(QueryLanguage::Ucq.is_sublanguage_of(QueryLanguage::PosFo));
        assert!(!QueryLanguage::Fo.is_sublanguage_of(QueryLanguage::Cq));
        assert_eq!(QueryLanguage::PosFo.to_string(), "∃FO+");
    }

    #[test]
    fn free_and_bound_variables() {
        let f = Fo::exists(
            vec!["y".into()],
            Fo::and(atom("r", &["x", "y"]), Fo::not(atom("s", &["z"]))),
        );
        let free = f.free_variables();
        assert!(free.contains("x"));
        assert!(free.contains("z"));
        assert!(!free.contains("y"));
        assert!(f.all_variables().contains("y"));
        assert_eq!(f.relation_names().len(), 2);
        assert!(f.size() >= 4);
    }

    #[test]
    fn head_safety() {
        let body = atom("r", &["x"]);
        assert!(FoQuery::new(vec![Term::var("x")], body.clone()).is_ok());
        assert!(matches!(
            FoQuery::new(vec![Term::var("w")], body.clone()),
            Err(QueryError::UnsafeHeadVariable(_))
        ));
        // A variable bound by ∃ is not free and hence not allowed in the head.
        let quantified = Fo::exists(vec!["x".into()], body);
        assert!(FoQuery::new(vec![Term::var("x")], quantified).is_err());
    }

    #[test]
    fn cq_round_trip() {
        let cq = crate::testutil::q0();
        let fo = FoQuery::from_cq(&cq);
        assert_eq!(fo.language(), QueryLanguage::Cq);
        assert_eq!(fo.arity(), 1);
        let back = fo.to_cq().unwrap();
        assert_eq!(back.canonical_form().atoms().len(), cq.atoms().len());
        assert_eq!(back.arity(), cq.arity());
        assert_eq!(back.relation_names(), cq.relation_names());
    }

    #[test]
    fn to_cq_rejects_disjunction() {
        let q = FoQuery::boolean(Fo::or(atom("r", &["x"]), atom("s", &["x"])));
        assert!(q.to_cq().is_err());
    }

    #[test]
    fn equality_resolution_makes_constants() {
        // Q(x) = ∃y (r(x, y) ∧ y = 3 ∧ x = y)  ≡  Q(3) :- r(3, 3)
        let body = Fo::exists(
            vec!["y".into()],
            Fo::conjunction(vec![
                atom("r", &["x", "y"]),
                Fo::Eq(Term::var("y"), Term::cnst(3)),
                Fo::Eq(Term::var("x"), Term::var("y")),
            ]),
        );
        let q = FoQuery::new(vec![Term::var("x")], body).unwrap();
        let cq = q.to_cq().unwrap();
        assert_eq!(cq.head()[0], Term::cnst(3));
        assert_eq!(cq.atoms()[0].args(), &[Term::cnst(3), Term::cnst(3)]);
    }

    #[test]
    fn contradictory_equalities_detected() {
        let body = Fo::conjunction(vec![
            atom("r", &["x"]),
            Fo::Eq(Term::var("x"), Term::cnst(1)),
            Fo::Eq(Term::var("x"), Term::cnst(2)),
        ]);
        let q = FoQuery::new(vec![Term::var("x")], body).unwrap();
        assert!(q.to_cq().is_err());
        // Via the UCQ expansion the unsatisfiable disjunct is silently dropped.
        assert!(q.to_ucq(&Budget::generous()).unwrap().is_none());
    }

    #[test]
    fn ucq_expansion_distributes() {
        // Q(x) = ∃y ((r(x,y) ∨ s(x,y)) ∧ t(y))  has exactly two disjuncts.
        let body = Fo::exists(
            vec!["y".into()],
            Fo::and(
                Fo::or(atom("r", &["x", "y"]), atom("s", &["x", "y"])),
                atom("t", &["y"]),
            ),
        );
        let q = FoQuery::new(vec![Term::var("x")], body).unwrap();
        let ucq = q.to_ucq(&Budget::generous()).unwrap().unwrap();
        assert_eq!(ucq.len(), 2);
        for d in ucq.disjuncts() {
            assert_eq!(d.atoms().len(), 2);
            assert_eq!(d.arity(), 1);
        }
        let names = ucq.relation_names();
        assert!(names.contains("r") && names.contains("s") && names.contains("t"));
    }

    #[test]
    fn ucq_expansion_respects_budget() {
        // (a ∨ b) ∧ (a ∨ b) ∧ (a ∨ b) has 8 disjuncts; a tiny budget refuses.
        let disj = Fo::or(atom("a", &["x"]), atom("b", &["x"]));
        let body = Fo::and(Fo::and(disj.clone(), disj.clone()), disj);
        let q = FoQuery::new(vec![Term::var("x")], body).unwrap();
        assert!(matches!(
            q.to_ucq(&Budget::tiny()),
            Err(QueryError::BudgetExceeded(_))
        ));
        assert_eq!(q.to_ucq(&Budget::generous()).unwrap().unwrap().len(), 8);
    }

    #[test]
    fn to_ucq_rejects_negation() {
        let q = FoQuery::boolean(Fo::not(atom("r", &["x"])));
        assert!(q.to_ucq(&Budget::generous()).is_err());
    }

    #[test]
    fn from_ucq_and_language() {
        let cq1 = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("r", vec![Term::var("x"), Term::var("y")])],
        )
        .unwrap();
        let cq2 = ConjunctiveQuery::new(
            vec![Term::cnst(1)],
            vec![Atom::new("s", vec![Term::var("z")])],
        )
        .unwrap();
        let ucq = UnionQuery::new(vec![cq1, cq2]).unwrap();
        let fo = FoQuery::from_ucq(&ucq).unwrap();
        assert_eq!(fo.arity(), 1);
        assert!(fo.body().is_positive());
        // Round-trip back through the expansion: still two satisfiable disjuncts.
        let back = fo.to_ucq(&Budget::generous()).unwrap().unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn rename_bound_makes_blocks_disjoint() {
        let f = Fo::and(
            Fo::exists(vec!["x".into()], atom("r", &["x"])),
            Fo::exists(vec!["x".into()], atom("s", &["x"])),
        );
        let renamed = f.rename_bound();
        // After renaming, the two quantifier blocks bind different variables.
        if let Fo::And(a, b) = &renamed {
            let (Fo::Exists(va, _), Fo::Exists(vb, _)) = (a.as_ref(), b.as_ref()) else {
                panic!("structure preserved")
            };
            assert_ne!(va, vb);
        } else {
            panic!("structure preserved");
        }
        assert_eq!(renamed.free_variables(), f.free_variables());
    }

    #[test]
    fn display_renders_connectives() {
        let f = Fo::exists(
            vec!["y".into()],
            Fo::and(
                atom("r", &["x", "y"]),
                Fo::not(Fo::Eq(Term::var("x"), Term::cnst(1))),
            ),
        );
        let q = FoQuery::new(vec![Term::var("x")], f).unwrap();
        let s = q.to_string();
        assert!(s.contains("∃y"));
        assert!(s.contains("∧"));
        assert!(s.contains("¬"));
    }

    #[test]
    fn conjunction_and_disjunction_helpers() {
        assert_eq!(
            Fo::conjunction(vec![]),
            Fo::Eq(Term::cnst(0), Term::cnst(0))
        );
        let single = Fo::conjunction(vec![atom("r", &["x"])]);
        assert_eq!(single, atom("r", &["x"]));
        assert!(Fo::disjunction(vec![]).is_err());
        assert_eq!(
            Fo::disjunction(vec![atom("r", &["x"])]).unwrap(),
            atom("r", &["x"])
        );
        assert_eq!(Fo::exists(vec![], atom("r", &["x"])), atom("r", &["x"]));
        assert_eq!(Fo::forall(vec![], atom("r", &["x"])), atom("r", &["x"]));
    }
}
