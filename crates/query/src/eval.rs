//! Naive query evaluation over instances and cached views.
//!
//! This module is the "reference engine" of the reproduction: it computes
//! `Q(D)` for CQ / UCQ / FO queries directly over a [`Database`] (optionally
//! consulting materialised view extents for atoms whose relation name is a
//! view).  It plays two roles:
//!
//! 1. the **baseline** in the benchmarks — its cost grows with `|D|`, which
//!    is exactly what bounded plans avoid; and
//! 2. the **oracle** for correctness tests — every bounded plan produced by
//!    `bqr-core` is checked against it on satisfying instances.
//!
//! CQ/UCQ evaluation drives the slot-based homomorphism engine of
//! [`crate::hom`] through its visitor interface: head tuples are projected
//! straight out of the variable slots, so no intermediate name→value maps
//! are materialised.  An [`Evaluator`] owns a [`bqr_data::IndexCache`] and a
//! result budget; repeated evaluations against the same (unmutated)
//! relations reuse the per-atom hash indexes instead of rebuilding them per
//! call.  The free functions ([`eval_cq`] & friends) keep the historical
//! one-shot signatures and simply run a transient `Evaluator`.
//!
//! FO evaluation uses active-domain semantics, which coincides with the
//! standard semantics for the domain-independent (safe-range) queries used
//! throughout the paper.

use crate::atom::Term;
use crate::cq::ConjunctiveQuery;
use crate::error::QueryError;
use crate::fo::{Fo, FoQuery};
use crate::hom::{Assignment, HomSearch};
use crate::planner::PlannerConfig;
use crate::ucq::UnionQuery;
use crate::views::MaterializedViews;
use crate::Result;
use bqr_data::{Database, FetchStats, IndexCache, Relation, Tuple, Value};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::ControlFlow;
use std::rc::Rc;

/// Default cap on the number of homomorphisms enumerated per CQ evaluation;
/// override it with [`Evaluator::with_max_results`].
pub const DEFAULT_MAX_RESULTS: usize = 10_000_000;

/// A query evaluator with cached relation indexes and a configurable result
/// budget.
///
/// The cache is keyed by relation epoch (see [`bqr_data::IndexCache`]), so
/// holding an `Evaluator` across calls is always sound: mutated relations
/// miss the cache and get fresh indexes automatically.
#[derive(Debug, Default)]
pub struct Evaluator {
    cache: IndexCache,
    max_results: Option<usize>,
    planner: PlannerConfig,
}

impl Evaluator {
    /// An evaluator with an empty cache and the default result budget.
    pub fn new() -> Self {
        Evaluator::default()
    }

    /// Replace the per-evaluation cap on enumerated homomorphisms
    /// (default: [`DEFAULT_MAX_RESULTS`]).
    pub fn with_max_results(mut self, max_results: usize) -> Self {
        self.max_results = Some(max_results);
        self
    }

    /// Replace the join-planner configuration (default:
    /// [`crate::planner::JoinStrategy::Auto`]).
    pub fn with_planner(mut self, planner: PlannerConfig) -> Self {
        self.planner = planner;
        self
    }

    /// The configured planner.
    pub fn planner(&self) -> PlannerConfig {
        self.planner
    }

    /// The configured result budget.
    pub fn max_results(&self) -> usize {
        self.max_results.unwrap_or(DEFAULT_MAX_RESULTS)
    }

    /// The underlying index cache (e.g. for hit/miss statistics).
    pub fn cache(&self) -> &IndexCache {
        &self.cache
    }

    /// Evaluate a conjunctive query, returning its answers as a sorted,
    /// duplicate-free list of tuples.
    pub fn eval_cq(
        &self,
        cq: &ConjunctiveQuery,
        db: &Database,
        views: Option<&MaterializedViews>,
    ) -> Result<Vec<Tuple>> {
        let relations = relation_map(cq.relation_names(), db, views)?;
        let search = self.compile_search(cq, &relations)?;
        let head = resolve_head(cq, &search);
        run_search(&search, &head, self.max_results())
    }

    /// Prepare a CQ for repeated evaluation: the compiled [`HomSearch`]
    /// (join plan, probe indexes, head resolution) is cached inside the
    /// handle, keyed by the epochs of the relations the query reads, and
    /// re-validated on every [`PreparedCq::eval`] — the homomorphism-engine
    /// counterpart of `bqr-plan`'s `PreparedPlan`.  Repeated `eval_cq`
    /// workloads over an unmutated instance skip planning and compilation
    /// entirely; a mutation recompiles exactly once.
    pub fn prepare(&self, cq: ConjunctiveQuery) -> PreparedCq<'_> {
        PreparedCq {
            evaluator: self,
            cq,
            compiled: RefCell::new(None),
            compiles: Cell::new(0),
            hits: Cell::new(0),
        }
    }

    /// Compile the slot-engine search for `cq` over resolved relations.
    fn compile_search(
        &self,
        cq: &ConjunctiveQuery,
        relations: &BTreeMap<String, &Relation>,
    ) -> Result<HomSearch> {
        HomSearch::compile_with(
            cq.atoms(),
            relations,
            &Assignment::new(),
            &self.cache,
            &self.planner,
        )
    }

    /// Evaluate a CQ and record the base tuples a scan-based engine touches.
    pub fn eval_cq_counting(
        &self,
        cq: &ConjunctiveQuery,
        db: &Database,
        views: Option<&MaterializedViews>,
        stats: &mut FetchStats,
    ) -> Result<Vec<Tuple>> {
        charge_scans(cq, db, views, stats)?;
        self.eval_cq(cq, db, views)
    }

    /// Evaluate a union of conjunctive queries.
    pub fn eval_ucq(
        &self,
        ucq: &UnionQuery,
        db: &Database,
        views: Option<&MaterializedViews>,
    ) -> Result<Vec<Tuple>> {
        let mut out = BTreeSet::new();
        for d in ucq.disjuncts() {
            out.extend(self.eval_cq(d, db, views)?);
        }
        Ok(out.into_iter().collect())
    }

    /// Evaluate a UCQ, charging scans for every disjunct.
    pub fn eval_ucq_counting(
        &self,
        ucq: &UnionQuery,
        db: &Database,
        views: Option<&MaterializedViews>,
        stats: &mut FetchStats,
    ) -> Result<Vec<Tuple>> {
        for d in ucq.disjuncts() {
            charge_scans(d, db, views, stats)?;
        }
        self.eval_ucq(ucq, db, views)
    }
}

/// A pre-resolved head term: either a constant or a slot of the compiled
/// search, so projection is a flat copy per match with no name lookups.
enum HeadPart {
    Const(Value),
    Slot(u32),
}

/// Resolve the head terms of `cq` against the slot table of its compiled
/// search.
fn resolve_head(cq: &ConjunctiveQuery, search: &HomSearch) -> Vec<HeadPart> {
    cq.head()
        .iter()
        .map(|t| match t {
            Term::Const(c) => HeadPart::Const(c.clone()),
            Term::Var(v) => HeadPart::Slot(
                search
                    .vars()
                    .slot(v)
                    .expect("safety guarantees every head variable is bound"),
            ),
        })
        .collect()
}

/// Enumerate the search's matches and project the head out of the slots.
fn run_search(search: &HomSearch, head: &[HeadPart], max_results: usize) -> Result<Vec<Tuple>> {
    let mut out = BTreeSet::new();
    let mut matches = 0usize;
    let _ = search.try_run(|m| {
        matches += 1;
        if matches > max_results {
            return Err(QueryError::BudgetExceeded("enumerating homomorphisms"));
        }
        out.insert(
            head.iter()
                .map(|p| match p {
                    HeadPart::Const(c) => c.clone(),
                    HeadPart::Slot(s) => m
                        .value(*s)
                        .expect("head slots are bound in every total match"),
                })
                .collect::<Tuple>(),
        );
        Ok(ControlFlow::Continue(()))
    })?;
    Ok(out.into_iter().collect())
}

/// The compiled state of a [`PreparedCq`], valid for one epoch vector.
struct CompiledCq {
    /// Epochs of the referenced relations, in `relation_names` order.
    epochs: Vec<u64>,
    search: Rc<HomSearch>,
    head: Rc<Vec<HeadPart>>,
}

/// A conjunctive query prepared on an [`Evaluator`] for repeated
/// evaluation — see [`Evaluator::prepare`].
///
/// Like the [`Evaluator`] (and the `Rc`-based [`bqr_data::IndexCache`] under
/// it) the handle is single-threaded; the multi-threaded prepared path is
/// `bqr-plan`'s `PreparedPlan`/`PipelineCache`, which serve compiled plan
/// pipelines process-wide.
pub struct PreparedCq<'e> {
    evaluator: &'e Evaluator,
    cq: ConjunctiveQuery,
    compiled: RefCell<Option<CompiledCq>>,
    compiles: Cell<u64>,
    hits: Cell<u64>,
}

impl PreparedCq<'_> {
    /// The prepared query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.cq
    }

    /// How many times the search was (re)compiled: `1` after the first
    /// evaluation, `+1` per epoch change observed since.
    pub fn compiles(&self) -> u64 {
        self.compiles.get()
    }

    /// How many evaluations re-used the compiled search.
    pub fn cache_hits(&self) -> u64 {
        self.hits.get()
    }

    /// Evaluate against `db` (and optional view extents), re-using the
    /// compiled search when every referenced relation still presents the
    /// epoch it was compiled at; answers are always identical to a fresh
    /// [`Evaluator::eval_cq`] on the same arguments.
    pub fn eval(&self, db: &Database, views: Option<&MaterializedViews>) -> Result<Vec<Tuple>> {
        let relations = relation_map(self.cq.relation_names(), db, views)?;
        // Epochs are globally unique stamps (equal epochs ⟹ identical
        // contents), so this vector re-validates everything compilation
        // looked at: relation contents, their statistics, and the planner
        // decisions derived from both.
        let epochs: Vec<u64> = relations.values().map(|r| r.epoch()).collect();
        let (search, head) = {
            let mut guard = self.compiled.borrow_mut();
            match guard.as_ref() {
                Some(c) if c.epochs == epochs => {
                    self.hits.set(self.hits.get() + 1);
                    (Rc::clone(&c.search), Rc::clone(&c.head))
                }
                _ => {
                    let search = Rc::new(self.evaluator.compile_search(&self.cq, &relations)?);
                    let head = Rc::new(resolve_head(&self.cq, &search));
                    self.compiles.set(self.compiles.get() + 1);
                    *guard = Some(CompiledCq {
                        epochs,
                        search: Rc::clone(&search),
                        head: Rc::clone(&head),
                    });
                    (search, head)
                }
            }
        };
        run_search(&search, &head, self.evaluator.max_results())
    }
}

/// Resolve a relation name against the base instance and the cached views.
fn resolve<'a>(
    name: &str,
    db: &'a Database,
    views: Option<&'a MaterializedViews>,
) -> Result<&'a Relation> {
    if let Some(rel) = db.relation(name) {
        return Ok(rel);
    }
    if let Some(cache) = views {
        if let Some(rel) = cache.extent(name) {
            return Ok(rel);
        }
    }
    Err(QueryError::UnknownRelation(name.to_string()))
}

fn relation_map<'a>(
    names: impl IntoIterator<Item = String>,
    db: &'a Database,
    views: Option<&'a MaterializedViews>,
) -> Result<BTreeMap<String, &'a Relation>> {
    let mut map = BTreeMap::new();
    for name in names {
        let rel = resolve(&name, db, views)?;
        map.insert(name, rel);
    }
    Ok(map)
}

/// Evaluate a conjunctive query with a transient [`Evaluator`], returning
/// its answers as a sorted, duplicate-free list of tuples.
pub fn eval_cq(
    cq: &ConjunctiveQuery,
    db: &Database,
    views: Option<&MaterializedViews>,
) -> Result<Vec<Tuple>> {
    Evaluator::new().eval_cq(cq, db, views)
}

/// Evaluate a CQ and record the base tuples a scan-based engine touches
/// (every relation referenced by an atom is charged once per atom).
pub fn eval_cq_counting(
    cq: &ConjunctiveQuery,
    db: &Database,
    views: Option<&MaterializedViews>,
    stats: &mut FetchStats,
) -> Result<Vec<Tuple>> {
    Evaluator::new().eval_cq_counting(cq, db, views, stats)
}

/// Evaluate a union of conjunctive queries.
pub fn eval_ucq(
    ucq: &UnionQuery,
    db: &Database,
    views: Option<&MaterializedViews>,
) -> Result<Vec<Tuple>> {
    Evaluator::new().eval_ucq(ucq, db, views)
}

/// Evaluate a UCQ, charging scans for every disjunct.
pub fn eval_ucq_counting(
    ucq: &UnionQuery,
    db: &Database,
    views: Option<&MaterializedViews>,
    stats: &mut FetchStats,
) -> Result<Vec<Tuple>> {
    Evaluator::new().eval_ucq_counting(ucq, db, views, stats)
}

fn charge_scans(
    cq: &ConjunctiveQuery,
    db: &Database,
    views: Option<&MaterializedViews>,
    stats: &mut FetchStats,
) -> Result<()> {
    for atom in cq.atoms() {
        let rel = resolve(atom.relation(), db, views)?;
        if db.relation(atom.relation()).is_some() {
            stats.record_scan(rel.len());
        } else {
            stats.record_view_read(rel.len());
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// First-order evaluation (active-domain semantics)
// ---------------------------------------------------------------------------

/// An intermediate FO result: a relation over named variables.
#[derive(Debug, Clone, PartialEq, Eq)]
struct VarRelation {
    vars: Vec<String>,
    rows: BTreeSet<Vec<Value>>,
}

impl VarRelation {
    fn truth(value: bool) -> Self {
        let mut rows = BTreeSet::new();
        if value {
            rows.insert(Vec::new());
        }
        VarRelation {
            vars: Vec::new(),
            rows,
        }
    }

    fn position(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }
}

/// Evaluate an FO query under active-domain semantics.  The active domain is
/// the set of values occurring in `db`, the view extents, and the query
/// itself.
pub fn eval_fo(
    query: &FoQuery,
    db: &Database,
    views: Option<&MaterializedViews>,
) -> Result<Vec<Tuple>> {
    let mut domain: BTreeSet<Value> = db.active_domain();
    if let Some(cache) = views {
        for name in cache.names().map(str::to_string).collect::<Vec<_>>() {
            if let Some(rel) = cache.extent(&name) {
                for t in rel.iter() {
                    for v in t.iter() {
                        domain.insert(v.clone());
                    }
                }
            }
        }
    }
    domain.extend(query.body().constants());
    for t in query.head() {
        if let Term::Const(c) = t {
            domain.insert(c.clone());
        }
    }
    let domain: Vec<Value> = domain.into_iter().collect();
    let rel = eval_formula(query.body(), db, views, &domain)?;
    let mut out = BTreeSet::new();
    for row in &rel.rows {
        let tuple: Tuple = query
            .head()
            .iter()
            .map(|t| match t {
                Term::Const(c) => c.clone(),
                Term::Var(v) => {
                    let pos = rel
                        .position(v)
                        .expect("head variables are free in the body");
                    row[pos].clone()
                }
            })
            .collect();
        out.insert(tuple);
    }
    Ok(out.into_iter().collect())
}

/// Evaluate an FO query, charging a scan of every base relation mentioned in
/// the formula (once per atom occurrence) — the cost model of the naive
/// baseline.
pub fn eval_fo_counting(
    query: &FoQuery,
    db: &Database,
    views: Option<&MaterializedViews>,
    stats: &mut FetchStats,
) -> Result<Vec<Tuple>> {
    fn charge(
        f: &Fo,
        db: &Database,
        views: Option<&MaterializedViews>,
        stats: &mut FetchStats,
    ) -> Result<()> {
        match f {
            Fo::Atom(a) => {
                let rel = resolve(a.relation(), db, views)?;
                if db.relation(a.relation()).is_some() {
                    stats.record_scan(rel.len());
                } else {
                    stats.record_view_read(rel.len());
                }
                Ok(())
            }
            Fo::Eq(_, _) => Ok(()),
            Fo::And(a, b) | Fo::Or(a, b) => {
                charge(a, db, views, stats)?;
                charge(b, db, views, stats)
            }
            Fo::Not(a) | Fo::Exists(_, a) | Fo::Forall(_, a) => charge(a, db, views, stats),
        }
    }
    charge(query.body(), db, views, stats)?;
    eval_fo(query, db, views)
}

fn eval_formula(
    f: &Fo,
    db: &Database,
    views: Option<&MaterializedViews>,
    domain: &[Value],
) -> Result<VarRelation> {
    match f {
        Fo::Atom(atom) => {
            let rel = resolve(atom.relation(), db, views)?;
            if rel.schema().arity() != atom.arity() {
                return Err(QueryError::AtomArity {
                    relation: atom.relation().to_string(),
                    expected: rel.schema().arity(),
                    actual: atom.arity(),
                });
            }
            let vars: Vec<String> = atom.variables().into_iter().collect();
            let mut rows = BTreeSet::new();
            'tuples: for t in rel.iter() {
                let mut binding: BTreeMap<&str, Value> = BTreeMap::new();
                for (pos, term) in atom.args().iter().enumerate() {
                    match term {
                        Term::Const(c) => {
                            if &t[pos] != c {
                                continue 'tuples;
                            }
                        }
                        Term::Var(v) => match binding.get(v.as_str()) {
                            Some(existing) if existing != &t[pos] => continue 'tuples,
                            _ => {
                                binding.insert(v, t[pos].clone());
                            }
                        },
                    }
                }
                rows.insert(vars.iter().map(|v| binding[v.as_str()].clone()).collect());
            }
            Ok(VarRelation { vars, rows })
        }
        Fo::Eq(t1, t2) => match (t1, t2) {
            (Term::Const(a), Term::Const(b)) => Ok(VarRelation::truth(a == b)),
            (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                let mut rows = BTreeSet::new();
                rows.insert(vec![c.clone()]);
                Ok(VarRelation {
                    vars: vec![v.clone()],
                    rows,
                })
            }
            (Term::Var(v1), Term::Var(v2)) => {
                if v1 == v2 {
                    let rows = domain.iter().map(|d| vec![d.clone()]).collect();
                    return Ok(VarRelation {
                        vars: vec![v1.clone()],
                        rows,
                    });
                }
                let vars = vec![v1.clone(), v2.clone()];
                let rows = domain.iter().map(|d| vec![d.clone(), d.clone()]).collect();
                Ok(VarRelation { vars, rows })
            }
        },
        Fo::And(a, b) => {
            let left = eval_formula(a, db, views, domain)?;
            let right = eval_formula(b, db, views, domain)?;
            Ok(join(&left, &right))
        }
        Fo::Or(a, b) => {
            let left = eval_formula(a, db, views, domain)?;
            let right = eval_formula(b, db, views, domain)?;
            let all_vars: Vec<String> = {
                let mut s: BTreeSet<String> = left.vars.iter().cloned().collect();
                s.extend(right.vars.iter().cloned());
                s.into_iter().collect()
            };
            let left = pad(&left, &all_vars, domain);
            let right = pad(&right, &all_vars, domain);
            let mut rows = left.rows;
            rows.extend(right.rows);
            Ok(VarRelation {
                vars: all_vars,
                rows,
            })
        }
        Fo::Not(a) => {
            let inner = eval_formula(a, db, views, domain)?;
            Ok(complement(&inner, domain))
        }
        Fo::Exists(vars, a) => {
            let inner = eval_formula(a, db, views, domain)?;
            Ok(project_out(&inner, vars))
        }
        Fo::Forall(vars, a) => {
            // ∀x φ ≡ ¬∃x ¬φ
            let inner = eval_formula(a, db, views, domain)?;
            let negated = complement(&inner, domain);
            let exists = project_out(&negated, vars);
            Ok(complement(&exists, domain))
        }
    }
}

/// Natural join of two variable relations.
fn join(left: &VarRelation, right: &VarRelation) -> VarRelation {
    let shared: Vec<(usize, usize)> = left
        .vars
        .iter()
        .enumerate()
        .filter_map(|(i, v)| right.position(v).map(|j| (i, j)))
        .collect();
    let right_extra: Vec<usize> = (0..right.vars.len())
        .filter(|j| !left.vars.contains(&right.vars[*j]))
        .collect();
    let mut vars = left.vars.clone();
    vars.extend(right_extra.iter().map(|&j| right.vars[j].clone()));

    // Hash the right side on the shared columns.
    let mut index: BTreeMap<Vec<Value>, Vec<&Vec<Value>>> = BTreeMap::new();
    for row in &right.rows {
        let key: Vec<Value> = shared.iter().map(|&(_, j)| row[j].clone()).collect();
        index.entry(key).or_default().push(row);
    }
    let mut rows = BTreeSet::new();
    for lrow in &left.rows {
        let key: Vec<Value> = shared.iter().map(|&(i, _)| lrow[i].clone()).collect();
        if let Some(matches) = index.get(&key) {
            for rrow in matches {
                let mut row = lrow.clone();
                row.extend(right_extra.iter().map(|&j| rrow[j].clone()));
                rows.insert(row);
            }
        }
    }
    VarRelation { vars, rows }
}

/// Pad a relation to a larger variable set by crossing with the domain.
fn pad(rel: &VarRelation, vars: &[String], domain: &[Value]) -> VarRelation {
    let missing: Vec<&String> = vars.iter().filter(|v| !rel.vars.contains(v)).collect();
    if missing.is_empty() {
        // Re-order columns to `vars`.
        let positions: Vec<usize> = vars.iter().map(|v| rel.position(v).unwrap()).collect();
        let rows = rel
            .rows
            .iter()
            .map(|r| positions.iter().map(|&p| r[p].clone()).collect())
            .collect();
        return VarRelation {
            vars: vars.to_vec(),
            rows,
        };
    }
    let mut rows = BTreeSet::new();
    for row in &rel.rows {
        let mut stack: Vec<Vec<Value>> = vec![Vec::new()];
        for _ in 0..missing.len() {
            let mut next = Vec::new();
            for partial in &stack {
                for d in domain {
                    let mut p = partial.clone();
                    p.push(d.clone());
                    next.push(p);
                }
            }
            stack = next;
        }
        for extension in stack {
            let full: Vec<Value> = vars
                .iter()
                .map(|v| match rel.position(v) {
                    Some(p) => row[p].clone(),
                    None => {
                        let k = missing.iter().position(|m| *m == v).unwrap();
                        extension[k].clone()
                    }
                })
                .collect();
            rows.insert(full);
        }
    }
    VarRelation {
        vars: vars.to_vec(),
        rows,
    }
}

/// Complement of a relation with respect to `domain^k`.
fn complement(rel: &VarRelation, domain: &[Value]) -> VarRelation {
    let mut rows = BTreeSet::new();
    let k = rel.vars.len();
    let mut stack: Vec<Vec<Value>> = vec![Vec::new()];
    for _ in 0..k {
        let mut next = Vec::new();
        for partial in &stack {
            for d in domain {
                let mut p = partial.clone();
                p.push(d.clone());
                next.push(p);
            }
        }
        stack = next;
    }
    for candidate in stack {
        if !rel.rows.contains(&candidate) {
            rows.insert(candidate);
        }
    }
    VarRelation {
        vars: rel.vars.clone(),
        rows,
    }
}

/// Existentially project variables out of a relation.
fn project_out(rel: &VarRelation, vars: &[String]) -> VarRelation {
    let keep: Vec<usize> = (0..rel.vars.len())
        .filter(|&i| !vars.contains(&rel.vars[i]))
        .collect();
    let new_vars: Vec<String> = keep.iter().map(|&i| rel.vars[i].clone()).collect();
    let rows = rel
        .rows
        .iter()
        .map(|r| keep.iter().map(|&i| r[i].clone()).collect())
        .collect();
    VarRelation {
        vars: new_vars,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{movie_instance, movie_schema, q0, v1};
    use crate::views::ViewSet;
    use bqr_data::tuple;

    #[test]
    fn q0_on_example_instance() {
        let db = movie_instance();
        // Q0: Universal/2014 movies liked by NASA people and rated 5.
        // Movie 10 (Lucy) is liked by Ann (NASA) and rated 5; movie 11 is
        // rated 3; movie 12 is not Universal/2014.
        let answers = eval_cq(&q0(), &db, None).unwrap();
        assert_eq!(answers, vec![tuple![10]]);
    }

    #[test]
    fn view_v1_on_example_instance() {
        let db = movie_instance();
        let answers = eval_cq(&v1(), &db, None).unwrap();
        assert_eq!(answers, vec![tuple![10], tuple![12]]);
    }

    #[test]
    fn query_over_views_resolves_extents() {
        let db = movie_instance();
        let mut views = ViewSet::empty();
        views.add_cq("V1", v1()).unwrap();
        let cache = views.materialize(&db).unwrap();
        // Q_ξ(mid) :- movie(mid, ym, "Universal", "2014"), V1(mid), rating(mid, 5)
        let q = ConjunctiveQuery::new(
            vec![Term::var("mid")],
            vec![
                crate::atom::Atom::new(
                    "movie",
                    vec![
                        Term::var("mid"),
                        Term::var("ym"),
                        Term::cnst("Universal"),
                        Term::cnst("2014"),
                    ],
                ),
                crate::atom::Atom::new("V1", vec![Term::var("mid")]),
                crate::atom::Atom::new("rating", vec![Term::var("mid"), Term::cnst(5)]),
            ],
        )
        .unwrap();
        let answers = eval_cq(&q, &db, Some(&cache)).unwrap();
        assert_eq!(answers, vec![tuple![10]]);
        // Without the cache the view name is unresolvable.
        assert!(eval_cq(&q, &db, None).is_err());
    }

    #[test]
    fn counting_variant_charges_scans_and_view_reads() {
        let db = movie_instance();
        let mut views = ViewSet::empty();
        views.add_cq("V1", v1()).unwrap();
        let cache = views.materialize(&db).unwrap();
        let q = ConjunctiveQuery::new(
            vec![Term::var("mid")],
            vec![
                crate::atom::Atom::new(
                    "movie",
                    vec![
                        Term::var("mid"),
                        Term::var("ym"),
                        Term::cnst("Universal"),
                        Term::cnst("2014"),
                    ],
                ),
                crate::atom::Atom::new("V1", vec![Term::var("mid")]),
            ],
        )
        .unwrap();
        let mut stats = FetchStats::new();
        let _ = eval_cq_counting(&q, &db, Some(&cache), &mut stats).unwrap();
        assert_eq!(stats.scanned_tuples, db.relation("movie").unwrap().len());
        assert_eq!(stats.view_tuples, 2);
        assert_eq!(stats.fetched_tuples, 0);
    }

    #[test]
    fn ucq_unions_disjunct_answers() {
        let db = movie_instance();
        let d1 = ConjunctiveQuery::new(
            vec![Term::var("m")],
            vec![crate::atom::Atom::new(
                "rating",
                vec![Term::var("m"), Term::cnst(5)],
            )],
        )
        .unwrap();
        let d2 = ConjunctiveQuery::new(
            vec![Term::var("m")],
            vec![crate::atom::Atom::new(
                "rating",
                vec![Term::var("m"), Term::cnst(3)],
            )],
        )
        .unwrap();
        let ucq = UnionQuery::new(vec![d1, d2]).unwrap();
        let answers = eval_ucq(&ucq, &db, None).unwrap();
        assert_eq!(answers, vec![tuple![10], tuple![11], tuple![12]]);
        let mut stats = FetchStats::new();
        let counted = eval_ucq_counting(&ucq, &db, None, &mut stats).unwrap();
        assert_eq!(counted.len(), 3);
        assert_eq!(
            stats.scanned_tuples,
            2 * db.relation("rating").unwrap().len()
        );
    }

    #[test]
    fn fo_evaluation_matches_cq_on_positive_queries() {
        let db = movie_instance();
        let fo = FoQuery::from_cq(&q0());
        let answers = eval_fo(&fo, &db, None).unwrap();
        assert_eq!(answers, eval_cq(&q0(), &db, None).unwrap());
    }

    #[test]
    fn fo_negation_finds_unliked_movies() {
        let db = movie_instance();
        // movies rated 5 that nobody likes: movie 12 is liked (by Bob), movie
        // 10 is liked (by Ann) — so with rating 5 and unliked there are none;
        // with rating 3: movie 11 is liked by Cat, so also none.  Instead ask
        // for movies *not* rated 5: that is movie 11.
        let body = Fo::and(
            Fo::exists(
                vec!["n".into(), "s".into(), "r".into()],
                Fo::Atom(crate::atom::Atom::new(
                    "movie",
                    vec![
                        Term::var("m"),
                        Term::var("n"),
                        Term::var("s"),
                        Term::var("r"),
                    ],
                )),
            ),
            Fo::not(Fo::Atom(crate::atom::Atom::new(
                "rating",
                vec![Term::var("m"), Term::cnst(5)],
            ))),
        );
        let q = FoQuery::new(vec![Term::var("m")], body).unwrap();
        let answers = eval_fo(&q, &db, None).unwrap();
        assert_eq!(answers, vec![tuple![11]]);
    }

    #[test]
    fn fo_universal_quantification() {
        let db = movie_instance();
        // Boolean: every movie listed in `rating` has rank 5 or rank 3.
        let body = Fo::forall(
            vec!["m".into(), "r".into()],
            Fo::or(
                Fo::not(Fo::Atom(crate::atom::Atom::new(
                    "rating",
                    vec![Term::var("m"), Term::var("r")],
                ))),
                Fo::or(
                    Fo::Eq(Term::var("r"), Term::cnst(5)),
                    Fo::Eq(Term::var("r"), Term::cnst(3)),
                ),
            ),
        );
        let q = FoQuery::boolean(body);
        let answers = eval_fo(&q, &db, None).unwrap();
        assert_eq!(
            answers.len(),
            1,
            "the sentence holds on the example instance"
        );

        // Tighten to "every rating is 5": fails because movie 11 is rated 3.
        let body = Fo::forall(
            vec!["m".into(), "r".into()],
            Fo::or(
                Fo::not(Fo::Atom(crate::atom::Atom::new(
                    "rating",
                    vec![Term::var("m"), Term::var("r")],
                ))),
                Fo::Eq(Term::var("r"), Term::cnst(5)),
            ),
        );
        let q = FoQuery::boolean(body);
        assert!(eval_fo(&q, &db, None).unwrap().is_empty());
    }

    #[test]
    fn fo_equality_and_boolean_edge_cases() {
        let db = movie_instance();
        let q = FoQuery::boolean(Fo::Eq(Term::cnst(1), Term::cnst(1)));
        assert_eq!(eval_fo(&q, &db, None).unwrap().len(), 1);
        let q = FoQuery::boolean(Fo::Eq(Term::cnst(1), Term::cnst(2)));
        assert!(eval_fo(&q, &db, None).unwrap().is_empty());
        // Q(x) = x = "NASA" — one answer, by active-domain semantics.
        let q = FoQuery::new(
            vec![Term::var("x")],
            Fo::Eq(Term::var("x"), Term::cnst("NASA")),
        )
        .unwrap();
        assert_eq!(eval_fo(&q, &db, None).unwrap(), vec![tuple!["NASA"]]);
    }

    #[test]
    fn fo_counting_charges_scans() {
        let db = movie_instance();
        let fo = FoQuery::from_cq(&q0());
        let mut stats = FetchStats::new();
        let _ = eval_fo_counting(&fo, &db, None, &mut stats).unwrap();
        assert!(stats.scanned_tuples > 0);
        assert_eq!(stats.fetched_tuples, 0);
    }

    #[test]
    fn evaluator_reuses_cached_indexes_across_calls() {
        let db = movie_instance();
        let evaluator = Evaluator::new();
        let first = evaluator.eval_cq(&q0(), &db, None).unwrap();
        let misses = evaluator.cache().misses();
        for _ in 0..4 {
            assert_eq!(evaluator.eval_cq(&q0(), &db, None).unwrap(), first);
        }
        assert_eq!(
            evaluator.cache().misses(),
            misses,
            "repeat evaluations hit the cache"
        );
        assert!(evaluator.cache().hits() > 0);
        assert_eq!(first, vec![tuple![10]]);
    }

    /// A prepared CQ skips recompilation on unmutated instances, recompiles
    /// exactly once per epoch change, and always answers like a fresh
    /// evaluation.
    #[test]
    fn prepared_cq_revalidates_epochs() {
        let mut db = movie_instance();
        let evaluator = Evaluator::new();
        let prepared = evaluator.prepare(q0());
        assert_eq!(prepared.query(), &q0());

        let first = prepared.eval(&db, None).unwrap();
        assert_eq!(first, vec![tuple![10]]);
        for _ in 0..3 {
            assert_eq!(prepared.eval(&db, None).unwrap(), first);
        }
        assert_eq!(prepared.compiles(), 1, "one compile serves the warm path");
        assert_eq!(prepared.cache_hits(), 3);

        // Mutating referenced relations bumps their epochs: one recompile,
        // and the answer reflects the new instance (Ouija gets a 5-rating
        // and a NASA fan, so it now qualifies).
        db.insert("rating", tuple![11, 5]).unwrap();
        db.insert("like", tuple![1, 11, "movie"]).unwrap();
        let updated = prepared.eval(&db, None).unwrap();
        assert_eq!(updated, eval_cq(&q0(), &db, None).unwrap());
        assert_eq!(updated, vec![tuple![10], tuple![11]], "Ouija now qualifies");
        assert_eq!(prepared.compiles(), 2);
        assert_eq!(prepared.eval(&db, None).unwrap(), updated);
        assert_eq!(prepared.compiles(), 2, "warm again after the recompile");

        // Mutating an *unreferenced* relation also re-keys (the vector is
        // per referenced relation, and `person` is referenced by Q0) — use a
        // clone to check the opposite: clones share epochs, so a clone of
        // the instance stays warm.
        let clone = db.clone();
        assert_eq!(prepared.eval(&clone, None).unwrap(), updated);
        assert_eq!(prepared.compiles(), 2, "unmutated clones share epochs");
    }

    /// Prepared evaluation resolves view extents and tracks their epochs.
    #[test]
    fn prepared_cq_over_views() {
        let db = movie_instance();
        let mut views = ViewSet::empty();
        views.add_cq("V1", v1()).unwrap();
        let cache = views.materialize(&db).unwrap();
        let q = ConjunctiveQuery::new(
            vec![Term::var("mid")],
            vec![
                crate::atom::Atom::new("V1", vec![Term::var("mid")]),
                crate::atom::Atom::new("rating", vec![Term::var("mid"), Term::cnst(5)]),
            ],
        )
        .unwrap();
        let evaluator = Evaluator::new();
        let prepared = evaluator.prepare(q.clone());
        let expected = evaluator.eval_cq(&q, &db, Some(&cache)).unwrap();
        assert_eq!(prepared.eval(&db, Some(&cache)).unwrap(), expected);
        assert_eq!(prepared.eval(&db, Some(&cache)).unwrap(), expected);
        assert_eq!(prepared.compiles(), 1);
        assert_eq!(prepared.cache_hits(), 1);
        // A re-materialised extent presents fresh epochs → one recompile.
        let cache2 = views.materialize(&db).unwrap();
        assert_eq!(prepared.eval(&db, Some(&cache2)).unwrap(), expected);
        assert_eq!(prepared.compiles(), 2);
        // Missing views error exactly like the unprepared path.
        assert!(prepared.eval(&db, None).is_err());
    }

    #[test]
    fn max_results_budget_is_enforced() {
        let db = movie_instance();
        // rating has 3 tuples; a budget of 2 must abort the enumeration.
        let q = ConjunctiveQuery::new(
            vec![Term::var("m")],
            vec![crate::atom::Atom::new(
                "rating",
                vec![Term::var("m"), Term::var("r")],
            )],
        )
        .unwrap();
        let strict = Evaluator::new().with_max_results(2);
        assert!(matches!(
            strict.eval_cq(&q, &db, None),
            Err(QueryError::BudgetExceeded(_))
        ));
        let ample = Evaluator::new().with_max_results(3);
        assert_eq!(ample.eval_cq(&q, &db, None).unwrap().len(), 3);
        assert_eq!(ample.max_results(), 3);
        assert_eq!(Evaluator::new().max_results(), DEFAULT_MAX_RESULTS);
    }

    #[test]
    fn empty_database_yields_empty_answers() {
        let db = Database::empty(movie_schema());
        assert!(eval_cq(&q0(), &db, None).unwrap().is_empty());
        assert!(eval_fo(&FoQuery::from_cq(&q0()), &db, None)
            .unwrap()
            .is_empty());
    }
}
