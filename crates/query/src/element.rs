//! Element queries (Section 3.1 of the paper).
//!
//! An *element query* of a CQ `Q` under an access schema `A` is a query
//! `Q_e = Q ∧ ψ`, where `ψ` is a conjunction of equalities among the
//! variables and constants of `Q`, such that the tableau of `Q_e` (variables
//! read as constants) satisfies `A`.  The paper shows `Q ≡_A Q_{e_1} ∪ ... ∪
//! Q_{e_n}` over the satisfiable element queries, and uses them for
//! `A`-containment, bounded-output analysis and the exact decision
//! procedures.
//!
//! Enumerating *all* element queries is hopeless (there are exponentially
//! many ψ).  It suffices, however, to enumerate the **minimal** ones — the
//! element queries whose equality set is minimal w.r.t. refinement — because
//! every element query refines a minimal one, refinement preserves both
//! classical containment in a fixed query and coverage of variables.  This
//! module enumerates exactly those by a branching "cardinality chase": start
//! from `Q` itself, and while some constraint `R(X → Y, N)` is violated by an
//! `X`-group with more than `N` distinct `Y`-projections, branch over the
//! ways to merge two of those `Y`-projections.

use crate::atom::Term;
use crate::budget::Budget;
use crate::canonical::{canonical_instance, frozen_var_name};
use crate::cq::ConjunctiveQuery;
use crate::fo::resolve_equalities;
use crate::Result;
use bqr_data::{AccessSchema, DatabaseSchema, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Enumerate the minimal element queries of `cq` under `access`.
///
/// The returned queries all (a) are obtained from `cq` by equating variables
/// and constants, (b) have a tableau satisfying `access`, and (c) jointly are
/// `A`-equivalent to `cq`.  The list is empty exactly when `cq` is
/// unsatisfiable on instances that satisfy `access`.
pub fn element_queries(
    cq: &ConjunctiveQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
    budget: &Budget,
) -> Result<Vec<ConjunctiveQuery>> {
    let mut results: Vec<ConjunctiveQuery> = Vec::new();
    let mut result_keys: BTreeSet<ConjunctiveQuery> = BTreeSet::new();
    let mut visited: BTreeSet<ConjunctiveQuery> = BTreeSet::new();
    let mut stack: Vec<ConjunctiveQuery> = vec![cq.clone()];
    let mut explored = 0usize;

    while let Some(q) = stack.pop() {
        let key = q.canonical_form();
        if !visited.insert(key) {
            continue;
        }
        explored += 1;
        Budget::check(
            explored,
            budget.max_partitions,
            "enumerating element-query partitions",
        )?;

        match first_violation(&q, access, schema)? {
            None => {
                let canon = q.canonical_form();
                if result_keys.insert(canon) {
                    results.push(q);
                    Budget::check(
                        results.len(),
                        budget.max_element_queries,
                        "collecting element queries",
                    )?;
                }
            }
            Some(group) => {
                // Branch over every pair of distinct Y-projections in the
                // violating group; merging any one of them is a legal repair
                // step, and every minimal satisfying partition performs at
                // least one of them.
                for i in 0..group.len() {
                    for j in (i + 1)..group.len() {
                        if let Some(merged) = merge_rows(&q, &group[i], &group[j])? {
                            stack.push(merged);
                        }
                    }
                }
            }
        }
    }
    Ok(results)
}

/// Is `cq` satisfiable on some instance that satisfies `access`?
pub fn satisfiable_under(
    cq: &ConjunctiveQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
    budget: &Budget,
) -> Result<bool> {
    // Satisfiable iff at least one element query exists.  We could stop at
    // the first one; the enumeration is cheap for the query sizes the
    // decision procedures handle, so we reuse it directly.
    Ok(!element_queries(cq, access, schema, budget)?.is_empty())
}

/// Does the tableau of `cq` itself satisfy `access`?
pub fn tableau_satisfies(
    cq: &ConjunctiveQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
) -> Result<bool> {
    Ok(first_violation(cq, access, schema)?.is_none())
}

/// Find one violated constraint group: the distinct `Y`-projections (more
/// than `N` of them) of some `X`-group of some constraint.  Returns `None`
/// when the tableau satisfies every constraint.
fn first_violation(
    cq: &ConjunctiveQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
) -> Result<Option<Vec<Tuple>>> {
    let canon = canonical_instance(cq, schema)?;
    for constraint in access.constraints() {
        let rel = match canon.database.relation(constraint.relation()) {
            Some(r) if !r.is_empty() => r,
            _ => continue,
        };
        let x_pos = rel.schema().positions(constraint.x())?;
        let y_pos = rel.schema().positions(constraint.y())?;
        let mut groups: BTreeMap<Tuple, BTreeSet<Tuple>> = BTreeMap::new();
        for t in rel.iter() {
            groups
                .entry(t.project(&x_pos))
                .or_default()
                .insert(t.project(&y_pos));
        }
        for (_key, ys) in groups {
            if ys.len() > constraint.n() {
                return Ok(Some(ys.into_iter().collect()));
            }
        }
    }
    Ok(None)
}

/// Merge two rows of frozen values component-wise, producing the specialised
/// query, or `None` when the merge would equate two distinct constants.
fn merge_rows(cq: &ConjunctiveQuery, a: &Tuple, b: &Tuple) -> Result<Option<ConjunctiveQuery>> {
    let mut eqs: Vec<(Term, Term)> = Vec::new();
    for (va, vb) in a.iter().zip(b.iter()) {
        if va == vb {
            continue;
        }
        eqs.push((unfreeze(va), unfreeze(vb)));
    }
    if eqs.is_empty() {
        return Ok(None);
    }
    resolve_equalities(cq.head().to_vec(), cq.atoms().to_vec(), eqs)
}

/// Convert a canonical-instance value back into a term.
fn unfreeze(value: &Value) -> Term {
    match frozen_var_name(value) {
        Some(name) => Term::Var(name.to_string()),
        None => Term::Const(value.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::error::QueryError;
    use crate::testutil::{movie_access, movie_schema, q0, va};
    use bqr_data::{AccessConstraint, AccessSchema};

    fn simple_schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[("r", &["a", "b"]), ("o", &["i", "x"])]).unwrap()
    }

    #[test]
    fn satisfying_tableau_has_single_element_query() {
        // Q0's tableau has one movie atom and one rating atom per key, so it
        // already satisfies A0 (with N0 ≥ 1); the only minimal element query
        // is Q0 itself.
        let access = movie_access(1);
        let qs = element_queries(&q0(), &access, &movie_schema(), &Budget::generous()).unwrap();
        assert_eq!(qs.len(), 1);
        assert_eq!(qs[0].canonical_form(), q0().canonical_form());
        assert!(tableau_satisfies(&q0(), &access, &movie_schema()).unwrap());
        assert!(satisfiable_under(&q0(), &access, &movie_schema(), &Budget::generous()).unwrap());
    }

    #[test]
    fn violating_tableau_branches_into_merges() {
        // Q(x) :- r(k, x1), r(k, x2), r(k, x3) with r(a → b, 2):
        // three distinct b-values for the same key must collapse to ≤ 2,
        // giving the three ways of equating a pair.
        let q = ConjunctiveQuery::new(
            vec![Term::var("x1")],
            vec![
                va("r", &["k", "x1"]),
                va("r", &["k", "x2"]),
                va("r", &["k", "x3"]),
            ],
        )
        .unwrap();
        let access =
            AccessSchema::new(vec![AccessConstraint::new("r", &["a"], &["b"], 2).unwrap()]);
        let qs = element_queries(&q, &access, &simple_schema(), &Budget::generous()).unwrap();
        assert_eq!(qs.len(), 3, "x1=x2, x1=x3, x2=x3");
        for qe in &qs {
            assert!(tableau_satisfies(qe, &access, &simple_schema()).unwrap());
            assert_eq!(qe.variables().len(), 3, "one variable disappears: {qe}");
        }
    }

    #[test]
    fn fd_forces_full_collapse() {
        // With r(a → b, 1) the same query collapses x1 = x2 = x3: exactly one
        // minimal element query.
        let q = ConjunctiveQuery::boolean(vec![
            va("r", &["k", "x1"]),
            va("r", &["k", "x2"]),
            va("r", &["k", "x3"]),
        ])
        .unwrap();
        let access = AccessSchema::new(vec![AccessConstraint::fd("r", &["a"], &["b"]).unwrap()]);
        let qs = element_queries(&q, &access, &simple_schema(), &Budget::generous()).unwrap();
        assert_eq!(qs.len(), 1);
        assert_eq!(qs[0].variables().len(), 2);
    }

    #[test]
    fn constants_make_some_branches_unsatisfiable() {
        // r(k, 1), r(k, 2), r(k, x) with r(a → b, 2): the only repairs are
        // x = 1 or x = 2 (1 = 2 is impossible).
        let q = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![
                Atom::new("r", vec![Term::var("k"), Term::cnst(1)]),
                Atom::new("r", vec![Term::var("k"), Term::cnst(2)]),
                Atom::new("r", vec![Term::var("k"), Term::var("x")]),
            ],
        )
        .unwrap();
        let access =
            AccessSchema::new(vec![AccessConstraint::new("r", &["a"], &["b"], 2).unwrap()]);
        let qs = element_queries(&q, &access, &simple_schema(), &Budget::generous()).unwrap();
        assert_eq!(qs.len(), 2);
        let heads: BTreeSet<Term> = qs.iter().map(|q| q.head()[0].clone()).collect();
        assert_eq!(heads, [Term::cnst(1), Term::cnst(2)].into_iter().collect());
    }

    #[test]
    fn fully_constant_violation_is_unsatisfiable() {
        // r(k, 1), r(k, 2) with r(a → b, 1): no repair exists.
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("r", vec![Term::var("k"), Term::cnst(1)]),
            Atom::new("r", vec![Term::var("k"), Term::cnst(2)]),
        ])
        .unwrap();
        let access = AccessSchema::new(vec![AccessConstraint::fd("r", &["a"], &["b"]).unwrap()]);
        let qs = element_queries(&q, &access, &simple_schema(), &Budget::generous()).unwrap();
        assert!(qs.is_empty());
        assert!(!satisfiable_under(&q, &access, &simple_schema(), &Budget::generous()).unwrap());
    }

    #[test]
    fn cascading_repairs_respect_both_constraints() {
        // o(i, x1), o(i, x2) with o(i → x, 1) forces x1 = x2 even when the
        // violation only appears after another merge.
        let q = ConjunctiveQuery::boolean(vec![
            va("r", &["k", "i1"]),
            va("r", &["k", "i2"]),
            va("o", &["i1", "x1"]),
            va("o", &["i2", "x2"]),
        ])
        .unwrap();
        let access = AccessSchema::new(vec![
            AccessConstraint::fd("r", &["a"], &["b"]).unwrap(),
            AccessConstraint::fd("o", &["i"], &["x"]).unwrap(),
        ]);
        let qs = element_queries(&q, &access, &simple_schema(), &Budget::generous()).unwrap();
        assert_eq!(qs.len(), 1);
        // i1=i2 and then x1=x2: five variables (k, i1, i2, x1, x2) collapse to
        // three (k, i, x).
        assert_eq!(qs[0].variables().len(), 3, "{}", qs[0]);
    }

    #[test]
    fn empty_access_schema_returns_query_itself() {
        let qs = element_queries(
            &q0(),
            &AccessSchema::empty(),
            &movie_schema(),
            &Budget::generous(),
        )
        .unwrap();
        assert_eq!(qs.len(), 1);
    }

    #[test]
    fn budget_is_respected() {
        // A wide violation with a tiny budget aborts instead of spinning.
        let atoms: Vec<Atom> = (0..6).map(|i| va("r", &["k", &format!("x{i}")])).collect();
        let q = ConjunctiveQuery::boolean(atoms).unwrap();
        let access =
            AccessSchema::new(vec![AccessConstraint::new("r", &["a"], &["b"], 1).unwrap()]);
        assert!(matches!(
            element_queries(&q, &access, &simple_schema(), &Budget::tiny()),
            Err(QueryError::BudgetExceeded(_))
        ));
        // With a generous budget the unique fixpoint (all equal) is found.
        let qs = element_queries(&q, &access, &simple_schema(), &Budget::generous()).unwrap();
        assert_eq!(qs.len(), 1);
        assert_eq!(qs[0].variables().len(), 2);
    }
}
